//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the surface `tests/properties.rs` uses: the [`proptest!`] macro
//! with an optional `#![proptest_config(...)]` header, range and
//! `prop::collection::vec` strategies, and the `prop_assume!` /
//! `prop_assert!` / `prop_assert_eq!` assertion macros. Cases are generated
//! from a deterministic per-test RNG (seeded from the test name), so
//! failures reproduce run to run. Unlike upstream proptest there is **no
//! shrinking**: a failing case reports the failed assertion and the case
//! index, not a minimized input.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};

    /// The per-test case generator handed to strategies.
    pub type TestRng = StdRng;

    /// A source of generated values; the stub keeps only generation, no
    /// value trees or shrinking.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    SampleRange::sample_single(self.clone(), rng)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    SampleRange::sample_single(self.clone(), rng)
                }
            }
        )*}
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy for `bool` values (`any::<bool>()`).
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    /// `prop::collection::vec(element, len)`: a fixed-length vector whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// Fixed-size vector strategy (upstream also accepts size *ranges*;
    /// the in-tree tests only use exact sizes).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; try another one.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Result type the generated case closure returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives one property: generates inputs, runs the case closure, and
    /// panics (failing the enclosing `#[test]`) on the first failure.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
        name: &'static str,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            // Deterministic per-test seed: FNV-1a over the test name.
            let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            });
            TestRunner {
                config,
                rng: TestRng::seed_from_u64(seed),
                name,
            }
        }

        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> TestCaseResult,
        {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                match case(&mut self.rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest '{}': too many prop_assume! rejects ({rejected})",
                                self.name
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {} (after {} rejects): {msg}",
                            self.name,
                            passed + 1,
                            rejected
                        );
                    }
                }
            }
        }
    }
}

/// Everything the `proptest!` grammar needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Mirrors upstream's `prop` re-export module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

pub use prelude::prop;

/// Defines `#[test]` functions over generated inputs.
///
/// Supported grammar (the subset the repository uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0f32..1.0, 16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng; $($params)*);
                let mut __proptest_case =
                    || -> $crate::test_runner::TestCaseResult { $body Ok(()) };
                __proptest_case()
            });
        }
    )*};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:expr;) => {};
    ($rng:expr; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    ($rng:expr; $pat:pat in $strat:expr, $($rest:tt)+) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)+);
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Like `assert!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}: {}\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
            )));
        }
    }};
}
