//! Offline, API-compatible subset of `criterion`.
//!
//! Provides the benchmark-definition surface the workspace uses —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Benchmarks really execute and report a median time per iteration, so
//! `cargo bench` gives usable relative numbers; there is no outlier
//! analysis, plotting, or baseline comparison.

use std::time::{Duration, Instant};

/// Measurement configuration shared by [`Criterion`] and its groups.
#[derive(Clone, Debug)]
pub struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    config: Config,
}

/// Units used to annotate per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            // Group-level overrides (sample_size etc.) are scoped to the
            // group, as upstream criterion scopes them — copy the config.
            config: self.config.clone(),
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, &id.into(), None, &mut f);
        self
    }

    /// Called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks with its own (group-scoped) config.
pub struct BenchmarkGroup {
    config: Config,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&self.config, &id, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    config: &'a Config,
    samples: Vec<f64>,
}

impl Bencher<'_> {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, learning the cost.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Size each sample so the whole measurement fits the time budget.
        let budget = self.config.measurement_time.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)).ceil().max(1.0) as u64;
        let iters_per_sample = (total_iters / self.config.sample_size as u64).max(1);

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Config,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no measurement)");
        return;
    }
    bencher
        .samples
        .sort_by(|a, b| a.partial_cmp(b).expect("bench sample times are finite"));
    let median = bencher.samples[bencher.samples.len() / 2];
    let lo = bencher.samples[0];
    let hi = bencher.samples[bencher.samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12}/s", si(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  {:>10}B/s", si(n as f64 / median)),
        None => String::new(),
    };
    println!(
        "{id:<48} time: [{} {} {}]{rate}",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Identity function that defeats constant-propagation, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, in either the positional or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `fn main` invoking each declared group (requires the bench
/// target to set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
