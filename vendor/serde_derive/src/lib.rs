//! Offline derive-macro shim for the vendored `serde` subset.
//!
//! The repository derives `Serialize`/`Deserialize` on its experiment-row
//! and config types so they stay wire-ready for future tooling, but nothing
//! in-tree serializes through the traits yet. With no crates.io access the
//! real `serde_derive` is unavailable, so these derives accept the same
//! syntax (including `#[serde(...)]` attributes) and expand to marker-trait
//! impls via the companion `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts the identifier following `struct`/`enum` and the raw generics
/// snippet (everything between the name and the body / where-clause).
fn parse_name_and_generics(input: TokenStream) -> Option<(String, String)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kws = kw.to_string();
            if kws == "struct" || kws == "enum" || kws == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let mut generics = String::new();
                    let mut depth = 0i32;
                    for tt in iter {
                        match &tt {
                            TokenTree::Punct(p) if p.as_char() == '<' => {
                                depth += 1;
                                generics.push('<');
                            }
                            TokenTree::Punct(p) if p.as_char() == '>' => {
                                depth -= 1;
                                generics.push('>');
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ if depth == 0 => break,
                            other => {
                                generics.push_str(&other.to_string());
                                generics.push(' ');
                            }
                        }
                    }
                    return Some((name.to_string(), generics));
                }
            }
        } else if let TokenTree::Group(g) = &tt {
            // Skip attribute groups like #[serde(...)].
            let _ = g.delimiter() == Delimiter::Bracket;
        }
    }
    None
}

fn impl_marker(trait_name: &str, input: TokenStream) -> TokenStream {
    let Some((name, generics)) = parse_name_and_generics(input) else {
        return TokenStream::new();
    };
    // Lifetimes/bounds inside generics make a blanket impl string fragile;
    // all in-tree derived types are concrete, so only handle that case and
    // fall back to no impl (the marker traits are never used as bounds).
    if !generics.is_empty() {
        return TokenStream::new();
    }
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_marker("Serialize", input)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_marker("Deserialize", input)
}
