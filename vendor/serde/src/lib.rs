//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! just enough surface for `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` to compile: marker traits plus the
//! shim derives from the companion `serde_derive` crate. No serialization
//! framework is included — when a future PR needs real (de)serialization,
//! replace `vendor/serde*` with the upstream crates and delete this shim.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
