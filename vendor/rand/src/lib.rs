//! Offline, API-compatible subset of the `rand` crate (0.8-era surface).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` the codebase actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed on every platform, which is
//! the property the stack's experiment harness and `tests/determinism.rs`
//! rely on. Bit-streams are *not* identical to upstream `StdRng` (ChaCha12);
//! nothing in this repository depends on upstream bit-compatibility.

/// A low-level source of 32/64-bit random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full value range for integers).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa-significant bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa-significant bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Numeric types [`Rng::gen_range`] can sample uniformly from a range.
///
/// The half-open/inclusive sampling logic lives here so that
/// [`SampleRange`] can stay a *single* blanket impl per range type — that
/// mirrors upstream `rand` and is what lets integer-literal ranges like
/// `0..30` unify with the surrounding expression's type during inference.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*}
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Floating rounding may land exactly on `hi`; stay half-open.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*}
}
impl_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: core::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
            let d: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&d));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
            let v = rng.gen_range(-999i64..=999);
            assert!((-999..=999).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
