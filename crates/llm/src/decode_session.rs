//! Continuous-batching decode session: `admit` / `step` / `retire`.
//!
//! The paper's motivation for bypassing QNN is that test-time scaling
//! needs *dynamic* batched decode: Best-of-N trajectories finish at
//! different lengths, and a static graph keeps paying for slots whose
//! samples already emitted their answer. [`DecodeSession`] is the dynamic
//! counterpart — a fixed pool of KV slots over one shared prompt, where
//! sequences are admitted ([`DecodeSession::admit`]), stepped as one HMX
//! batch ([`DecodeSession::step`]), and retired either automatically when
//! they exhaust their token budget or explicitly
//! ([`DecodeSession::retire`]). A retirement frees the KV slot *within the
//! same step*, and the head of the admission queue takes it over
//! immediately, so the decode batch (and with it HMX tile occupancy)
//! stays full while any work remains.
//!
//! The session runs in both execution modes: functional (tiny models,
//! real logits flow to the sampling callback) and cost-only (paper-scale
//! models, the callback sees an empty logits row and only the simulated
//! step costs accumulate). It drives [`Model::decode_step_for`], so a
//! model carrying a sharded
//! [`LayerSchedule`](crate::model::LayerSchedule) decodes across NPU
//! sessions transparently.
//!
//! # Examples
//!
//! Admit three samples over a shared prompt into two KV slots, retire
//! one early, and drain — the freed slot is taken by the queued sample
//! within the same step:
//!
//! ```
//! use edgellm::config::ModelId;
//! use edgellm::decode_session::DecodeSession;
//! use edgellm::model::Model;
//! use hexsim::prelude::*;
//! use htpops::gemm::DequantVariant;
//!
//! let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
//! let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 7).unwrap();
//! let prompt = [2u32, 10, 11];
//! let mut session = DecodeSession::new(&mut ctx, &model, &prompt, 2, 64).unwrap();
//!
//! // Three sequences over two slots: the third queues.
//! let a = session.admit(40, 4).unwrap();
//! let _b = session.admit(41, 3).unwrap();
//! let _c = session.admit(42, 2).unwrap();
//! assert_eq!(session.active_count(), 2);
//! assert_eq!(session.queued_count(), 1);
//!
//! // Retire `a` early (as an EOS would); the queued sample activates.
//! session.retire(a).unwrap();
//! assert_eq!(session.queued_count(), 0);
//!
//! // Step until everything drains, sampling greedily from real logits.
//! while session.active_count() > 0 {
//!     session
//!         .step(&mut ctx, |_, logits| {
//!             logits
//!                 .iter()
//!                 .enumerate()
//!                 .max_by(|x, y| x.1.total_cmp(y.1))
//!                 .map(|(i, _)| i as u32)
//!                 .unwrap()
//!         })
//!         .unwrap();
//! }
//! let finished = session.into_finished(&mut ctx);
//! assert_eq!(finished.len(), 3);
//! ```

use std::collections::VecDeque;

use hexsim::prelude::*;

use crate::kv_cache::{KvCache, KvSeqSnapshot};
use crate::model::{Model, StepCost};
use crate::overlap::StepStages;

/// Stable identifier of one admitted sequence, assigned in admission
/// order starting from zero.
pub type SeqId = u64;

/// A finished sequence: its id and every generated token in order (the
/// first token handed to [`DecodeSession::admit`] included).
#[derive(Clone, Debug)]
pub struct FinishedSeq {
    /// Id returned by [`DecodeSession::admit`].
    pub id: SeqId,
    /// Generated tokens in emission order.
    pub tokens: Vec<u32>,
}

/// A sequence currently occupying a KV slot.
struct ActiveSeq {
    id: SeqId,
    /// Newest token, fed to the next decode step.
    current: u32,
    /// Tokens emitted so far (the admission token counts as one).
    emitted: usize,
    /// Total tokens this sequence may emit.
    max_new: usize,
    /// Every emitted token, in order.
    tokens: Vec<u32>,
}

/// A sequence admitted while all slots were busy.
struct QueuedSeq {
    id: SeqId,
    first: u32,
    max_new: usize,
}

/// A decode paused mid-stream by [`DecodeSession::preempt`]: the
/// sequence's KV rows (bit-exact in functional mode, the length in
/// cost-only mode) plus every token generated so far. Handing this back
/// to [`DecodeSession::resume`] re-installs the sequence into a free
/// slot and the continuation is bit-identical to an uninterrupted
/// decode — preemption is a scheduling choice, never a numeric one.
///
/// The value is owned by the caller while paused: the session frees the
/// KV slot at preemption time, so a scheduler can hand the slot to an
/// interactive arrival and re-queue this state until capacity returns.
#[derive(Clone, Debug)]
pub struct PreemptedSeq {
    id: SeqId,
    snap: KvSeqSnapshot,
    current: u32,
    emitted: usize,
    max_new: usize,
    tokens: Vec<u32>,
}

impl PreemptedSeq {
    /// Id the sequence was admitted under (and resumes under).
    pub fn id(&self) -> SeqId {
        self.id
    }

    /// Tokens the sequence had emitted when it was paused.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// KV tokens the paused state carries (prompt + generated prefix).
    pub fn kv_tokens(&self) -> usize {
        self.snap.tokens()
    }

    /// The generated prefix, in emission order.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }
}

/// A sequence whose *own* prompt (unrelated to the session's shared
/// prompt) is being prefilled into its reserved KV slot chunk by chunk
/// (admitted via [`DecodeSession::admit_prompt`]).
struct PrefillingSeq {
    id: SeqId,
    slot: usize,
    prompt: Vec<u32>,
    /// Prompt tokens prefilled into the slot so far.
    fed: usize,
    max_new: usize,
    chunk: usize,
}

/// Progress report of one [`DecodeSession::prefill_step`] chunk: which
/// sequence advanced, how far its prompt has been fed, and the chunk's
/// forward cost/stages — the stages are what a serving scheduler charges
/// into the overlap critical path when it interleaves the chunk with a
/// decode step ([`StepStages::merged`]).
#[derive(Debug)]
pub struct PrefillChunk {
    /// Sequence the chunk belongs to.
    pub id: SeqId,
    /// Prompt tokens fed after this chunk.
    pub fed: usize,
    /// Total prompt length of the sequence.
    pub prompt_len: usize,
    /// Cost of this chunk's forward pass.
    pub cost: StepCost,
    /// Stage breakdown of this chunk's forward pass.
    pub stages: StepStages,
    /// Whether the prompt completed — the sequence sampled its first
    /// token and is now active for decode.
    pub completed: bool,
}

/// Continuous-batching decode over one model and one shared prompt.
pub struct DecodeSession<'m> {
    model: &'m Model,
    cache: KvCache,
    prompt: KvSeqSnapshot,
    prompt_logits: Vec<f32>,
    prefill_cost: StepCost,
    /// One entry per KV slot; `None` marks a slot with no *active*
    /// sequence (it may still be reserved by a prefilling one).
    slots: Vec<Option<ActiveSeq>>,
    queue: VecDeque<QueuedSeq>,
    /// Sequences whose own prompt is mid-prefill, oldest first; each
    /// reserves the slot it is prefilling into.
    prefilling: Vec<PrefillingSeq>,
    finished: Vec<FinishedSeq>,
    next_id: SeqId,
    steps: usize,
    decode_cost: StepCost,
    decoded_tokens: usize,
    /// Stage breakdown of the most recent decode step.
    last_stages: Option<StepStages>,
}

impl<'m> DecodeSession<'m> {
    /// Opens a session: allocates a KV cache of `max_batch` slots with a
    /// shared `kv_budget` (total tokens across slots), prefills the prompt
    /// once, snapshots its KV as the shared admission state, and frees
    /// every slot.
    pub fn new(
        ctx: &mut NpuContext,
        model: &'m Model,
        prompt_tokens: &[u32],
        max_batch: usize,
        kv_budget: usize,
    ) -> SimResult<Self> {
        assert!(max_batch >= 1, "session needs at least one slot");
        let mut cache = KvCache::new(ctx, &model.cfg, max_batch, kv_budget)?;
        let out = match model.prefill(ctx, &mut cache, 0, prompt_tokens) {
            Ok(out) => out,
            Err(e) => {
                // Return the already-mapped KV allocation on failure so
                // repeated failed opens cannot exhaust the session VA.
                cache.free(ctx);
                return Err(e);
            }
        };
        let prompt = cache.snapshot_seq(0);
        cache.reset_seq(0);
        Ok(DecodeSession {
            model,
            cache,
            prompt,
            prompt_logits: out.logits,
            prefill_cost: out.cost,
            slots: (0..max_batch).map(|_| None).collect(),
            queue: VecDeque::new(),
            prefilling: Vec::new(),
            finished: Vec::new(),
            next_id: 0,
            steps: 0,
            decode_cost: StepCost::default(),
            decoded_tokens: 0,
            last_stages: None,
        })
    }

    /// Admits a sequence over the shared prompt KV. `first_token` is its
    /// first generated token (callers sample it from
    /// [`Self::prompt_logits`]); the sequence may emit `max_new_tokens`
    /// tokens in total before it auto-retires. If every slot is busy the
    /// sequence queues and activates as soon as a slot retires.
    ///
    /// **Invariant:** every sequence admitted this way shares the prompt
    /// the session was opened with — activation restores the one prompt
    /// KV snapshot into the freed slot. Heterogeneous per-request
    /// prompts go through [`Self::admit_prompt`], which prefills the
    /// request's own prompt into its slot chunk by chunk instead.
    pub fn admit(&mut self, first_token: u32, max_new_tokens: usize) -> SimResult<SeqId> {
        assert!(max_new_tokens >= 1, "a sequence emits at least one token");
        let id = self.next_id;
        self.next_id += 1;
        if max_new_tokens == 1 {
            // The admission token is the whole output; no slot needed.
            self.finished.push(FinishedSeq {
                id,
                tokens: vec![first_token],
            });
            return Ok(id);
        }
        match self.free_slot() {
            Some(slot) => self.activate(slot, id, first_token, max_new_tokens)?,
            None => self.queue.push_back(QueuedSeq {
                id,
                first: first_token,
                max_new: max_new_tokens,
            }),
        }
        Ok(id)
    }

    /// Admits a sequence with its *own* prompt (heterogeneous prompt
    /// lengths — the serving-gateway admission path): reserves a free KV
    /// slot and registers the prompt to be prefilled into it in chunks
    /// of `chunk_tokens` via [`Self::prefill_step`]. When the last chunk
    /// lands, the sequence samples its first token from that chunk's
    /// final-position logits and joins the decode batch.
    ///
    /// Unlike [`Self::admit`], this requires a free slot up front
    /// (errors otherwise): a gateway holds its own admission queue and
    /// only admits when capacity exists, so queueing whole prompts here
    /// would duplicate that machinery.
    pub fn admit_prompt(
        &mut self,
        prompt_tokens: &[u32],
        max_new_tokens: usize,
        chunk_tokens: usize,
    ) -> SimResult<SeqId> {
        assert!(max_new_tokens >= 1, "a sequence emits at least one token");
        assert!(chunk_tokens >= 1, "chunks carry at least one token");
        assert!(!prompt_tokens.is_empty(), "prompt must be non-empty");
        let Some(slot) = self.free_slot() else {
            return Err(SimError::Unsupported {
                reason: format!(
                    "admit_prompt needs a free KV slot ({} active, {} prefilling of {})",
                    self.active_count(),
                    self.prefilling.len(),
                    self.slots.len()
                ),
            });
        };
        let id = self.next_id;
        self.next_id += 1;
        self.cache.reset_seq(slot);
        self.prefilling.push(PrefillingSeq {
            id,
            slot,
            prompt: prompt_tokens.to_vec(),
            fed: 0,
            max_new: max_new_tokens,
            chunk: chunk_tokens,
        });
        Ok(id)
    }

    /// Feeds the next prompt chunk of the oldest prefilling sequence
    /// (FIFO across [`Self::admit_prompt`] admissions). If the chunk
    /// completes the prompt, `sample` maps the chunk's final-position
    /// logits (empty in cost-only mode) to the sequence's first token
    /// and the sequence activates for decode. Returns `None` when no
    /// sequence is prefilling.
    ///
    /// The returned [`PrefillChunk`] carries the chunk's [`StepStages`]
    /// so a scheduler can charge it into the same critical-path model as
    /// the decode step it interleaves with.
    pub fn prefill_step<F>(
        &mut self,
        ctx: &mut NpuContext,
        sample: F,
    ) -> SimResult<Option<PrefillChunk>>
    where
        F: FnOnce(&[f32]) -> u32,
    {
        if self.prefilling.is_empty() {
            return Ok(None);
        }
        let p = &self.prefilling[0];
        let (slot, lo) = (p.slot, p.fed);
        let hi = (lo + p.chunk).min(p.prompt.len());
        let span = p.prompt[lo..hi].to_vec();
        let out = self.model.prefill(ctx, &mut self.cache, slot, &span)?;
        self.prefill_cost.add(&out.cost);
        let p = &mut self.prefilling[0];
        p.fed = hi;
        let completed = hi == p.prompt.len();
        let chunk = PrefillChunk {
            id: p.id,
            fed: hi,
            prompt_len: p.prompt.len(),
            cost: out.cost,
            stages: out.stages,
            completed,
        };
        if completed {
            let p = self.prefilling.remove(0);
            let first = sample(&out.logits);
            if p.max_new == 1 {
                // The first token is the whole output: finish now and
                // hand the slot back (to the shared-prompt queue first,
                // matching retirement order).
                self.cache.reset_seq(p.slot);
                self.finished.push(FinishedSeq {
                    id: p.id,
                    tokens: vec![first],
                });
                if let Some(q) = self.queue.pop_front() {
                    self.activate(p.slot, q.id, q.first, q.max_new)?;
                }
            } else {
                self.slots[p.slot] = Some(ActiveSeq {
                    id: p.id,
                    current: first,
                    emitted: 1,
                    max_new: p.max_new,
                    tokens: vec![first],
                });
            }
        }
        Ok(Some(chunk))
    }

    /// Runs one batched decode step over every active slot. `sample` maps
    /// a sequence's logits row (empty in cost-only mode) to its next
    /// token. Sequences reaching their token budget retire and their slot
    /// is refilled from the queue *within the same step*. Returns the
    /// `(id, token)` pairs emitted this step, in slot order; empty when
    /// nothing is active.
    ///
    /// If a step errors (e.g. KV budget exhaustion) and the session is
    /// abandoned, call [`Self::release`] to return its KV allocation —
    /// the simulated DDR mapping is owned by the context, not dropped
    /// with the session.
    pub fn step<F>(&mut self, ctx: &mut NpuContext, mut sample: F) -> SimResult<Vec<(SeqId, u32)>>
    where
        F: FnMut(SeqId, &[f32]) -> u32,
    {
        let seqs: Vec<usize> = (0..self.slots.len())
            .filter(|&s| self.slots[s].is_some())
            .collect();
        if seqs.is_empty() {
            return Ok(Vec::new());
        }
        let tokens: Vec<u32> = seqs
            .iter()
            .map(|&s| self.slots[s].as_ref().expect("active").current)
            .collect();
        let out = self
            .model
            .decode_step_for(ctx, &mut self.cache, &seqs, &tokens)?;
        self.steps += 1;
        self.decode_cost.add(&out.cost);
        self.last_stages = Some(out.stages);

        let vocab = self.model.cfg.vocab;
        let mut emitted = Vec::with_capacity(seqs.len());
        for (row, &slot) in seqs.iter().enumerate() {
            let finished_now = {
                let active = self.slots[slot].as_mut().expect("active");
                let logits = if out.logits.is_empty() {
                    &[][..]
                } else {
                    &out.logits[row * vocab..(row + 1) * vocab]
                };
                let next = sample(active.id, logits);
                active.current = next;
                active.emitted += 1;
                active.tokens.push(next);
                emitted.push((active.id, next));
                active.emitted >= active.max_new
            };
            self.decoded_tokens += 1;
            if finished_now {
                self.retire_slot(slot)?;
            }
        }
        Ok(emitted)
    }

    /// Retires a sequence early (e.g. on EOS): frees its KV slot — or
    /// removes it from the queue, or abandons its partial prompt prefill
    /// — and refills the slot from the queue. Errors on unknown or
    /// already-finished ids.
    pub fn retire(&mut self, id: SeqId) -> SimResult<()> {
        if let Some(slot) = self
            .slots
            .iter()
            .position(|s| s.as_ref().map(|a| a.id) == Some(id))
        {
            return self.retire_slot(slot);
        }
        if let Some(qi) = self.queue.iter().position(|q| q.id == id) {
            let q = self.queue.remove(qi).expect("indexed");
            self.finished.push(FinishedSeq {
                id: q.id,
                tokens: vec![q.first],
            });
            return Ok(());
        }
        if let Some(pi) = self.prefilling.iter().position(|p| p.id == id) {
            // Abandoned mid-prefill: drop the partial KV, emit nothing.
            let p = self.prefilling.remove(pi);
            self.cache.reset_seq(p.slot);
            self.finished.push(FinishedSeq {
                id: p.id,
                tokens: Vec::new(),
            });
            if let Some(q) = self.queue.pop_front() {
                self.activate(p.slot, q.id, q.first, q.max_new)?;
            }
            return Ok(());
        }
        Err(SimError::Unsupported {
            reason: format!("sequence {id} is not active, queued, or prefilling"),
        })
    }

    /// Pauses an active decode mid-stream: captures the sequence's KV
    /// rows and generation state, then frees its slot. The slot is *not*
    /// refilled from the shared-prompt queue — it is left free for the
    /// caller (a preempting scheduler admits its urgent arrival into
    /// it). Resume later with [`Self::resume`]; the continuation is
    /// bit-identical to never having paused. Errors on ids that are not
    /// currently active (queued and prefilling sequences hold no decode
    /// state worth snapshotting — retire those instead).
    pub fn preempt(&mut self, id: SeqId) -> SimResult<PreemptedSeq> {
        let Some(slot) = self
            .slots
            .iter()
            .position(|s| s.as_ref().map(|a| a.id) == Some(id))
        else {
            return Err(SimError::Unsupported {
                reason: format!("sequence {id} is not an active decode, cannot preempt"),
            });
        };
        let seq = self.slots[slot].take().expect("slot checked active");
        let snap = self.cache.snapshot_seq(slot);
        self.cache.reset_seq(slot);
        Ok(PreemptedSeq {
            id: seq.id,
            snap,
            current: seq.current,
            emitted: seq.emitted,
            max_new: seq.max_new,
            tokens: seq.tokens,
        })
    }

    /// Re-installs a sequence paused by [`Self::preempt`] into a free
    /// slot (not necessarily the one it was paused in): restores its KV
    /// rows and generation state so the next [`Self::step`] continues
    /// exactly where the paused decode left off. Requires a free slot
    /// and KV budget headroom for the paused tokens; the paused state is
    /// untouched on error, so a scheduler can retry once capacity
    /// returns. Callers must not resume the same paused state twice.
    pub fn resume(&mut self, paused: &PreemptedSeq) -> SimResult<SeqId> {
        let Some(slot) = self.free_slot() else {
            return Err(SimError::Unsupported {
                reason: format!(
                    "resume needs a free KV slot ({} active, {} prefilling of {})",
                    self.active_count(),
                    self.prefilling.len(),
                    self.slots.len()
                ),
            });
        };
        self.cache.restore_seq(slot, &paused.snap)?;
        self.slots[slot] = Some(ActiveSeq {
            id: paused.id,
            current: paused.current,
            emitted: paused.emitted,
            max_new: paused.max_new,
            tokens: paused.tokens.clone(),
        });
        Ok(paused.id)
    }

    /// Logits of the shared prompt's final position (empty in cost-only
    /// mode); the distribution admission tokens are sampled from.
    pub fn prompt_logits(&self) -> &[f32] {
        &self.prompt_logits
    }

    /// Cost of the one-time shared-prompt prefill, plus every
    /// per-sequence prompt chunk fed through [`Self::prefill_step`].
    pub fn prefill_cost(&self) -> StepCost {
        self.prefill_cost
    }

    /// Number of sequences currently occupying slots.
    pub fn active_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Ids of the sequences currently occupying slots, in slot order.
    /// Preempting schedulers pick victims from this set — only active
    /// decodes hold KV state worth snapshotting.
    pub fn active_ids(&self) -> Vec<SeqId> {
        self.slots.iter().flatten().map(|s| s.id).collect()
    }

    /// Number of admitted sequences waiting for a slot.
    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    /// Number of sequences whose own prompt is mid-prefill (admitted via
    /// [`Self::admit_prompt`], each holding a reserved slot).
    pub fn prefilling_count(&self) -> usize {
        self.prefilling.len()
    }

    /// Whether a KV slot is free (neither active nor reserved by a
    /// prefilling sequence) — the gateway's pre-admission check.
    pub fn has_free_slot(&self) -> bool {
        self.free_slot().is_some()
    }

    /// Stage breakdown of the most recent decode step, for schedulers
    /// that interleave prefill chunks with decode on the overlap
    /// critical path (`None` before the first step).
    pub fn last_step_stages(&self) -> Option<&StepStages> {
        self.last_stages.as_ref()
    }

    /// Slot-pool size (the maximum decode batch).
    pub fn max_batch(&self) -> usize {
        self.slots.len()
    }

    /// Finished sequences, in retirement order.
    pub fn finished(&self) -> &[FinishedSeq] {
        &self.finished
    }

    /// Finished sequences sorted by admission id, consuming the session
    /// and returning its KV allocation to the context (so repeated runs
    /// on one context do not exhaust the session VA space).
    pub fn into_finished(mut self, ctx: &mut NpuContext) -> Vec<FinishedSeq> {
        self.cache.free(ctx);
        self.finished.sort_by_key(|f| f.id);
        self.finished
    }

    /// Decode steps executed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Tokens emitted by decode steps (admission tokens excluded — those
    /// come from the shared prefill).
    pub fn decoded_tokens(&self) -> usize {
        self.decoded_tokens
    }

    /// Accumulated cost of every decode step.
    pub fn decode_cost(&self) -> StepCost {
        self.decode_cost
    }

    /// Simulated decode wall seconds so far (serial composition).
    pub fn decode_secs(&self) -> f64 {
        self.decode_cost.wall_secs()
    }

    /// Simulated decode wall seconds under the overlap-aware schedule:
    /// the sum of each step's critical-path period, so the CPU lm_head of
    /// step *t* hides behind the first layers of step *t+1* across
    /// [`DecodeSession::step`] boundaries when the model runs with
    /// [`crate::overlap::DispatchMode::Overlapped`]. Equals
    /// [`DecodeSession::decode_secs`] under serial dispatch.
    pub fn decode_overlapped_secs(&self) -> f64 {
        self.decode_cost.overlapped_secs
    }

    /// Decode throughput in tokens per simulated second.
    pub fn decode_tokens_per_sec(&self) -> f64 {
        let secs = self.decode_secs();
        if secs > 0.0 {
            self.decoded_tokens as f64 / secs
        } else {
            0.0
        }
    }

    /// Releases the session's KV allocation back to the context.
    pub fn release(self, ctx: &mut NpuContext) {
        self.cache.free(ctx);
    }

    fn free_slot(&self) -> Option<usize> {
        (0..self.slots.len())
            .find(|&s| self.slots[s].is_none() && !self.prefilling.iter().any(|p| p.slot == s))
    }

    fn activate(&mut self, slot: usize, id: SeqId, first: u32, max_new: usize) -> SimResult<()> {
        self.cache.restore_seq(slot, &self.prompt)?;
        self.slots[slot] = Some(ActiveSeq {
            id,
            current: first,
            emitted: 1,
            max_new,
            tokens: vec![first],
        });
        Ok(())
    }

    fn retire_slot(&mut self, slot: usize) -> SimResult<()> {
        let done = self.slots[slot].take().expect("retiring an active slot");
        self.cache.reset_seq(slot);
        self.finished.push(FinishedSeq {
            id: done.id,
            tokens: done.tokens,
        });
        if let Some(q) = self.queue.pop_front() {
            self.activate(slot, q.id, q.first, q.max_new)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelId;
    use htpops::gemm::DequantVariant;

    fn setup() -> (NpuContext, Model) {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 11).unwrap();
        (ctx, model)
    }

    fn drain(
        session: &mut DecodeSession<'_>,
        ctx: &mut NpuContext,
        max_steps: usize,
    ) -> Vec<Vec<(SeqId, u32)>> {
        let mut per_step = Vec::new();
        while session.active_count() > 0 {
            assert!(per_step.len() < max_steps, "session failed to drain");
            per_step.push(session.step(ctx, |id, _| 4 + (id as u32 % 100)).unwrap());
        }
        per_step
    }

    #[test]
    fn early_retirement_admits_queued_sequences_same_step() {
        let (mut ctx, model) = setup();
        let prompt = [2u32, 10, 11, 12];
        let mut s = DecodeSession::new(&mut ctx, &model, &prompt, 2, 64).unwrap();
        // Two active (lengths 2 and 5), one queued (length 3).
        s.admit(40, 2).unwrap();
        s.admit(41, 5).unwrap();
        let queued = s.admit(42, 3).unwrap();
        assert_eq!(s.active_count(), 2);
        assert_eq!(s.queued_count(), 1);
        // Step 1: sequence 0 hits its budget and retires; the queued
        // sequence takes the freed slot within the same step.
        s.step(&mut ctx, |_, _| 7).unwrap();
        assert_eq!(s.queued_count(), 0);
        assert_eq!(s.active_count(), 2);
        assert_eq!(s.finished().len(), 1);
        assert_eq!(s.finished()[0].tokens, vec![40, 7]);
        drain(&mut s, &mut ctx, 16);
        let ddr_before = ctx.ddr_mapped_bytes();
        let done = s.into_finished(&mut ctx);
        assert!(ctx.ddr_mapped_bytes() < ddr_before, "KV must be freed");
        assert_eq!(done.len(), 3);
        assert_eq!(done[queued as usize].tokens.len(), 3);
        assert_eq!(done[1].tokens.len(), 5);
    }

    #[test]
    fn explicit_retire_frees_slot_and_queue() {
        let (mut ctx, model) = setup();
        let prompt = [2u32, 20, 21];
        let mut s = DecodeSession::new(&mut ctx, &model, &prompt, 1, 32).unwrap();
        let a = s.admit(50, 10).unwrap();
        let b = s.admit(51, 4).unwrap();
        assert_eq!(s.queued_count(), 1);
        // Retiring the active sequence promotes the queued one.
        s.retire(a).unwrap();
        assert_eq!(s.active_count(), 1);
        assert_eq!(s.queued_count(), 0);
        // Retiring a queued-then-active id twice errors.
        s.retire(b).unwrap();
        assert!(s.retire(b).is_err());
        assert!(s.retire(99).is_err());
        assert_eq!(s.finished().len(), 2);
    }

    #[test]
    fn single_token_budget_finishes_without_a_slot() {
        let (mut ctx, model) = setup();
        let prompt = [2u32, 30];
        let mut s = DecodeSession::new(&mut ctx, &model, &prompt, 2, 32).unwrap();
        s.admit(60, 1).unwrap();
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.finished().len(), 1);
        assert_eq!(s.finished()[0].tokens, vec![60]);
        assert_eq!(s.steps(), 0);
    }

    #[test]
    fn failed_open_frees_its_kv_allocation() {
        let (mut ctx, model) = setup();
        let before = ctx.ddr_mapped_bytes();
        // Prompt exceeds the KV budget: prefill fails inside new().
        let prompt = vec![2u32; 16];
        assert!(DecodeSession::new(&mut ctx, &model, &prompt, 2, 4).is_err());
        assert_eq!(ctx.ddr_mapped_bytes(), before, "failed open must not leak");
    }

    fn greedy(logits: &[f32]) -> u32 {
        let mut best = 0usize;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best as u32
    }

    #[test]
    fn chunked_prompt_admission_matches_single_shot() {
        // The same per-request prompt prefilled in chunks of 2 and in one
        // shot must sample the identical first token and decode the
        // identical continuation: Model::prefill continues from the KV
        // length, so chunking is a scheduling choice, not a numeric one.
        let (mut ctx, model) = setup();
        let shared = [2u32, 10, 11];
        let own_prompt = [2u32, 7, 8, 9, 3];
        let mut tokens_by_chunk: Vec<Vec<u32>> = Vec::new();
        for chunk in [own_prompt.len(), 2] {
            let mut s = DecodeSession::new(&mut ctx, &model, &shared, 2, 64).unwrap();
            let id = s.admit_prompt(&own_prompt, 4, chunk).unwrap();
            assert_eq!(s.prefilling_count(), 1);
            assert_eq!(s.active_count(), 0);
            let mut chunks = 0;
            while s.prefilling_count() > 0 {
                let c = s.prefill_step(&mut ctx, greedy).unwrap().unwrap();
                chunks += 1;
                assert_eq!(c.id, id);
                assert_eq!(c.prompt_len, own_prompt.len());
                assert!(c.fed <= own_prompt.len());
                assert_eq!(c.completed, c.fed == own_prompt.len());
                assert!(c.stages.layers.len() == model.cfg.layers);
            }
            assert_eq!(chunks, own_prompt.len().div_ceil(chunk));
            assert_eq!(s.active_count(), 1);
            drain(&mut s, &mut ctx, 8);
            let done = s.into_finished(&mut ctx);
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].tokens.len(), 4);
            tokens_by_chunk.push(done[0].tokens.clone());
        }
        assert_eq!(tokens_by_chunk[0], tokens_by_chunk[1]);
    }

    #[test]
    fn prefilling_sequences_reserve_their_slot() {
        let (mut ctx, model) = setup();
        let shared = [2u32, 10];
        let mut s = DecodeSession::new(&mut ctx, &model, &shared, 2, 64).unwrap();
        let p = s.admit_prompt(&[2u32, 5, 6], 3, 2).unwrap();
        assert!(s.has_free_slot());
        // The shared-prompt admission takes the one remaining slot...
        s.admit(40, 3).unwrap();
        assert!(!s.has_free_slot());
        // ...so a second own-prompt admission has nowhere to go.
        assert!(s.admit_prompt(&[2u32, 5], 2, 2).is_err());
        // And shared-prompt admissions queue rather than stealing the
        // reserved slot.
        s.admit(41, 3).unwrap();
        assert_eq!(s.queued_count(), 1);
        assert_eq!(s.prefilling_count(), 1);
        // Retiring the mid-prefill sequence abandons it (no tokens) and
        // hands the slot to the queue head.
        s.retire(p).unwrap();
        assert_eq!(s.prefilling_count(), 0);
        assert_eq!(s.queued_count(), 0);
        assert_eq!(s.active_count(), 2);
        let empty = s.finished().iter().find(|f| f.id == p).unwrap();
        assert!(empty.tokens.is_empty());
        drain(&mut s, &mut ctx, 8);
        assert_eq!(s.finished().len(), 3);
        s.release(&mut ctx);
    }

    #[test]
    fn single_token_prompt_budget_finishes_at_prefill_completion() {
        let (mut ctx, model) = setup();
        let mut s = DecodeSession::new(&mut ctx, &model, &[2u32, 10], 1, 32).unwrap();
        s.admit_prompt(&[2u32, 4, 5], 1, 8).unwrap();
        let c = s.prefill_step(&mut ctx, greedy).unwrap().unwrap();
        assert!(c.completed);
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.finished().len(), 1);
        assert_eq!(s.finished()[0].tokens.len(), 1);
        assert!(s.has_free_slot(), "slot returns immediately");
        assert!(s.prefill_step(&mut ctx, greedy).unwrap().is_none());
        s.release(&mut ctx);
    }

    #[test]
    fn prefill_chunks_accumulate_into_prefill_cost() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let model =
            Model::new(&mut ctx, ModelId::Qwen1_5B, DequantVariant::CoalescedLut, 1).unwrap();
        let mut s = DecodeSession::new(&mut ctx, &model, &[0u32; 8], 2, 256).unwrap();
        let base = s.prefill_cost().wall_secs();
        s.admit_prompt(&vec![0u32; 64], 4, 16).unwrap();
        let mut last = base;
        for _ in 0..4 {
            let c = s.prefill_step(&mut ctx, |_| 0).unwrap().unwrap();
            assert!(c.cost.wall_secs() > 0.0);
            let now = s.prefill_cost().wall_secs();
            assert!(now > last, "each chunk charges prefill cost");
            last = now;
        }
        assert_eq!(s.prefilling_count(), 0);
        assert_eq!(s.active_count(), 1);
        // The chunk stages expose a full layer walk for the overlap
        // scheduler to merge with a decode step's stages.
        s.step(&mut ctx, |_, _| 0).unwrap();
        let decode_st = s.last_step_stages().unwrap().clone();
        assert_eq!(decode_st.layers.len(), model.cfg.layers);
        s.release(&mut ctx);
    }

    #[test]
    fn preempt_resume_is_bit_identical_to_uninterrupted_decode() {
        // A sequence decoded 3 tokens, paused while a distractor churns
        // through its slot, then resumed (landing in a different slot)
        // must emit exactly the tokens of an uninterrupted run: the KV
        // snapshot/restore round-trip is bit-exact.
        let (mut ctx, model) = setup();
        let shared = [2u32, 10, 11];
        let own = [2u32, 7, 8, 9];
        let run = |ctx: &mut NpuContext, preempt_after: Option<usize>| -> Vec<u32> {
            let mut s = DecodeSession::new(ctx, &model, &shared, 2, 64).unwrap();
            let id = s.admit_prompt(&own, 8, own.len()).unwrap();
            while s.prefilling_count() > 0 {
                s.prefill_step(ctx, greedy).unwrap();
            }
            let mut paused: Option<PreemptedSeq> = None;
            let mut did_preempt = false;
            let mut steps = 0usize;
            let mut guard = 0usize;
            loop {
                guard += 1;
                assert!(guard < 64, "session failed to drain");
                if let Some(p) = &paused {
                    // Resume once the distractor has drained the slot.
                    if s.has_free_slot() {
                        assert_eq!(s.resume(p).unwrap(), id);
                        paused = None;
                    }
                }
                if s.active_count() == 0 && paused.is_none() {
                    break;
                }
                if s.active_count() > 0 {
                    s.step(ctx, |_, logits| greedy(logits)).unwrap();
                    steps += 1;
                }
                if preempt_after == Some(steps) && !did_preempt {
                    did_preempt = true;
                    let p = s.preempt(id).unwrap();
                    assert_eq!(p.emitted(), steps + 1);
                    assert!(p.kv_tokens() > own.len());
                    // A distractor occupies (and dirties) the freed slot
                    // while the victim is paused.
                    let d = s.admit(77, 3).unwrap();
                    s.step(ctx, |_, logits| greedy(logits)).unwrap();
                    assert!(s.finished().iter().all(|f| f.id != d));
                    paused = Some(p);
                }
            }
            let done = s.into_finished(ctx);
            done.iter().find(|f| f.id == id).unwrap().tokens.clone()
        };
        let uninterrupted = run(&mut ctx, None);
        let preempted = run(&mut ctx, Some(3));
        assert_eq!(uninterrupted.len(), 8);
        assert_eq!(uninterrupted, preempted);
    }

    #[test]
    fn preempt_frees_the_slot_without_touching_the_queue() {
        let (mut ctx, model) = setup();
        let mut s = DecodeSession::new(&mut ctx, &model, &[2u32, 10], 1, 32).unwrap();
        let a = s.admit(50, 6).unwrap();
        let b = s.admit(51, 4).unwrap();
        assert_eq!(s.queued_count(), 1);
        // Preempting does NOT promote the queued sequence: the slot is
        // reserved for the preempting caller.
        let p = s.preempt(a).unwrap();
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.queued_count(), 1);
        assert!(s.has_free_slot());
        // Only active decodes can be preempted.
        assert!(s.preempt(b).is_err());
        assert!(s.preempt(99).is_err());
        // Resume takes the slot back; the queued sequence keeps waiting.
        s.resume(&p).unwrap();
        assert_eq!(s.active_count(), 1);
        assert_eq!(s.queued_count(), 1);
        // With the slot occupied again, a second resume has nowhere to go.
        assert!(s.resume(&p).is_err());
        drain(&mut s, &mut ctx, 16);
        assert_eq!(s.finished().len(), 2);
        s.release(&mut ctx);
    }

    #[test]
    fn cost_only_session_accumulates_simulated_time() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let model =
            Model::new(&mut ctx, ModelId::Qwen1_5B, DequantVariant::CoalescedLut, 1).unwrap();
        let prompt = vec![0u32; 64];
        let mut s = DecodeSession::new(&mut ctx, &model, &prompt, 4, 4 * (64 + 8)).unwrap();
        for _ in 0..4 {
            s.admit(0, 3).unwrap();
        }
        while s.active_count() > 0 {
            s.step(&mut ctx, |_, logits| {
                assert!(logits.is_empty());
                0
            })
            .unwrap();
        }
        assert_eq!(s.steps(), 2);
        assert_eq!(s.decoded_tokens(), 8);
        assert!(s.decode_secs() > 0.0);
        assert!(s.decode_tokens_per_sec() > 0.0);
    }
}
