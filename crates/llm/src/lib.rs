//! Transformer inference substrate (llama.cpp analog) for the EuroSys '26
//! mobile-NPU test-time-scaling reproduction.
//!
//! Provides the model zoo the paper evaluates — Qwen 2.5 (1.5B/3B/7B) and
//! Llama 3.2 (1B/3B) with their *published* architectural dimensions — plus
//! a tiny functional configuration for bit-level testing. Real checkpoints
//! are unavailable (see DESIGN.md), so weights are seeded synthetic
//! Gaussians; throughput/latency/memory results depend only on shapes and
//! layouts, which are exact.
//!
//! - [`config`] — model architectures (the Figure 15 weight shapes fall out
//!   of these numbers).
//! - [`weights`] — synthetic quantized weights resident in simulated DDR
//!   (Q4_0 everywhere, Q8_0 for the FFN down projection, per Section 7.1),
//!   with dmabuf-style memory accounting (Figure 16).
//! - [`kv_cache`] — batched KV cache with a fixed context budget and
//!   slot reuse (reset/snapshot/restore) for continuous batching.
//! - [`model`] — the NPU forward pass: every matmul through
//!   [`htpops::gemm`], attention through the paper's FP16 FlashAttention,
//!   lm_head on the CPU (Section 7.2.2's deliberate placement).
//! - [`decode_session`] — continuous-batching decode (`admit` / `step` /
//!   `retire` over a shared prompt), the dynamic-batch API static QNN
//!   graphs cannot express.
//! - [`cpu_ref`] — f32 reference forward for validation.
//! - [`tokenizer`] — deterministic byte-level tokenizer for the synthetic
//!   math workloads.
//! - [`ppl`] — teacher-forced perplexity and logit-divergence measurement.

pub mod config;
pub mod cpu_ref;
pub mod decode_session;
pub mod kv_cache;
pub mod model;
pub mod overlap;
pub mod ppl;
pub mod tokenizer;
pub mod weights;

pub use config::{ModelConfig, ModelId};
pub use decode_session::{DecodeSession, FinishedSeq, PreemptedSeq, SeqId};
pub use kv_cache::{KvCache, KvSeqSnapshot};
pub use model::{DecodeOutput, LayerSchedule, Model, StepCost};
pub use overlap::{DispatchMode, LayerStage, StepStages};
pub use tokenizer::Tokenizer;
