//! Model architecture configurations.
//!
//! The five evaluation models use their *published* dimensions, which is
//! what makes the Figure 15 weight-matrix shapes (1536x8960, 2048x11008,
//! 3072x8192, ...) fall out exactly and what drives every latency and
//! memory result.

use serde::{Deserialize, Serialize};

/// The models evaluated in the paper (Section 7.1), plus a tiny functional
/// test model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// Llama 3.2 1B Instruct ("L1").
    Llama1B,
    /// Llama 3.2 3B Instruct ("L3").
    Llama3B,
    /// Qwen 2.5 1.5B Instruct ("Q1.5").
    Qwen1_5B,
    /// Qwen 2.5 3B Instruct ("Q3").
    Qwen3B,
    /// Qwen 2.5 7B Instruct ("Q7", performance-cost comparison only).
    Qwen7B,
    /// Qwen 2.5 0.5B Instruct ("Q0.5"): the draft model of the Section 9
    /// speculative-decoding pipeline. Not part of the paper's on-device
    /// evaluation set — it rides along with a target model, so it never
    /// appears in [`ModelId::on_device`].
    Qwen0_5B,
    /// Tiny synthetic model for functional tests and examples.
    Tiny,
}

impl ModelId {
    /// Short label used in the paper's figures ("QN"/"LN").
    pub fn label(self) -> &'static str {
        match self {
            ModelId::Llama1B => "L1",
            ModelId::Llama3B => "L3",
            ModelId::Qwen1_5B => "Q1.5",
            ModelId::Qwen3B => "Q3",
            ModelId::Qwen7B => "Q7",
            ModelId::Qwen0_5B => "Q0.5",
            ModelId::Tiny => "tiny",
        }
    }

    /// All deployable on-device models in paper order.
    pub fn on_device() -> Vec<ModelId> {
        vec![
            ModelId::Llama1B,
            ModelId::Llama3B,
            ModelId::Qwen1_5B,
            ModelId::Qwen3B,
        ]
    }
}

/// Architecture hyperparameters of one model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which model this is.
    pub id: ModelId,
    /// Human-readable name.
    pub name: &'static str,
    /// Approximate parameter count in billions (for reports).
    pub params_b: f64,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Query heads.
    pub heads: usize,
    /// KV heads (GQA).
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// Whether the output head shares the embedding matrix.
    pub tied_embeddings: bool,
}

impl ModelConfig {
    /// Configuration for a model id.
    pub fn for_id(id: ModelId) -> Self {
        match id {
            ModelId::Llama1B => ModelConfig {
                id,
                name: "Llama3.2-1B-Instruct",
                params_b: 1.24,
                hidden: 2048,
                layers: 16,
                heads: 32,
                kv_heads: 8,
                head_dim: 64,
                ffn: 8192,
                vocab: 128_256,
                rope_theta: 500_000.0,
                tied_embeddings: true,
            },
            ModelId::Llama3B => ModelConfig {
                id,
                name: "Llama3.2-3B-Instruct",
                params_b: 3.21,
                hidden: 3072,
                layers: 28,
                heads: 24,
                kv_heads: 8,
                head_dim: 128,
                ffn: 8192,
                vocab: 128_256,
                rope_theta: 500_000.0,
                tied_embeddings: true,
            },
            ModelId::Qwen1_5B => ModelConfig {
                id,
                name: "Qwen2.5-1.5B-Instruct",
                params_b: 1.54,
                hidden: 1536,
                layers: 28,
                heads: 12,
                kv_heads: 2,
                head_dim: 128,
                ffn: 8960,
                vocab: 151_936,
                rope_theta: 1_000_000.0,
                tied_embeddings: true,
            },
            ModelId::Qwen3B => ModelConfig {
                id,
                name: "Qwen2.5-3B-Instruct",
                params_b: 3.09,
                hidden: 2048,
                layers: 36,
                heads: 16,
                kv_heads: 2,
                head_dim: 128,
                ffn: 11_008,
                vocab: 151_936,
                rope_theta: 1_000_000.0,
                tied_embeddings: true,
            },
            ModelId::Qwen7B => ModelConfig {
                id,
                name: "Qwen2.5-7B-Instruct",
                params_b: 7.62,
                hidden: 3584,
                layers: 28,
                heads: 28,
                kv_heads: 4,
                head_dim: 128,
                ffn: 18_944,
                vocab: 152_064,
                rope_theta: 1_000_000.0,
                tied_embeddings: false,
            },
            ModelId::Qwen0_5B => ModelConfig {
                id,
                name: "Qwen2.5-0.5B-Instruct",
                params_b: 0.49,
                hidden: 896,
                layers: 24,
                heads: 14,
                kv_heads: 2,
                head_dim: 64,
                ffn: 4864,
                vocab: 151_936,
                rope_theta: 1_000_000.0,
                tied_embeddings: true,
            },
            ModelId::Tiny => ModelConfig {
                id,
                name: "tiny-test",
                params_b: 0.0004,
                hidden: 64,
                layers: 2,
                heads: 2,
                kv_heads: 1,
                head_dim: 32,
                ffn: 128,
                vocab: 256,
                rope_theta: 10_000.0,
                tied_embeddings: true,
            },
        }
    }

    /// Query heads per KV head (GQA group size).
    pub fn gqa_group(&self) -> usize {
        self.heads / self.kv_heads
    }

    /// Total query projection width (`heads * head_dim`).
    pub fn q_dim(&self) -> usize {
        self.heads * self.head_dim
    }

    /// Total KV projection width (`kv_heads * head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    /// NPU-resident weight bytes under the paper's deployment quantization
    /// (Q4_0 at 4.5 bpw everywhere, Q8_0 at 8.5 bpw for FFN down), per layer.
    pub fn npu_layer_weight_bytes(&self) -> u64 {
        let q4_elems = (self.hidden * self.q_dim())      // wq
            + 2 * (self.hidden * self.kv_dim())          // wk, wv
            + (self.q_dim() * self.hidden)               // wo
            + 2 * (self.hidden * self.ffn); // gate, up
        let q8_elems = self.ffn * self.hidden; // down
        (q4_elems as f64 * 4.5 / 8.0 + q8_elems as f64 * 8.5 / 8.0) as u64
    }

    /// Total NPU-resident weight bytes across all layers.
    pub fn npu_weight_bytes(&self) -> u64 {
        self.npu_layer_weight_bytes() * self.layers as u64
    }

    /// Approximate non-embedding parameter count, recovered from the
    /// deployed quantized byte footprint at the blended 4.5 bits/weight of
    /// the paper's deployment ([`Self::npu_weight_bytes`] · 8 / 4.5).
    ///
    /// Every analytic baseline scales from this one number: FLOP counts
    /// are `2 · float_params()` per token, and an FP16 deployment streams
    /// `2 · float_params()` weight bytes per decode step.
    pub fn float_params(&self) -> f64 {
        self.npu_weight_bytes() as f64 / 4.5 * 8.0
    }

    /// KV cache bytes of *one layer* for a total context budget of
    /// `budget` tokens (FP16 K and V rows). The cache is allocated one
    /// buffer per layer, which is what lets multi-session sharding
    /// colocate each layer's KV slice with that layer's weights.
    pub fn kv_cache_layer_bytes(&self, budget: usize) -> u64 {
        (2 * self.kv_dim() * budget * 2) as u64
    }

    /// KV cache bytes for a total context budget of `budget` tokens
    /// (FP16 K and V across all layers).
    pub fn kv_cache_bytes(&self, budget: usize) -> u64 {
        self.layers as u64 * self.kv_cache_layer_bytes(budget)
    }

    /// CPU-resident bytes: the lm_head/embedding matrix (kept on the CPU
    /// because the Hexagon session address space cannot hold the logits
    /// tensor, Section 7.2.2), stored Q8-like at ~1 byte/weight.
    pub fn cpu_lm_head_bytes(&self) -> u64 {
        (self.vocab * self.hidden) as u64
    }

    /// Approximate dmabuf (NPU shared memory) footprint at a context
    /// budget, reproducing the paper's reported 1056 MiB (1.5B) and
    /// 2090 MiB (3B) at 4096 tokens (Section 7.5).
    pub fn dmabuf_bytes(&self, budget: usize) -> u64 {
        // Weights + KV cache + activation/staging pool (~64 MiB).
        self.npu_weight_bytes() + self.kv_cache_bytes(budget) + 64 * 1024 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_15_matrix_shapes_fall_out() {
        let q15 = ModelConfig::for_id(ModelId::Qwen1_5B);
        assert_eq!(q15.q_dim(), 1536); // 1536x1536 Wq.
        assert_eq!(q15.ffn, 8960); // 1536x8960 / 8960x1536.
        let l1 = ModelConfig::for_id(ModelId::Llama1B);
        assert_eq!(l1.q_dim(), 2048); // 2048x2048.
        assert_eq!(l1.ffn, 8192); // 2048x8192 / 8192x2048.
        let q3 = ModelConfig::for_id(ModelId::Qwen3B);
        assert_eq!(q3.ffn, 11_008); // 2048x11008 / 11008x2048.
        let l3 = ModelConfig::for_id(ModelId::Llama3B);
        assert_eq!(l3.q_dim(), 3072); // 3072x3072 / 3072x8192.
    }

    #[test]
    fn parameter_counts_are_roughly_right() {
        for id in [ModelId::Llama1B, ModelId::Qwen1_5B, ModelId::Qwen3B] {
            let cfg = ModelConfig::for_id(id);
            // Rough parameter reconstruction: layers * (attn + ffn) + embed.
            let per_layer = cfg.hidden * cfg.q_dim()
                + 2 * cfg.hidden * cfg.kv_dim()
                + cfg.q_dim() * cfg.hidden
                + 3 * cfg.hidden * cfg.ffn;
            let embed = cfg.vocab * cfg.hidden;
            let total = (cfg.layers * per_layer + embed) as f64 / 1e9;
            assert!(
                (total - cfg.params_b).abs() / cfg.params_b < 0.25,
                "{}: reconstructed {total}B vs declared {}B",
                cfg.name,
                cfg.params_b
            );
        }
    }

    #[test]
    fn dmabuf_footprints_match_paper_section_7_5() {
        // Paper: 1056 MiB (Qwen2.5-1.5B) and 2090 MiB (Qwen2.5-3B) of
        // dmabuf at a 4096-token context budget.
        let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
        let q15 = ModelConfig::for_id(ModelId::Qwen1_5B).dmabuf_bytes(4096);
        let q3 = ModelConfig::for_id(ModelId::Qwen3B).dmabuf_bytes(4096);
        assert!(
            (mib(q15) - 1056.0).abs() < 160.0,
            "1.5B dmabuf {} MiB vs paper 1056",
            mib(q15)
        );
        assert!(
            (mib(q3) - 2090.0).abs() < 250.0,
            "3B dmabuf {} MiB vs paper 2090",
            mib(q3)
        );
    }

    #[test]
    fn gqa_groups() {
        assert_eq!(ModelConfig::for_id(ModelId::Qwen1_5B).gqa_group(), 6);
        assert_eq!(ModelConfig::for_id(ModelId::Llama1B).gqa_group(), 4);
        assert_eq!(ModelConfig::for_id(ModelId::Qwen7B).gqa_group(), 7);
    }

    #[test]
    fn model_over_2gib_exceeds_v73_session() {
        // The Figure 11 gate: 3B models cannot map on Snapdragon 8 Gen 2.
        let q3 = ModelConfig::for_id(ModelId::Qwen3B);
        assert!(q3.dmabuf_bytes(4096) > 2 * 1024 * 1024 * 1024);
        let q15 = ModelConfig::for_id(ModelId::Qwen1_5B);
        assert!(q15.dmabuf_bytes(4096) < 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn draft_model_is_a_fraction_of_its_target() {
        let q05 = ModelConfig::for_id(ModelId::Qwen0_5B);
        assert_eq!(q05.hidden % 32, 0);
        assert_eq!(q05.ffn % 32, 0);
        assert_eq!(q05.q_dim() % 32, 0);
        assert_eq!(q05.kv_dim() % 32, 0);
        // The draft rides alongside Qwen-1.5B as its target: its NPU
        // kernels must cost a small fraction of a target step.
        let q15 = ModelConfig::for_id(ModelId::Qwen1_5B);
        let ratio = q05.npu_weight_bytes() as f64 / q15.npu_weight_bytes() as f64;
        assert!(
            ratio > 0.15 && ratio < 0.4,
            "draft/target NPU weight ratio {ratio}"
        );
        // It is not one of the paper's deployable evaluation models.
        assert!(!ModelId::on_device().contains(&ModelId::Qwen0_5B));
    }

    #[test]
    fn tiny_model_is_tile_aligned() {
        let t = ModelConfig::for_id(ModelId::Tiny);
        assert_eq!(t.hidden % 32, 0);
        assert_eq!(t.ffn % 32, 0);
        assert_eq!(t.q_dim() % 32, 0);
        assert_eq!(t.kv_dim() % 32, 0);
    }
}
