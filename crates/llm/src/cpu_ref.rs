//! FP32 reference forward pass, used to validate the NPU path.
//!
//! Runs the same architecture with the same (dequantized) weights in plain
//! f32 — no tiles, no FP16, no LUTs — so any divergence in the NPU path
//! beyond FP16 rounding is a kernel bug. Also doubles as the "CPU backend"
//! the paper's runtime falls back to for operators not yet on the NPU.

use crate::config::ModelConfig;
use crate::weights::{LayerFloatWeights, ModelWeights};

fn rmsnorm_f32(x: &mut [f32], eps: f32) {
    let n = x.len() as f32;
    let ss: f32 = x.iter().map(|v| v * v).sum();
    let inv = 1.0 / (ss / n + eps).sqrt();
    for v in x.iter_mut() {
        *v *= inv;
    }
}

fn matmul_f32(x: &[f32], w: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let a = x[i * k + p];
            if a == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += a * w[p * n + j];
            }
        }
    }
    out
}

fn rope_f32(x: &mut [f32], pos: usize, theta_base: f32) {
    let d = x.len();
    let half = d / 2;
    for i in 0..half {
        let freq = theta_base.powf(-2.0 * (i as f32) / d as f32);
        let (sin, cos) = (pos as f32 * freq).sin_cos();
        let (a, b) = (x[i], x[i + half]);
        x[i] = a * cos - b * sin;
        x[i + half] = a * sin + b * cos;
    }
}

/// Full-sequence reference forward: returns logits `[len, vocab]` with
/// causal attention, matching the NPU path's architecture exactly.
///
/// # Panics
///
/// Panics if the weights lack float copies (cost-only builds).
pub fn forward_reference(cfg: &ModelConfig, weights: &ModelWeights, tokens: &[u32]) -> Vec<f32> {
    assert!(
        !weights.float_layers.is_empty(),
        "reference forward requires functional-mode weights"
    );
    forward_float(cfg, &weights.float_layers, &weights.embed, tokens)
}

/// Reference forward over explicit float layers and embedding — used by
/// the quantization-impact experiments, which substitute differently
/// quantized (then dequantized) weight variants.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn forward_float(
    cfg: &ModelConfig,
    float_layers: &[LayerFloatWeights],
    embed: &[f32],
    tokens: &[u32],
) -> Vec<f32> {
    let len = tokens.len();
    let (hidden, q_dim, kv_dim, d) = (cfg.hidden, cfg.q_dim(), cfg.kv_dim(), cfg.head_dim);
    let g = cfg.gqa_group();

    // Embedding.
    let mut x = vec![0.0f32; len * hidden];
    for (i, &t) in tokens.iter().enumerate() {
        let t = t as usize;
        x[i * hidden..(i + 1) * hidden].copy_from_slice(&embed[t * hidden..(t + 1) * hidden]);
    }

    for lw in float_layers {
        // Attention block.
        let mut normed = x.clone();
        for r in 0..len {
            rmsnorm_f32(&mut normed[r * hidden..(r + 1) * hidden], 1e-5);
        }
        let mut q = matmul_f32(&normed, &lw.wq, len, hidden, q_dim);
        let mut k = matmul_f32(&normed, &lw.wk, len, hidden, kv_dim);
        let v = matmul_f32(&normed, &lw.wv, len, hidden, kv_dim);
        for r in 0..len {
            for h in 0..cfg.heads {
                rope_f32(
                    &mut q[r * q_dim + h * d..r * q_dim + (h + 1) * d],
                    r,
                    cfg.rope_theta,
                );
            }
            for h in 0..cfg.kv_heads {
                rope_f32(
                    &mut k[r * kv_dim + h * d..r * kv_dim + (h + 1) * d],
                    r,
                    cfg.rope_theta,
                );
            }
        }
        // Causal attention.
        let scale = 1.0 / (d as f32).sqrt();
        let mut attn = vec![0.0f32; len * q_dim];
        for qh in 0..cfg.heads {
            let kvh = qh / g;
            for i in 0..len {
                let mut scores = vec![0.0f32; i + 1];
                for (j, sj) in scores.iter_mut().enumerate() {
                    let mut dot = 0.0;
                    for p in 0..d {
                        dot += q[i * q_dim + qh * d + p] * k[j * kv_dim + kvh * d + p];
                    }
                    *sj = dot * scale;
                }
                let m = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for s in scores.iter_mut() {
                    *s = (*s - m).exp();
                    sum += *s;
                }
                for (j, &w) in scores.iter().enumerate() {
                    let wgt = w / sum;
                    for p in 0..d {
                        attn[i * q_dim + qh * d + p] += wgt * v[j * kv_dim + kvh * d + p];
                    }
                }
            }
        }
        let o = matmul_f32(&attn, &lw.wo, len, q_dim, hidden);
        for (xi, oi) in x.iter_mut().zip(&o) {
            *xi += oi;
        }

        // FFN block.
        let mut ffn_in = x.clone();
        for r in 0..len {
            rmsnorm_f32(&mut ffn_in[r * hidden..(r + 1) * hidden], 1e-5);
        }
        let mut gate = matmul_f32(&ffn_in, &lw.w_gate, len, hidden, cfg.ffn);
        let up = matmul_f32(&ffn_in, &lw.w_up, len, hidden, cfg.ffn);
        for (gv, uv) in gate.iter_mut().zip(&up) {
            let s = *gv / (1.0 + (-*gv).exp());
            *gv = s * uv;
        }
        let down = matmul_f32(&gate, &lw.w_down, len, cfg.ffn, hidden);
        for (xi, di) in x.iter_mut().zip(&down) {
            *xi += di;
        }
    }

    // Final norm + logits for every position.
    for r in 0..len {
        rmsnorm_f32(&mut x[r * hidden..(r + 1) * hidden], 1e-5);
    }
    let mut logits = vec![0.0f32; len * cfg.vocab];
    for r in 0..len {
        for vtok in 0..cfg.vocab {
            let mut acc = 0.0;
            for h in 0..hidden {
                acc += x[r * hidden + h] * embed[vtok * hidden + h];
            }
            logits[r * cfg.vocab + vtok] = acc;
        }
    }
    logits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelId;
    use crate::weights::ModelWeights;
    use hexsim::prelude::*;
    use htpops::gemm::DequantVariant;

    #[test]
    fn reference_is_deterministic_and_causal() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let cfg = ModelConfig::for_id(ModelId::Tiny);
        let w = ModelWeights::build(&mut ctx, &cfg, DequantVariant::CoalescedLut, 9).unwrap();
        let a = forward_reference(&cfg, &w, &[10, 20, 30]);
        let b = forward_reference(&cfg, &w, &[10, 20, 30]);
        assert_eq!(a, b);
        // Causality: changing a later token must not affect earlier logits.
        let c = forward_reference(&cfg, &w, &[10, 20, 99]);
        let vocab = cfg.vocab;
        assert_eq!(&a[..vocab], &c[..vocab]);
        assert_eq!(&a[vocab..2 * vocab], &c[vocab..2 * vocab]);
        assert_ne!(&a[2 * vocab..], &c[2 * vocab..]);
    }
}
