//! Batched KV cache with a fixed context budget.
//!
//! The runtime allocates the cache in NPU shared memory up front at a fixed
//! token budget (the paper reports constant dmabuf totals at a 4096-token
//! budget, Section 7.5), so capacity is reserved at construction and
//! appends fail past the budget. Layout is `[layer][seq][pos][kv_dim]` with
//! K and V separated; per-head contiguous `[nkv, head_dim]` views are
//! materialized for the FlashAttention kernel.

use hexsim::f16::F16;
use hexsim::prelude::*;

use crate::config::ModelConfig;

/// Immutable copy of one sequence's KV rows — the shared-prompt state a
/// continuous-batching scheduler re-installs into freed slots when it
/// admits a queued sequence (see `decode_session`).
#[derive(Clone, Debug, Default)]
pub struct KvSeqSnapshot {
    /// Tokens captured.
    len: usize,
    /// Per-layer flat `[len, kv_dim]` K rows (empty in cost-only mode).
    k: Vec<Vec<F16>>,
    /// Same shape for values.
    v: Vec<Vec<F16>>,
}

impl KvSeqSnapshot {
    /// Number of tokens the snapshot carries.
    pub fn tokens(&self) -> usize {
        self.len
    }
}

/// Batched per-layer KV storage.
pub struct KvCache {
    layers: usize,
    kv_heads: usize,
    head_dim: usize,
    batch: usize,
    budget: usize,
    /// `k[layer][seq]`: flat `[len, kv_dim]` rows.
    k: Vec<Vec<Vec<F16>>>,
    /// Same shape for values.
    v: Vec<Vec<Vec<F16>>>,
    /// Tokens stored per sequence.
    len: Vec<usize>,
    /// Per-layer DDR residency handles (shape accounting; one buffer per
    /// layer so multi-session sharding can place each layer's KV slice in
    /// the session holding that layer's weights). Release with
    /// [`KvCache::free`].
    bufs: Vec<DdrBuffer>,
}

impl KvCache {
    /// Allocates a cache for `batch` sequences with a *total* token budget
    /// shared across the batch (prompt + completions), reserving the DDR
    /// footprint immediately — one buffer per layer.
    pub fn new(
        ctx: &mut NpuContext,
        cfg: &ModelConfig,
        batch: usize,
        budget: usize,
    ) -> SimResult<Self> {
        let layer_bytes = cfg.kv_cache_layer_bytes(budget);
        let mut bufs = Vec::with_capacity(cfg.layers);
        for _ in 0..cfg.layers {
            match ctx.ddr_alloc(layer_bytes) {
                Ok(buf) => bufs.push(buf),
                Err(e) => {
                    // Unwind the partial reservation so a failed open
                    // cannot leak session VA space.
                    for buf in bufs {
                        ctx.ddr_free(buf);
                    }
                    return Err(e);
                }
            }
        }
        let functional = ctx.mode == ExecMode::Functional;
        let (k, v) = if functional {
            let mk = || {
                (0..cfg.layers)
                    .map(|_| (0..batch).map(|_| Vec::new()).collect())
                    .collect()
            };
            (mk(), mk())
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(KvCache {
            layers: cfg.layers,
            kv_heads: cfg.kv_heads,
            head_dim: cfg.head_dim,
            batch,
            budget,
            k,
            v,
            len: vec![0; batch],
            bufs,
        })
    }

    /// Returns the cache's DDR reservation (every per-layer buffer) to
    /// the context. The simulated DDR mapping is owned by the context,
    /// not dropped with the cache, so abandoning a cache without calling
    /// this leaks session VA space.
    pub fn free(&self, ctx: &mut NpuContext) {
        for &buf in &self.bufs {
            ctx.ddr_free(buf);
        }
    }

    /// Number of sequences.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Tokens stored for a sequence.
    pub fn len(&self, seq: usize) -> usize {
        self.len[seq]
    }

    /// Returns `true` if no tokens are stored for the sequence.
    pub fn is_empty(&self, seq: usize) -> bool {
        self.len[seq] == 0
    }

    /// Total tokens across the batch.
    pub fn total_tokens(&self) -> usize {
        self.len.iter().sum()
    }

    /// Appends one position's K/V rows (`[kv_dim]` each) for a sequence at
    /// a layer. Length bookkeeping advances when `layer == 0`.
    ///
    /// Returns an error when the shared budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches in functional mode.
    pub fn append(
        &mut self,
        layer: usize,
        seq: usize,
        k_row: &[F16],
        v_row: &[F16],
        functional: bool,
    ) -> SimResult<()> {
        if layer == 0 {
            if self.total_tokens() + 1 > self.budget {
                return Err(SimError::Unsupported {
                    reason: format!("KV budget of {} tokens exhausted", self.budget),
                });
            }
            self.len[seq] += 1;
        }
        if functional {
            let kv_dim = self.kv_heads * self.head_dim;
            assert_eq!(k_row.len(), kv_dim);
            assert_eq!(v_row.len(), kv_dim);
            self.k[layer][seq].extend_from_slice(k_row);
            self.v[layer][seq].extend_from_slice(v_row);
        }
        Ok(())
    }

    /// Cost-only helper: marks `n` tokens as present for a sequence
    /// without storing data (used by latency sweeps to set up a context
    /// length directly).
    ///
    /// # Panics
    ///
    /// Panics if the fill would exceed the budget or the cache is
    /// functional (data-carrying caches must use `append`).
    pub fn fast_fill(&mut self, seq: usize, n: usize) {
        assert!(self.k.is_empty(), "fast_fill is for cost-only caches");
        let others: usize = self
            .len
            .iter()
            .enumerate()
            .filter(|(s, _)| *s != seq)
            .map(|(_, l)| l)
            .sum();
        assert!(others + n <= self.budget, "fast_fill exceeds KV budget");
        self.len[seq] = n;
    }

    /// Clears one sequence's KV and returns its tokens to the shared
    /// budget. This is the slot-reuse primitive behind continuous
    /// batching: a trajectory that finishes early frees its slot so a
    /// queued sample can be admitted in its place.
    pub fn reset_seq(&mut self, seq: usize) {
        self.len[seq] = 0;
        if !self.k.is_empty() {
            for layer in 0..self.layers {
                self.k[layer][seq].clear();
                self.v[layer][seq].clear();
            }
        }
    }

    /// Truncates one sequence back to `new_len` tokens, returning the
    /// discarded tail to the shared budget. This is the speculative-decode
    /// rollback primitive: a verify pass appends `k+1` drafted positions,
    /// and the rejected suffix is dropped in place instead of rebuilding
    /// the cache from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `new_len` exceeds the sequence's current length.
    pub fn truncate_seq(&mut self, seq: usize, new_len: usize) {
        assert!(
            new_len <= self.len[seq],
            "truncate_seq({new_len}) past current length {}",
            self.len[seq]
        );
        self.len[seq] = new_len;
        if !self.k.is_empty() {
            let kv_dim = self.kv_heads * self.head_dim;
            for layer in 0..self.layers {
                self.k[layer][seq].truncate(new_len * kv_dim);
                self.v[layer][seq].truncate(new_len * kv_dim);
            }
        }
    }

    /// Captures one sequence's KV rows (typically the shared prompt after
    /// prefill) so they can be re-installed into freed slots later.
    pub fn snapshot_seq(&self, seq: usize) -> KvSeqSnapshot {
        let functional = !self.k.is_empty();
        KvSeqSnapshot {
            len: self.len[seq],
            k: if functional {
                (0..self.layers).map(|l| self.k[l][seq].clone()).collect()
            } else {
                Vec::new()
            },
            v: if functional {
                (0..self.layers).map(|l| self.v[l][seq].clone()).collect()
            } else {
                Vec::new()
            },
        }
    }

    /// Replaces one sequence's KV with a snapshot (admission of a new
    /// sequence into a freed slot). Returns an error when the shared
    /// budget cannot absorb the snapshot's tokens.
    pub fn restore_seq(&mut self, seq: usize, snap: &KvSeqSnapshot) -> SimResult<()> {
        let others: usize = self.total_tokens() - self.len[seq];
        if others + snap.len > self.budget {
            return Err(SimError::Unsupported {
                reason: format!("KV budget of {} tokens exhausted", self.budget),
            });
        }
        self.len[seq] = snap.len;
        if !self.k.is_empty() {
            assert_eq!(
                snap.k.len(),
                self.layers,
                "functional cache needs a functional snapshot"
            );
            for layer in 0..self.layers {
                self.k[layer][seq] = snap.k[layer].clone();
                self.v[layer][seq] = snap.v[layer].clone();
            }
        }
        Ok(())
    }

    /// Copies sequence 0's cache into every other sequence (prompt
    /// broadcast after a shared prefill; test-time scaling fans one prompt
    /// out to N samples).
    pub fn broadcast_prompt(&mut self, functional: bool) {
        let n0 = self.len[0];
        for s in 1..self.batch {
            self.len[s] = n0;
        }
        if functional {
            for layer in 0..self.layers {
                let (k0, v0) = (self.k[layer][0].clone(), self.v[layer][0].clone());
                for s in 1..self.batch {
                    self.k[layer][s] = k0.clone();
                    self.v[layer][s] = v0.clone();
                }
            }
        }
    }

    /// Materializes contiguous `[nkv, head_dim]` K and V matrices for one
    /// KV head of one sequence at one layer (the FlashAttention input
    /// view). Functional mode only.
    pub fn head_view(&self, layer: usize, seq: usize, head: usize) -> (Vec<F16>, Vec<F16>) {
        let kv_dim = self.kv_heads * self.head_dim;
        let n = self.len[seq];
        let mut k_out = Vec::with_capacity(n * self.head_dim);
        let mut v_out = Vec::with_capacity(n * self.head_dim);
        for pos in 0..n {
            let base = pos * kv_dim + head * self.head_dim;
            k_out.extend_from_slice(&self.k[layer][seq][base..base + self.head_dim]);
            v_out.extend_from_slice(&self.v[layer][seq][base..base + self.head_dim]);
        }
        (k_out, v_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelId};

    fn setup(batch: usize, budget: usize) -> (NpuContext, KvCache, ModelConfig) {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let cfg = ModelConfig::for_id(ModelId::Tiny);
        let cache = KvCache::new(&mut ctx, &cfg, batch, budget).unwrap();
        (ctx, cache, cfg)
    }

    fn row(cfg: &ModelConfig, tag: f32) -> Vec<F16> {
        (0..cfg.kv_dim())
            .map(|i| F16::from_f32(tag + i as f32 * 0.01))
            .collect()
    }

    #[test]
    fn append_and_view() {
        let (_ctx, mut cache, cfg) = setup(2, 64);
        for layer in 0..cfg.layers {
            cache
                .append(layer, 0, &row(&cfg, 1.0), &row(&cfg, 2.0), true)
                .unwrap();
        }
        assert_eq!(cache.len(0), 1);
        assert_eq!(cache.len(1), 0);
        let (k, v) = cache.head_view(0, 0, 0);
        assert_eq!(k.len(), cfg.head_dim);
        assert_eq!(k[0].to_f32(), 1.0);
        assert_eq!(v[0].to_f32(), 2.0);
    }

    #[test]
    fn budget_enforced_across_batch() {
        let (_ctx, mut cache, cfg) = setup(2, 3);
        for seq_tok in [(0, 0), (1, 0), (0, 1)] {
            let _ = seq_tok;
        }
        cache
            .append(0, 0, &row(&cfg, 0.0), &row(&cfg, 0.0), true)
            .unwrap();
        cache
            .append(0, 1, &row(&cfg, 0.0), &row(&cfg, 0.0), true)
            .unwrap();
        cache
            .append(0, 0, &row(&cfg, 0.0), &row(&cfg, 0.0), true)
            .unwrap();
        let err = cache
            .append(0, 1, &row(&cfg, 0.0), &row(&cfg, 0.0), true)
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported { .. }));
    }

    #[test]
    fn broadcast_prompt_copies_seq0() {
        let (_ctx, mut cache, cfg) = setup(3, 64);
        for layer in 0..cfg.layers {
            cache
                .append(layer, 0, &row(&cfg, 5.0), &row(&cfg, 6.0), true)
                .unwrap();
        }
        cache.broadcast_prompt(true);
        for s in 0..3 {
            assert_eq!(cache.len(s), 1);
            let (k, _) = cache.head_view(1, s, 0);
            assert_eq!(k[0].to_f32(), 5.0);
        }
    }

    #[test]
    fn reset_restore_reuses_slots_within_budget() {
        // Budget 4: a 2-token prompt fits twice, not three times — unless
        // a slot is reset in between (the continuous-batching invariant).
        let (_ctx, mut cache, cfg) = setup(3, 4);
        for layer in 0..cfg.layers {
            cache
                .append(layer, 0, &row(&cfg, 1.0), &row(&cfg, 2.0), true)
                .unwrap();
            cache
                .append(layer, 0, &row(&cfg, 3.0), &row(&cfg, 4.0), true)
                .unwrap();
        }
        let snap = cache.snapshot_seq(0);
        assert_eq!(snap.tokens(), 2);
        cache.restore_seq(1, &snap).unwrap();
        let err = cache.restore_seq(2, &snap).unwrap_err();
        assert!(matches!(err, SimError::Unsupported { .. }));
        // Retiring slot 0 returns its tokens; slot 2 can now be admitted.
        cache.reset_seq(0);
        assert_eq!(cache.len(0), 0);
        cache.restore_seq(2, &snap).unwrap();
        let (k, v) = cache.head_view(0, 2, 0);
        assert_eq!(k[0].to_f32(), 1.0);
        assert_eq!(v[0].to_f32(), 2.0);
        assert_eq!(cache.total_tokens(), 4);
    }

    #[test]
    fn truncate_seq_drops_the_rejected_tail_in_place() {
        let (_ctx, mut cache, cfg) = setup(2, 8);
        for tag in 0..4 {
            for layer in 0..cfg.layers {
                cache
                    .append(
                        layer,
                        0,
                        &row(&cfg, tag as f32),
                        &row(&cfg, -(tag as f32)),
                        true,
                    )
                    .unwrap();
            }
        }
        cache.truncate_seq(0, 2);
        assert_eq!(cache.len(0), 2);
        assert_eq!(cache.total_tokens(), 2);
        let (k, _) = cache.head_view(0, 0, 0);
        assert_eq!(k.len(), 2 * cfg.head_dim);
        assert_eq!(k[cfg.head_dim].to_f32(), 1.0);
        // The freed tail is re-appendable: budget 8 absorbs 6 more rows.
        for _ in 0..6 {
            for layer in 0..cfg.layers {
                cache
                    .append(layer, 0, &row(&cfg, 9.0), &row(&cfg, 9.0), true)
                    .unwrap();
            }
        }
        assert_eq!(cache.len(0), 8);
        // Truncating to the current length is a no-op.
        cache.truncate_seq(0, 8);
        assert_eq!(cache.len(0), 8);
    }

    #[test]
    #[should_panic(expected = "truncate_seq")]
    fn truncate_seq_past_length_panics() {
        let (_ctx, mut cache, _cfg) = setup(1, 8);
        cache.truncate_seq(0, 1);
    }

    #[test]
    fn ddr_footprint_matches_config() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let cfg = ModelConfig::for_id(ModelId::Qwen1_5B);
        let before = ctx.ddr_mapped_bytes();
        let _cache = KvCache::new(&mut ctx, &cfg, 16, 4096).unwrap();
        let delta = ctx.ddr_mapped_bytes() - before;
        assert_eq!(delta, cfg.kv_cache_bytes(4096));
    }

    #[test]
    fn head_views_are_head_disjoint() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let mut cfg = ModelConfig::for_id(ModelId::Tiny);
        cfg.kv_heads = 2;
        cfg.heads = 4;
        let mut cache = KvCache::new(&mut ctx, &cfg, 1, 8).unwrap();
        let mut k_row = vec![F16::ZERO; cfg.kv_dim()];
        for (i, x) in k_row.iter_mut().enumerate() {
            *x = F16::from_f32(i as f32);
        }
        cache.append(0, 0, &k_row, &k_row, true).unwrap();
        let (k0, _) = cache.head_view(0, 0, 0);
        let (k1, _) = cache.head_view(0, 0, 1);
        assert_eq!(k0[0].to_f32(), 0.0);
        assert_eq!(k1[0].to_f32(), cfg.head_dim as f32);
    }
}
