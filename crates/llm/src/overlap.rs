//! Overlap-aware step scheduling: the event-timeline view of a decode or
//! prefill step (paper Section 7.2.2).
//!
//! The serial cost model sums every stage of a step —
//! `StepCost::wall_secs()` is NPU kernels + CPU work + session switches —
//! so every CPU microsecond and every 30 µs session switch lands on the
//! critical path. The paper's runtime pipelines instead: the CPU
//! lm_head/sampling of token *t* runs while the NPU computes the first
//! layers of token *t+1*, command submission for layer *N+1* rides the
//! double-buffered ring while layer *N* executes, and a session switch
//! overlaps the previous shard's tail kernels. This module reproduces that
//! schedule on [`hexsim::timeline::Timeline`] and reports its critical
//! path as [`crate::model::StepCost::overlapped_secs`].
//!
//! # Stage graph
//!
//! A step is recorded as [`StepStages`]: a CPU embedding stage, one
//! [`LayerStage`] per transformer layer (NPU kernel seconds plus command
//! dispatch seconds, with an optional session switch before the layer), a
//! final-norm NPU stage, and the CPU lm_head/sampling tail. The schedule
//! places these on four lanes:
//!
//! ```text
//! lane        iteration t-1                iteration t
//! CPU       ──[head t-2|embed t-1]──────[head t-1|embed t]──────── ...
//!                      \ first rows              \ first rows
//! NPU       ────────────[L0][L1]..[Ln][norm]──────[L0][L1]... ──── ...
//! DISPATCH  ──[d0][d1]..[dn]───[d0][d1]..            (ring depth 2)
//! SWITCH    ─────────[sw]───────────[wrap]─────────[sw]──────────── ...
//! DMA       ──[fetch Lj]──[fetch Lk]──....   (weight streaming only)
//! DRAFT     ──[draft round t]─────────[draft round t+1]──   (spec decode)
//! ```
//!
//! # The DRAFT lane: speculative decoding
//!
//! Speculative decoding adds a second, smaller model that proposes the
//! next `k` tokens while the target verifies the previous `k+1` in one
//! batched pass. The draft's *CPU* half (embedding, lm_head rows,
//! proposal argmax) runs on its own worker — [`lane::DRAFT`] — gated on
//! the first rows of the verify's CPU block (the accept decision streams
//! out row by row) and on the draft's own previous round
//! ([`StepStages::draft_cpu_secs`]). The draft's *NPU* half shares
//! [`lane::NPU`] with the target: submitted after the verify walk's final
//! norm, it queues behind the verify kernels in lane order
//! ([`StepStages::draft_npu_secs`]), because there is one physical
//! accelerator. The next iteration's first layer depends on the draft
//! round (its proposals are the verify batch), so under
//! [`DispatchMode::Overlapped`] the steady-state period charges verify
//! kernels plus only the draft's NPU share — the draft CPU work hides
//! whenever the verify walk is longer, which is exactly the llm.npu-style
//! win the paper's Section 9 rides. Both fields 0 (plain decode) submit
//! nothing and build the exact pre-speculation task graph.
//!
//! Dependency edges (finish-to-start):
//!
//! - layer 0 of step *t* waits for the **first rows** of the CPU block
//!   (lm_head of *t-1* + embedding of *t*, streamed row by row): at batch
//!   *b* that is `1/b` of the block, so the CPU tail hides behind NPU
//!   compute once the batch is large (at `b = 1` the dependency is the
//!   whole block and the CPU stays on the critical path, matching the
//!   paper's batch-1 observation);
//! - the **final norm** of step *t* is the full-batch barrier: row chunks
//!   stream through the layer walk as the CPU emits them, but the final
//!   norm and the lm_head behind it need every row, so they wait for the
//!   rest of the CPU block — the pipeline never runs more than one step
//!   ahead;
//! - dispatch of layer *i* waits for layer *i-2* (a depth-2 command ring:
//!   commands for layer *i* are submitted while layer *i-1* executes);
//! - a session switch waits only for the previous shard's **commands** to
//!   be queued (dispatch of the boundary's predecessor), so it runs while
//!   the NPU drains that shard's tail kernels; the first layer of the new
//!   shard waits for the switch;
//! - the wrap-around switch (back to shard 0) overlaps the CPU tail.
//!
//! # The DMA lane: cross-layer weight prefetch
//!
//! There are two distinct classes of DMA traffic. *Intra-kernel* DDR↔TCM
//! streaming (activations, resident weight tiles) already overlaps compute
//! inside each kernel via the phase model ([`hexsim::cost`] — phase wall
//! time is the max over engines), so a layer's `npu_secs` is the
//! post-overlap kernel wall time and scheduling that traffic again would
//! double count. *Cross-layer weight streaming* is new with the hot/cold
//! hierarchy: a cold layer's weights live in a DDR staging region and must
//! be fetched into the double-buffered session window before the layer's
//! kernels can run. That fetch is a whole-layer-sized transfer that the
//! phase model never saw, so it gets its own [`lane::DMA`] lane here:
//!
//! - a streamed layer records [`LayerStage::weight_fetch_secs`] > 0, and
//!   its fetch task gets a finish-to-start edge **into the layer's NPU
//!   kernels** — compute cannot start before its weights arrived;
//! - fetches serialize on the DMA lane (one streaming engine) and the
//!   fetch for the *k*-th streamed layer waits for the compute of streamed
//!   layer *k−2* — the double-buffered window has two slots, so a fetch
//!   may run at most two streamed layers ahead of consumption;
//! - resident layers submit **no** DMA task at all, so plans without
//!   streaming build the exact task graph they built before the lane
//!   existed, and every pinned golden number reproduces.
//!
//! Under [`DispatchMode::Overlapped`] the steady-state period therefore
//! charges only *exposed* DMA time: fetches that fit under the previous
//! layers' compute vanish from the critical path, and the period degrades
//! to the DMA-lane occupancy only when streaming is bandwidth-bound.
//! Serial mode pays every fetch in full ([`StepStages::serial_secs`]).
//!
//! Every path through one iteration of the graph visits each stage at most
//! once, so the steady-state period can never exceed the serial sum; the
//! golden tests pin `overlapped <= serial` and `overlapped == serial` when
//! overlap is disabled (the [`DispatchMode::Serial`] default keeps every
//! pre-existing number bit-identical).

use hexsim::timeline::{TaskId, Timeline};

/// How the runtime composes a step's stages in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Historical additive accounting: every stage serializes
    /// (`overlapped_secs == wall_secs()`). The default; reproduces every
    /// pre-overlap number bit-for-bit.
    #[default]
    Serial,
    /// Event-timeline accounting: `overlapped_secs` is the critical path
    /// of the pipelined schedule described in the module docs.
    Overlapped,
}

/// Lane indices of the step schedule.
pub mod lane {
    /// Host CPU worker (embedding, lm_head, sampling).
    pub const CPU: usize = 0;
    /// NPU compute (HVX/HMX kernel wall time, DMA already folded in).
    pub const NPU: usize = 1;
    /// CPU-side command dispatch thread feeding the ring.
    pub const DISPATCH: usize = 2;
    /// Session-switch lane (FastRPC handle swap + ring cache maintenance).
    pub const SWITCH: usize = 3;
    /// Weight-streaming DMA lane: whole-layer fetches from the DDR staging
    /// region into the double-buffered session window (cold layers only;
    /// resident plans leave this lane empty).
    pub const DMA: usize = 4;
    /// Draft-model host lane (speculative decoding only): the CPU side of
    /// the next speculation round — draft embedding lookups, draft lm_head
    /// rows and proposal argmax — runs on its own worker thread while the
    /// target's verify kernels occupy the NPU. The draft's *NPU* kernels
    /// are not a separate lane: they share [`NPU`] with the target
    /// and serialize behind the verify pass in submission order, because
    /// there is one physical accelerator. Plain decode leaves this lane
    /// empty.
    pub const DRAFT: usize = 5;
    /// Number of lanes.
    pub const COUNT: usize = 6;
}

/// One transformer layer's contribution to a step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LayerStage {
    /// NPU kernel wall seconds (GEMMs + attention + misc, DMA overlap
    /// already composed at phase level; dispatch excluded).
    pub npu_secs: f64,
    /// Command submission overhead for the layer's ops (ring writes,
    /// cache maintenance, completion sync).
    pub dispatch_secs: f64,
    /// Whether a session switch precedes this layer (shard boundary).
    pub switch_before: bool,
    /// Seconds to stream this layer's weights from the DDR staging region
    /// into the session window (0 for resident layers — no DMA task is
    /// submitted and the task graph is unchanged).
    pub weight_fetch_secs: f64,
}

/// The recorded stage breakdown of one forward step — the input to the
/// overlap scheduler, captured by `Model` on every step in both execution
/// modes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepStages {
    /// CPU embedding-lookup seconds at the head of the step.
    pub cpu_embed_secs: f64,
    /// Per-layer stages in walk order.
    pub layers: Vec<LayerStage>,
    /// Final RMSNorm on the NPU after the last layer.
    pub final_npu_secs: f64,
    /// CPU lm_head + sampling seconds at the tail of the step.
    pub cpu_head_secs: f64,
    /// Seconds per session switch (0 when single-session).
    pub switch_secs: f64,
    /// Whether a wrap-around switch returns dispatch to the first shard
    /// after the walk.
    pub wrap_switch: bool,
    /// Decode batch size (rows); controls how much of the CPU block the
    /// next step's first layer must wait for.
    pub batch: usize,
    /// CPU seconds of the *draft model's* next speculation round
    /// (speculative decoding only; 0 for plain decode). Runs on
    /// [`lane::DRAFT`], so it hides behind the target's verify kernels
    /// whenever the draft round is cheaper than the verify walk.
    pub draft_cpu_secs: f64,
    /// NPU kernel seconds of the draft's next speculation round
    /// (speculative decoding only; 0 for plain decode). Shares
    /// [`lane::NPU`] with the target and serializes behind the verify
    /// pass — the exposed part of the draft round under overlap.
    pub draft_npu_secs: f64,
}

impl StepStages {
    /// The serial (additive) wall time of the recorded stages — the same
    /// quantity as `StepCost::wall_secs()`, up to float association.
    pub fn serial_secs(&self) -> f64 {
        let mut total = self.cpu_embed_secs
            + self.final_npu_secs
            + self.cpu_head_secs
            + self.draft_cpu_secs
            + self.draft_npu_secs;
        let mut switches = usize::from(self.wrap_switch);
        for l in &self.layers {
            total += l.npu_secs + l.dispatch_secs + l.weight_fetch_secs;
            switches += usize::from(l.switch_before);
        }
        total + switches as f64 * self.switch_secs
    }

    /// The same step re-priced at a DVFS clock multiplier: every
    /// rate-derived duration (CPU blocks, NPU kernels, dispatch, weight
    /// fetches, the final norm) dilates by `1/mult`, mirroring
    /// [`hexsim::device::DeviceProfile::at_clock`] where every rate constant
    /// scales by `mult`. The per-switch seconds stay fixed — a FastRPC
    /// handle swap is host-side latency, not DVFS-domain compute — so a
    /// sharded step under throttle is *not* a pure `1/mult` dilation: the
    /// switches grow relatively cheaper, exactly as they do when the
    /// scaled device is measured from scratch.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < mult <= 1`.
    pub fn at_clock(&self, mult: f64) -> StepStages {
        assert!(
            mult > 0.0 && mult <= 1.0,
            "clock multiplier {mult} outside (0, 1]"
        );
        StepStages {
            cpu_embed_secs: self.cpu_embed_secs / mult,
            layers: self
                .layers
                .iter()
                .map(|l| LayerStage {
                    npu_secs: l.npu_secs / mult,
                    dispatch_secs: l.dispatch_secs / mult,
                    switch_before: l.switch_before,
                    weight_fetch_secs: l.weight_fetch_secs / mult,
                })
                .collect(),
            final_npu_secs: self.final_npu_secs / mult,
            cpu_head_secs: self.cpu_head_secs / mult,
            switch_secs: self.switch_secs,
            wrap_switch: self.wrap_switch,
            batch: self.batch,
            draft_cpu_secs: self.draft_cpu_secs / mult,
            draft_npu_secs: self.draft_npu_secs / mult,
        }
    }

    /// Fuses two stage breakdowns of the *same* layer walk into the stage
    /// breakdown of a single combined walk — the cost model of chunked
    /// prefill interleaved with decode (the serving gateway rides a
    /// prompt chunk through the decode batch's walk instead of running a
    /// separate pass).
    ///
    /// Per layer, row-proportional compute adds (`npu_secs` sums) while
    /// per-walk overheads are paid once: command dispatch rides the same
    /// ring slot (`dispatch_secs` max), a layer's weights are fetched once
    /// no matter how many rows consume them (`weight_fetch_secs` max), and
    /// a shard boundary switches sessions once (`switch_before` OR,
    /// `switch_secs` max). CPU embedding/head work and the final norm are
    /// row-proportional and sum; `batch` sums so the CPU-streaming model
    /// sees the combined row count.
    ///
    /// # Panics
    ///
    /// Panics if the two walks have different layer counts — they must
    /// describe the same model.
    pub fn merged(&self, other: &StepStages) -> StepStages {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "merged walks must traverse the same layers"
        );
        let layers = self
            .layers
            .iter()
            .zip(other.layers.iter())
            .map(|(a, b)| LayerStage {
                npu_secs: a.npu_secs + b.npu_secs,
                dispatch_secs: a.dispatch_secs.max(b.dispatch_secs),
                switch_before: a.switch_before || b.switch_before,
                weight_fetch_secs: a.weight_fetch_secs.max(b.weight_fetch_secs),
            })
            .collect();
        StepStages {
            cpu_embed_secs: self.cpu_embed_secs + other.cpu_embed_secs,
            layers,
            final_npu_secs: self.final_npu_secs + other.final_npu_secs,
            cpu_head_secs: self.cpu_head_secs + other.cpu_head_secs,
            switch_secs: self.switch_secs.max(other.switch_secs),
            wrap_switch: self.wrap_switch || other.wrap_switch,
            batch: self.batch + other.batch,
            draft_cpu_secs: self.draft_cpu_secs + other.draft_cpu_secs,
            draft_npu_secs: self.draft_npu_secs + other.draft_npu_secs,
        }
    }
}

/// Tasks of one scheduled iteration that later iterations depend on.
struct IterTasks {
    last_layer: Option<TaskId>,
    penultimate_layer: Option<TaskId>,
    last_dispatch: Option<TaskId>,
    final_norm: TaskId,
    wrap_switch: Option<TaskId>,
    /// Compute tasks of the last two *streamed* layers, in walk order —
    /// the current owners of the double-buffered window's two slots. The
    /// next fetch waits for the older one to free its slot.
    last_stream_compute: Option<TaskId>,
    penult_stream_compute: Option<TaskId>,
    /// Final task of the draft model's speculation round launched during
    /// this iteration (speculative decoding only): the next iteration's
    /// verify pass consumes its proposals, and the next draft round
    /// continues from them.
    draft_done: Option<TaskId>,
}

/// Submits one decode iteration to the timeline. `prev` is the previous
/// iteration (None for the pipeline fill, whose CPU block is only the
/// embedding — there is no earlier lm_head to fold in).
fn submit_iteration(tl: &mut Timeline, st: &StepStages, prev: Option<&IterTasks>) -> IterTasks {
    let b = st.batch.max(1) as f64;
    // The CPU block between two NPU walks: lm_head+sampling of the
    // previous step, then this step's embedding, streamed row by row.
    let block = match prev {
        Some(_) => st.cpu_head_secs + st.cpu_embed_secs,
        None => st.cpu_embed_secs,
    };
    let first_share = block / b;
    let mut first_deps: Vec<TaskId> = Vec::new();
    if let Some(p) = prev {
        first_deps.push(p.final_norm);
    }
    let cpu_first = tl.submit(lane::CPU, first_share, &first_deps);
    let cpu_rest = tl.submit(lane::CPU, block - first_share, &[]);

    let mut prev_layer: Option<TaskId> = prev.and_then(|p| p.last_layer);
    let mut penult_layer: Option<TaskId> = prev.and_then(|p| p.penultimate_layer);
    let mut prev_dispatch: Option<TaskId> = prev.and_then(|p| p.last_dispatch);
    let mut last_stream: Option<TaskId> = prev.and_then(|p| p.last_stream_compute);
    let mut penult_stream: Option<TaskId> = prev.and_then(|p| p.penult_stream_compute);
    let mut last_layer = None;
    let mut last_dispatch = None;
    for (i, layer) in st.layers.iter().enumerate() {
        // Session switch at a shard boundary: starts once the previous
        // shard's commands are queued, overlapping its tail kernels.
        let switch = if layer.switch_before && i > 0 {
            let deps: Vec<TaskId> = prev_dispatch.into_iter().collect();
            Some(tl.submit(lane::SWITCH, st.switch_secs, &deps))
        } else {
            None
        };
        // Command dispatch for layer i: depth-2 ring — submitted while
        // layer i-1 executes, i.e. after layer i-2 completed. Commands for
        // a new shard go to the new session's ring, after the switch.
        let mut ddeps: Vec<TaskId> = Vec::new();
        if let Some(two_back) = penult_layer {
            ddeps.push(two_back);
        }
        if let Some(s) = switch {
            ddeps.push(s);
        }
        let disp = tl.submit(lane::DISPATCH, layer.dispatch_secs, &ddeps);
        // Weight prefetch for a streamed layer: DDR staging -> session
        // window. The fetch starts as soon as the DMA engine is free and
        // the slot it reuses was drained (the compute of the streamed
        // layer two back — a two-slot double buffer). Resident layers
        // (fetch == 0) submit nothing, keeping their task graph
        // bit-identical to the pre-streaming schedule.
        let fetch = if layer.weight_fetch_secs > 0.0 {
            let fdeps: Vec<TaskId> = penult_stream.into_iter().collect();
            Some(tl.submit(lane::DMA, layer.weight_fetch_secs, &fdeps))
        } else {
            None
        };
        // NPU compute: after its commands, its shard's switch, its weight
        // fetch, the layer before it, and — for the walk's head — the CPU
        // rows it consumes.
        let mut ldeps: Vec<TaskId> = vec![disp];
        if let Some(s) = switch {
            ldeps.push(s);
        }
        if let Some(f) = fetch {
            ldeps.push(f);
        }
        if let Some(pl) = prev_layer {
            ldeps.push(pl);
        }
        if i == 0 {
            ldeps.push(cpu_first);
            if let Some(w) = prev.and_then(|p| p.wrap_switch) {
                ldeps.push(w);
            }
            // A verify pass consumes the proposals drafted during the
            // previous iteration.
            if let Some(d) = prev.and_then(|p| p.draft_done) {
                ldeps.push(d);
            }
        }
        let lt = tl.submit(lane::NPU, layer.npu_secs, &ldeps);
        if fetch.is_some() {
            penult_stream = last_stream;
            last_stream = Some(lt);
        }
        penult_layer = prev_layer;
        prev_layer = Some(lt);
        last_layer = Some(lt);
        prev_dispatch = Some(disp);
        last_dispatch = Some(disp);
    }
    // Final norm: the full-batch barrier. Row chunks stream through the
    // layer walk as the CPU emits them, but the final norm (and the
    // lm_head behind it) needs every row, so it waits for the whole CPU
    // block on top of the NPU lane serialization.
    let final_norm = tl.submit(lane::NPU, st.final_npu_secs, &[cpu_rest]);
    // Wrap-around switch back to shard 0, overlapping the CPU tail.
    let wrap_switch = if st.wrap_switch {
        let deps: Vec<TaskId> = last_dispatch.into_iter().collect();
        Some(tl.submit(lane::SWITCH, st.switch_secs, &deps))
    } else {
        None
    };
    // The draft model's next speculation round (speculative decoding
    // only). Its CPU half runs on the dedicated draft worker, gated on the
    // first rows of this iteration's CPU block (the accept decision of the
    // previous verify streams out row by row) and on the draft's own
    // previous round. Its NPU half shares the target's accelerator: being
    // submitted after the final norm, it queues behind the verify kernels
    // in lane order, so only this NPU share of the draft round can ever be
    // exposed on the critical path — the CPU half hides whenever the
    // verify walk is longer. Plain decode (both fields 0) submits nothing
    // and builds the exact pre-speculation task graph.
    let draft_done = if st.draft_cpu_secs > 0.0 || st.draft_npu_secs > 0.0 {
        let mut ddeps: Vec<TaskId> = vec![cpu_first];
        if let Some(d) = prev.and_then(|p| p.draft_done) {
            ddeps.push(d);
        }
        let draft_cpu = tl.submit(lane::DRAFT, st.draft_cpu_secs, &ddeps);
        if st.draft_npu_secs > 0.0 {
            Some(tl.submit(lane::NPU, st.draft_npu_secs, &[draft_cpu]))
        } else {
            Some(draft_cpu)
        }
    } else {
        None
    };
    IterTasks {
        last_layer,
        penultimate_layer: penult_layer,
        last_dispatch,
        final_norm,
        wrap_switch,
        last_stream_compute: last_stream,
        penult_stream_compute: penult_stream,
        draft_done,
    }
}

/// Iterations scheduled to reach (and measure) the steady state.
const STEADY_ITERS: usize = 10;

/// Steady-state wall seconds of one decode step under the pipelined
/// schedule: identical iterations are scheduled until the per-iteration
/// period settles, and the period between the last two is returned. The
/// result never exceeds [`StepStages::serial_secs`] (every dependency path
/// visits each stage at most once per iteration).
pub fn steady_state_step_secs(st: &StepStages) -> f64 {
    let mut tl = Timeline::new(lane::COUNT);
    let mut prev: Option<IterTasks> = None;
    let mut marks = [0.0f64; STEADY_ITERS];
    for mark in marks.iter_mut() {
        let it = submit_iteration(&mut tl, st, prev.as_ref());
        *mark = tl.finish(it.final_norm);
        prev = Some(it);
    }
    let period = marks[STEADY_ITERS - 1] - marks[STEADY_ITERS - 2];
    // The CPU tail of the final step is part of every period (it is the
    // head of the next iteration's CPU block); nothing to add. Guard
    // against float drift pushing past the serial bound.
    period.min(st.serial_secs())
}

/// Steady-state busy fraction of one lane under the pipelined schedule:
/// the same iterations as [`steady_state_step_secs`] are scheduled and
/// the lane's busy seconds are divided by the schedule's makespan. The
/// NPU lane's fraction is the accelerator utilization a serving gateway
/// reports per device; the DMA lane's fraction shows how close weight
/// streaming runs to bandwidth-bound.
pub fn steady_state_lane_utilization(st: &StepStages, lane_idx: usize) -> f64 {
    let mut tl = Timeline::new(lane::COUNT);
    let mut prev: Option<IterTasks> = None;
    for _ in 0..STEADY_ITERS {
        let it = submit_iteration(&mut tl, st, prev.as_ref());
        prev = Some(it);
    }
    tl.lane_utilization(lane_idx)
}

/// Wall seconds of one *standalone* pass (prefill): a single iteration
/// with its CPU tail, no cross-step pipelining — only dispatch, DMA and
/// session-switch overlap apply.
pub fn single_pass_secs(st: &StepStages) -> f64 {
    let mut tl = Timeline::new(lane::COUNT);
    let it = submit_iteration(&mut tl, st, None);
    tl.submit(lane::CPU, st.cpu_head_secs, &[it.final_norm]);
    tl.makespan().min(st.serial_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(batch: usize) -> StepStages {
        StepStages {
            cpu_embed_secs: 1e-3,
            layers: vec![
                LayerStage {
                    npu_secs: 10e-3,
                    dispatch_secs: 1e-3,
                    switch_before: false,
                    weight_fetch_secs: 0.0,
                },
                LayerStage {
                    npu_secs: 10e-3,
                    dispatch_secs: 1e-3,
                    switch_before: false,
                    weight_fetch_secs: 0.0,
                },
            ],
            final_npu_secs: 0.5e-3,
            cpu_head_secs: 8e-3,
            switch_secs: 0.0,
            wrap_switch: false,
            batch,
            draft_cpu_secs: 0.0,
            draft_npu_secs: 0.0,
        }
    }

    #[test]
    fn serial_secs_sums_every_stage() {
        let st = stages(8);
        // 1 + (10+1)*2 + 0.5 + 8 = 31.5 ms.
        assert!((st.serial_secs() - 31.5e-3).abs() < 1e-12);
    }

    #[test]
    fn steady_state_matches_hand_computed_critical_path() {
        // At batch 8 the CPU block (head 8ms + embed 1ms) streams its
        // first rows in 9/8 ms; the critical cycle is
        // first-rows -> L0 -> L1 -> norm = 9/8 + 10 + 10 + 0.5 ms.
        let st = stages(8);
        let want = (9.0 / 8.0 + 10.0 + 10.0 + 0.5) * 1e-3;
        let got = steady_state_step_secs(&st);
        assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        assert!(got < st.serial_secs());
    }

    #[test]
    fn batch_one_keeps_cpu_on_the_critical_path() {
        // At batch 1 the full CPU block precedes layer 0; only the
        // dispatch overhead hides (2 ms of it).
        let st = stages(1);
        let want = (9.0 + 10.0 + 10.0 + 0.5) * 1e-3;
        let got = steady_state_step_secs(&st);
        assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        assert!(got < st.serial_secs());
    }

    #[test]
    fn cpu_bound_steps_are_paced_by_the_cpu_lane() {
        // A huge CPU tail: the period degenerates to the CPU block plus
        // the full-batch barrier (the NPU waits on rows), not below it.
        let mut st = stages(16);
        st.cpu_head_secs = 100e-3;
        let got = steady_state_step_secs(&st);
        assert!((got - 101.5e-3).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn boundary_switches_hide_behind_tail_kernels() {
        let mut st = stages(8);
        let base = steady_state_step_secs(&st);
        st.layers[1].switch_before = true;
        st.wrap_switch = true;
        st.switch_secs = 30e-6;
        let sharded = steady_state_step_secs(&st);
        // Serial pays both switches in full; the schedule hides them
        // behind the 10 ms tail kernels and the CPU block.
        assert!((sharded - base).abs() < 1e-12, "{sharded} vs {base}");
        assert!(st.serial_secs() - stages(8).serial_secs() > 5e-5);
    }

    #[test]
    fn dispatch_bound_walks_are_paced_by_the_dispatch_lane() {
        // Dispatch slower than compute: the ring becomes the bottleneck
        // and the period approaches the dispatch-lane occupancy.
        let mut st = stages(8);
        for l in &mut st.layers {
            l.npu_secs = 1e-3;
            l.dispatch_secs = 20e-3;
        }
        let got = steady_state_step_secs(&st);
        assert!(got >= 40e-3 - 1e-12, "dispatch lane must pace: {got}");
        assert!(got <= st.serial_secs());
    }

    #[test]
    fn single_pass_hides_dispatch_only() {
        let st = stages(4);
        let got = single_pass_secs(&st);
        // embed + L0(after its 1ms dispatch, which nothing hides) + L1
        // (dispatch hidden) + norm + head; the first dispatch starts at
        // t=0 concurrently with the embed.
        let want = (1.0 + 10.0 + 10.0 + 0.5 + 8.0) * 1e-3;
        assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        assert!(got < st.serial_secs());
    }

    #[test]
    fn serial_secs_charges_weight_fetches_in_full() {
        let mut st = stages(8);
        st.layers[1].weight_fetch_secs = 5e-3;
        // Serial mode pays the whole fetch: 31.5 + 5 = 36.5 ms.
        assert!((st.serial_secs() - 36.5e-3).abs() < 1e-12);
    }

    #[test]
    fn hidden_weight_fetch_leaves_the_period_unchanged() {
        // A 5 ms fetch for L1 has two slots' worth of runway (the double
        // buffer lets it run up to two streamed layers ahead), far more
        // than it needs under 10 ms layer kernels: fully hidden.
        let base = steady_state_step_secs(&stages(8));
        let mut st = stages(8);
        st.layers[1].weight_fetch_secs = 5e-3;
        let got = steady_state_step_secs(&st);
        assert!((got - base).abs() < 1e-12, "got {got}, base {base}");
        // Serial still pays it, so the overlap win grew by the fetch.
        assert!((st.serial_secs() - stages(8).serial_secs() - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_bound_streaming_is_paced_by_the_dma_lane() {
        // Both layers stream 30 ms of weights per step: 60 ms of DMA per
        // iteration exceeds every other lane, so the steady-state period
        // is exactly the DMA-lane occupancy — only the *exposed* fetch
        // time shows up, never the serial sum.
        let mut st = stages(8);
        for l in &mut st.layers {
            l.weight_fetch_secs = 30e-3;
        }
        let got = steady_state_step_secs(&st);
        assert!((got - 60e-3).abs() < 1e-12, "got {got}");
        assert!(got < st.serial_secs());
    }

    #[test]
    fn fetch_gates_its_layers_compute() {
        // One streamed layer whose fetch dwarfs compute: the period can
        // never drop below the fetch (finish-to-start edge into the
        // layer's kernels + DMA lane serialization).
        let mut st = stages(8);
        st.layers.truncate(1);
        st.layers[0].weight_fetch_secs = 50e-3;
        st.layers[0].npu_secs = 1e-3;
        let got = steady_state_step_secs(&st);
        assert!((got - 50e-3).abs() < 1e-12, "got {got}");
        let one = single_pass_secs(&st);
        assert!(one >= 50e-3 + 1e-3 - 1e-12, "single pass {one}");
    }

    #[test]
    fn zero_fetch_layers_build_the_identical_schedule() {
        // weight_fetch_secs == 0.0 must take the exact pre-streaming code
        // path (no DMA task submitted), not merely a similar number.
        let st = stages(8);
        let mut tl = Timeline::new(lane::COUNT);
        let it = submit_iteration(&mut tl, &st, None);
        assert_eq!(tl.lane_busy_secs(lane::DMA), 0.0);
        // 2 CPU + 2 dispatch + 2 layers + final norm, nothing else.
        assert_eq!(tl.task_count(), 7);
        assert!(tl.finish(it.final_norm) > 0.0);
    }

    #[test]
    fn single_layer_walk_schedules() {
        let mut st = stages(8);
        st.layers.truncate(1);
        let got = steady_state_step_secs(&st);
        assert!(got > 0.0 && got <= st.serial_secs());
        let one = single_pass_secs(&st);
        assert!(one > 0.0 && one <= st.serial_secs());
    }

    #[test]
    fn npu_lane_dominates_utilization_in_compute_bound_steps() {
        // 20 ms of NPU kernels against a ~1 ms critical-path slack: the
        // NPU lane stays near fully busy while dispatch idles.
        let st = stages(8);
        let npu = steady_state_lane_utilization(&st, lane::NPU);
        let disp = steady_state_lane_utilization(&st, lane::DISPATCH);
        assert!(npu > 0.85, "npu lane {npu}");
        assert!(disp < npu, "dispatch {disp} vs npu {npu}");
        assert!((0.0..=1.0).contains(&npu) && (0.0..=1.0).contains(&disp));
    }

    #[test]
    fn merged_walk_sums_compute_and_shares_overheads() {
        let mut a = stages(8);
        a.layers[1].switch_before = true;
        a.switch_secs = 30e-6;
        a.layers[0].weight_fetch_secs = 2e-3;
        let mut b = stages(2);
        b.layers[0].weight_fetch_secs = 3e-3;
        let m = a.merged(&b);
        assert_eq!(m.layers.len(), 2);
        assert_eq!(m.batch, 10);
        // Compute sums; dispatch and fetch are paid once (max).
        assert!((m.layers[0].npu_secs - 20e-3).abs() < 1e-15);
        assert!((m.layers[0].dispatch_secs - 1e-3).abs() < 1e-15);
        assert!((m.layers[0].weight_fetch_secs - 3e-3).abs() < 1e-15);
        assert!(m.layers[1].switch_before);
        assert!((m.switch_secs - 30e-6).abs() < 1e-15);
        assert!((m.cpu_head_secs - 16e-3).abs() < 1e-15);
        // The fused walk can never beat either walk alone, and can never
        // cost more than running the two serially.
        let fused = steady_state_step_secs(&m);
        let sa = steady_state_step_secs(&a);
        let sb = steady_state_step_secs(&b);
        assert!(fused >= sa.max(sb) - 1e-12, "{fused} vs {sa}/{sb}");
        assert!(fused <= sa + sb + 1e-12, "{fused} vs {sa}+{sb}");
    }

    #[test]
    fn at_clock_dilates_the_critical_path_by_one_over_mult() {
        // No switches: the whole graph is rate-derived, so the steady
        // period and single-pass time dilate by exactly 1/mult.
        let st = stages(8);
        let m = 0.6;
        let slow = st.at_clock(m);
        let burst = steady_state_step_secs(&st);
        let throttled = steady_state_step_secs(&slow);
        assert!(
            (throttled - burst / m).abs() < 1e-12,
            "{throttled} vs {}",
            burst / m
        );
        let one = single_pass_secs(&slow);
        assert!((one - single_pass_secs(&st) / m).abs() < 1e-12);
        assert!((slow.serial_secs() - st.serial_secs() / m).abs() < 1e-12);
    }

    #[test]
    fn at_clock_keeps_switch_seconds_fixed() {
        let mut st = stages(8);
        st.layers[1].switch_before = true;
        st.wrap_switch = true;
        st.switch_secs = 30e-6;
        let slow = st.at_clock(0.5);
        assert_eq!(slow.switch_secs, st.switch_secs);
        assert!(slow.layers[1].switch_before && slow.wrap_switch);
        // Serial time is the dilated rate work plus the *undilated*
        // switches — strictly less than a pure 2x dilation.
        let rate_work = st.serial_secs() - 2.0 * st.switch_secs;
        let want = rate_work / 0.5 + 2.0 * st.switch_secs;
        assert!((slow.serial_secs() - want).abs() < 1e-12);
        assert!(slow.serial_secs() < st.serial_secs() * 2.0);
    }

    #[test]
    fn at_clock_unity_is_identity() {
        let mut st = stages(4);
        st.layers[0].weight_fetch_secs = 2e-3;
        st.draft_cpu_secs = 1e-3;
        st.draft_npu_secs = 2e-3;
        assert_eq!(st.at_clock(1.0), st);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn at_clock_rejects_overclock() {
        let _ = stages(4).at_clock(1.5);
    }

    #[test]
    #[should_panic(expected = "same layers")]
    fn merged_rejects_mismatched_walks() {
        let a = stages(8);
        let mut b = stages(8);
        b.layers.truncate(1);
        let _ = a.merged(&b);
    }

    #[test]
    fn serial_secs_charges_draft_stages_in_full() {
        let mut st = stages(8);
        st.draft_cpu_secs = 5e-3;
        st.draft_npu_secs = 2e-3;
        // 31.5 + 5 + 2 = 38.5 ms: serial mode pays the whole draft round.
        assert!((st.serial_secs() - 38.5e-3).abs() < 1e-12);
    }

    #[test]
    fn draft_cpu_hides_behind_verify_kernels() {
        // A 5 ms draft CPU round against 20.5 ms of verify NPU kernels:
        // the draft worker runs while the NPU verifies, so the period
        // charges only the draft's *NPU* share, serialized on the shared
        // accelerator: 20 + 0.5 + 2 = 22.5 ms. The 5 ms of draft CPU work
        // vanish from the critical path.
        let mut st = stages(8);
        st.draft_cpu_secs = 5e-3;
        st.draft_npu_secs = 2e-3;
        let got = steady_state_step_secs(&st);
        let want = (10.0 + 10.0 + 0.5 + 2.0) * 1e-3;
        assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        // Serial pays the full 7 ms draft round.
        assert!(st.serial_secs() - got > 15e-3);
    }

    #[test]
    fn slow_draft_round_paces_the_pipeline() {
        // A draft round longer than the verify walk cannot hide: the
        // pipeline degenerates to the draft chain (CPU 30 + NPU 2 ms).
        let mut st = stages(8);
        st.draft_cpu_secs = 30e-3;
        st.draft_npu_secs = 2e-3;
        let got = steady_state_step_secs(&st);
        assert!((got - 32e-3).abs() < 1e-12, "got {got}");
        assert!(got < st.serial_secs());
    }

    #[test]
    fn pure_cpu_draft_submits_no_npu_task() {
        // A host-only proposer (e.g. the bigram draft) leaves the NPU
        // lane's occupancy untouched: the period equals plain decode.
        let base = steady_state_step_secs(&stages(8));
        let mut st = stages(8);
        st.draft_cpu_secs = 5e-3;
        let got = steady_state_step_secs(&st);
        assert!((got - base).abs() < 1e-12, "got {got}, base {base}");
        let draft_util = steady_state_lane_utilization(&st, lane::DRAFT);
        assert!(draft_util > 0.0 && draft_util < 1.0);
    }

    #[test]
    fn zero_draft_fields_leave_the_draft_lane_empty() {
        // Plain decode must take the exact pre-speculation code path: no
        // draft task submitted, same task count as before the lane existed.
        let st = stages(8);
        let mut tl = Timeline::new(lane::COUNT);
        let it = submit_iteration(&mut tl, &st, None);
        assert_eq!(tl.lane_busy_secs(lane::DRAFT), 0.0);
        assert_eq!(tl.task_count(), 7);
        assert!(it.draft_done.is_none());
    }

    #[test]
    fn at_clock_dilates_draft_stages() {
        let mut st = stages(8);
        st.draft_cpu_secs = 5e-3;
        st.draft_npu_secs = 2e-3;
        let slow = st.at_clock(0.5);
        assert!((slow.draft_cpu_secs - 10e-3).abs() < 1e-15);
        assert!((slow.draft_npu_secs - 4e-3).abs() < 1e-15);
        let got = steady_state_step_secs(&slow);
        assert!((got - 2.0 * steady_state_step_secs(&st)).abs() < 1e-12);
    }

    #[test]
    fn merged_walks_sum_draft_rounds() {
        let mut a = stages(8);
        a.draft_cpu_secs = 1e-3;
        a.draft_npu_secs = 2e-3;
        let mut b = stages(2);
        b.draft_cpu_secs = 3e-3;
        let m = a.merged(&b);
        assert!((m.draft_cpu_secs - 4e-3).abs() < 1e-15);
        assert!((m.draft_npu_secs - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn empty_walk_is_degenerate_but_bounded() {
        let st = StepStages {
            cpu_embed_secs: 1e-3,
            layers: Vec::new(),
            final_npu_secs: 0.0,
            cpu_head_secs: 2e-3,
            switch_secs: 0.0,
            wrap_switch: false,
            batch: 1,
            draft_cpu_secs: 0.0,
            draft_npu_secs: 0.0,
        };
        assert!(steady_state_step_secs(&st) <= st.serial_secs() + 1e-15);
        assert!(single_pass_secs(&st) <= st.serial_secs() + 1e-15);
    }
}
