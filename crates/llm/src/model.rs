//! The NPU transformer forward pass: batched prefill and decode.
//!
//! Operator placement follows the paper's runtime (Section 6/7.2.2):
//! projections, attention, norms and activations run on the NPU; the
//! embedding lookup, the vocabulary projection (lm_head) and sampling stay
//! on the CPU, because the Hexagon session's 32-bit address space cannot
//! hold the logits tensor of a modern vocabulary. That placement is what
//! caps decode throughput scaling at large batch (Figure 11's discussion:
//! at batch 16 the CPU logits share approaches 50%).
//!
//! In functional mode (tiny models) every value is computed bit-faithfully
//! through the kernel crate; in cost-only mode (paper-scale models) the
//! same code path charges identical per-shape costs via `replay`.

use std::cell::RefCell;

use hexsim::f16::F16;
use hexsim::prelude::*;
use htpops::attention::{AttnShape, FlashAttention};
use htpops::exp_lut::{ExpLut16, ExpMethod};
use htpops::gemm::{gemm_mixed, DequantVariant, GemmConfig, PreparedWeights};
use htpops::misc;

use crate::config::{ModelConfig, ModelId};
use crate::kv_cache::KvCache;
use crate::overlap::{self, DispatchMode, LayerStage, StepStages};
use crate::weights::ModelWeights;

/// The NPU ops one transformer layer dispatches, in submission order:
/// 2 norms, 3 QKV projections, RoPE, attention, output projection,
/// 2 residuals, gate/up/down projections, SwiGLU. Each op's descriptor
/// travels the rpcmem command ring ([`hexsim::ring::NpuSession`]) and pays
/// ring submission + cache maintenance + completion sync.
const LAYER_OPS: [OpCode; 14] = [
    OpCode::Misc,      // attention RMSNorm
    OpCode::MatMul,    // Q projection
    OpCode::MatMul,    // K projection
    OpCode::MatMul,    // V projection
    OpCode::Misc,      // RoPE
    OpCode::Attention, // FlashAttention
    OpCode::MatMul,    // output projection
    OpCode::Misc,      // attention residual
    OpCode::Misc,      // FFN RMSNorm
    OpCode::MatMul,    // gate projection
    OpCode::MatMul,    // up projection
    OpCode::Misc,      // SwiGLU
    OpCode::MatMul,    // down projection
    OpCode::Misc,      // FFN residual
];

/// NPU op submissions per transformer layer (see [`LAYER_OPS`]).
const LAYER_DISPATCH_OPS: f64 = LAYER_OPS.len() as f64;

/// Wall-time cost of one model step, by operator class.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepCost {
    /// Weight GEMMs (dequant + HMX), seconds.
    pub gemm_secs: f64,
    /// Attention (FlashAttention incl. KV streaming), seconds.
    pub attn_secs: f64,
    /// Norms, RoPE, activations, residuals, seconds.
    pub misc_secs: f64,
    /// CPU work: embedding, lm_head, sampling, seconds.
    pub cpu_secs: f64,
    /// CPU-side NPU session switches (multi-session sharded execution,
    /// paper Section 8); zero for single-session deployments.
    pub switch_secs: f64,
    /// Weight-streaming DMA seconds: whole-layer fetches from the DDR
    /// staging region into the double-buffered session window (hot/cold
    /// placement). Zero for fully resident plans. Serial dispatch pays
    /// this in full; the overlapped schedule hides fetches behind other
    /// layers' compute and charges only the exposed remainder.
    pub stream_secs: f64,
    /// Critical-path wall seconds of the step under the overlap-aware
    /// event-timeline schedule ([`crate::overlap`], paper Section 7.2.2).
    /// Equals [`StepCost::wall_secs`] under [`DispatchMode::Serial`] (the
    /// default); never exceeds it. The per-engine totals above are busy
    /// time and do not change with the dispatch mode.
    pub overlapped_secs: f64,
}

impl StepCost {
    /// NPU wall seconds (sequential kernel composition).
    pub fn npu_secs(&self) -> f64 {
        self.gemm_secs + self.attn_secs + self.misc_secs
    }

    /// Total wall seconds under serial dispatch: the CPU logits pass
    /// serializes with the NPU (sampling feeds the next step), and
    /// session switches serialize too (the CPU re-points dispatch before
    /// the next shard's layers can run). The overlap-aware view of the
    /// same step is [`StepCost::overlapped_secs`].
    pub fn wall_secs(&self) -> f64 {
        self.npu_secs() + self.cpu_secs + self.switch_secs + self.stream_secs
    }

    /// Accumulates another step's cost.
    pub fn add(&mut self, other: &StepCost) {
        self.gemm_secs += other.gemm_secs;
        self.attn_secs += other.attn_secs;
        self.misc_secs += other.misc_secs;
        self.cpu_secs += other.cpu_secs;
        self.switch_secs += other.switch_secs;
        self.stream_secs += other.stream_secs;
        self.overlapped_secs += other.overlapped_secs;
    }
}

/// How a forward pass walks layers across NPU sessions — the execution
/// half of a shard plan (the placement half, `npuscale::session::ShardPlan`,
/// lowers to this; it lives upstairs because placement needs the
/// `MultiSession` allocator, while the walk only needs layer indices).
///
/// With an empty boundary list the schedule is a no-op and the forward
/// pass is bit- and cost-identical to the historical single-session path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerSchedule {
    /// Ascending layer indices at which the weights live in a *new* NPU
    /// session (the first shard starting at layer 0 is implicit). Empty
    /// means everything fits one session.
    pub boundaries: Vec<usize>,
    /// CPU seconds to re-point command dispatch at another session's ring
    /// (FastRPC handle swap + cache maintenance on the new ring).
    pub switch_secs: f64,
    /// Ascending indices of *cold* layers whose weights live in the DDR
    /// staging region and stream through the double-buffered session
    /// window (hot/cold placement). Empty (the default) means fully
    /// resident weights — the historical path, bit-identical.
    pub streamed: Vec<usize>,
    /// Bytes streamed per cold layer (the layer's prepared weight
    /// footprint). The walk converts this to seconds with the device's
    /// DDR streaming bandwidth at charge time.
    pub stream_layer_bytes: u64,
}

impl LayerSchedule {
    /// Schedule for a single-session deployment (no switches).
    pub fn single_session() -> Self {
        LayerSchedule::default()
    }

    /// Whether this schedule crosses any session boundary.
    pub fn is_sharded(&self) -> bool {
        !self.boundaries.is_empty()
    }

    /// Session switches charged per full layer walk: one at each shard
    /// boundary plus one to return dispatch to the first shard for the
    /// next pass.
    pub fn switches_per_pass(&self) -> usize {
        if self.boundaries.is_empty() {
            0
        } else {
            self.boundaries.len() + 1
        }
    }

    /// Whether any layer streams its weights from the DDR staging region.
    pub fn is_streaming(&self) -> bool {
        !self.streamed.is_empty()
    }
}

/// Output of one decode step.
#[derive(Debug)]
pub struct DecodeOutput {
    /// Logits `[batch, vocab]` (empty in cost-only mode).
    pub logits: Vec<f32>,
    /// Cost breakdown of the step.
    pub cost: StepCost,
    /// Stage breakdown of the step — the input the overlap scheduler
    /// ([`crate::overlap`]) derived [`StepCost::overlapped_secs`] from,
    /// exposed so tests and benches can recompute the critical path.
    pub stages: StepStages,
}

/// A model instance bound to one NPU context.
pub struct Model {
    /// Architecture.
    pub cfg: ModelConfig,
    /// Weights (NPU-resident + float reference copies).
    pub weights: ModelWeights,
    /// The TCM-resident exp LUT.
    pub lut: ExpLut16,
    /// Exp method used inside attention.
    pub exp_method: ExpMethod,
    /// HVX threads for weight dequantization (the op library's thread
    /// pool; kernels saturate the six scalar contexts).
    pub threads: u32,
    /// Per-operator dispatch overhead in seconds: command submission over
    /// the shared-memory ring, cache maintenance, and inter-op
    /// synchronization. Calibrated at 100 us so end-to-end decode matches
    /// the paper's Figure 11 absolute throughput (the paper notes decode
    /// is constrained by per-step overheads beyond raw kernel time).
    pub op_dispatch_secs: f64,
    /// Session walk schedule for multi-session sharded weights (paper
    /// Section 8). Defaults to single-session (no switches); set via
    /// [`Model::set_layer_schedule`].
    schedule: LayerSchedule,
    /// How stages compose into wall time: additive (the default, every
    /// historical number bit-identical) or overlap-aware (paper Section
    /// 7.2.2 pipelining). Set via [`Model::set_dispatch_mode`]. Only the
    /// time model changes — logits and per-engine busy totals do not.
    dispatch: DispatchMode,
    /// The rpcmem command ring every layer's op descriptors travel
    /// (transport protocol; the calibrated per-op cost is charged per
    /// completed descriptor in the walk). `RefCell` because the forward
    /// pass takes `&self` and the ring mutates per dispatch.
    ring: RefCell<NpuSession>,
}

/// Ring configuration the layer walk dispatches through: the transport's
/// own latency knobs are zeroed because the walk charges the *calibrated*
/// per-op overhead ([`Model::op_dispatch_secs`], which folds submission,
/// cache maintenance and completion into one measured 100 us figure) per
/// descriptor the ring completes.
fn walk_ring_config() -> SessionConfig {
    SessionConfig {
        strict_coherence: true,
        submit_latency: 0.0,
        complete_latency: 0.0,
        double_buffered: false,
    }
}

impl Model {
    /// Builds a model: exp LUT, weights, and DDR residency.
    pub fn new(
        ctx: &mut NpuContext,
        id: ModelId,
        variant: DequantVariant,
        seed: u64,
    ) -> SimResult<Self> {
        let cfg = ModelConfig::for_id(id);
        let lut = ExpLut16::build(ctx)?;
        let weights = ModelWeights::build(ctx, &cfg, variant, seed)?;
        Ok(Model {
            cfg,
            weights,
            lut,
            exp_method: ExpMethod::Lut16,
            threads: 6,
            op_dispatch_secs: 100e-6,
            schedule: LayerSchedule::single_session(),
            dispatch: DispatchMode::Serial,
            ring: RefCell::new(NpuSession::open(walk_ring_config())),
        })
    }

    /// Builds a model with the hot/cold weight split: the layers in
    /// `streamed` (ascending) keep their weights in the CPU-owned DDR
    /// staging region — outside the session VA envelope — and a
    /// double-buffered window sized for two cold layers is mapped into
    /// session VA instead. With an empty `streamed` list this is exactly
    /// [`Model::new`]. The caller still installs the matching
    /// [`LayerSchedule`] (with its `streamed` list) so the walk charges
    /// the per-layer fetches.
    pub fn new_streamed(
        ctx: &mut NpuContext,
        id: ModelId,
        variant: DequantVariant,
        seed: u64,
        streamed: &[usize],
    ) -> SimResult<Self> {
        let cfg = ModelConfig::for_id(id);
        let lut = ExpLut16::build(ctx)?;
        let weights = ModelWeights::build_streamed(ctx, &cfg, variant, seed, streamed)?;
        Ok(Model {
            cfg,
            weights,
            lut,
            exp_method: ExpMethod::Lut16,
            threads: 6,
            op_dispatch_secs: 100e-6,
            schedule: LayerSchedule::single_session(),
            dispatch: DispatchMode::Serial,
            ring: RefCell::new(NpuSession::open(walk_ring_config())),
        })
    }

    /// Selects how the step's stages compose into wall time (serial sum
    /// vs. overlap-aware critical path). Functional results are identical
    /// in both modes; only [`StepCost::overlapped_secs`] changes.
    pub fn set_dispatch_mode(&mut self, mode: DispatchMode) {
        self.dispatch = mode;
    }

    /// The installed dispatch mode.
    pub fn dispatch_mode(&self) -> DispatchMode {
        self.dispatch
    }

    /// Installs the session walk schedule for sharded execution. Every
    /// subsequent forward pass walks the layer shards in order and charges
    /// a CPU-side session switch at each boundary (plus one wrap-around
    /// switch back to the first shard).
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not strictly ascending layer indices
    /// in `1..layers`.
    pub fn set_layer_schedule(&mut self, schedule: LayerSchedule) {
        assert!(
            schedule.boundaries.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly ascending"
        );
        if let (Some(&first), Some(&last)) =
            (schedule.boundaries.first(), schedule.boundaries.last())
        {
            assert!(
                first >= 1 && last < self.cfg.layers,
                "shard boundaries must split the layer range"
            );
        }
        assert!(
            schedule.streamed.windows(2).all(|w| w[0] < w[1]),
            "streamed layers must be strictly ascending"
        );
        if let Some(&last) = schedule.streamed.last() {
            assert!(last < self.cfg.layers, "streamed layer out of range");
        }
        self.schedule = schedule;
    }

    /// The installed session walk schedule.
    pub fn layer_schedule(&self) -> &LayerSchedule {
        &self.schedule
    }

    /// Charges one CPU-side session switch (sharded execution only):
    /// dispatch re-points at another session's command ring, which the
    /// NPU cannot overlap with because the next shard's first kernel
    /// waits on it.
    fn charge_session_switch(&self, ctx: &mut NpuContext, cost: &mut StepCost) {
        ctx.cost.charge_secs(Engine::Cpu, self.schedule.switch_secs);
        cost.switch_secs += self.schedule.switch_secs;
    }

    /// Walks every layer in shard order, charging a session switch at
    /// each shard boundary and one wrap-around switch at the end of a
    /// sharded walk. With a single-session schedule this is exactly the
    /// historical `0..layers` loop. Each layer's kernel/dispatch seconds
    /// are recorded into `stages` for the overlap scheduler.
    #[allow(clippy::too_many_arguments)]
    fn walk_layers(
        &self,
        ctx: &mut NpuContext,
        x: &mut [F16],
        rows: usize,
        cache: &mut KvCache,
        seqs: &[usize],
        positions: &[usize],
        prefill: bool,
        cost: &mut StepCost,
        stages: &mut Vec<LayerStage>,
    ) -> SimResult<()> {
        let mut next_boundary = self.schedule.boundaries.iter().peekable();
        let mut next_stream = self.schedule.streamed.iter().peekable();
        for layer in 0..self.cfg.layers {
            let switch_before = next_boundary.peek() == Some(&&layer);
            if switch_before {
                next_boundary.next();
                self.charge_session_switch(ctx, cost);
            }
            // Cold layer: its weights stream from the DDR staging region
            // into the session window before the kernels can run. Serial
            // dispatch pays the fetch in full here; the overlap scheduler
            // re-derives the exposed share from the recorded stage.
            let weight_fetch_secs = if next_stream.peek() == Some(&&layer) {
                next_stream.next();
                let secs = ctx.cost.charge_ddr_stream(self.schedule.stream_layer_bytes);
                cost.stream_secs += secs;
                secs
            } else {
                0.0
            };
            let before = *cost;
            self.layer_forward(ctx, layer, x, rows, cache, seqs, positions, prefill, cost)?;
            let dispatch_secs = LAYER_DISPATCH_OPS * self.op_dispatch_secs;
            let npu_secs = ((cost.gemm_secs - before.gemm_secs)
                + (cost.attn_secs - before.attn_secs)
                + (cost.misc_secs - before.misc_secs)
                - dispatch_secs)
                .max(0.0);
            stages.push(LayerStage {
                npu_secs,
                dispatch_secs,
                switch_before,
                weight_fetch_secs,
            });
        }
        if self.schedule.is_sharded() {
            // Return dispatch to the first shard for the next pass.
            self.charge_session_switch(ctx, cost);
        }
        Ok(())
    }

    fn gemm(
        &self,
        ctx: &mut NpuContext,
        w: &PreparedWeights,
        act: &[F16],
        m: usize,
    ) -> (Vec<F16>, f64) {
        let cfg = GemmConfig {
            m,
            k: w.k,
            n: w.n,
            scheme: w.scheme,
            variant: w.variant,
            threads: self.threads,
        };
        let r = gemm_mixed(ctx, &cfg, w, act);
        (r.out, r.cost.wall_secs)
    }

    /// Runs misc row kernels over `rows` rows: functional mode applies `f`
    /// to each real row; cost-only replays one dummy row.
    fn per_row(
        ctx: &mut NpuContext,
        functional: bool,
        rows: usize,
        row_len: usize,
        mut f: impl FnMut(&mut NpuContext, usize, &mut [F16]),
        data: &mut [F16],
    ) {
        if functional {
            for r in 0..rows {
                let (lo, hi) = (r * row_len, (r + 1) * row_len);
                f(ctx, r, &mut data[lo..hi]);
            }
        } else {
            let mut dummy = vec![F16::ONE; row_len];
            ctx.replay(rows as u64, |ctx| f(ctx, 0, &mut dummy));
        }
    }

    /// CPU logits pass: `rows` hidden states against the full vocabulary.
    /// Charges the CPU roofline (weights stream at ~1 byte/param, logits
    /// write in f32); functional mode computes real logits from the tied
    /// embedding.
    fn lm_head(&self, ctx: &mut NpuContext, x: &[F16], rows: usize, functional: bool) -> Vec<f32> {
        let (hidden, vocab) = (self.cfg.hidden, self.cfg.vocab);
        let flops = 2 * rows as u64 * hidden as u64 * vocab as u64;
        let bytes = (vocab * hidden) as u64 + (rows * vocab * 4) as u64;
        ctx.cost.charge_cpu(flops, bytes);
        if !functional {
            return Vec::new();
        }
        // Convert each hidden state to f32 once (chunked, SIMD-friendly)
        // instead of once per vocabulary row; `to_f32` is exact, so the
        // accumulation below is bit-identical to converting in the inner
        // loop.
        let xf = F16::vec_to_f32(x);
        let mut logits = vec![0.0f32; rows * vocab];
        for r in 0..rows {
            let row = &xf[r * hidden..(r + 1) * hidden];
            for v in 0..vocab {
                let w = &self.weights.embed[v * hidden..(v + 1) * hidden];
                let mut acc = 0.0f32;
                for (xv, wv) in row.iter().zip(w) {
                    acc += xv * wv;
                }
                logits[r * vocab + v] = acc;
            }
        }
        logits
    }

    /// One transformer layer over `rows` rows of `x`, appending KV and
    /// attending per sequence. In prefill mode `positions[0]` is the start
    /// of the prefilled span; in decode mode `positions[r]` is the absolute
    /// position of row `r`'s token (sequences at different depths may share
    /// one batch under continuous batching).
    #[allow(clippy::too_many_arguments)]
    fn layer_forward(
        &self,
        ctx: &mut NpuContext,
        layer: usize,
        x: &mut [F16],
        rows: usize,
        cache: &mut KvCache,
        seqs: &[usize],
        positions: &[usize],
        prefill: bool,
        cost: &mut StepCost,
    ) -> SimResult<()> {
        let cfg = &self.cfg;
        let functional = ctx.mode == ExecMode::Functional;
        let lw = &self.weights.layers[layer];
        let (hidden, q_dim, kv_dim, d) = (cfg.hidden, cfg.q_dim(), cfg.kv_dim(), cfg.head_dim);

        // Attention RMSNorm.
        let snap = ctx.cost.snapshot();
        let mut normed = x.to_vec();
        let norm_w = lw.attn_norm.clone();
        Self::per_row(
            ctx,
            functional,
            rows,
            hidden,
            |ctx, _, row| misc::rmsnorm(ctx, row, &norm_w, 1e-5),
            &mut normed,
        );
        cost.misc_secs += ctx.cost.delta_since(&snap, "").wall_secs;

        // QKV projections.
        let (mut q, tq) = self.gemm(ctx, &lw.wq, &normed, rows);
        let (mut k, tk) = self.gemm(ctx, &lw.wk, &normed, rows);
        let (v, tv) = self.gemm(ctx, &lw.wv, &normed, rows);
        cost.gemm_secs += tq + tk + tv;

        // RoPE on Q and K per head, then cache append.
        let snap = ctx.cost.snapshot();
        if functional {
            for r in 0..rows {
                let pos = if prefill {
                    positions[0] + r
                } else {
                    positions[r]
                };
                for h in 0..cfg.heads {
                    misc::rope(
                        ctx,
                        &mut q[r * q_dim + h * d..r * q_dim + (h + 1) * d],
                        pos,
                        cfg.rope_theta,
                    );
                }
                for h in 0..cfg.kv_heads {
                    misc::rope(
                        ctx,
                        &mut k[r * kv_dim + h * d..r * kv_dim + (h + 1) * d],
                        pos,
                        cfg.rope_theta,
                    );
                }
            }
        } else {
            let mut dummy = vec![F16::ONE; d];
            ctx.replay((rows * (cfg.heads + cfg.kv_heads)) as u64, |ctx| {
                misc::rope(ctx, &mut dummy, 1, cfg.rope_theta)
            });
        }
        if prefill {
            // All rows belong to the single prefilled sequence.
            for r in 0..rows {
                let (kr, vr) = if functional {
                    (
                        k[r * kv_dim..(r + 1) * kv_dim].to_vec(),
                        v[r * kv_dim..(r + 1) * kv_dim].to_vec(),
                    )
                } else {
                    (Vec::new(), Vec::new())
                };
                cache.append(layer, seqs[0], &kr, &vr, functional)?;
            }
        } else {
            // Decode: one new row per sequence.
            for (r, &s) in seqs.iter().enumerate() {
                let (kr, vr) = if functional {
                    (
                        k[r * kv_dim..(r + 1) * kv_dim].to_vec(),
                        v[r * kv_dim..(r + 1) * kv_dim].to_vec(),
                    )
                } else {
                    (Vec::new(), Vec::new())
                };
                cache.append(layer, s, &kr, &vr, functional)?;
            }
        }
        cost.misc_secs += ctx.cost.delta_since(&snap, "").wall_secs;

        // Attention per sequence, per KV head, GQA-group batched.
        let g = cfg.gqa_group();
        let fa = FlashAttention::new(&self.lut, self.exp_method, g);
        let mut attn_out = vec![F16::ZERO; rows * q_dim];
        if prefill {
            // One sequence, `rows` query positions.
            let s = seqs[0];
            let nkv = cache.len(s);
            for h in 0..cfg.kv_heads {
                let shape = AttnShape {
                    nq: rows,
                    nkv,
                    head_dim: d,
                };
                let (qs, ks, vs) = if functional {
                    let mut qs = Vec::with_capacity(g * rows * d);
                    for gh in 0..g {
                        let qh = h * g + gh;
                        for r in 0..rows {
                            qs.extend_from_slice(&q[r * q_dim + qh * d..r * q_dim + (qh + 1) * d]);
                        }
                    }
                    let (ks, vs) = cache.head_view(layer, s, h);
                    (qs, ks, vs)
                } else {
                    (Vec::new(), Vec::new(), Vec::new())
                };
                let (out, bd) = fa.run_causal(ctx, shape, &qs, &ks, &vs, positions[0]);
                cost.attn_secs += bd.total_wall();
                if functional {
                    for gh in 0..g {
                        let qh = h * g + gh;
                        for r in 0..rows {
                            let src = (gh * rows + r) * d;
                            attn_out[r * q_dim + qh * d..r * q_dim + (qh + 1) * d]
                                .copy_from_slice(&out[src..src + d]);
                        }
                    }
                }
            }
        } else {
            // Decode: each sequence attends to its own cache, one query
            // position per head.
            for (r, &s) in seqs.iter().enumerate() {
                let nkv = cache.len(s);
                for h in 0..cfg.kv_heads {
                    let shape = AttnShape {
                        nq: 1,
                        nkv,
                        head_dim: d,
                    };
                    let (qs, ks, vs) = if functional {
                        let mut qs = Vec::with_capacity(g * d);
                        for gh in 0..g {
                            let qh = h * g + gh;
                            qs.extend_from_slice(&q[r * q_dim + qh * d..r * q_dim + (qh + 1) * d]);
                        }
                        let (ks, vs) = cache.head_view(layer, s, h);
                        (qs, ks, vs)
                    } else {
                        (Vec::new(), Vec::new(), Vec::new())
                    };
                    let (out, bd) = fa.run(ctx, shape, &qs, &ks, &vs);
                    cost.attn_secs += bd.total_wall();
                    if functional {
                        for gh in 0..g {
                            let qh = h * g + gh;
                            attn_out[r * q_dim + qh * d..r * q_dim + (qh + 1) * d]
                                .copy_from_slice(&out[gh * d..(gh + 1) * d]);
                        }
                    }
                }
            }
        }

        // Output projection + residual.
        let (o, to) = self.gemm(ctx, &lw.wo, &attn_out, rows);
        cost.gemm_secs += to;
        let snap = ctx.cost.snapshot();
        if functional {
            for (xi, oi) in x.iter_mut().zip(&o) {
                *xi = xi.add(*oi);
            }
        }
        ctx.replay(rows as u64, |ctx| {
            ctx.cost
                .charge_hvx_packets((hidden as u64).div_ceil(64) * 2);
            ctx.cost.charge_tcm_bytes(hidden as u64 * 6);
        });
        cost.misc_secs += ctx.cost.delta_since(&snap, "").wall_secs;

        // FFN: norm, gate/up, SiLU, mul, down (Q8), residual.
        let snap = ctx.cost.snapshot();
        let mut ffn_in = x.to_vec();
        let ffn_norm = lw.ffn_norm.clone();
        Self::per_row(
            ctx,
            functional,
            rows,
            hidden,
            |ctx, _, row| misc::rmsnorm(ctx, row, &ffn_norm, 1e-5),
            &mut ffn_in,
        );
        cost.misc_secs += ctx.cost.delta_since(&snap, "").wall_secs;

        let (mut gate, tg) = self.gemm(ctx, &lw.w_gate, &ffn_in, rows);
        let (up, tu) = self.gemm(ctx, &lw.w_up, &ffn_in, rows);
        cost.gemm_secs += tg + tu;

        let snap = ctx.cost.snapshot();
        Self::per_row(
            ctx,
            functional,
            rows,
            cfg.ffn,
            |ctx, _, row| misc::silu(ctx, row),
            &mut gate,
        );
        if functional {
            misc::mul_inplace(ctx, &mut gate, &up);
        } else {
            let mut dummy = vec![F16::ONE; cfg.ffn];
            let dummy2 = dummy.clone();
            ctx.replay(rows as u64, |ctx| {
                misc::mul_inplace(ctx, &mut dummy, &dummy2)
            });
        }
        cost.misc_secs += ctx.cost.delta_since(&snap, "").wall_secs;

        let (down, td) = self.gemm(ctx, &lw.w_down, &gate, rows);
        cost.gemm_secs += td;

        let snap = ctx.cost.snapshot();
        if functional {
            for (xi, di) in x.iter_mut().zip(&down) {
                *xi = xi.add(*di);
            }
        }
        ctx.replay(rows as u64, |ctx| {
            ctx.cost
                .charge_hvx_packets((hidden as u64).div_ceil(64) * 2);
            ctx.cost.charge_tcm_bytes(hidden as u64 * 6);
        });
        cost.misc_secs += ctx.cost.delta_since(&snap, "").wall_secs;

        // Per-operator dispatch: every op's descriptor travels the rpcmem
        // command ring — submission, cache clean, NPU-side poll — and the
        // calibrated per-op overhead is charged per *completed* descriptor,
        // so streamed and resident layers share the one transport path.
        let mut ring = self.ring.borrow_mut();
        let mut dispatched = 0u64;
        for &op in &LAYER_OPS {
            ring.submit(ctx, op, layer as u32, true)?;
            while ring.poll_dispatch(ctx)?.is_some() {
                dispatched += 1;
            }
        }
        ring.completed.clear();
        let overhead = dispatched as f64 * self.op_dispatch_secs;
        ctx.cost.charge_secs(hexsim::cost::Engine::Scalar, overhead);
        cost.misc_secs += overhead;
        Ok(())
    }

    /// Prefills one sequence with `tokens`, filling its KV cache. Returns
    /// the cost and (functional mode) the logits of the final position.
    pub fn prefill(
        &self,
        ctx: &mut NpuContext,
        cache: &mut KvCache,
        seq: usize,
        tokens: &[u32],
    ) -> SimResult<DecodeOutput> {
        self.prefill_impl(ctx, cache, seq, tokens, false)
    }

    /// Like [`Model::prefill`] but returns logits for *every* position —
    /// the verification pass of speculative decoding (paper Section 9):
    /// one batched forward scores a whole drafted chunk.
    pub fn prefill_all_logits(
        &self,
        ctx: &mut NpuContext,
        cache: &mut KvCache,
        seq: usize,
        tokens: &[u32],
    ) -> SimResult<DecodeOutput> {
        self.prefill_impl(ctx, cache, seq, tokens, true)
    }

    fn prefill_impl(
        &self,
        ctx: &mut NpuContext,
        cache: &mut KvCache,
        seq: usize,
        tokens: &[u32],
        all_logits: bool,
    ) -> SimResult<DecodeOutput> {
        let functional = ctx.mode == ExecMode::Functional;
        let rows = tokens.len();
        let hidden = self.cfg.hidden;
        let mut cost = StepCost::default();
        let start_pos = cache.len(seq);

        // Embedding on the CPU.
        let snap = ctx.cost.snapshot();
        ctx.cost.charge_cpu(0, (rows * hidden * 2) as u64);
        let mut x = if functional {
            let mut x = Vec::with_capacity(rows * hidden);
            for &t in tokens {
                x.extend(self.weights.embed_row(&self.cfg, t));
            }
            x
        } else {
            Vec::new()
        };
        let embed_secs = ctx.cost.delta_since(&snap, "").wall_secs;
        cost.cpu_secs += embed_secs;

        let mut layer_stages = Vec::with_capacity(self.cfg.layers);
        self.walk_layers(
            ctx,
            &mut x,
            rows,
            cache,
            &[seq],
            &[start_pos],
            true,
            &mut cost,
            &mut layer_stages,
        )?;

        // Final norm + logits: last position only for generation, every
        // position for speculative verification.
        let head_rows = if all_logits { rows } else { 1 };
        let first_row = rows - head_rows;
        let snap = ctx.cost.snapshot();
        let final_norm = self.weights.final_norm.clone();
        Self::per_row(
            ctx,
            functional,
            head_rows,
            hidden,
            |ctx, _, row| misc::rmsnorm(ctx, row, &final_norm, 1e-5),
            if functional {
                &mut x[first_row * hidden..]
            } else {
                &mut []
            },
        );
        let final_npu_secs = ctx.cost.delta_since(&snap, "").wall_secs;
        cost.misc_secs += final_npu_secs;

        let snap = ctx.cost.snapshot();
        let logits = if functional {
            self.lm_head(ctx, &x[first_row * hidden..], head_rows, true)
        } else {
            self.lm_head(ctx, &[], head_rows, false)
        };
        let head_secs = ctx.cost.delta_since(&snap, "").wall_secs;
        cost.cpu_secs += head_secs;
        ctx.cost.clear_phases();
        let stages = StepStages {
            cpu_embed_secs: embed_secs,
            layers: layer_stages,
            final_npu_secs,
            cpu_head_secs: head_secs,
            switch_secs: self.schedule.switch_secs,
            wrap_switch: self.schedule.is_sharded(),
            batch: rows,
            draft_cpu_secs: 0.0,
            draft_npu_secs: 0.0,
        };
        // Prefill is one standalone pass: dispatch and session switches
        // overlap the walk, but there is no next step to pipeline into.
        cost.overlapped_secs = match self.dispatch {
            DispatchMode::Serial => cost.wall_secs(),
            DispatchMode::Overlapped => overlap::single_pass_secs(&stages),
        };
        Ok(DecodeOutput {
            logits,
            cost,
            stages,
        })
    }

    /// One batched decode step over the leading cache slots: `tokens[i]`
    /// is the newest token of sequence `i`. Returns per-sequence logits
    /// and the step cost.
    pub fn decode_step(
        &self,
        ctx: &mut NpuContext,
        cache: &mut KvCache,
        tokens: &[u32],
    ) -> SimResult<DecodeOutput> {
        let seqs: Vec<usize> = (0..tokens.len()).collect();
        self.decode_step_for(ctx, cache, &seqs, tokens)
    }

    /// One batched decode step over an explicit set of cache slots:
    /// `tokens[i]` is the newest token of slot `seqs[i]`. Slots may sit at
    /// different context depths — continuous batching admits and retires
    /// sequences mid-stream — and each row attends to its own slot's KV at
    /// its own length. Returns per-row logits in `seqs` order.
    pub fn decode_step_for(
        &self,
        ctx: &mut NpuContext,
        cache: &mut KvCache,
        seqs: &[usize],
        tokens: &[u32],
    ) -> SimResult<DecodeOutput> {
        let functional = ctx.mode == ExecMode::Functional;
        let batch = tokens.len();
        assert_eq!(batch, seqs.len(), "one token per decoded slot");
        assert!(batch >= 1, "decode step needs at least one sequence");
        assert!(
            seqs.iter().all(|&s| s < cache.batch()),
            "slot index out of range"
        );
        {
            // A duplicated slot would double-append to one KV sequence and
            // let the second row attend to a half-updated cache.
            let mut sorted = seqs.to_vec();
            sorted.sort_unstable();
            assert!(
                sorted.windows(2).all(|w| w[0] != w[1]),
                "decoded slots must be unique"
            );
        }
        let hidden = self.cfg.hidden;
        let mut cost = StepCost::default();
        // Each sequence decodes at its own current position (uniform in
        // plain test-time scaling; staggered under continuous batching).
        let positions: Vec<usize> = seqs.iter().map(|&s| cache.len(s)).collect();

        let snap = ctx.cost.snapshot();
        ctx.cost.charge_cpu(0, (batch * hidden * 2) as u64);
        let mut x = if functional {
            let mut x = Vec::with_capacity(batch * hidden);
            for &t in tokens {
                x.extend(self.weights.embed_row(&self.cfg, t));
            }
            x
        } else {
            Vec::new()
        };
        let embed_secs = ctx.cost.delta_since(&snap, "").wall_secs;
        cost.cpu_secs += embed_secs;

        let mut layer_stages = Vec::with_capacity(self.cfg.layers);
        self.walk_layers(
            ctx,
            &mut x,
            batch,
            cache,
            seqs,
            &positions,
            false,
            &mut cost,
            &mut layer_stages,
        )?;

        let snap = ctx.cost.snapshot();
        let final_norm = self.weights.final_norm.clone();
        Self::per_row(
            ctx,
            functional,
            batch,
            hidden,
            |ctx, _, row| misc::rmsnorm(ctx, row, &final_norm, 1e-5),
            &mut x,
        );
        let final_npu_secs = ctx.cost.delta_since(&snap, "").wall_secs;
        cost.misc_secs += final_npu_secs;

        let snap = ctx.cost.snapshot();
        let logits = self.lm_head(ctx, &x, batch, functional);
        let head_secs = ctx.cost.delta_since(&snap, "").wall_secs;
        cost.cpu_secs += head_secs;
        ctx.cost.clear_phases();
        let stages = StepStages {
            cpu_embed_secs: embed_secs,
            layers: layer_stages,
            final_npu_secs,
            cpu_head_secs: head_secs,
            switch_secs: self.schedule.switch_secs,
            wrap_switch: self.schedule.is_sharded(),
            batch,
            draft_cpu_secs: 0.0,
            draft_npu_secs: 0.0,
        };
        // Decode steps repeat, so the overlap-aware wall time is the
        // steady-state period of the pipelined schedule: the CPU tail of
        // step t hides behind the first layers of step t+1 (Section
        // 7.2.2), dispatch rides the double-buffered ring, and session
        // switches hide behind the previous shard's tail kernels.
        cost.overlapped_secs = match self.dispatch {
            DispatchMode::Serial => cost.wall_secs(),
            DispatchMode::Overlapped => overlap::steady_state_step_secs(&stages),
        };
        Ok(DecodeOutput {
            logits,
            cost,
            stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelId;
    use crate::cpu_ref::forward_reference;
    use crate::tokenizer::Tokenizer;

    fn functional_setup() -> (NpuContext, Model, KvCache) {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 42).unwrap();
        let cache = KvCache::new(&mut ctx, &model.cfg, 4, 256).unwrap();
        (ctx, model, cache)
    }

    #[test]
    fn tiny_prefill_matches_cpu_reference() {
        let (mut ctx, model, mut cache) = functional_setup();
        let tok = Tokenizer::new();
        let tokens = tok.encode_with_bos("2+3=");
        let out = model.prefill(&mut ctx, &mut cache, 0, &tokens).unwrap();
        assert_eq!(out.logits.len(), model.cfg.vocab);

        let ref_logits = forward_reference(&model.cfg, &model.weights, &tokens);
        let last = &ref_logits[(tokens.len() - 1) * model.cfg.vocab..];
        // Cosine similarity between NPU-path logits and the f32 reference.
        let dot: f32 = out.logits.iter().zip(last).map(|(a, b)| a * b).sum();
        let na: f32 = out.logits.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = last.iter().map(|b| b * b).sum::<f32>().sqrt();
        let cos = dot / (na * nb);
        assert!(cos > 0.99, "cosine {cos}");
    }

    #[test]
    fn decode_continues_from_prefill() {
        let (mut ctx, model, mut cache) = functional_setup();
        let tok = Tokenizer::new();
        let tokens = tok.encode_with_bos("12*4");
        model.prefill(&mut ctx, &mut cache, 0, &tokens).unwrap();
        cache.broadcast_prompt(true);
        let out = model
            .decode_step(&mut ctx, &mut cache, &[100, 101, 102, 103])
            .unwrap();
        assert_eq!(out.logits.len(), 4 * model.cfg.vocab);
        assert_eq!(cache.len(0), tokens.len() + 1);
        assert_eq!(cache.len(3), tokens.len() + 1);
        // Batch rows see different tokens, so logits must differ.
        let r0 = &out.logits[..model.cfg.vocab];
        let r1 = &out.logits[model.cfg.vocab..2 * model.cfg.vocab];
        assert!(r0 != r1);
    }

    #[test]
    fn decode_cost_scales_sublinearly_with_batch() {
        // The TTS premise: batch-16 decode costs far less than 16x batch-1.
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let model =
            Model::new(&mut ctx, ModelId::Qwen1_5B, DequantVariant::CoalescedLut, 1).unwrap();
        let mut wall = |batch: usize| {
            let budget = batch * 1024 + batch;
            let mut cache = KvCache::new(&mut ctx, &model.cfg, batch, budget).unwrap();
            for s in 0..batch {
                for _ in 0..1024 {
                    for l in 0..model.cfg.layers {
                        cache.append(l, s, &[], &[], false).unwrap();
                    }
                }
            }
            let out = model
                .decode_step(&mut ctx, &mut cache, &vec![0u32; batch])
                .unwrap();
            cache.free(&mut ctx);
            out.cost.wall_secs()
        };
        let t1 = wall(1);
        let t16 = wall(16);
        let ratio = t16 / t1;
        assert!(
            (1.0..6.0).contains(&ratio),
            "batch-16 step should cost much less than 16x batch-1: {ratio}"
        );
    }

    #[test]
    fn lm_head_share_grows_with_batch_figure_11() {
        // Paper: at batch 16 the CPU logits time approaches/exceeds 50%.
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let model =
            Model::new(&mut ctx, ModelId::Qwen1_5B, DequantVariant::CoalescedLut, 1).unwrap();
        let mut share = |batch: usize| {
            let budget = batch * 512 + batch;
            let mut cache = KvCache::new(&mut ctx, &model.cfg, batch, budget).unwrap();
            for s in 0..batch {
                for _ in 0..512 {
                    for l in 0..model.cfg.layers {
                        cache.append(l, s, &[], &[], false).unwrap();
                    }
                }
            }
            let out = model
                .decode_step(&mut ctx, &mut cache, &vec![0u32; batch])
                .unwrap();
            cache.free(&mut ctx);
            out.cost.cpu_secs / out.cost.wall_secs()
        };
        let s1 = share(1);
        let s16 = share(16);
        assert!(s16 > s1, "cpu share must grow with batch");
        assert!(s16 > 0.35, "batch-16 cpu share {s16} (paper: ~50%)");
        assert!(s1 < 0.35, "batch-1 cpu share {s1}");
    }

    #[test]
    fn prefill_throughput_exceeds_decode_throughput() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let model =
            Model::new(&mut ctx, ModelId::Qwen1_5B, DequantVariant::CoalescedLut, 1).unwrap();
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, 4096).unwrap();
        let tokens = vec![0u32; 512];
        let out = model.prefill(&mut ctx, &mut cache, 0, &tokens).unwrap();
        let prefill_tps = 512.0 / out.cost.wall_secs();
        let step = model.decode_step(&mut ctx, &mut cache, &[0]).unwrap();
        let decode_tps = 1.0 / step.cost.wall_secs();
        assert!(
            prefill_tps > 8.0 * decode_tps,
            "prefill {prefill_tps} tok/s vs decode {decode_tps} tok/s"
        );
    }

    #[test]
    fn sharded_walk_is_bit_identical_and_charges_switches() {
        // Golden parity: a 2-shard schedule must not perturb the forward
        // pass — only add the session-switch time.
        let (mut ctx, model, mut cache) = functional_setup();
        let tok = Tokenizer::new();
        let tokens = tok.encode_with_bos("7*8=");
        let base_prefill = model.prefill(&mut ctx, &mut cache, 0, &tokens).unwrap();
        cache.broadcast_prompt(true);
        let base_step = model
            .decode_step(&mut ctx, &mut cache, &[100, 101, 102, 103])
            .unwrap();

        let mut ctx2 = NpuContext::new_sharded(DeviceProfile::v75(), ExecMode::Functional, 2);
        let mut sharded =
            Model::new(&mut ctx2, ModelId::Tiny, DequantVariant::CoalescedLut, 42).unwrap();
        sharded.set_layer_schedule(LayerSchedule {
            boundaries: vec![1],
            switch_secs: 30e-6,
            ..Default::default()
        });
        let mut cache2 = KvCache::new(&mut ctx2, &sharded.cfg, 4, 256).unwrap();
        let shard_prefill = sharded.prefill(&mut ctx2, &mut cache2, 0, &tokens).unwrap();
        cache2.broadcast_prompt(true);
        let shard_step = sharded
            .decode_step(&mut ctx2, &mut cache2, &[100, 101, 102, 103])
            .unwrap();

        assert_eq!(base_prefill.logits, shard_prefill.logits);
        assert_eq!(base_step.logits, shard_step.logits);
        // Two shards -> one boundary + one wrap-around per walk.
        let per_walk = 2.0 * 30e-6;
        assert!((shard_prefill.cost.switch_secs - per_walk).abs() < 1e-12);
        assert!((shard_step.cost.switch_secs - per_walk).abs() < 1e-12);
        assert!(base_step.cost.switch_secs == 0.0);
        assert!(
            (shard_step.cost.wall_secs() - base_step.cost.wall_secs() - per_walk).abs() < 1e-9,
            "sharded walk must cost exactly the switch overhead more"
        );
    }

    #[test]
    fn streamed_walk_is_bit_identical_and_charges_fetches() {
        // Hot/cold streaming is a placement + time-model change only: a
        // walk that streams layer 1 must produce the same logits and cost
        // exactly one DMA fetch more per pass.
        let (mut ctx, model, mut cache) = functional_setup();
        let tok = Tokenizer::new();
        let tokens = tok.encode_with_bos("6+6=");
        let base_prefill = model.prefill(&mut ctx, &mut cache, 0, &tokens).unwrap();
        cache.broadcast_prompt(true);
        let base_step = model
            .decode_step(&mut ctx, &mut cache, &[100, 101, 102, 103])
            .unwrap();

        let mut ctx2 = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let mut streamed = Model::new_streamed(
            &mut ctx2,
            ModelId::Tiny,
            DequantVariant::CoalescedLut,
            42,
            &[1],
        )
        .unwrap();
        let bytes = 1 << 20;
        streamed.set_layer_schedule(LayerSchedule {
            streamed: vec![1],
            stream_layer_bytes: bytes,
            ..Default::default()
        });
        let mut cache2 = KvCache::new(&mut ctx2, &streamed.cfg, 4, 256).unwrap();
        let s_prefill = streamed
            .prefill(&mut ctx2, &mut cache2, 0, &tokens)
            .unwrap();
        cache2.broadcast_prompt(true);
        let s_step = streamed
            .decode_step(&mut ctx2, &mut cache2, &[100, 101, 102, 103])
            .unwrap();

        assert_eq!(base_prefill.logits, s_prefill.logits);
        assert_eq!(base_step.logits, s_step.logits);
        let fetch = bytes as f64 / ctx2.device().ddr_stream_bw;
        assert!((s_step.cost.stream_secs - fetch).abs() < 1e-15);
        assert_eq!(base_step.cost.stream_secs, 0.0);
        assert!(
            (s_step.cost.wall_secs() - base_step.cost.wall_secs() - fetch).abs() < 1e-9,
            "streamed walk must cost exactly the fetch more under serial dispatch"
        );
        assert_eq!(s_step.stages.layers[1].weight_fetch_secs, fetch);
        assert_eq!(s_step.stages.layers[0].weight_fetch_secs, 0.0);
        // The cold layer's weights live in DDR staging, not session VA.
        assert!(ctx2.ddr_staged_bytes() > 0);
        assert!(ctx2.ddr_staged_bytes() < ctx.ddr_mapped_bytes());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_schedule_is_rejected() {
        let (_ctx, mut model, _cache) = functional_setup();
        model.set_layer_schedule(LayerSchedule {
            boundaries: vec![1, 1],
            switch_secs: 0.0,
            ..Default::default()
        });
    }

    #[test]
    fn kv_budget_exhaustion_surfaces() {
        let (mut ctx, model, _) = functional_setup();
        let mut tiny_cache = KvCache::new(&mut ctx, &model.cfg, 1, 2).unwrap();
        let tokens = vec![5u32, 6, 7];
        let err = model
            .prefill(&mut ctx, &mut tiny_cache, 0, &tokens)
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported { .. }));
    }
}
