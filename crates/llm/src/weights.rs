//! Synthetic model weights: generation, quantization and DDR residency.
//!
//! Deployment quantization follows the paper (Section 7.1): Q4_0 (4.5 bpw)
//! for attention and FFN gate/up projections, Q8_0 (8.5 bpw) for the
//! accuracy-critical FFN down projections. All NPU-resident matrices use
//! the tile-group layout and super-group coalescing unless a baseline
//! variant is requested.
//!
//! In functional mode (tiny models) real Gaussian weights are generated,
//! quantized and uploaded; float copies are retained for the CPU reference
//! path. In cost-only mode (paper-scale models) only shapes and DDR
//! residency are tracked — which is also where the Snapdragon 8 Gen 2
//! session-VA gate fires for 3B+ models.

use hexsim::f16::F16;
use hexsim::prelude::*;
use htpops::gemm::{prepare_weights, DequantVariant, PreparedWeights};
use tilequant::synth::gaussian_matrix;
use tilequant::{QuantScheme, QuantizedMatrix};

use crate::config::ModelConfig;

/// Float (dequantized) weights of one layer, for the CPU reference path.
#[derive(Clone, Debug)]
pub struct LayerFloatWeights {
    /// `[hidden, q_dim]` query projection.
    pub wq: Vec<f32>,
    /// `[hidden, kv_dim]` key projection.
    pub wk: Vec<f32>,
    /// `[hidden, kv_dim]` value projection.
    pub wv: Vec<f32>,
    /// `[q_dim, hidden]` output projection.
    pub wo: Vec<f32>,
    /// `[hidden, ffn]` gate projection.
    pub w_gate: Vec<f32>,
    /// `[hidden, ffn]` up projection.
    pub w_up: Vec<f32>,
    /// `[ffn, hidden]` down projection.
    pub w_down: Vec<f32>,
}

/// NPU-resident quantized weights of one layer.
#[derive(Debug)]
pub struct LayerNpuWeights {
    /// Query projection.
    pub wq: PreparedWeights,
    /// Key projection.
    pub wk: PreparedWeights,
    /// Value projection.
    pub wv: PreparedWeights,
    /// Output projection.
    pub wo: PreparedWeights,
    /// FFN gate projection.
    pub w_gate: PreparedWeights,
    /// FFN up projection.
    pub w_up: PreparedWeights,
    /// FFN down projection (Q8_0).
    pub w_down: PreparedWeights,
    /// Attention RMSNorm weights.
    pub attn_norm: Vec<F16>,
    /// FFN RMSNorm weights.
    pub ffn_norm: Vec<F16>,
}

/// All weights of a model instance.
#[derive(Debug)]
pub struct ModelWeights {
    /// Per-layer NPU weights.
    pub layers: Vec<LayerNpuWeights>,
    /// Final RMSNorm weights.
    pub final_norm: Vec<F16>,
    /// Embedding matrix `[vocab, hidden]` (CPU-resident; also the lm_head
    /// when embeddings are tied). Present in functional mode only.
    pub embed: Vec<f32>,
    /// Float copies for the reference path (functional mode only).
    pub float_layers: Vec<LayerFloatWeights>,
    /// Dequantization variant the weights are packed for.
    pub variant: DequantVariant,
    /// Session-resident double-buffered window that streamed (cold) layers
    /// are fetched into; `None` for fully resident builds.
    pub stream_window: Option<DdrBuffer>,
    /// Largest staged byte footprint of any single streamed layer (the
    /// window is twice this, one half per in-flight fetch).
    pub stream_layer_bytes: u64,
}

/// Generates, quantizes and uploads one matrix.
fn build_matrix(
    ctx: &mut NpuContext,
    k: usize,
    n: usize,
    scheme: QuantScheme,
    variant: DequantVariant,
    seed: u64,
    keep_float: bool,
) -> SimResult<(PreparedWeights, Vec<f32>)> {
    if ctx.mode == ExecMode::Functional {
        // Scaled for stable forward passes: std ~ 1/sqrt(k).
        let std = 1.0 / (k as f32).sqrt();
        let w = gaussian_matrix(k, n, seed, std, 0.0);
        let qm = QuantizedMatrix::quantize(&w, k, n, scheme, variant.required_layout());
        let float = if keep_float {
            qm.dequantize()
        } else {
            Vec::new()
        };
        let prepared = prepare_weights(ctx, &qm, variant)?;
        Ok((prepared, float))
    } else {
        let qm = QuantizedMatrix {
            k,
            n,
            scheme,
            layout: variant.required_layout(),
            bytes: Vec::new(),
        };
        let prepared = prepare_weights(ctx, &qm, variant)?;
        Ok((prepared, Vec::new()))
    }
}

impl ModelWeights {
    /// Builds all weights for a model configuration.
    ///
    /// Returns [`SimError::VaSpaceExceeded`] when the device session cannot
    /// map the model (the Snapdragon 8 Gen 2 / 3B gate of Figure 11).
    pub fn build(
        ctx: &mut NpuContext,
        cfg: &ModelConfig,
        variant: DequantVariant,
        seed: u64,
    ) -> SimResult<Self> {
        Self::build_streamed(ctx, cfg, variant, seed, &[])
    }

    /// Builds weights with the layers in `streamed` (ascending indices)
    /// parked in the CPU-owned DDR staging region instead of session VA —
    /// the hot/cold hierarchy of the weight-streaming path. Hot layers
    /// build exactly as [`ModelWeights::build`] does (same seeds, same
    /// bytes); cold layers consume no session space, and one
    /// double-buffered window of `2 * stream_layer_bytes` is mapped into
    /// session VA for the fetches to land in. With `streamed` empty this
    /// is bit-for-bit the resident build.
    pub fn build_streamed(
        ctx: &mut NpuContext,
        cfg: &ModelConfig,
        variant: DequantVariant,
        seed: u64,
        streamed: &[usize],
    ) -> SimResult<Self> {
        let functional = ctx.mode == ExecMode::Functional;
        let mut layers = Vec::with_capacity(cfg.layers);
        let mut float_layers = Vec::new();
        let mut stream_layer_bytes = 0u64;
        for l in 0..cfg.layers {
            let cold = streamed.contains(&l);
            let staged_before = ctx.ddr_staged_bytes();
            ctx.set_ddr_staging(cold);
            let s = seed.wrapping_add(1000 * l as u64);
            let (wq, fq) = build_matrix(
                ctx,
                cfg.hidden,
                cfg.q_dim(),
                QuantScheme::Q4_0,
                variant,
                s,
                functional,
            )?;
            let (wk, fk) = build_matrix(
                ctx,
                cfg.hidden,
                cfg.kv_dim(),
                QuantScheme::Q4_0,
                variant,
                s + 1,
                functional,
            )?;
            let (wv, fv) = build_matrix(
                ctx,
                cfg.hidden,
                cfg.kv_dim(),
                QuantScheme::Q4_0,
                variant,
                s + 2,
                functional,
            )?;
            let (wo, fo) = build_matrix(
                ctx,
                cfg.q_dim(),
                cfg.hidden,
                QuantScheme::Q4_0,
                variant,
                s + 3,
                functional,
            )?;
            let (w_gate, fg) = build_matrix(
                ctx,
                cfg.hidden,
                cfg.ffn,
                QuantScheme::Q4_0,
                variant,
                s + 4,
                functional,
            )?;
            let (w_up, fu) = build_matrix(
                ctx,
                cfg.hidden,
                cfg.ffn,
                QuantScheme::Q4_0,
                variant,
                s + 5,
                functional,
            )?;
            // FFN down in Q8_0, "as existing work indicates their importance
            // in preserving model accuracy" (Section 7.1).
            let (w_down, fd) = build_matrix(
                ctx,
                cfg.ffn,
                cfg.hidden,
                QuantScheme::Q8_0,
                variant,
                s + 6,
                functional,
            )?;
            ctx.set_ddr_staging(false);
            if cold {
                let staged = ctx.ddr_staged_bytes() - staged_before;
                stream_layer_bytes = stream_layer_bytes.max(staged);
            }
            let attn_norm = vec![F16::ONE; cfg.hidden];
            let ffn_norm = vec![F16::ONE; cfg.hidden];
            layers.push(LayerNpuWeights {
                wq,
                wk,
                wv,
                wo,
                w_gate,
                w_up,
                w_down,
                attn_norm,
                ffn_norm,
            });
            if functional {
                float_layers.push(LayerFloatWeights {
                    wq: fq,
                    wk: fk,
                    wv: fv,
                    wo: fo,
                    w_gate: fg,
                    w_up: fu,
                    w_down: fd,
                });
            }
        }
        let final_norm = vec![F16::ONE; cfg.hidden];
        let embed = if functional {
            gaussian_matrix(cfg.vocab, cfg.hidden, seed ^ 0xE3BED, 0.25, 0.0)
        } else {
            Vec::new()
        };
        // The streaming window is session-resident: fetches of cold layers
        // land here, two slots deep so layer N+1's fetch overlaps layer N.
        let stream_window = if stream_layer_bytes > 0 {
            Some(ctx.ddr_alloc(2 * stream_layer_bytes)?)
        } else {
            None
        };
        Ok(ModelWeights {
            layers,
            final_norm,
            embed,
            float_layers,
            variant,
            stream_window,
            stream_layer_bytes,
        })
    }

    /// Generates the *unquantized* float layers and embedding for a config
    /// (no NPU context, no quantization) — the raw material quantization-
    /// impact experiments quantize with different schemes.
    pub fn generate_float(cfg: &ModelConfig, seed: u64) -> (Vec<LayerFloatWeights>, Vec<f32>) {
        Self::generate_float_with_outliers(cfg, seed, 0.0)
    }

    /// Like [`ModelWeights::generate_float`] but with a fraction of
    /// outlier weights in hot channels (the structure that breaks coarse
    /// quantization; used by the Table 1 reproduction).
    pub fn generate_float_with_outliers(
        cfg: &ModelConfig,
        seed: u64,
        outlier_frac: f32,
    ) -> (Vec<LayerFloatWeights>, Vec<f32>) {
        let mut layers = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let s = seed.wrapping_add(1000 * l as u64);
            let g = |k: usize, n: usize, off: u64| {
                gaussian_matrix(k, n, s + off, 1.0 / (k as f32).sqrt(), outlier_frac)
            };
            layers.push(LayerFloatWeights {
                wq: g(cfg.hidden, cfg.q_dim(), 0),
                wk: g(cfg.hidden, cfg.kv_dim(), 1),
                wv: g(cfg.hidden, cfg.kv_dim(), 2),
                wo: g(cfg.q_dim(), cfg.hidden, 3),
                w_gate: g(cfg.hidden, cfg.ffn, 4),
                w_up: g(cfg.hidden, cfg.ffn, 5),
                w_down: g(cfg.ffn, cfg.hidden, 6),
            });
        }
        let embed = gaussian_matrix(cfg.vocab, cfg.hidden, seed ^ 0xE3BED, 0.25, 0.0);
        (layers, embed)
    }

    /// Embedding row for a token (functional mode).
    ///
    /// # Panics
    ///
    /// Panics in cost-only mode or for out-of-range tokens.
    pub fn embed_row(&self, cfg: &ModelConfig, token: u32) -> Vec<F16> {
        let t = token as usize;
        assert!(t < cfg.vocab, "token {t} out of vocabulary");
        // Chunked conversion is bit-identical to elementwise `from_f32`
        // (pinned by hexsim's exhaustive differential tests).
        F16::vec_from_f32(&self.embed[t * cfg.hidden..(t + 1) * cfg.hidden])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelId};

    #[test]
    fn tiny_model_builds_functionally() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let cfg = ModelConfig::for_id(ModelId::Tiny);
        let w = ModelWeights::build(&mut ctx, &cfg, DequantVariant::CoalescedLut, 7).unwrap();
        assert_eq!(w.layers.len(), 2);
        assert_eq!(w.float_layers.len(), 2);
        assert_eq!(w.float_layers[0].wq.len(), 64 * 64);
        assert_eq!(w.embed.len(), 256 * 64);
        // DDR now holds all seven matrices per layer.
        assert!(ctx.ddr_mapped_bytes() > 0);
    }

    #[test]
    fn paper_model_builds_shape_only() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let cfg = ModelConfig::for_id(ModelId::Qwen1_5B);
        let w = ModelWeights::build(&mut ctx, &cfg, DequantVariant::CoalescedLut, 7).unwrap();
        assert_eq!(w.layers.len(), 28);
        assert!(w.float_layers.is_empty());
        // Mapped bytes should be close to the analytic weight footprint.
        let analytic = cfg.npu_weight_bytes() as f64;
        let mapped = ctx.ddr_mapped_bytes() as f64;
        assert!(
            (mapped - analytic).abs() / analytic < 0.05,
            "mapped {mapped} vs analytic {analytic}"
        );
    }

    #[test]
    fn qwen3b_fails_on_v73_session() {
        // Figure 11's footnote: 3B+ models cannot run on Snapdragon 8 Gen 2
        // due to the session VA limit.
        let mut ctx = NpuContext::new(DeviceProfile::v73(), ExecMode::CostOnly);
        let cfg = ModelConfig::for_id(ModelId::Qwen3B);
        let err = ModelWeights::build(&mut ctx, &cfg, DequantVariant::CoalescedLut, 7).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
    }

    #[test]
    fn qwen1_5b_fits_on_v73_session() {
        let mut ctx = NpuContext::new(DeviceProfile::v73(), ExecMode::CostOnly);
        let cfg = ModelConfig::for_id(ModelId::Qwen1_5B);
        assert!(ModelWeights::build(&mut ctx, &cfg, DequantVariant::CoalescedLut, 7).is_ok());
    }

    #[test]
    fn streamed_build_parks_cold_layers_outside_session_va() {
        let mut resident = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let cfg = ModelConfig::for_id(ModelId::Qwen1_5B);
        ModelWeights::build(&mut resident, &cfg, DequantVariant::CoalescedLut, 7).unwrap();

        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let cold: Vec<usize> = (1..cfg.layers - 1).collect();
        let w =
            ModelWeights::build_streamed(&mut ctx, &cfg, DequantVariant::CoalescedLut, 7, &cold)
                .unwrap();
        assert!(w.stream_window.is_some());
        assert!(w.stream_layer_bytes > 0);
        // Staging holds the 26 cold layers; session VA holds only the two
        // hot layers plus the double-buffered window.
        assert_eq!(
            ctx.ddr_staged_bytes() + ctx.ddr_mapped_bytes(),
            resident.ddr_mapped_bytes() + 2 * w.stream_layer_bytes
        );
        assert!(ctx.ddr_mapped_bytes() < resident.ddr_mapped_bytes() / 5);
    }

    #[test]
    fn qwen3b_streams_onto_v73_session() {
        // The same model the resident build rejects above maps once its
        // cold layers stream: session VA holds 2 hot layers + the window.
        let mut ctx = NpuContext::new(DeviceProfile::v73(), ExecMode::CostOnly);
        let cfg = ModelConfig::for_id(ModelId::Qwen3B);
        let cold: Vec<usize> = (1..cfg.layers - 1).collect();
        let w =
            ModelWeights::build_streamed(&mut ctx, &cfg, DequantVariant::CoalescedLut, 7, &cold)
                .unwrap();
        assert!(w.stream_window.is_some());
        assert!(ctx.ddr_mapped_bytes() <= DeviceProfile::v73().session_va_bytes);
    }

    #[test]
    fn empty_stream_set_is_the_resident_build() {
        let mut a = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let cfg = ModelConfig::for_id(ModelId::Tiny);
        let wa = ModelWeights::build(&mut a, &cfg, DequantVariant::CoalescedLut, 7).unwrap();
        let mut b = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let wb = ModelWeights::build_streamed(&mut b, &cfg, DequantVariant::CoalescedLut, 7, &[])
            .unwrap();
        assert!(wb.stream_window.is_none());
        assert_eq!(wb.stream_layer_bytes, 0);
        assert_eq!(a.ddr_mapped_bytes(), b.ddr_mapped_bytes());
        assert_eq!(b.ddr_staged_bytes(), 0);
        assert_eq!(wa.float_layers[0].wq, wb.float_layers[0].wq);
    }

    #[test]
    fn embed_row_shape() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let cfg = ModelConfig::for_id(ModelId::Tiny);
        let w = ModelWeights::build(&mut ctx, &cfg, DequantVariant::CoalescedLut, 7).unwrap();
        let row = w.embed_row(&cfg, 42);
        assert_eq!(row.len(), 64);
        // Deterministic across rebuilds with the same seed.
        let w2 = ModelWeights::build(&mut ctx, &cfg, DequantVariant::CoalescedLut, 7).unwrap();
        assert_eq!(row, w2.embed_row(&cfg, 42));
    }
}
