//! Deterministic byte-level tokenizer for the synthetic math workloads.
//!
//! Real subword tokenizers are checkpoint artifacts; this reproduction's
//! workloads are synthetic ASCII math, so a byte-level vocabulary with a
//! handful of special tokens is faithful to the throughput picture (one
//! token per byte) and keeps everything dependency-free and reversible.

/// Beginning-of-sequence token id.
pub const BOS: u32 = 0;
/// End-of-sequence token id.
pub const EOS: u32 = 1;
/// Separator between reasoning steps (maps to '\n').
pub const STEP_SEP: u32 = 2;
/// First byte token id (byte `b` encodes as `BYTE_BASE + b`).
pub const BYTE_BASE: u32 = 4;

/// Byte-level tokenizer with reserved control ids.
#[derive(Clone, Debug, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Creates the tokenizer.
    pub fn new() -> Self {
        Tokenizer
    }

    /// Vocabulary size (256 bytes + control ids, padded to 260).
    pub fn vocab_size(&self) -> usize {
        260
    }

    /// Encodes text to token ids (no BOS/EOS added).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.bytes()
            .map(|b| {
                if b == b'\n' {
                    STEP_SEP
                } else {
                    BYTE_BASE + b as u32
                }
            })
            .collect()
    }

    /// Encodes with BOS prepended.
    pub fn encode_with_bos(&self, text: &str) -> Vec<u32> {
        let mut out = vec![BOS];
        out.extend(self.encode(text));
        out
    }

    /// Decodes token ids back to text; control tokens other than
    /// [`STEP_SEP`] are dropped.
    pub fn decode(&self, tokens: &[u32]) -> String {
        let mut bytes = Vec::with_capacity(tokens.len());
        for &t in tokens {
            if t == STEP_SEP {
                bytes.push(b'\n');
            } else if (BYTE_BASE..BYTE_BASE + 256).contains(&t) {
                bytes.push((t - BYTE_BASE) as u8);
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Whether a token terminates generation.
    pub fn is_eos(&self, token: u32) -> bool {
        token == EOS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ascii() {
        let t = Tokenizer::new();
        let text = "compute 17 * 3 + 4 = 55";
        assert_eq!(t.decode(&t.encode(text)), text);
    }

    #[test]
    fn newline_maps_to_step_separator() {
        let t = Tokenizer::new();
        let toks = t.encode("a\nb");
        assert_eq!(toks[1], STEP_SEP);
        assert_eq!(t.decode(&toks), "a\nb");
    }

    #[test]
    fn bos_and_eos_are_control() {
        let t = Tokenizer::new();
        let toks = t.encode_with_bos("x");
        assert_eq!(toks[0], BOS);
        assert_eq!(t.decode(&toks), "x");
        assert!(t.is_eos(EOS));
        assert!(!t.is_eos(BYTE_BASE));
    }

    #[test]
    fn vocab_covers_all_bytes() {
        let t = Tokenizer::new();
        assert!(t.vocab_size() >= (BYTE_BASE as usize) + 256);
        let all: Vec<u8> = (0u8..=255).collect();
        let text: String = String::from_utf8_lossy(&all).into_owned();
        let decoded = t.decode(&t.encode(&text));
        // Lossy UTF-8 round trip must at least preserve ASCII.
        assert!(decoded.contains('A'));
    }
}
