//! Perplexity and logit-divergence measurement.
//!
//! The paper's Tables 1/4/5 report Wikitext-2 perplexity for quantization
//! and attention variants. This reproduction measures the same quantities
//! on the tiny functional model over a synthetic token stream: perplexity
//! via teacher forcing on the reference forward, and (the more sensitive
//! instrument at tiny scale) the KL divergence between variant logits and
//! the FP32 baseline's.

use crate::config::ModelConfig;
use crate::cpu_ref::{forward_float, forward_reference};
use crate::weights::{LayerFloatWeights, ModelWeights};

/// Softmax in f64.
fn softmax_f64(logits: &[f32]) -> Vec<f64> {
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let exps: Vec<f64> = logits.iter().map(|&x| ((x as f64) - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Teacher-forced perplexity of a token stream under the reference forward
/// with the given weights.
///
/// # Panics
///
/// Panics if `tokens` has fewer than two entries.
pub fn perplexity(cfg: &ModelConfig, weights: &ModelWeights, tokens: &[u32]) -> f64 {
    assert!(tokens.len() >= 2);
    let logits = forward_reference(cfg, weights, tokens);
    ppl_from_logits(cfg, &logits, tokens)
}

/// Teacher-forced perplexity over explicit float weight variants.
///
/// # Panics
///
/// Panics if `tokens` has fewer than two entries.
pub fn perplexity_float(
    cfg: &ModelConfig,
    float_layers: &[LayerFloatWeights],
    embed: &[f32],
    tokens: &[u32],
) -> f64 {
    assert!(tokens.len() >= 2);
    let logits = forward_float(cfg, float_layers, embed, tokens);
    ppl_from_logits(cfg, &logits, tokens)
}

fn ppl_from_logits(cfg: &ModelConfig, logits: &[f32], tokens: &[u32]) -> f64 {
    let mut nll = 0.0f64;
    let n = tokens.len() - 1;
    for i in 0..n {
        let p = softmax_f64(&logits[i * cfg.vocab..(i + 1) * cfg.vocab]);
        let target = tokens[i + 1] as usize;
        nll -= p[target].max(1e-300).ln();
    }
    (nll / n as f64).exp()
}

/// Mean KL divergence `KL(p_base || p_variant)` between two logit
/// sequences, per position. The sensitive instrument for ranking
/// quantization/attention variants at tiny model scale.
///
/// # Panics
///
/// Panics if lengths differ or are not multiples of `vocab`.
pub fn mean_kl(base_logits: &[f32], variant_logits: &[f32], vocab: usize) -> f64 {
    assert_eq!(base_logits.len(), variant_logits.len());
    assert_eq!(base_logits.len() % vocab, 0);
    let rows = base_logits.len() / vocab;
    let mut total = 0.0f64;
    for r in 0..rows {
        let p = softmax_f64(&base_logits[r * vocab..(r + 1) * vocab]);
        let q = softmax_f64(&variant_logits[r * vocab..(r + 1) * vocab]);
        let mut kl = 0.0f64;
        for (pi, qi) in p.iter().zip(&q) {
            if *pi > 0.0 {
                kl += pi * (pi / qi.max(1e-300)).ln();
            }
        }
        total += kl;
    }
    total / rows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelId;
    use hexsim::prelude::*;
    use htpops::gemm::DequantVariant;

    fn weights(seed: u64) -> (ModelConfig, ModelWeights) {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let cfg = ModelConfig::for_id(ModelId::Tiny);
        let w = ModelWeights::build(&mut ctx, &cfg, DequantVariant::CoalescedLut, seed).unwrap();
        (cfg, w)
    }

    #[test]
    fn perplexity_is_finite_and_near_uniform_for_random_model() {
        let (cfg, w) = weights(3);
        let tokens: Vec<u32> = (0..48).map(|i| 4 + (i * 7) % 200).collect();
        let ppl = perplexity(&cfg, &w, &tokens);
        assert!(ppl.is_finite() && ppl > 1.0);
        // An untrained model should be within an order of magnitude of the
        // uniform bound (vocab = 260).
        assert!(ppl < 26_000.0, "ppl {ppl}");
    }

    #[test]
    fn kl_zero_for_identical_logits() {
        let logits = vec![0.1f32, 0.4, -0.2, 0.9];
        assert!(mean_kl(&logits, &logits, 4).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_and_monotone_in_perturbation() {
        let base: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let small: Vec<f32> = base.iter().map(|v| v + 0.01).collect();
        let mut large = base.clone();
        large[3] += 1.0;
        large[7] -= 1.0;
        let kl_small = mean_kl(&base, &small, 16);
        let kl_large = mean_kl(&base, &large, 16);
        assert!(kl_small >= 0.0);
        assert!(kl_large > kl_small * 10.0);
    }
}
