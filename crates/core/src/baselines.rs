//! Analytic baselines for Figure 13: llama.cpp's OpenCL backend on the
//! Adreno GPU, QNN's FP16 deployment, and a mobile-CPU reference.
//!
//! None of these can be rebuilt from source here (one targets real Adreno
//! silicon, one is closed, one is the host fallback), so all are modelled
//! as rooflines with constants taken from public Adreno 750 specifications
//! and the paper's measured curves. What matters for the reproduction are
//! the *crossovers*: the GPU edges out the NPU at batch 1 but saturates
//! early, QNN's FP16 prefill is comparable to ours while its decode pays
//! the 3.6x weight-size penalty of FP16 over Q4, and the CPU path trails
//! everything batched.
//!
//! These structs only carry the roofline constants and arithmetic; the
//! uniform execution interface (and the only place callers should name
//! them) is [`crate::backend`], where each implements
//! [`crate::backend::Backend`].

use edgellm::config::{ModelConfig, ModelId};
use serde::{Deserialize, Serialize};

/// llama.cpp OpenCL (Adreno GPU) baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GpuBaseline {
    /// Effective memory bandwidth achieved by the Q4_0 GEMV kernels, B/s.
    /// (Shared LPDDR5x peaks near 70 GB/s; mobile GPU kernels sustain a
    /// fraction of it.)
    pub eff_bw: f64,
    /// Effective FP16/FP32 mixed GEMM throughput during decode, FLOP/s
    /// (small-m kernels; llama.cpp's portable kernels sustain a few
    /// percent of the Adreno 750's ~4.6 TFLOPS peak).
    pub eff_flops: f64,
    /// Effective GEMM throughput during prefill, FLOP/s (large-m kernels
    /// are far more efficient).
    pub eff_prefill_flops: f64,
    /// Fixed per-step driver/dispatch overhead, seconds.
    pub step_overhead: f64,
}

impl Default for GpuBaseline {
    fn default() -> Self {
        GpuBaseline {
            eff_bw: 14.0e9,
            eff_flops: 120.0e9,
            eff_prefill_flops: 1.6e12,
            step_overhead: 3.0e-3,
        }
    }
}

impl GpuBaseline {
    /// Bytes the decoder streams per step (Q4_0 weights + KV).
    fn step_bytes(cfg: &ModelConfig, batch: usize, ctx_len: usize) -> f64 {
        let weights = cfg.npu_weight_bytes() as f64;
        let kv = (2 * cfg.layers * cfg.kv_dim() * ctx_len * 2 * batch) as f64;
        weights + kv
    }

    /// FLOPs per decode step.
    fn step_flops(cfg: &ModelConfig, batch: usize) -> f64 {
        // ~2 flops per weight per row, plus the vocabulary projection.
        let body = 2.0 * cfg.float_params();
        let head = 2.0 * (cfg.vocab * cfg.hidden) as f64;
        (body + head) * batch as f64
    }

    /// Decode throughput in tokens/second.
    pub fn decode_tps(&self, model: ModelId, batch: usize, ctx_len: usize) -> f64 {
        let cfg = ModelConfig::for_id(model);
        let t_mem = Self::step_bytes(&cfg, batch, ctx_len) / self.eff_bw;
        let t_compute = Self::step_flops(&cfg, batch) / self.eff_flops;
        let step = t_mem.max(t_compute) + self.step_overhead;
        batch as f64 / step
    }

    /// Prefill throughput in tokens/second.
    pub fn prefill_tps(&self, model: ModelId, prompt_len: usize) -> f64 {
        let cfg = ModelConfig::for_id(model);
        // Compute-bound GEMM over the prompt + quadratic attention.
        let body = 2.0 * cfg.float_params() * prompt_len as f64;
        let attn = 2.0
            * (cfg.heads * cfg.head_dim) as f64
            * (prompt_len * prompt_len) as f64
            * cfg.layers as f64;
        let t = (body + attn) / self.eff_prefill_flops + Self::step_bytes(&cfg, 1, 0) / self.eff_bw;
        prompt_len as f64 / t
    }
}

/// QNN FP16 deployment baseline (closed-source; static-graph NPU path).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QnnFp16Baseline {
    /// Fraction of HMX peak QNN's FP16 prefill sustains.
    pub prefill_efficiency: f64,
    /// DMA bandwidth available to its FP16 decode, B/s.
    pub dma_bw: f64,
    /// HMX FP16 peak of the device, FLOP/s.
    pub hmx_flops: f64,
}

impl Default for QnnFp16Baseline {
    fn default() -> Self {
        QnnFp16Baseline {
            prefill_efficiency: 0.35,
            dma_bw: 60.0e9,
            hmx_flops: 12.03e12,
        }
    }
}

impl QnnFp16Baseline {
    /// FP16 weight bytes of the model (2 bytes per float parameter — the
    /// 3.6x decode-traffic penalty over the Q4 deployment).
    fn weight_bytes(cfg: &ModelConfig) -> f64 {
        cfg.float_params() * 2.0
    }

    /// Decode throughput (batch 1; QNN's static graphs preclude the
    /// dynamic batching test-time scaling needs — the paper's motivation
    /// for bypassing it).
    pub fn decode_tps(&self, model: ModelId) -> f64 {
        let cfg = ModelConfig::for_id(model);
        let t = Self::weight_bytes(&cfg) / self.dma_bw;
        1.0 / t
    }

    /// Prefill throughput in tokens/second.
    pub fn prefill_tps(&self, model: ModelId, prompt_len: usize) -> f64 {
        let cfg = ModelConfig::for_id(model);
        let flops = 2.0 * (Self::weight_bytes(&cfg) / 2.0) * prompt_len as f64;
        let t = flops / (self.hmx_flops * self.prefill_efficiency)
            + Self::weight_bytes(&cfg) / self.dma_bw;
        prompt_len as f64 / t
    }
}

/// Mobile-CPU reference baseline: the paper runtime's host fallback path
/// (every operator on the big cores, the placement `edgellm::cpu_ref`
/// implements functionally), modelled as a roofline over the four big
/// cores' FLOP/s and their LPDDR bandwidth share.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CpuRefBackend {
    /// Sustained CPU GEMV read bandwidth during decode, B/s (the big-core
    /// cluster's share of LPDDR5x under a streaming Q4 GEMV).
    pub eff_bw: f64,
    /// Effective FP32 throughput during decode, FLOP/s.
    pub eff_flops: f64,
    /// Effective FP32 GEMM throughput during prefill, FLOP/s (large-m
    /// kernels amortize loads but stay far below NPU tensor rates).
    pub eff_prefill_flops: f64,
    /// Fixed per-step scheduling overhead, seconds.
    pub step_overhead: f64,
}

impl Default for CpuRefBackend {
    fn default() -> Self {
        CpuRefBackend {
            eff_bw: 10.0e9,
            eff_flops: 50.0e9,
            eff_prefill_flops: 150.0e9,
            step_overhead: 1.0e-3,
        }
    }
}

impl CpuRefBackend {
    /// Bytes streamed per decode step (Q4 weights + FP16 KV).
    fn step_bytes(cfg: &ModelConfig, batch: usize, ctx_len: usize) -> f64 {
        let weights = cfg.npu_weight_bytes() as f64;
        let kv = (2 * cfg.layers * cfg.kv_dim() * ctx_len * 2 * batch) as f64;
        weights + kv
    }

    /// Decode throughput in tokens/second.
    pub fn decode_tps(&self, model: ModelId, batch: usize, ctx_len: usize) -> f64 {
        let cfg = ModelConfig::for_id(model);
        let flops =
            (2.0 * cfg.float_params() + 2.0 * (cfg.vocab * cfg.hidden) as f64) * batch as f64;
        let t_mem = Self::step_bytes(&cfg, batch, ctx_len) / self.eff_bw;
        let t_compute = flops / self.eff_flops;
        batch as f64 / (t_mem.max(t_compute) + self.step_overhead)
    }

    /// Prefill throughput in tokens/second.
    pub fn prefill_tps(&self, model: ModelId, prompt_len: usize) -> f64 {
        let cfg = ModelConfig::for_id(model);
        let body = 2.0 * cfg.float_params() * prompt_len as f64;
        let t = body / self.eff_prefill_flops + Self::step_bytes(&cfg, 1, 0) / self.eff_bw;
        prompt_len as f64 / t
    }
}
