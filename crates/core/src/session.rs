//! FastRPC/rpcmem session: the CPU <-> NPU runtime protocol.
//!
//! The paper's runtime (Section 6) starts a remote NPU session over
//! FastRPC, then switches to a shared-memory command channel: the CPU
//! writes a request descriptor into rpcmem, cleans the cache (one-way
//! coherence), and an NPU-side thread polls the region for work. Responses
//! flow back without maintenance because NPU writes are CPU-visible. This
//! module reproduces that protocol over [`hexsim::shared::SharedBuffer`],
//! including the failure mode the strict coherence model catches: skipping
//! `cache_clean` delivers stale descriptors.
//!
//! `MultiSession` implements the paper's sketched workaround (Section 8)
//! for the 32-bit per-session VA limit: weights spread across several
//! sessions, each with its own VA budget. [`ShardPlan`] turns that
//! allocator into an executable placement — contiguous layer ranges per
//! session plus a KV-cache home — which [`crate::backend::Backend::fits`]
//! reports as a shard count and [`crate::pipeline::measure_decode_sharded`]
//! actually runs, charging [`SESSION_SWITCH_SECS`] at every shard
//! boundary of the walk.
//!
//! On top of the command transport, this module re-exports the
//! continuous-batching [`DecodeSession`] (implemented in
//! `edgellm::decode_session`, where the model and KV cache live): the
//! `admit`/`step`/`retire` decode API whose dynamic batches are the
//! paper's argument for bypassing QNN's static graphs.
//!
//! # Examples
//!
//! Plan a deployment that exceeds one session and lower it to the layer
//! walk the forward pass executes:
//!
//! ```
//! use edgellm::config::{ModelConfig, ModelId};
//! use hexsim::prelude::*;
//! use npuscale::session::ShardPlan;
//!
//! // Qwen-7B (~4.6 GB of Q4/Q8 weights) on the paper's primary device:
//! // two 4 GiB sessions.
//! let cfg = ModelConfig::for_id(ModelId::Qwen7B);
//! let va = DeviceProfile::v75().session_va_bytes;
//! let plan = ShardPlan::build(&cfg, va, 1, 1024).unwrap();
//! assert_eq!(plan.sessions(), 2);
//!
//! // The plan lowers to the schedule the model's layer walk consumes:
//! // decode crosses one shard boundary and wraps back, paying two
//! // session switches per step.
//! let schedule = plan.schedule();
//! assert_eq!(schedule.boundaries.len(), 1);
//! assert_eq!(schedule.switches_per_pass(), 2);
//! assert!(plan.switch_overhead_secs() < 100e-6);
//!
//! // Per-session byte totals respect the VA cap.
//! for &bytes in &plan.session_bytes {
//!     assert!(bytes <= va);
//! }
//! ```

use hexsim::cost::Engine;
use hexsim::prelude::*;
use serde::{Deserialize, Serialize};

pub use edgellm::decode_session::{DecodeSession, FinishedSeq, SeqId};

/// Command opcodes the CPU can enqueue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpCode {
    /// No operation (used for liveness checks).
    Nop,
    /// Matrix multiply with streamed dequantization.
    MatMul,
    /// FlashAttention over a KV range.
    Attention,
    /// RMSNorm / RoPE / activation (grouped as "misc").
    Misc,
}

/// A command descriptor as written into the shared ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Monotonic sequence number.
    pub seq: u32,
    /// Operation.
    pub op: OpCode,
    /// Opaque argument word (tensor handle, length, ...).
    pub arg: u32,
}

const REQ_BYTES: usize = 12;
const RING_SLOTS: usize = 64;
const HDR_BYTES: usize = 8; // head (u32) + tail (u32).

fn encode(req: &Request) -> [u8; REQ_BYTES] {
    let mut out = [0u8; REQ_BYTES];
    out[0..4].copy_from_slice(&req.seq.to_le_bytes());
    out[4..8].copy_from_slice(&(req.op as u32).to_le_bytes());
    out[8..12].copy_from_slice(&req.arg.to_le_bytes());
    out
}

fn decode(bytes: &[u8]) -> Request {
    let seq = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let op = match u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) {
        0 => OpCode::Nop,
        1 => OpCode::MatMul,
        2 => OpCode::Attention,
        _ => OpCode::Misc,
    };
    let arg = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    Request { seq, op, arg }
}

/// Session tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Whether stale reads fault (strict) or return garbage (lenient).
    pub strict_coherence: bool,
    /// One-way CPU->NPU submission latency over the polling channel,
    /// seconds (shared-memory polling beats default FastRPC; ~10 us).
    pub submit_latency: f64,
    /// Completion-notification latency, seconds.
    pub complete_latency: f64,
    /// Double-buffered dispatch: when the CPU submitted the next request
    /// while the current one executed (the request was already queued
    /// when the previous dispatch finished), the NPU-side poller's
    /// completion overhead hides behind that execution and is not charged
    /// — the paper's Section 7.2.2 async-dispatch direction. Off by
    /// default so every historical number reproduces.
    ///
    /// This is the *transport-level* knob on the explicit command ring;
    /// the measurement pipelines model the same depth-2 ring analytically
    /// at step level (`edgellm::overlap` schedules each layer's
    /// `dispatch_secs` one layer ahead of its compute), because the
    /// forward pass does not yet drive `NpuSession` per op. Unifying the
    /// two so transport and cost model share one code path is a roadmap
    /// item; until then this knob affects `NpuSession` charges only, not
    /// the "Ours (async)" figures.
    pub double_buffered: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            strict_coherence: true,
            submit_latency: 10e-6,
            complete_latency: 8e-6,
            double_buffered: false,
        }
    }
}

/// One CPU <-> NPU command session over shared memory.
pub struct NpuSession {
    ring: SharedBuffer,
    cfg: SessionConfig,
    next_seq: u32,
    head: u32,
    tail: u32,
    /// Whether the next request to dispatch was already in the ring when
    /// the previous dispatch finished (its descriptor prefetched into the
    /// second buffer, so a double-buffered poller picks it up for free).
    primed: bool,
    /// Completed requests, in order.
    pub completed: Vec<Request>,
}

impl NpuSession {
    /// Opens a session: allocates the command ring and "starts" the NPU
    /// poller (modelled synchronously; the polling thread's work is charged
    /// per dispatch).
    pub fn open(cfg: SessionConfig) -> Self {
        let ring = SharedBuffer::new(1, HDR_BYTES + RING_SLOTS * REQ_BYTES, cfg.strict_coherence);
        NpuSession {
            ring,
            cfg,
            next_seq: 1,
            head: 0,
            tail: 0,
            primed: false,
            completed: Vec::new(),
        }
    }

    /// Number of requests currently queued.
    pub fn pending(&self) -> u32 {
        self.head - self.tail
    }

    /// CPU side: enqueues a request descriptor. `clean` controls whether
    /// the cache maintenance step is performed — passing `false` models the
    /// bug the strict coherence check exists to catch.
    pub fn submit(
        &mut self,
        ctx: &mut NpuContext,
        op: OpCode,
        arg: u32,
        clean: bool,
    ) -> SimResult<u32> {
        if self.pending() as usize >= RING_SLOTS {
            return Err(SimError::Unsupported {
                reason: "command ring full".to_string(),
            });
        }
        let req = Request {
            seq: self.next_seq,
            op,
            arg,
        };
        self.next_seq += 1;
        let slot = (self.head as usize) % RING_SLOTS;
        self.ring
            .cpu_write(HDR_BYTES + slot * REQ_BYTES, &encode(&req));
        self.head += 1;
        let head = self.head;
        self.ring.cpu_write(0, &head.to_le_bytes());
        if clean {
            self.ring.cache_clean();
        }
        ctx.cost.charge_secs(Engine::Cpu, self.cfg.submit_latency);
        Ok(req.seq)
    }

    /// NPU side: polls the ring and dispatches at most one request.
    /// Returns the request if one was executed.
    pub fn poll_dispatch(&mut self, ctx: &mut NpuContext) -> SimResult<Option<Request>> {
        // The poller reads the head pointer from shared memory.
        let head_bytes = self.ring.npu_read(0, 4)?;
        let head = u32::from_le_bytes([head_bytes[0], head_bytes[1], head_bytes[2], head_bytes[3]]);
        if head == self.tail {
            return Ok(None);
        }
        let slot = (self.tail as usize) % RING_SLOTS;
        let req = decode(
            self.ring
                .npu_read(HDR_BYTES + slot * REQ_BYTES, REQ_BYTES)?,
        );
        self.tail += 1;
        // Completion: NPU writes are CPU-visible without maintenance.
        let tail = self.tail;
        self.ring.npu_write(4, &tail.to_le_bytes());
        // A double-buffered ring hides the poller's completion overhead
        // for requests that were already queued while the previous one
        // executed (the CPU submitted layer N+1 during layer N); only the
        // pipeline-fill dispatch pays it.
        if !(self.cfg.double_buffered && self.primed) {
            ctx.cost
                .charge_secs(Engine::Scalar, self.cfg.complete_latency);
        }
        self.primed = head != self.tail;
        self.completed.push(req);
        Ok(Some(req))
    }
}

/// Multiple NPU sessions splitting a weight set across VA spaces — the
/// paper's Section 8 workaround for models that exceed one session's
/// 32-bit address space.
pub struct MultiSession {
    /// Per-session VA capacity in bytes.
    pub va_per_session: u64,
    /// Bytes mapped into each open session.
    pub mapped: Vec<u64>,
}

impl MultiSession {
    /// Creates a multi-session allocator.
    pub fn new(va_per_session: u64) -> Self {
        MultiSession {
            va_per_session,
            mapped: vec![0],
        }
    }

    /// Maps a buffer, opening new sessions as needed. Returns the session
    /// index the buffer landed in.
    pub fn map(&mut self, bytes: u64) -> SimResult<usize> {
        if bytes > self.va_per_session {
            return Err(SimError::VaSpaceExceeded {
                capacity: self.va_per_session,
                mapped: 0,
                requested: bytes,
            });
        }
        for (i, used) in self.mapped.iter_mut().enumerate() {
            if *used + bytes <= self.va_per_session {
                *used += bytes;
                return Ok(i);
            }
        }
        self.mapped.push(bytes);
        Ok(self.mapped.len() - 1)
    }

    /// Number of open sessions.
    pub fn sessions(&self) -> usize {
        self.mapped.len()
    }
}

/// Default CPU-side cost of switching command dispatch between NPU
/// sessions, in seconds: a FastRPC handle swap plus cache maintenance on
/// the new session's command ring. A few of these per decode step is the
/// price the paper's Section 8 workaround pays for breaking the 32-bit
/// VA ceiling; it is small next to the ~1.4 ms of per-layer dispatch a
/// 3B model already spends.
pub const SESSION_SWITCH_SECS: f64 = 30e-6;

/// One contiguous run of transformer layers resident in one NPU session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerShard {
    /// Session index holding these layers' weights.
    pub session: usize,
    /// First layer of the run.
    pub start: usize,
    /// One past the last layer of the run.
    pub end: usize,
}

impl LayerShard {
    /// Number of layers in the shard.
    pub fn layers(&self) -> usize {
        self.end - self.start
    }
}

/// Placement of a model across NPU session VA spaces — the paper's
/// Section 8 workaround made concrete. Each layer's weights *and its KV
/// slice* (the cache is one buffer per layer, `[layer][seq]` layout) are
/// assigned to sessions together through [`MultiSession`] first-fit —
/// whole layers only, one layer never splits across sessions — producing
/// contiguous layer ranges per session. Colocating a layer's KV with its
/// weights means every op of a layer dispatches in one session, so the
/// only cross-session traffic is at shard boundaries, and `sessions() >
/// 1` always comes with a non-empty boundary list. The plan both
/// *proves* the deployment fits (construction fails with
/// [`SimError::VaSpaceExceeded`] only when one layer's weights + KV
/// exceed a whole session) and *drives* execution: it lowers to the
/// [`edgellm::model::LayerSchedule`] the forward pass walks, charging
/// [`ShardPlan::switch_secs`] at every shard boundary.
///
/// # Examples
///
/// Qwen-3B exceeds the Snapdragon 8 Gen 2's ~2 GiB session, so its 36
/// layers split across two sessions:
///
/// ```
/// use edgellm::config::{ModelConfig, ModelId};
/// use hexsim::prelude::*;
/// use npuscale::session::ShardPlan;
///
/// let cfg = ModelConfig::for_id(ModelId::Qwen3B);
/// let va = DeviceProfile::v73().session_va_bytes;
/// let plan = ShardPlan::build(&cfg, va, 1, 1024).unwrap();
/// assert_eq!(plan.sessions(), 2);
/// assert_eq!(plan.shards.len(), 2);
/// assert_eq!(plan.shards[0].start, 0);
/// assert_eq!(plan.shards[1].end, cfg.layers);
/// // Two shards: one boundary switch + one wrap-around per decode step.
/// assert_eq!(plan.schedule().switches_per_pass(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Contiguous layer ranges in execution order, one per shard (each
    /// shard holds its layers' weights and KV slices).
    pub shards: Vec<LayerShard>,
    /// Total device-resident bytes the plan accounts (weights + KV).
    pub bytes: u64,
    /// Bytes mapped into each open session.
    pub session_bytes: Vec<u64>,
    /// CPU seconds charged per session switch during execution.
    pub switch_secs: f64,
}

impl ShardPlan {
    /// Plans a decode deployment: layer weights plus a KV cache sized for
    /// `batch` sequences at `ctx_len` context (the same `batch * (ctx_len
    /// + 2)` budget the measurement pipelines allocate).
    pub fn build(
        cfg: &edgellm::config::ModelConfig,
        va_per_session: u64,
        batch: usize,
        ctx_len: usize,
    ) -> SimResult<Self> {
        Self::build_with_kv_budget(cfg, va_per_session, batch * (ctx_len + 2))
    }

    /// Plans a deployment at an explicit total KV token budget (prefill
    /// sizes the cache by prompt length instead of batch x context).
    pub fn build_with_kv_budget(
        cfg: &edgellm::config::ModelConfig,
        va_per_session: u64,
        kv_budget: usize,
    ) -> SimResult<Self> {
        let mut ms = MultiSession::new(va_per_session);
        // A layer travels as one unit: its weights plus its slice of the
        // per-layer KV cache, so attention never reaches across sessions.
        let layer_bytes = cfg.npu_layer_weight_bytes() + cfg.kv_cache_layer_bytes(kv_budget);
        let mut shards: Vec<LayerShard> = Vec::new();
        let mut bytes = 0u64;
        for layer in 0..cfg.layers {
            let session = ms.map(layer_bytes)?;
            bytes += layer_bytes;
            match shards.last_mut() {
                Some(shard) if shard.session == session => shard.end = layer + 1,
                _ => shards.push(LayerShard {
                    session,
                    start: layer,
                    end: layer + 1,
                }),
            }
        }
        Ok(ShardPlan {
            shards,
            bytes,
            session_bytes: ms.mapped.clone(),
            switch_secs: SESSION_SWITCH_SECS,
        })
    }

    /// Number of NPU sessions the deployment opens.
    pub fn sessions(&self) -> usize {
        self.session_bytes.len()
    }

    /// Whether execution crosses session boundaries.
    pub fn is_sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// Layer indices at which a new session's weights begin (the first
    /// shard at layer 0 is implicit), ascending.
    pub fn boundaries(&self) -> Vec<usize> {
        self.shards.iter().skip(1).map(|s| s.start).collect()
    }

    /// Lowers the placement to the execution schedule the model's layer
    /// walk consumes.
    pub fn schedule(&self) -> edgellm::model::LayerSchedule {
        edgellm::model::LayerSchedule {
            boundaries: self.boundaries(),
            switch_secs: self.switch_secs,
        }
    }

    /// Total session-switch seconds one full layer walk (one decode step
    /// or one prefill pass) pays under this plan.
    pub fn switch_overhead_secs(&self) -> f64 {
        self.schedule().switches_per_pass() as f64 * self.switch_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly)
    }

    #[test]
    fn submit_then_poll_roundtrip() {
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        let seq = s.submit(&mut c, OpCode::MatMul, 42, true).unwrap();
        let req = s.poll_dispatch(&mut c).unwrap().unwrap();
        assert_eq!(req.seq, seq);
        assert_eq!(req.op, OpCode::MatMul);
        assert_eq!(req.arg, 42);
        assert!(s.poll_dispatch(&mut c).unwrap().is_none());
    }

    #[test]
    fn skipping_cache_clean_faults_in_strict_mode() {
        // The bug class Section 6 warns about: CPU writes the descriptor
        // but does not clean the cache before the NPU polls.
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        s.submit(&mut c, OpCode::Attention, 7, false).unwrap();
        let err = s.poll_dispatch(&mut c).unwrap_err();
        assert!(matches!(err, SimError::CoherenceViolation { .. }));
    }

    #[test]
    fn requests_dispatch_in_order() {
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        for i in 0..5 {
            s.submit(&mut c, OpCode::Misc, i, true).unwrap();
        }
        for i in 0..5 {
            let req = s.poll_dispatch(&mut c).unwrap().unwrap();
            assert_eq!(req.arg, i);
        }
    }

    #[test]
    fn ring_capacity_is_enforced() {
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        for i in 0..64 {
            s.submit(&mut c, OpCode::Nop, i, true).unwrap();
        }
        let err = s.submit(&mut c, OpCode::Nop, 99, true).unwrap_err();
        assert!(matches!(err, SimError::Unsupported { .. }));
    }

    #[test]
    fn double_buffered_ring_hides_back_to_back_completion_overhead() {
        let cfg = SessionConfig {
            double_buffered: true,
            ..SessionConfig::default()
        };
        // A burst of 8 requests submitted ahead (layer N+1 queued while N
        // executes): only the pipeline-fill dispatch pays the poller's
        // completion overhead.
        let mut c = ctx();
        let mut s = NpuSession::open(cfg);
        for i in 0..8 {
            s.submit(&mut c, OpCode::MatMul, i, true).unwrap();
        }
        let before = c.cost.engine_secs(Engine::Scalar);
        for _ in 0..8 {
            s.poll_dispatch(&mut c).unwrap().unwrap();
        }
        let charged = c.cost.engine_secs(Engine::Scalar) - before;
        assert!(
            (charged - cfg.complete_latency).abs() < 1e-15,
            "burst of 8 must pay one completion: {charged}"
        );

        // Strictly alternating submit/poll gives the poller nothing to
        // prefetch — no lookahead, no overlap, full serial charges.
        let mut c2 = ctx();
        let mut s2 = NpuSession::open(cfg);
        let before = c2.cost.engine_secs(Engine::Scalar);
        for i in 0..8 {
            s2.submit(&mut c2, OpCode::MatMul, i, true).unwrap();
            s2.poll_dispatch(&mut c2).unwrap().unwrap();
        }
        let charged = c2.cost.engine_secs(Engine::Scalar) - before;
        assert!((charged - 8.0 * cfg.complete_latency).abs() < 1e-15);
    }

    #[test]
    fn serial_ring_charges_are_unchanged_by_default() {
        // The knob off reproduces the historical accounting exactly,
        // even for a submitted-ahead burst.
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        for i in 0..8 {
            s.submit(&mut c, OpCode::MatMul, i, true).unwrap();
        }
        let before = c.cost.engine_secs(Engine::Scalar);
        for _ in 0..8 {
            s.poll_dispatch(&mut c).unwrap().unwrap();
        }
        let charged = c.cost.engine_secs(Engine::Scalar) - before;
        let expect = 8.0 * SessionConfig::default().complete_latency;
        assert!((charged - expect).abs() < 1e-15);
    }

    #[test]
    fn submission_charges_cpu_time() {
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        s.submit(&mut c, OpCode::Nop, 0, true).unwrap();
        assert!(c.cost.engine_secs(Engine::Cpu) >= 10e-6);
    }

    fn plan(id: edgellm::config::ModelId, device: &DeviceProfile) -> ShardPlan {
        let cfg = edgellm::config::ModelConfig::for_id(id);
        ShardPlan::build(&cfg, device.session_va_bytes, 1, 1024).unwrap()
    }

    #[test]
    fn qwen3b_plan_on_8g2_uses_two_contiguous_shards() {
        use edgellm::config::{ModelConfig, ModelId};
        let cfg = ModelConfig::for_id(ModelId::Qwen3B);
        let p = plan(ModelId::Qwen3B, &DeviceProfile::v73());
        assert_eq!(p.sessions(), 2);
        assert_eq!(p.shards.len(), 2);
        // Shards tile the layer range contiguously and in order.
        assert_eq!(p.shards[0].start, 0);
        assert_eq!(p.shards[0].end, p.shards[1].start);
        assert_eq!(p.shards[1].end, cfg.layers);
        assert_eq!(p.boundaries(), vec![p.shards[1].start]);
        // Per-session bytes respect the VA cap.
        for &b in &p.session_bytes {
            assert!(b <= DeviceProfile::v73().session_va_bytes);
        }
        // Total bytes account every layer plus the KV cache.
        let expected = cfg.npu_weight_bytes() + cfg.kv_cache_bytes(1026);
        assert_eq!(p.bytes, expected);
        assert!((p.switch_overhead_secs() - 2.0 * SESSION_SWITCH_SECS).abs() < 1e-15);
    }

    #[test]
    fn small_models_plan_single_session() {
        use edgellm::config::ModelId;
        let p = plan(ModelId::Qwen1_5B, &DeviceProfile::v75());
        assert_eq!(p.sessions(), 1);
        assert!(!p.is_sharded());
        assert!(p.boundaries().is_empty());
        assert_eq!(p.schedule().switches_per_pass(), 0);
        assert_eq!(p.switch_overhead_secs(), 0.0);
    }

    #[test]
    fn qwen7b_plans_sharded_everywhere() {
        use edgellm::config::ModelId;
        // ~4.6 GB of weights: two sessions on the 4 GiB-VA devices, three
        // on the 8 Gen 2 — the deployment the single-session repo could
        // never express.
        assert_eq!(plan(ModelId::Qwen7B, &DeviceProfile::v75()).sessions(), 2);
        assert_eq!(plan(ModelId::Qwen7B, &DeviceProfile::v79()).sessions(), 2);
        assert_eq!(plan(ModelId::Qwen7B, &DeviceProfile::v73()).sessions(), 3);
    }

    #[test]
    fn plan_fails_only_when_a_single_buffer_cannot_map() {
        use edgellm::config::{ModelConfig, ModelId};
        let cfg = ModelConfig::for_id(ModelId::Qwen3B);
        // A "session" smaller than one layer's weights cannot hold any
        // placement at all.
        let err = ShardPlan::build(&cfg, cfg.npu_layer_weight_bytes() - 1, 1, 1024).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
    }

    #[test]
    fn multi_session_splits_large_models() {
        // A ~4.3 GB weight set across 2 GiB sessions needs 3 sessions.
        let mut ms = MultiSession::new(2 * 1024 * 1024 * 1024);
        for _ in 0..6 {
            ms.map(716 * 1024 * 1024).unwrap();
        }
        assert_eq!(ms.sessions(), 3);
        // A single buffer larger than one session cannot map at all.
        assert!(ms.map(3 * 1024 * 1024 * 1024).is_err());
    }
}
