//! FastRPC/rpcmem session: the CPU <-> NPU runtime protocol.
//!
//! The paper's runtime (Section 6) starts a remote NPU session over
//! FastRPC, then switches to a shared-memory command channel: the CPU
//! writes a request descriptor into rpcmem, cleans the cache (one-way
//! coherence), and an NPU-side thread polls the region for work. Responses
//! flow back without maintenance because NPU writes are CPU-visible. That
//! protocol is implemented in [`hexsim::ring`] (the layer walk drives one
//! [`NpuSession`] descriptor per dispatched op, so transport and cost model
//! share a single code path) and re-exported here for runtime callers.
//!
//! `MultiSession` implements the paper's sketched workaround (Section 8)
//! for the 32-bit per-session VA limit: weights spread across several
//! sessions, each with its own VA budget. [`ShardPlan`] turns that
//! allocator into an executable placement — contiguous layer ranges per
//! session plus a KV-cache home — which [`crate::backend::Backend::fits`]
//! reports as a shard count and [`crate::pipeline::measure_decode_sharded`]
//! actually runs, charging [`SESSION_SWITCH_SECS`] at every shard
//! boundary of the walk.
//!
//! On top of the command transport, this module re-exports the
//! continuous-batching [`DecodeSession`] (implemented in
//! `edgellm::decode_session`, where the model and KV cache live): the
//! `admit`/`step`/`retire` decode API whose dynamic batches are the
//! paper's argument for bypassing QNN's static graphs.
//!
//! # Examples
//!
//! Plan a deployment that exceeds one session and lower it to the layer
//! walk the forward pass executes:
//!
//! ```
//! use edgellm::config::{ModelConfig, ModelId};
//! use hexsim::prelude::*;
//! use npuscale::session::ShardPlan;
//!
//! // Qwen-7B (~4.6 GB of Q4/Q8 weights) on the paper's primary device:
//! // two 4 GiB sessions.
//! let cfg = ModelConfig::for_id(ModelId::Qwen7B);
//! let va = DeviceProfile::v75().session_va_bytes;
//! let plan = ShardPlan::build(&cfg, va, 1, 1024).unwrap();
//! assert_eq!(plan.sessions(), 2);
//!
//! // The plan lowers to the schedule the model's layer walk consumes:
//! // decode crosses one shard boundary and wraps back, paying two
//! // session switches per step.
//! let schedule = plan.schedule();
//! assert_eq!(schedule.boundaries.len(), 1);
//! assert_eq!(schedule.switches_per_pass(), 2);
//! assert!(plan.switch_overhead_secs() < 100e-6);
//!
//! // Per-session byte totals respect the VA cap.
//! for &bytes in &plan.session_bytes {
//!     assert!(bytes <= va);
//! }
//! ```

use hexsim::prelude::*;
use serde::{Deserialize, Serialize};

pub use edgellm::decode_session::{DecodeSession, FinishedSeq, PreemptedSeq, SeqId};
// The command-ring transport lives in the device substrate (`hexsim::ring`)
// since `edgellm`'s layer walk started driving it per dispatched op; the
// types are re-exported here so runtime code keeps one import path.
pub use hexsim::ring::{NpuSession, OpCode, Request, SessionConfig};

/// Multiple NPU sessions splitting a weight set across VA spaces — the
/// paper's Section 8 workaround for models that exceed one session's
/// 32-bit address space.
pub struct MultiSession {
    /// Per-session VA capacity in bytes.
    pub va_per_session: u64,
    /// Bytes mapped into each open session.
    pub mapped: Vec<u64>,
}

impl MultiSession {
    /// Creates a multi-session allocator.
    pub fn new(va_per_session: u64) -> Self {
        MultiSession {
            va_per_session,
            mapped: vec![0],
        }
    }

    /// Maps a buffer, opening new sessions as needed. Returns the session
    /// index the buffer landed in.
    pub fn map(&mut self, bytes: u64) -> SimResult<usize> {
        if bytes > self.va_per_session {
            return Err(SimError::VaSpaceExceeded {
                capacity: self.va_per_session,
                mapped: 0,
                requested: bytes,
            });
        }
        for (i, used) in self.mapped.iter_mut().enumerate() {
            if *used + bytes <= self.va_per_session {
                *used += bytes;
                return Ok(i);
            }
        }
        self.mapped.push(bytes);
        Ok(self.mapped.len() - 1)
    }

    /// Number of open sessions.
    pub fn sessions(&self) -> usize {
        self.mapped.len()
    }
}

/// Default CPU-side cost of switching command dispatch between NPU
/// sessions, in seconds: a FastRPC handle swap plus cache maintenance on
/// the new session's command ring. A few of these per decode step is the
/// price the paper's Section 8 workaround pays for breaking the 32-bit
/// VA ceiling; it is small next to the ~1.4 ms of per-layer dispatch a
/// 3B model already spends.
pub const SESSION_SWITCH_SECS: f64 = 30e-6;

/// One contiguous run of transformer layers resident in one NPU session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerShard {
    /// Session index holding these layers' weights.
    pub session: usize,
    /// First layer of the run.
    pub start: usize,
    /// One past the last layer of the run.
    pub end: usize,
}

impl LayerShard {
    /// Number of layers in the shard.
    pub fn layers(&self) -> usize {
        self.end - self.start
    }
}

/// Placement of a model across NPU session VA spaces — the paper's
/// Section 8 workaround made concrete. Each layer's weights *and its KV
/// slice* (the cache is one buffer per layer, `[layer][seq]` layout) are
/// assigned to sessions together through [`MultiSession`] first-fit —
/// whole layers only, one layer never splits across sessions — producing
/// contiguous layer ranges per session. Colocating a layer's KV with its
/// weights means every op of a layer dispatches in one session, so the
/// only cross-session traffic is at shard boundaries, and `sessions() >
/// 1` always comes with a non-empty boundary list. The plan both
/// *proves* the deployment fits (construction fails with
/// [`SimError::VaSpaceExceeded`] only when one layer's weights + KV
/// exceed a whole session) and *drives* execution: it lowers to the
/// [`edgellm::model::LayerSchedule`] the forward pass walks, charging
/// [`ShardPlan::switch_secs`] at every shard boundary.
///
/// # Examples
///
/// Qwen-3B exceeds the Snapdragon 8 Gen 2's ~2 GiB session, so its 36
/// layers split across two sessions:
///
/// ```
/// use edgellm::config::{ModelConfig, ModelId};
/// use hexsim::prelude::*;
/// use npuscale::session::ShardPlan;
///
/// let cfg = ModelConfig::for_id(ModelId::Qwen3B);
/// let va = DeviceProfile::v73().session_va_bytes;
/// let plan = ShardPlan::build(&cfg, va, 1, 1024).unwrap();
/// assert_eq!(plan.sessions(), 2);
/// assert_eq!(plan.shards.len(), 2);
/// assert_eq!(plan.shards[0].start, 0);
/// assert_eq!(plan.shards[1].end, cfg.layers);
/// // Two shards: one boundary switch + one wrap-around per decode step.
/// assert_eq!(plan.schedule().switches_per_pass(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Contiguous layer ranges in execution order, one per shard (each
    /// shard holds its layers' weights and KV slices).
    pub shards: Vec<LayerShard>,
    /// Total device-resident bytes the plan accounts (weights + KV).
    pub bytes: u64,
    /// Bytes mapped into each open session.
    pub session_bytes: Vec<u64>,
    /// CPU seconds charged per session switch during execution.
    pub switch_secs: f64,
    /// Ascending indices of cold layers whose weights live in the DDR
    /// staging region and stream through the double-buffered window;
    /// empty for fully resident plans (the historical layout).
    #[serde(default)]
    pub streamed: Vec<usize>,
    /// Weight bytes fetched per streamed layer.
    #[serde(default)]
    pub stream_layer_bytes: u64,
    /// Session-resident bytes of the double-buffered streaming window
    /// (two cold-layer slots); zero for resident plans.
    #[serde(default)]
    pub window_bytes: u64,
    /// Bytes parked in the CPU-owned DDR staging region (cold weights);
    /// zero for resident plans.
    #[serde(default)]
    pub staged_bytes: u64,
}

impl ShardPlan {
    /// Plans a decode deployment: layer weights plus a KV cache sized for
    /// `batch` sequences at `ctx_len` context (the same `batch * (ctx_len
    /// + 2)` budget the measurement pipelines allocate).
    pub fn build(
        cfg: &edgellm::config::ModelConfig,
        va_per_session: u64,
        batch: usize,
        ctx_len: usize,
    ) -> SimResult<Self> {
        Self::build_with_kv_budget(cfg, va_per_session, batch * (ctx_len + 2))
    }

    /// Plans a deployment at an explicit total KV token budget (prefill
    /// sizes the cache by prompt length instead of batch x context).
    pub fn build_with_kv_budget(
        cfg: &edgellm::config::ModelConfig,
        va_per_session: u64,
        kv_budget: usize,
    ) -> SimResult<Self> {
        let mut ms = MultiSession::new(va_per_session);
        // A layer travels as one unit: its weights plus its slice of the
        // per-layer KV cache, so attention never reaches across sessions.
        let layer_bytes = cfg.npu_layer_weight_bytes() + cfg.kv_cache_layer_bytes(kv_budget);
        let mut shards: Vec<LayerShard> = Vec::new();
        let mut bytes = 0u64;
        for layer in 0..cfg.layers {
            let session = ms.map(layer_bytes)?;
            bytes += layer_bytes;
            match shards.last_mut() {
                Some(shard) if shard.session == session => shard.end = layer + 1,
                _ => shards.push(LayerShard {
                    session,
                    start: layer,
                    end: layer + 1,
                }),
            }
        }
        Ok(ShardPlan {
            shards,
            bytes,
            session_bytes: ms.mapped.clone(),
            switch_secs: SESSION_SWITCH_SECS,
            streamed: Vec::new(),
            stream_layer_bytes: 0,
            window_bytes: 0,
            staged_bytes: 0,
        })
    }

    /// Plans a *streaming* decode deployment: hot layers (the first and
    /// last, whose weights sandwich the CPU embedding / lm_head work)
    /// stay session-resident, while the cold middle layers park their
    /// weights in the CPU-owned DDR staging region and stream through a
    /// double-buffered window of two cold-layer slots. Every layer's KV
    /// slice stays session-resident — attention reads it every step, and
    /// it is written in place. The result needs far fewer sessions than
    /// [`ShardPlan::build`] (weights dominate KV at decode batch sizes)
    /// and can map models whose resident footprint exceeds the whole
    /// session envelope.
    pub fn build_streaming(
        cfg: &edgellm::config::ModelConfig,
        va_per_session: u64,
        batch: usize,
        ctx_len: usize,
    ) -> SimResult<Self> {
        Self::build_streaming_with_kv_budget(cfg, va_per_session, batch * (ctx_len + 2))
    }

    /// Plans a streaming deployment at an explicit total KV token budget.
    pub fn build_streaming_with_kv_budget(
        cfg: &edgellm::config::ModelConfig,
        va_per_session: u64,
        kv_budget: usize,
    ) -> SimResult<Self> {
        if cfg.layers < 3 {
            // Nothing between the hot first and last layer to stream.
            return Self::build_with_kv_budget(cfg, va_per_session, kv_budget);
        }
        let weight_bytes = cfg.npu_layer_weight_bytes();
        let kv_bytes = cfg.kv_cache_layer_bytes(kv_budget);
        let window_bytes = 2 * weight_bytes;
        let mut ms = MultiSession::new(va_per_session);
        // The window maps first so it shares session 0 with the entry
        // layer's weights — fetches and the walk start in one session.
        ms.map(window_bytes)?;
        let mut shards: Vec<LayerShard> = Vec::new();
        let mut bytes = window_bytes;
        for layer in 0..cfg.layers {
            let hot = layer == 0 || layer == cfg.layers - 1;
            let unit = if hot {
                weight_bytes + kv_bytes
            } else {
                kv_bytes
            };
            let session = ms.map(unit)?;
            bytes += unit;
            match shards.last_mut() {
                Some(shard) if shard.session == session => shard.end = layer + 1,
                _ => shards.push(LayerShard {
                    session,
                    start: layer,
                    end: layer + 1,
                }),
            }
        }
        let streamed: Vec<usize> = (1..cfg.layers - 1).collect();
        let staged_bytes = streamed.len() as u64 * weight_bytes;
        Ok(ShardPlan {
            shards,
            bytes,
            session_bytes: ms.mapped.clone(),
            switch_secs: SESSION_SWITCH_SECS,
            streamed,
            stream_layer_bytes: weight_bytes,
            window_bytes,
            staged_bytes,
        })
    }

    /// Number of NPU sessions the deployment opens.
    pub fn sessions(&self) -> usize {
        self.session_bytes.len()
    }

    /// Whether execution crosses session boundaries.
    pub fn is_sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// Layer indices at which a new session's weights begin (the first
    /// shard at layer 0 is implicit), ascending.
    pub fn boundaries(&self) -> Vec<usize> {
        self.shards.iter().skip(1).map(|s| s.start).collect()
    }

    /// Lowers the placement to the execution schedule the model's layer
    /// walk consumes.
    pub fn schedule(&self) -> edgellm::model::LayerSchedule {
        edgellm::model::LayerSchedule {
            boundaries: self.boundaries(),
            switch_secs: self.switch_secs,
            streamed: self.streamed.clone(),
            stream_layer_bytes: self.stream_layer_bytes,
        }
    }

    /// Whether cold layers stream from the DDR staging region.
    pub fn is_streaming(&self) -> bool {
        !self.streamed.is_empty()
    }

    /// Total session-switch seconds one full layer walk (one decode step
    /// or one prefill pass) pays under this plan.
    pub fn switch_overhead_secs(&self) -> f64 {
        self.schedule().switches_per_pass() as f64 * self.switch_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(id: edgellm::config::ModelId, device: &DeviceProfile) -> ShardPlan {
        let cfg = edgellm::config::ModelConfig::for_id(id);
        ShardPlan::build(&cfg, device.session_va_bytes, 1, 1024).unwrap()
    }

    #[test]
    fn qwen3b_plan_on_8g2_uses_two_contiguous_shards() {
        use edgellm::config::{ModelConfig, ModelId};
        let cfg = ModelConfig::for_id(ModelId::Qwen3B);
        let p = plan(ModelId::Qwen3B, &DeviceProfile::v73());
        assert_eq!(p.sessions(), 2);
        assert_eq!(p.shards.len(), 2);
        // Shards tile the layer range contiguously and in order.
        assert_eq!(p.shards[0].start, 0);
        assert_eq!(p.shards[0].end, p.shards[1].start);
        assert_eq!(p.shards[1].end, cfg.layers);
        assert_eq!(p.boundaries(), vec![p.shards[1].start]);
        // Per-session bytes respect the VA cap.
        for &b in &p.session_bytes {
            assert!(b <= DeviceProfile::v73().session_va_bytes);
        }
        // Total bytes account every layer plus the KV cache.
        let expected = cfg.npu_weight_bytes() + cfg.kv_cache_bytes(1026);
        assert_eq!(p.bytes, expected);
        assert!((p.switch_overhead_secs() - 2.0 * SESSION_SWITCH_SECS).abs() < 1e-15);
    }

    #[test]
    fn small_models_plan_single_session() {
        use edgellm::config::ModelId;
        let p = plan(ModelId::Qwen1_5B, &DeviceProfile::v75());
        assert_eq!(p.sessions(), 1);
        assert!(!p.is_sharded());
        assert!(p.boundaries().is_empty());
        assert_eq!(p.schedule().switches_per_pass(), 0);
        assert_eq!(p.switch_overhead_secs(), 0.0);
    }

    #[test]
    fn qwen7b_plans_sharded_everywhere() {
        use edgellm::config::ModelId;
        // ~4.6 GB of weights: two sessions on the 4 GiB-VA devices, three
        // on the 8 Gen 2 — the deployment the single-session repo could
        // never express.
        assert_eq!(plan(ModelId::Qwen7B, &DeviceProfile::v75()).sessions(), 2);
        assert_eq!(plan(ModelId::Qwen7B, &DeviceProfile::v79()).sessions(), 2);
        assert_eq!(plan(ModelId::Qwen7B, &DeviceProfile::v73()).sessions(), 3);
    }

    #[test]
    fn streaming_plan_collapses_qwen7b_to_one_v73_session() {
        use edgellm::config::{ModelConfig, ModelId};
        let cfg = ModelConfig::for_id(ModelId::Qwen7B);
        let va = DeviceProfile::v73().session_va_bytes;
        // Resident: three sessions on the 8 Gen 2 (the pinned deployment).
        assert_eq!(ShardPlan::build(&cfg, va, 8, 1024).unwrap().sessions(), 3);
        // Streaming: hot first/last layers + window + all KV fit one.
        let p = ShardPlan::build_streaming(&cfg, va, 8, 1024).unwrap();
        assert_eq!(p.sessions(), 1);
        assert!(p.is_streaming());
        let cold: Vec<usize> = (1..cfg.layers - 1).collect();
        assert_eq!(p.streamed, cold);
        assert_eq!(p.stream_layer_bytes, cfg.npu_layer_weight_bytes());
        assert_eq!(p.window_bytes, 2 * cfg.npu_layer_weight_bytes());
        assert_eq!(p.staged_bytes, 26 * cfg.npu_layer_weight_bytes());
        // Device-resident bytes: 2 hot layers + window + every KV slice.
        let kv = cfg.kv_cache_layer_bytes(8 * 1026);
        let expect = 4 * cfg.npu_layer_weight_bytes() + 28 * kv;
        assert_eq!(p.bytes, expect);
        // The schedule carries the streaming fields to the layer walk.
        let schedule = p.schedule();
        assert_eq!(schedule.streamed.len(), 26);
        assert_eq!(schedule.stream_layer_bytes, p.stream_layer_bytes);
    }

    #[test]
    fn resident_plans_carry_no_streaming_fields() {
        use edgellm::config::ModelId;
        let p = plan(ModelId::Qwen7B, &DeviceProfile::v73());
        assert!(!p.is_streaming());
        assert_eq!(p.staged_bytes, 0);
        assert_eq!(p.window_bytes, 0);
        assert!(p.schedule().streamed.is_empty());
    }

    #[test]
    fn streaming_fits_kv_heavy_configs_under_the_session_cap() {
        use edgellm::config::{ModelConfig, ModelId};
        // Qwen-7B at 8K context on the 8 Gen 2: the resident plan wants
        // more sessions than the device can open, the streaming plan
        // stays under the cap.
        let cfg = ModelConfig::for_id(ModelId::Qwen7B);
        let dev = DeviceProfile::v73();
        let resident = ShardPlan::build(&cfg, dev.session_va_bytes, 8, 8192).unwrap();
        assert!(resident.sessions() > dev.max_sessions);
        let streaming = ShardPlan::build_streaming(&cfg, dev.session_va_bytes, 8, 8192).unwrap();
        assert!(streaming.sessions() <= dev.max_sessions);
    }

    #[test]
    fn plan_fails_only_when_a_single_buffer_cannot_map() {
        use edgellm::config::{ModelConfig, ModelId};
        let cfg = ModelConfig::for_id(ModelId::Qwen3B);
        // A "session" smaller than one layer's weights cannot hold any
        // placement at all.
        let err = ShardPlan::build(&cfg, cfg.npu_layer_weight_bytes() - 1, 1, 1024).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
    }

    #[test]
    fn multi_session_splits_large_models() {
        // A ~4.3 GB weight set across 2 GiB sessions needs 3 sessions.
        let mut ms = MultiSession::new(2 * 1024 * 1024 * 1024);
        for _ in 0..6 {
            ms.map(716 * 1024 * 1024).unwrap();
        }
        assert_eq!(ms.sessions(), 3);
        // A single buffer larger than one session cannot map at all.
        assert!(ms.map(3 * 1024 * 1024 * 1024).is_err());
    }
}
