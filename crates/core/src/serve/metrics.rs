//! SLO accounting for the serving gateway: latency percentiles and the
//! goodput definition.
//!
//! A request is *good* when its time-to-first-token (arrival to first
//! sampled token, queue wait included) and its worst time-between-tokens
//! both land under the [`SloConfig`] targets; goodput is good requests
//! per second of fleet wall time. The gateway reports p50/p99 of TTFT,
//! TBT and queue wait via [`percentile`] (nearest-rank, deterministic).

/// Latency targets a request must meet to count toward goodput.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Time-to-first-token budget in seconds (queue wait + prefill).
    pub ttft_secs: f64,
    /// Per-request worst time-between-tokens budget in seconds.
    pub tbt_secs: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            ttft_secs: 2.0,
            tbt_secs: 0.5,
        }
    }
}

impl SloConfig {
    /// Whether a completed request with the given latencies meets the
    /// SLO. Requests that emit a single token carry `max_tbt == 0`.
    pub fn met(&self, ttft_secs: f64, max_tbt_secs: f64) -> bool {
        ttft_secs <= self.ttft_secs && max_tbt_secs <= self.tbt_secs
    }
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`. Ranges from `1/n` (one tenant holds everything)
/// to `1.0` (perfectly equal); degenerate inputs (empty, or all zero)
/// score `1.0` — nothing was served, so nothing was served unfairly.
pub fn jain_index(allocations: &[f64]) -> f64 {
    assert!(
        allocations.iter().all(|x| *x >= 0.0),
        "Jain index is defined over non-negative allocations"
    );
    let sum: f64 = allocations.iter().sum();
    let sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocations.len() as f64 * sq)
}

/// Nearest-rank percentile of `samples` (`pct` in 0..=100); 0 when the
/// sample set is empty. Sorts a copy — callers pass raw sample vectors.
pub fn percentile(samples: &[f64], pct: f64) -> f64 {
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile {pct} out of range"
    );
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 99.0), 5.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn jain_index_ranges_from_monopoly_to_equality() {
        assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
        assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        let mid = jain_index(&[3.0, 1.0]);
        assert!(mid > 0.5 && mid < 1.0, "mid {mid}");
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn slo_requires_both_latencies() {
        let slo = SloConfig {
            ttft_secs: 1.0,
            tbt_secs: 0.2,
        };
        assert!(slo.met(0.9, 0.1));
        assert!(!slo.met(1.1, 0.1));
        assert!(!slo.met(0.9, 0.3));
        assert!(slo.met(1.0, 0.0));
    }
}
