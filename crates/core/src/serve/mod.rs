//! `npuscale::serve` — a fleet-scale serving gateway over the simulated
//! NPU runtime: seeded arrival traces, admission control, chunked
//! prefill interleaved with continuous-batching decode, and SLO metrics.
//!
//! The paper evaluates one phone decoding one workload; this subsystem
//! asks the deployment question behind it: what happens when a *fleet*
//! of heterogeneous devices (Hexagon V73/V75/V79, resident and
//! weight-streamed plans) serves an online request stream? The gateway
//! is a deterministic discrete-event simulator built from the pieces the
//! repo already has:
//!
//! - [`arrivals`] — seeded Poisson arrival generation over per-tenant
//!   specs (mixed prompt/output lengths, priorities) plus trace replay;
//! - [`scheduler`] — the admission queue (bounded, priority-ordered,
//!   evict-lowest on overflow), the per-worker capacity plan gated on
//!   [`crate::backend::Backend::fits`], and the dispatch oracle that
//!   predicts completion times from measured
//!   [`crate::pipeline::DecodePoint`]s;
//! - [`gateway`] — the event loop: each worker runs a
//!   [`crate::session::DecodeSession`] in cost-only mode, decode steps
//!   are charged at the overlap model's steady-state critical path, and
//!   prompt prefills either stall the batch
//!   ([`scheduler::PrefillMode::Monolithic`]) or ride the decode walk
//!   chunk by chunk ([`scheduler::PrefillMode::Chunked`], charged via
//!   [`edgellm::overlap::StepStages::merged`]);
//! - [`metrics`] — SLO attainment: TTFT/TBT percentiles, queue wait,
//!   goodput under a [`metrics::SloConfig`], per-device utilization.
//!
//! # Examples
//!
//! Serve a seeded two-tenant Poisson trace on a single 8 Gen 3 worker
//! with chunked prefill:
//!
//! ```
//! use edgellm::config::ModelId;
//! use hexsim::prelude::*;
//! use npuscale::serve::{
//!     poisson_trace, FleetGateway, FleetSpec, GatewayConfig, TenantSpec,
//! };
//!
//! let tenants = [
//!     TenantSpec::interactive("chat"),
//!     TenantSpec::batch("summarize"),
//! ];
//! let trace = poisson_trace(&tenants, 4.0, 8, 7);
//! let fleet = FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false);
//! let gateway = FleetGateway::new(fleet, GatewayConfig::default()).unwrap();
//! let report = gateway.serve_trace(&trace).unwrap();
//! assert_eq!(report.completed + report.rejected, 8);
//! assert!(report.makespan_secs > 0.0);
//! ```

pub mod arrivals;
pub mod gateway;
pub mod metrics;
pub mod scheduler;

pub use arrivals::{
    bursty_trace, merge_traces, poisson_trace, replay_trace, replay_trace_from, BurstSpec, Request,
    TenantSpec,
};
pub use gateway::{FleetGateway, ServingReport, TenantReport, WorkerReport};
pub use metrics::{jain_index, percentile, SloConfig};
pub use scheduler::{
    predicted_completion_secs, predicted_completion_secs_thermal, strict_before, wfq_before,
    AdmissionQueue, FleetSpec, GatewayConfig, PreemptionPolicy, PrefillMode, QueueEntry,
    SchedulingPolicy, ThermalPolicy, WfqState, WorkerOracle, WorkerSpec,
};
