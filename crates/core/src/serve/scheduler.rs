//! Admission control and dispatch planning for the serving gateway.
//!
//! Three pieces live here:
//!
//! - [`FleetSpec`]/[`WorkerSpec`]/[`GatewayConfig`] — the static shape of
//!   a deployment: which devices serve, resident or weight-streamed,
//!   with what batch/context capacity, behind what queue and prefill
//!   policy;
//! - [`AdmissionQueue`] — the bounded priority queue in front of the
//!   fleet. Higher-priority requests pop first; on overflow the *worst*
//!   queued request is evicted (or the newcomer rejected if it is the
//!   worst), so a low-priority burst cannot starve the interactive
//!   tenant;
//! - [`WorkerOracle`] — the dispatcher's cost model, built once per
//!   worker at gateway construction by probing the
//!   [`crate::backend::Backend`]: `fits` gates the deployment (a worker
//!   whose device cannot hold the model at the configured batch/context
//!   fails construction), and the measured decode/prefill points feed
//!   [`predicted_completion_secs`], the minimized quantity when placing
//!   a request.

use edgellm::config::ModelId;
use hexsim::prelude::*;

use crate::backend::{Backend, NpuSimBackend};
use crate::power::PowerModel;
use crate::serve::arrivals::Request;
use crate::serve::metrics::SloConfig;

/// How the gateway feeds a newly admitted prompt into a busy worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefillMode {
    /// The whole prompt runs as one pass; every active decode on the
    /// worker stalls for the pass's duration (the static-graph
    /// behavior).
    Monolithic,
    /// The prompt is split into chunks of at most `chunk_tokens`; each
    /// chunk rides one decode step's layer walk, charged via the fused
    /// critical-path model
    /// ([`edgellm::overlap::StepStages::merged`]) — decode TBT grows by
    /// the chunk's compute instead of the whole prompt's.
    Chunked {
        /// Maximum prompt tokens fed per decode step.
        chunk_tokens: usize,
    },
}

/// One serving device in the fleet.
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// Device profile the worker runs on.
    pub device: DeviceProfile,
    /// Whether the worker deploys the weight-streaming plan (hot/cold
    /// hierarchy, DMA prefetch lane) instead of a resident shard plan.
    pub streaming: bool,
    /// KV slot pool size — the maximum decode batch.
    pub max_batch: usize,
    /// Per-slot context capacity in tokens (prompt + generated).
    pub max_ctx: usize,
}

impl WorkerSpec {
    /// A resident-plan worker with the gateway's default capacity.
    pub fn resident(device: DeviceProfile) -> Self {
        WorkerSpec {
            device,
            streaming: false,
            max_batch: 8,
            max_ctx: 1024,
        }
    }

    /// A weight-streamed worker (cold layers fetched through the DMA
    /// prefetch lane) with the gateway's default capacity.
    pub fn streamed(device: DeviceProfile) -> Self {
        WorkerSpec {
            streaming: true,
            ..WorkerSpec::resident(device)
        }
    }
}

/// The fleet: one model served across a set of workers.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// Model every worker serves.
    pub model: ModelId,
    /// Serving devices.
    pub workers: Vec<WorkerSpec>,
}

impl FleetSpec {
    /// A single-worker fleet.
    pub fn single(model: ModelId, device: DeviceProfile, streaming: bool) -> Self {
        let base = WorkerSpec::resident(device);
        FleetSpec {
            model,
            workers: vec![WorkerSpec { streaming, ..base }],
        }
    }

    /// The three-generation heterogeneous fleet: V79 and V75 on resident
    /// plans plus a V73 running the weight-streamed deployment.
    pub fn heterogeneous(model: ModelId) -> Self {
        FleetSpec {
            model,
            workers: vec![
                WorkerSpec::resident(DeviceProfile::v79()),
                WorkerSpec::resident(DeviceProfile::v75()),
                WorkerSpec::streamed(DeviceProfile::v73()),
            ],
        }
    }
}

/// How the gateway treats worker die temperature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ThermalPolicy {
    /// No thermal physics at all: dies never heat, clocks never drop.
    /// Every pre-thermal serving number reproduces bit-for-bit.
    #[default]
    Disabled,
    /// Physics on — dies heat per step, the per-worker DVFS governor
    /// throttles at the cap — but the dispatcher still predicts with
    /// burst-clock oracles (it cannot see temperature). The baseline the
    /// CI gate compares against.
    Blind,
    /// Physics on *and* the dispatcher projects each worker's
    /// temperature trajectory when predicting completion, steering
    /// sustained load toward workers with thermal headroom.
    Aware,
}

/// How the dispatcher orders waiting requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Strict priority: highest tenant priority first, ties by arrival
    /// then id. Every pre-WFQ serving number reproduces bit-for-bit
    /// under this default.
    #[default]
    StrictPriority,
    /// Weighted fair queueing over served token budgets: each tenant
    /// carries a virtual time that advances by `tokens / weight` as the
    /// fleet serves it ([`WfqState`]), and the dispatcher serves the
    /// backlogged tenant with the smallest virtual time — long-run
    /// served-token shares converge to the weight ratio, so a
    /// high-priority overload cannot starve the batch tenant to zero.
    Wfq,
}

/// Whether the dispatcher may pause an active decode mid-stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PreemptionPolicy {
    /// Never preempt: an arrival waits for a KV slot to free naturally.
    #[default]
    Disabled,
    /// A waiting request may pause the worst active decode of *strictly
    /// lower* priority: the victim's KV is snapshotted
    /// ([`edgellm::PreemptedSeq`]), its slot freed for the newcomer, and
    /// it resumes later — on the same worker, KV intact — producing
    /// output bit-identical to an uninterrupted run.
    Enabled,
}

/// Gateway policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// Admission queue capacity; arrivals beyond it evict the worst
    /// queued request or are rejected outright.
    pub queue_capacity: usize,
    /// Prompt prefill policy.
    pub prefill: PrefillMode,
    /// Latency targets goodput is measured against.
    pub slo: SloConfig,
    /// Thermal/DVFS treatment of the worker dies.
    pub thermal: ThermalPolicy,
    /// Queue ordering discipline.
    pub scheduling: SchedulingPolicy,
    /// Mid-stream decode preemption.
    pub preemption: PreemptionPolicy,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            queue_capacity: 8,
            prefill: PrefillMode::Chunked { chunk_tokens: 32 },
            slo: SloConfig::default(),
            thermal: ThermalPolicy::default(),
            scheduling: SchedulingPolicy::default(),
            preemption: PreemptionPolicy::default(),
        }
    }
}

/// Per-tenant virtual-time accounting for weighted fair queueing.
///
/// A tenant's virtual time advances by `tokens / weight` whenever the
/// fleet serves its tokens (prompt tokens charged with the first token,
/// one per decode emission after). Serving the smallest virtual time
/// first makes long-run served-token shares track the weight ratio
/// regardless of arrival pattern — the classic fair-queueing invariant.
#[derive(Clone, Debug)]
pub struct WfqState {
    vtime: Vec<f64>,
    weight: Vec<f64>,
    served: Vec<u64>,
}

impl WfqState {
    /// Zeroed accounting for tenants with the given (positive) weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            weights.iter().all(|w| *w > 0.0),
            "tenant weights must be positive"
        );
        WfqState {
            vtime: vec![0.0; weights.len()],
            weight: weights.to_vec(),
            served: vec![0; weights.len()],
        }
    }

    /// Number of tenants tracked.
    pub fn tenants(&self) -> usize {
        self.vtime.len()
    }

    /// The tenant's current virtual time (its dispatch ordering key).
    pub fn vtime(&self, tenant: usize) -> f64 {
        self.vtime[tenant]
    }

    /// Tokens (prompt + generated) served to the tenant so far.
    pub fn served_tokens(&self, tenant: usize) -> u64 {
        self.served[tenant]
    }

    /// Virtual times of every tenant, in tenant order — the snapshot the
    /// dispatcher orders one scan against.
    pub fn vtimes(&self) -> &[f64] {
        &self.vtime
    }

    /// Charges `tokens` of service to `tenant`, advancing its virtual
    /// time by `tokens / weight`.
    pub fn charge(&mut self, tenant: usize, tokens: u64) {
        self.vtime[tenant] += tokens as f64 / self.weight[tenant];
        self.served[tenant] += tokens;
    }

    /// Re-floors a tenant's virtual time to the minimum of the others'
    /// when it becomes backlogged after an idle stretch: an idle tenant
    /// must not bank unbounded credit it can later spend starving the
    /// tenants that kept the fleet busy.
    pub fn wake(&mut self, tenant: usize) {
        let floor = self
            .vtime
            .iter()
            .enumerate()
            .filter(|&(t, _)| t != tenant)
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        if floor.is_finite() && self.vtime[tenant] < floor {
            self.vtime[tenant] = floor;
        }
    }
}

/// The dispatcher's per-worker cost model, measured once at gateway
/// construction through the [`Backend`] trait.
#[derive(Clone, Debug)]
pub struct WorkerOracle {
    /// Display label: SoC plus deployment variant.
    pub name: String,
    /// NPU sessions the deployment spans (from [`Backend::fits`]).
    pub sessions: usize,
    /// Measured wall seconds of one full-batch decode step.
    pub decode_step_secs: f64,
    /// Measured prefill throughput in tokens/second.
    pub prefill_tps: f64,
    /// The worker's device, carried for thermal projection (RC constants,
    /// DVFS operating points).
    pub device: DeviceProfile,
    /// Measured full-batch decode step at the sustained clock point.
    pub sustained_step_secs: f64,
    /// Average device watts of the burst-clock decode step.
    pub burst_power_w: f64,
    /// Average device watts of the sustained-clock decode step.
    pub sustained_power_w: f64,
}

/// Probes one worker through the overlap-aware NPU backend: `fits` gates
/// the deployment (propagating e.g. [`SimError::VaSpaceExceeded`] when
/// the device cannot hold the model), then one decode step at the full
/// batch and one representative prefill are measured as the dispatch
/// oracle.
pub fn plan_worker(model: ModelId, spec: &WorkerSpec) -> SimResult<WorkerOracle> {
    assert!(spec.max_batch >= 1, "worker needs at least one KV slot");
    assert!(spec.max_ctx >= 8, "worker context capacity too small");
    let backend = if spec.streaming {
        NpuSimBackend::streamed(spec.device.clone())
    } else {
        NpuSimBackend::overlapped(spec.device.clone())
    };
    let fit = backend.fits(model, spec.max_batch, spec.max_ctx)?;
    let decode = backend.decode(model, spec.max_batch, spec.max_ctx)?;
    let prefill = backend.prefill(model, 256.min(spec.max_ctx / 2))?;
    // The same deployment repriced at the sustained DVFS point: every
    // engine rate scales by the clock multiplier, dynamic power by its
    // cube, fixed session-switch costs stay fixed.
    let hot_device = spec.device.at_clock(spec.device.sustained_clock_mult);
    let hot_backend = if spec.streaming {
        NpuSimBackend::streamed(hot_device.clone())
    } else {
        NpuSimBackend::overlapped(hot_device.clone())
    };
    let sustained = hot_backend.decode(model, spec.max_batch, spec.max_ctx)?;
    let burst_power_w = PowerModel::new(spec.device.clone()).step_power(&decode);
    let sustained_power_w = PowerModel::new(hot_device).step_power(&sustained);
    let variant = if spec.streaming { " streamed" } else { "" };
    Ok(WorkerOracle {
        name: format!("{}{variant}", spec.device.arch.soc_label()),
        sessions: fit.sessions,
        decode_step_secs: decode.step_secs,
        prefill_tps: prefill.tokens_per_sec,
        device: spec.device.clone(),
        sustained_step_secs: sustained.step_secs,
        burst_power_w,
        sustained_power_w,
    })
}

/// Predicted completion time of `req` if placed on a worker that frees
/// up at `free_at_secs`: prefill at the measured prompt throughput, then
/// the full decode budget at the measured full-batch step time. The
/// dispatcher places each request on the worker minimizing this.
pub fn predicted_completion_secs(oracle: &WorkerOracle, free_at_secs: f64, req: &Request) -> f64 {
    free_at_secs
        + req.prompt_len as f64 / oracle.prefill_tps
        + req.max_new as f64 * oracle.decode_step_secs
}

/// Thermal-aware completion prediction: like
/// [`predicted_completion_secs`], but the worker's projected temperature
/// trajectory prices the work. A throttled worker runs everything at the
/// sustained rate; a burst worker runs until its die is projected to hit
/// the throttle cap — the analytic RC heating time
/// `t = tau * ln((T_eq - T) / (T_eq - T_cap))` — and the remainder at the
/// sustained rate. This is what lets the dispatcher route sustained load
/// toward workers with thermal headroom *before* they throttle.
pub fn predicted_completion_secs_thermal(
    oracle: &WorkerOracle,
    free_at_secs: f64,
    temp_c: f64,
    throttled: bool,
    req: &Request,
) -> f64 {
    let d = &oracle.device;
    // Seconds of work if the whole request ran at burst clocks.
    let burst_work =
        req.prompt_len as f64 / oracle.prefill_tps + req.max_new as f64 * oracle.decode_step_secs;
    // Burst-to-sustained dilation, measured (not assumed): fixed switch
    // costs make this slightly less than 1 / sustained_clock_mult.
    let dilation = oracle.sustained_step_secs / oracle.decode_step_secs;
    if throttled {
        return free_at_secs + burst_work * dilation;
    }
    let t_eq = d.equilibrium_temp_c(oracle.burst_power_w);
    if t_eq <= d.throttle_temp_c {
        // Burst never reaches the cap on this device: all-burst forever.
        return free_at_secs + burst_work;
    }
    let burst_secs_left = if temp_c >= d.throttle_temp_c {
        0.0
    } else {
        // T(t) = T_eq + (T - T_eq) e^{-t/tau}; solve T(t) = cap.
        d.thermal_time_constant_secs() * ((t_eq - temp_c) / (t_eq - d.throttle_temp_c)).ln()
    };
    if burst_work <= burst_secs_left {
        free_at_secs + burst_work
    } else {
        free_at_secs + burst_secs_left + (burst_work - burst_secs_left) * dilation
    }
}

/// A request waiting for fleet capacity.
#[derive(Clone, Copy, Debug)]
pub struct QueueEntry {
    /// Index into the gateway's trace.
    pub req: usize,
    /// Tenant priority — the strict-priority ordering key.
    pub priority: u8,
    /// Arrival time, the first tie-break.
    pub arrival_secs: f64,
    /// Trace-unique request id, the final tie-break.
    pub id: u64,
    /// Tenant index (first-appearance order) — the WFQ ordering key
    /// routes through the tenant's virtual time.
    pub tenant: usize,
}

/// `true` when `a` should be served before `b` under strict priority:
/// highest priority first, then earliest arrival, then lowest id.
pub fn strict_before(a: &QueueEntry, b: &QueueEntry) -> bool {
    (b.priority, a.arrival_secs, a.id) < (a.priority, b.arrival_secs, b.id)
}

/// `true` when `a` should be served before `b` under weighted fair
/// queueing against the given per-tenant virtual-time snapshot: smallest
/// tenant virtual time first, then earliest arrival, then lowest id.
pub fn wfq_before(vtimes: &[f64], a: &QueueEntry, b: &QueueEntry) -> bool {
    (vtimes[a.tenant], a.arrival_secs, a.id) < (vtimes[b.tenant], b.arrival_secs, b.id)
}

/// Bounded admission queue in front of the fleet.
///
/// The ordering discipline is supplied per call (`strict_before` or a
/// [`wfq_before`] closure over live virtual times — WFQ keys change as
/// tokens are served, so entries cannot be ordered at insertion). Every
/// comparator must be total and deterministic; on overflow the
/// worst-ordered request (queued or newcomer) is rejected.
#[derive(Debug)]
pub struct AdmissionQueue {
    items: Vec<QueueEntry>,
    capacity: usize,
    peak_depth: usize,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue needs capacity");
        AdmissionQueue {
            items: Vec::new(),
            capacity,
            peak_depth: 0,
        }
    }

    /// Offers a request under the given ordering. Returns `None` on
    /// acceptance, or the trace index of the request that was rejected to
    /// make room (possibly the offered one).
    pub fn offer(
        &mut self,
        cand: QueueEntry,
        before: &dyn Fn(&QueueEntry, &QueueEntry) -> bool,
    ) -> Option<usize> {
        if self.items.len() < self.capacity {
            self.items.push(cand);
            self.peak_depth = self.peak_depth.max(self.items.len());
            return None;
        }
        // Full: evict whichever orders last among queued + candidate.
        let worst = self
            .items
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                if before(a, b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            })
            .map(|(i, _)| i)
            .expect("queue is full, hence non-empty");
        if before(&cand, &self.items[worst]) {
            let evicted = std::mem::replace(&mut self.items[worst], cand);
            Some(evicted.req)
        } else {
            Some(cand.req)
        }
    }

    /// Removes and returns the best-ordered waiting request.
    pub fn pop(&mut self, before: &dyn Fn(&QueueEntry, &QueueEntry) -> bool) -> Option<usize> {
        let i = self.best_index(before)?;
        Some(self.items.swap_remove(i).req)
    }

    /// The waiting entries, in storage (not service) order — the
    /// dispatcher's candidate scan orders a copy itself.
    pub fn entries(&self) -> &[QueueEntry] {
        &self.items
    }

    /// Removes the entry for trace index `req`, if queued.
    pub fn remove(&mut self, req: usize) -> Option<QueueEntry> {
        let i = self.items.iter().position(|e| e.req == req)?;
        Some(self.items.swap_remove(i))
    }

    /// Requests currently waiting.
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// Deepest the queue has been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn best_index(&self, before: &dyn Fn(&QueueEntry, &QueueEntry) -> bool) -> Option<usize> {
        let mut best: Option<usize> = None;
        for i in 0..self.items.len() {
            match best {
                None => best = Some(i),
                Some(b) if before(&self.items[i], &self.items[b]) => best = Some(i),
                Some(_) => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(req: usize, priority: u8, arrival_secs: f64, id: u64, tenant: usize) -> QueueEntry {
        QueueEntry {
            req,
            priority,
            arrival_secs,
            id,
            tenant,
        }
    }

    #[test]
    fn queue_orders_by_priority_then_arrival() {
        let mut q = AdmissionQueue::new(4);
        assert!(q.offer(entry(0, 1, 0.0, 0, 0), &strict_before).is_none());
        assert!(q.offer(entry(1, 2, 0.5, 1, 0), &strict_before).is_none());
        assert!(q.offer(entry(2, 2, 0.2, 2, 0), &strict_before).is_none());
        assert_eq!(q.pop(&strict_before), Some(2));
        assert_eq!(q.pop(&strict_before), Some(1));
        assert_eq!(q.pop(&strict_before), Some(0));
        assert_eq!(q.pop(&strict_before), None);
    }

    #[test]
    fn overflow_evicts_the_lowest_priority() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.offer(entry(0, 1, 0.0, 0, 0), &strict_before).is_none());
        assert!(q.offer(entry(1, 1, 0.1, 1, 0), &strict_before).is_none());
        // A high-priority newcomer evicts the later low-priority entry.
        assert_eq!(q.offer(entry(2, 3, 0.2, 2, 1), &strict_before), Some(1));
        // A low-priority newcomer bounces off a full queue of betters.
        assert_eq!(q.offer(entry(3, 0, 0.3, 3, 2), &strict_before), Some(3));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak_depth(), 2);
        assert_eq!(q.pop(&strict_before), Some(2));
        assert_eq!(q.pop(&strict_before), Some(0));
    }

    #[test]
    fn queue_remove_extracts_by_trace_index() {
        let mut q = AdmissionQueue::new(4);
        assert!(q.offer(entry(7, 1, 0.0, 0, 0), &strict_before).is_none());
        assert!(q.offer(entry(9, 2, 0.1, 1, 1), &strict_before).is_none());
        assert_eq!(q.remove(9).map(|e| e.id), Some(1));
        assert!(q.remove(9).is_none());
        assert_eq!(q.depth(), 1);
        assert_eq!(q.entries()[0].req, 7);
    }

    #[test]
    fn wfq_orders_by_virtual_time_not_priority() {
        // Tenant 0 outranks tenant 1 on priority but has been served more
        // tokens per unit weight: WFQ serves the starved tenant first,
        // strict priority would not.
        let mut wfq = WfqState::new(&[3.0, 1.0]);
        wfq.charge(0, 90); // vtime 30
        wfq.charge(1, 20); // vtime 20
        let a = entry(0, 2, 0.0, 0, 0);
        let b = entry(1, 1, 0.5, 1, 1);
        assert!(strict_before(&a, &b));
        let vt = wfq.vtimes().to_vec();
        let before = |x: &QueueEntry, y: &QueueEntry| wfq_before(&vt, x, y);
        assert!(before(&b, &a));
        assert!(!before(&a, &b));
        // The same discipline drives overflow eviction: a full queue
        // evicts the highest-virtual-time tenant's request.
        let mut q = AdmissionQueue::new(1);
        assert!(q.offer(a, &before).is_none());
        assert_eq!(q.offer(b, &before), Some(0));
        assert_eq!(q.entries()[0].req, 1);
    }

    #[test]
    fn wfq_charge_advances_by_inverse_weight_and_wake_refloors() {
        let mut wfq = WfqState::new(&[2.0, 1.0]);
        wfq.charge(0, 10);
        wfq.charge(1, 10);
        assert_eq!(wfq.vtime(0), 5.0);
        assert_eq!(wfq.vtime(1), 10.0);
        assert_eq!(wfq.served_tokens(0), 10);
        assert_eq!(wfq.served_tokens(1), 10);
        // Tenant 0 idles while tenant 1 racks up service; on waking,
        // tenant 0's virtual time jumps to the floor (no banked credit)…
        wfq.charge(1, 90);
        wfq.wake(0);
        assert_eq!(wfq.vtime(0), 100.0);
        // …but a wake never rewinds a tenant already ahead.
        wfq.wake(1);
        assert_eq!(wfq.vtime(1), 100.0);
        wfq.charge(1, 1);
        wfq.wake(1);
        assert_eq!(wfq.vtime(1), 101.0);
    }

    #[test]
    fn oracle_prefers_the_faster_device_when_both_are_free() {
        use crate::serve::arrivals::TenantSpec;
        let model = ModelId::Qwen1_5B;
        let fast = plan_worker(model, &WorkerSpec::resident(DeviceProfile::v79())).unwrap();
        let slow = plan_worker(model, &WorkerSpec::resident(DeviceProfile::v73())).unwrap();
        let req =
            &crate::serve::arrivals::replay_trace(&TenantSpec::interactive("t"), &[(0.0, 64, 16)])
                [0];
        assert!(
            predicted_completion_secs(&fast, 0.0, req) < predicted_completion_secs(&slow, 0.0, req)
        );
        // But a deeply backlogged fast worker loses to a free slow one.
        assert!(
            predicted_completion_secs(&fast, 60.0, req)
                > predicted_completion_secs(&slow, 0.0, req)
        );
    }

    #[test]
    fn thermal_prediction_agrees_with_blind_on_a_cold_die() {
        use crate::serve::arrivals::TenantSpec;
        let model = ModelId::Qwen1_5B;
        let oracle = plan_worker(model, &WorkerSpec::resident(DeviceProfile::v79())).unwrap();
        let d = &oracle.device;
        let req =
            &crate::serve::arrivals::replay_trace(&TenantSpec::interactive("t"), &[(0.0, 64, 16)])
                [0];
        // A short request on a cold die finishes before the cap: the
        // thermal projection must not inflate it.
        let blind = predicted_completion_secs(&oracle, 0.0, req);
        let cold = predicted_completion_secs_thermal(&oracle, 0.0, d.ambient_temp_c, false, req);
        assert_eq!(cold, blind);

        // At the cap, everything runs at the sustained rate.
        let hot = predicted_completion_secs_thermal(&oracle, 0.0, d.throttle_temp_c, false, req);
        let dilation = oracle.sustained_step_secs / oracle.decode_step_secs;
        assert!((hot - blind * dilation).abs() < 1e-12, "hot {hot}");
        assert!(hot > blind);

        // A governor already throttled prices identically to a die at cap.
        let throttled =
            predicted_completion_secs_thermal(&oracle, 0.0, d.throttle_temp_c - 1.0, true, req);
        assert_eq!(throttled, hot);

        // Between ambient and cap the prediction interpolates.
        let warm =
            predicted_completion_secs_thermal(&oracle, 0.0, d.throttle_temp_c - 0.05, false, req);
        assert!(
            warm > blind && warm <= hot,
            "warm {warm} in ({blind}, {hot}]"
        );
    }

    #[test]
    fn thermal_oracle_carries_both_operating_points() {
        let oracle = plan_worker(
            ModelId::Qwen1_5B,
            &WorkerSpec::resident(DeviceProfile::v75()),
        )
        .unwrap();
        let d = &oracle.device;
        assert!(oracle.sustained_step_secs > oracle.decode_step_secs);
        // Dilation bounded by the clock ratio (fixed switches only help).
        assert!(
            oracle.sustained_step_secs <= oracle.decode_step_secs / d.sustained_clock_mult * 1.001
        );
        // Cube-law dynamic power: the sustained point draws fewer watts.
        assert!(oracle.sustained_power_w < oracle.burst_power_w);
        assert!(oracle.sustained_power_w > d.base_power_w);
    }

    #[test]
    fn fits_gate_rejects_impossible_workers() {
        // A device capped at one session cannot hold Qwen-3B resident:
        // plan_worker propagates the Backend::fits rejection.
        let mut capped = DeviceProfile::v73();
        capped.max_sessions = 1;
        let err = plan_worker(ModelId::Qwen3B, &WorkerSpec::resident(capped.clone()));
        assert!(err.is_err());
        // The weight-streamed deployment of the same model fits the one
        // session — the capacity relief streaming exists for.
        let ok = plan_worker(ModelId::Qwen3B, &WorkerSpec::streamed(capped)).unwrap();
        assert_eq!(ok.sessions, 1);
        assert!(ok.decode_step_secs > 0.0 && ok.prefill_tps > 0.0);
    }
}
