//! The fleet gateway: a deterministic discrete-event serving simulator.
//!
//! [`FleetGateway::serve_trace`] drives a request trace through a fleet
//! of simulated NPU workers. Each worker is a real
//! [`DecodeSession`] over a cost-only model built exactly the way
//! [`crate::pipeline`] builds its measurement deployments (shard plan,
//! streamed weight hierarchy, overlap-aware dispatch), so every charged
//! duration comes from the same calibrated cost model as the paper
//! figures:
//!
//! - a **decode step** costs the steady-state critical path of its
//!   recorded stages ([`steady_state_step_secs`]);
//! - a **chunked prefill** rides the decode walk: the chunk's stages are
//!   fused with the decode step's via [`StepStages::merged`] and the
//!   combined walk is charged once — per-walk overheads (dispatch ring,
//!   session switches, weight fetches) are shared, row-proportional
//!   compute adds;
//! - a **monolithic prefill** is a standalone pass
//!   ([`single_pass_secs`]) during which the worker's decode batch emits
//!   nothing — the head-of-line stall chunking exists to avoid;
//! - EOS-driven early finish goes through [`DecodeSession::retire`],
//!   freeing the KV slot the moment a request's realized output length
//!   is reached, and the dispatcher immediately re-admits from the
//!   queue.
//!
//! The loop is event-driven over two event kinds — request arrivals and
//! worker step completions — with all ties broken deterministically, so
//! a `(fleet, config, trace)` triple always produces the identical
//! [`ServingReport`] (the CI regression gate pins its numbers).

use edgellm::config::ModelConfig;
use edgellm::model::Model;
use edgellm::overlap::{
    lane, single_pass_secs, steady_state_lane_utilization, steady_state_step_secs, DispatchMode,
    StepStages,
};
use hexsim::prelude::*;
use htpops::gemm::DequantVariant;

use crate::serve::arrivals::Request;
use crate::serve::metrics::percentile;
use crate::serve::scheduler::{
    plan_worker, predicted_completion_secs, predicted_completion_secs_thermal, AdmissionQueue,
    FleetSpec, GatewayConfig, PrefillMode, ThermalPolicy, WorkerOracle,
};
use crate::session::{DecodeSession, SeqId, ShardPlan};
use crate::thermal::{DvfsGovernor, ThermalState};

/// Per-worker outcome of a serving run.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker label (SoC plus deployment variant).
    pub name: String,
    /// NPU sessions the worker's deployment spans.
    pub sessions: usize,
    /// Requests that finished on this worker.
    pub served: usize,
    /// Interleaved decode/prefill steps executed.
    pub steps: usize,
    /// Simulated seconds the worker spent stepping.
    pub busy_secs: f64,
    /// Busy fraction of the fleet makespan.
    pub utilization: f64,
    /// Steady-state NPU-lane busy fraction of the worker's last decode
    /// step schedule (accelerator utilization *within* a step).
    pub npu_lane_utilization: f64,
    /// Tokens emitted by decode steps on this worker.
    pub decoded_tokens: usize,
    /// Hottest die temperature reached (ambient when thermals are
    /// disabled).
    pub peak_temp_c: f64,
    /// Steps executed at the sustained (throttled) clock point.
    pub throttled_steps: usize,
}

/// Per-tenant outcome of a serving run.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant label.
    pub name: String,
    /// Requests the trace contained for this tenant.
    pub requests: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Completed requests that met the SLO.
    pub slo_good: usize,
}

/// The gateway's SLO scorecard for one trace.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Requests rejected by the bounded admission queue (or unplaceable
    /// on any worker).
    pub rejected: usize,
    /// Simulated seconds from first arrival to last worker going idle.
    pub makespan_secs: f64,
    /// Median time-to-first-token (queue wait + prefill).
    pub ttft_p50_secs: f64,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99_secs: f64,
    /// Median time-between-tokens across every decode emission.
    pub tbt_p50_secs: f64,
    /// 99th-percentile time-between-tokens.
    pub tbt_p99_secs: f64,
    /// Median admission-queue wait.
    pub queue_wait_p50_secs: f64,
    /// 99th-percentile admission-queue wait.
    pub queue_wait_p99_secs: f64,
    /// Deepest the admission queue got.
    pub peak_queue_depth: usize,
    /// Completed requests that met the SLO.
    pub slo_good: usize,
    /// SLO-good requests per simulated second.
    pub goodput_rps: f64,
    /// Tokens emitted by decode steps fleet-wide.
    pub decoded_tokens: usize,
    /// Decode tokens per simulated second.
    pub tokens_per_sec: f64,
    /// Per-worker breakdown, in fleet order.
    pub workers: Vec<WorkerReport>,
    /// Per-tenant breakdown, in first-appearance order.
    pub tenants: Vec<TenantReport>,
}

/// One request's lifecycle while (and after) it is in flight.
#[derive(Clone, Debug, Default)]
struct ReqRecord {
    ttft: Option<f64>,
    finished: Option<f64>,
    max_tbt: f64,
    rejected: bool,
}

/// A sequence the gateway is tracking on one worker.
struct SeqTrack {
    seq: SeqId,
    /// Index into the trace.
    req: usize,
    /// Tokens emitted so far (first token included once prefill lands).
    emitted: usize,
    /// Simulated time of the last emission (admission time before it).
    last_token: f64,
}

/// Mutable per-worker simulation state.
struct WorkerState {
    clock: f64,
    busy_secs: f64,
    steps: usize,
    served: usize,
    seqs: Vec<SeqTrack>,
    /// Die temperature (lumped RC model; stays at ambient when the
    /// thermal policy is [`ThermalPolicy::Disabled`]).
    thermal: ThermalState,
    /// Simulated time `thermal` is integrated up to.
    temp_at: f64,
    /// Per-worker DVFS governor.
    governor: DvfsGovernor,
    throttled_steps: usize,
    peak_temp_c: f64,
}

/// Everything the event handlers mutate, minus the borrow-sensitive
/// session/context pair (passed alongside).
struct SimState<'t> {
    prefill: PrefillMode,
    thermal: ThermalPolicy,
    oracles: &'t [WorkerOracle],
    trace: &'t [Request],
    states: Vec<WorkerState>,
    records: Vec<ReqRecord>,
    ttfts: Vec<f64>,
    tbts: Vec<f64>,
    queue_waits: Vec<f64>,
    rejected: usize,
}

/// The serving gateway: admission control in front of a heterogeneous
/// worker fleet. Construction probes every worker through
/// [`crate::backend::Backend::fits`] and fails if any worker cannot hold
/// the model at its configured capacity.
pub struct FleetGateway {
    fleet: FleetSpec,
    config: GatewayConfig,
    oracles: Vec<WorkerOracle>,
}

impl FleetGateway {
    /// Validates the fleet (every worker must pass the `fits` gate) and
    /// measures the dispatch oracle for each worker.
    pub fn new(fleet: FleetSpec, config: GatewayConfig) -> SimResult<Self> {
        assert!(!fleet.workers.is_empty(), "fleet needs at least one worker");
        if let PrefillMode::Chunked { chunk_tokens } = config.prefill {
            assert!(chunk_tokens >= 1, "prefill chunks carry at least one token");
        }
        let oracles = fleet
            .workers
            .iter()
            .map(|w| plan_worker(fleet.model, w))
            .collect::<SimResult<Vec<_>>>()?;
        Ok(FleetGateway {
            fleet,
            config,
            oracles,
        })
    }

    /// The measured per-worker dispatch oracles, in fleet order.
    pub fn oracles(&self) -> &[WorkerOracle] {
        &self.oracles
    }

    /// Serves a trace to completion and reports SLO metrics. The trace
    /// need not be sorted; requests are processed in arrival order (ties
    /// by id). Deterministic: identical inputs produce an identical
    /// report.
    pub fn serve_trace(&self, trace: &[Request]) -> SimResult<ServingReport> {
        let n = self.fleet.workers.len();
        // Build each worker's runtime exactly like the measurement
        // pipeline: shard plan -> sharded cost-only context -> streamed
        // model under overlap-aware dispatch -> decode session.
        let cfg = ModelConfig::for_id(self.fleet.model);
        let mut ctxs: Vec<NpuContext> = Vec::with_capacity(n);
        let mut models: Vec<Model> = Vec::with_capacity(n);
        let mut plan_sessions = Vec::with_capacity(n);
        for w in &self.fleet.workers {
            let plan = if w.streaming {
                ShardPlan::build_streaming(&cfg, w.device.session_va_bytes, w.max_batch, w.max_ctx)?
            } else {
                ShardPlan::build(&cfg, w.device.session_va_bytes, w.max_batch, w.max_ctx)?
            };
            let mut ctx =
                NpuContext::new_sharded(w.device.clone(), ExecMode::CostOnly, plan.sessions());
            let schedule = plan.schedule();
            let mut model = Model::new_streamed(
                &mut ctx,
                self.fleet.model,
                DequantVariant::CoalescedLut,
                1,
                &schedule.streamed,
            )?;
            model.set_layer_schedule(schedule);
            model.set_dispatch_mode(DispatchMode::Overlapped);
            plan_sessions.push(plan.sessions());
            ctxs.push(ctx);
            models.push(model);
        }
        let mut sessions: Vec<DecodeSession<'_>> = Vec::with_capacity(n);
        for (i, model) in models.iter().enumerate() {
            let w = &self.fleet.workers[i];
            let budget = w.max_batch * (w.max_ctx + 2);
            sessions.push(DecodeSession::new(
                &mut ctxs[i],
                model,
                &[0],
                w.max_batch,
                budget,
            )?);
        }

        let mut order: Vec<usize> = (0..trace.len()).collect();
        order.sort_by(|&a, &b| {
            trace[a]
                .arrival_secs
                .total_cmp(&trace[b].arrival_secs)
                .then(trace[a].id.cmp(&trace[b].id))
        });
        let mut sim = SimState {
            prefill: self.config.prefill,
            thermal: self.config.thermal,
            oracles: &self.oracles,
            trace,
            states: self
                .fleet
                .workers
                .iter()
                .map(|w| WorkerState {
                    clock: 0.0,
                    busy_secs: 0.0,
                    steps: 0,
                    served: 0,
                    seqs: Vec::new(),
                    thermal: ThermalState::ambient(&w.device),
                    temp_at: 0.0,
                    governor: DvfsGovernor::new(),
                    throttled_steps: 0,
                    peak_temp_c: w.device.ambient_temp_c,
                })
                .collect(),
            records: vec![ReqRecord::default(); trace.len()],
            ttfts: Vec::new(),
            tbts: Vec::new(),
            queue_waits: Vec::new(),
            rejected: 0,
        };
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        let mut next_arrival = 0usize;

        loop {
            let arrival = order.get(next_arrival).map(|&ri| trace[ri].arrival_secs);
            let busy_worker = (0..n)
                .filter(|&i| sessions[i].active_count() + sessions[i].prefilling_count() > 0)
                .min_by(|&a, &b| {
                    sim.states[a]
                        .clock
                        .total_cmp(&sim.states[b].clock)
                        .then(a.cmp(&b))
                });
            let take_arrival = match (arrival, busy_worker) {
                (Some(ta), Some(w)) => ta <= sim.states[w].clock,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let now = if take_arrival {
                let ri = order[next_arrival];
                next_arrival += 1;
                let r = &trace[ri];
                if let Some(rej) = queue.offer(ri, r.priority, r.arrival_secs, r.id) {
                    sim.records[rej].rejected = true;
                    sim.rejected += 1;
                }
                r.arrival_secs
            } else if let Some(w) = busy_worker {
                sim.step_worker(w, &mut sessions[w], &mut ctxs[w])?
            } else {
                // No arrivals left, every worker idle: anything still
                // queued was never placeable (dispatch rejects those
                // eagerly, but guard against a stall regardless).
                while let Some(ri) = queue.pop() {
                    sim.records[ri].rejected = true;
                    sim.rejected += 1;
                }
                break;
            };
            sim.try_dispatch(now, &mut queue, &mut sessions, &self.fleet)?;
        }

        let report = self.build_report(&sim, &queue, &sessions, &plan_sessions);
        for (sess, ctx) in sessions.into_iter().zip(ctxs.iter_mut()) {
            sess.release(ctx);
        }
        Ok(report)
    }

    fn build_report(
        &self,
        sim: &SimState<'_>,
        queue: &AdmissionQueue,
        sessions: &[DecodeSession<'_>],
        plan_sessions: &[usize],
    ) -> ServingReport {
        let trace = sim.trace;
        let makespan_secs = sim.states.iter().map(|s| s.clock).fold(0.0f64, f64::max);
        let completed = sim.records.iter().filter(|r| r.finished.is_some()).count();
        let mut slo_good = 0usize;
        let mut tenants: Vec<TenantReport> = Vec::new();
        for (i, req) in trace.iter().enumerate() {
            let rec = &sim.records[i];
            let good = rec.finished.is_some()
                && rec
                    .ttft
                    .map(|t| self.config.slo.met(t, rec.max_tbt))
                    .unwrap_or(false);
            slo_good += usize::from(good);
            let entry = match tenants.iter_mut().find(|t| t.name == req.tenant) {
                Some(t) => t,
                None => {
                    tenants.push(TenantReport {
                        name: req.tenant.clone(),
                        requests: 0,
                        completed: 0,
                        rejected: 0,
                        slo_good: 0,
                    });
                    tenants.last_mut().expect("just pushed")
                }
            };
            entry.requests += 1;
            entry.completed += usize::from(rec.finished.is_some());
            entry.rejected += usize::from(rec.rejected);
            entry.slo_good += usize::from(good);
        }
        let decoded_tokens: usize = sessions.iter().map(|s| s.decoded_tokens()).sum();
        let workers = (0..sessions.len())
            .map(|i| {
                let st = &sim.states[i];
                WorkerReport {
                    name: self.oracles[i].name.clone(),
                    sessions: plan_sessions[i],
                    served: st.served,
                    steps: st.steps,
                    busy_secs: st.busy_secs,
                    utilization: if makespan_secs > 0.0 {
                        st.busy_secs / makespan_secs
                    } else {
                        0.0
                    },
                    npu_lane_utilization: sessions[i]
                        .last_step_stages()
                        .map(|s| steady_state_lane_utilization(s, lane::NPU))
                        .unwrap_or(0.0),
                    decoded_tokens: sessions[i].decoded_tokens(),
                    peak_temp_c: st.peak_temp_c,
                    throttled_steps: st.throttled_steps,
                }
            })
            .collect();
        ServingReport {
            requests: trace.len(),
            completed,
            rejected: sim.rejected,
            makespan_secs,
            ttft_p50_secs: percentile(&sim.ttfts, 50.0),
            ttft_p99_secs: percentile(&sim.ttfts, 99.0),
            tbt_p50_secs: percentile(&sim.tbts, 50.0),
            tbt_p99_secs: percentile(&sim.tbts, 99.0),
            queue_wait_p50_secs: percentile(&sim.queue_waits, 50.0),
            queue_wait_p99_secs: percentile(&sim.queue_waits, 99.0),
            peak_queue_depth: queue.peak_depth(),
            slo_good,
            goodput_rps: if makespan_secs > 0.0 {
                slo_good as f64 / makespan_secs
            } else {
                0.0
            },
            decoded_tokens,
            tokens_per_sec: if makespan_secs > 0.0 {
                decoded_tokens as f64 / makespan_secs
            } else {
                0.0
            },
            workers,
            tenants,
        }
    }
}

impl SimState<'_> {
    /// Advances worker `w` by one event: a monolithic prefill pass, an
    /// interleaved decode+chunk step, or a plain decode step. Returns
    /// the simulated time the event finished at.
    fn step_worker(
        &mut self,
        w: usize,
        sess: &mut DecodeSession<'_>,
        ctx: &mut NpuContext,
    ) -> SimResult<f64> {
        let t0 = self.states[w].clock;
        // Settle the DVFS governor on the pre-step die temperature and
        // pick this step's clock multiplier.
        let mult = if self.thermal == ThermalPolicy::Disabled {
            1.0
        } else {
            let device = &self.oracles[w].device;
            let st = &mut self.states[w];
            st.governor.observe(device, st.thermal.temp_c);
            st.governor.clock_mult(device)
        };
        // Throttled steps run the same recorded schedule with every stage
        // dilated by 1/mult except fixed session switches — the exact
        // repricing `StepStages::at_clock` defines. At burst clocks the
        // schedule passes through untouched.
        let throttle = |s: &StepStages| {
            if mult < 1.0 {
                s.at_clock(mult)
            } else {
                s.clone()
            }
        };
        let has_active = sess.active_count() > 0;
        let has_prefill = sess.prefilling_count() > 0;
        let mut emitted: Vec<(SeqId, u32)> = Vec::new();
        let mut chunk_done: Option<SeqId> = None;
        let dur = match self.prefill {
            PrefillMode::Monolithic if has_prefill => {
                // The whole prompt was registered as one chunk: this
                // pass completes it while every active decode stalls.
                let chunk = sess.prefill_step(ctx, |_| 0)?.expect("prefilling");
                debug_assert!(chunk.completed, "monolithic prompts land in one pass");
                if chunk.completed {
                    chunk_done = Some(chunk.id);
                }
                single_pass_secs(&throttle(&chunk.stages))
            }
            _ => {
                let decode_stages: Option<StepStages> = if has_active {
                    emitted = sess.step(ctx, |_, _| 0)?;
                    sess.last_step_stages().cloned()
                } else {
                    None
                };
                let chunk = if matches!(self.prefill, PrefillMode::Chunked { .. }) && has_prefill {
                    sess.prefill_step(ctx, |_| 0)?
                } else {
                    None
                };
                if let Some(c) = &chunk {
                    if c.completed {
                        chunk_done = Some(c.id);
                    }
                }
                match (&decode_stages, &chunk) {
                    // Chunk rides the decode walk: one fused schedule.
                    (Some(d), Some(c)) => steady_state_step_secs(&throttle(&d.merged(&c.stages))),
                    (Some(d), None) => steady_state_step_secs(&throttle(d)),
                    (None, Some(c)) => single_pass_secs(&throttle(&c.stages)),
                    (None, None) => unreachable!("stepped an idle worker"),
                }
            }
        };
        let t_end = t0 + dur;
        let state = &mut self.states[w];
        state.clock = t_end;
        state.busy_secs += dur;
        state.steps += 1;
        if self.thermal != ThermalPolicy::Disabled {
            // The step's joules flow into the die at the operating point
            // the governor chose for it.
            let oracle = &self.oracles[w];
            let throttled = state.governor.is_throttled();
            let power_w = if throttled {
                oracle.sustained_power_w
            } else {
                oracle.burst_power_w
            };
            state.thermal.step(&oracle.device, power_w, dur);
            state.temp_at = t_end;
            state.peak_temp_c = state.peak_temp_c.max(state.thermal.temp_c);
            state.throttled_steps += usize::from(throttled);
        }

        // First token of a request whose prompt just completed.
        if let Some(sid) = chunk_done {
            let k = state
                .seqs
                .iter()
                .position(|s| s.seq == sid)
                .expect("prefilling sequence is tracked");
            let req_i = state.seqs[k].req;
            let r = &self.trace[req_i];
            state.seqs[k].emitted = 1;
            state.seqs[k].last_token = t_end;
            let ttft = t_end - r.arrival_secs;
            self.records[req_i].ttft = Some(ttft);
            self.ttfts.push(ttft);
            if r.output_len.min(r.max_new) <= 1 {
                // The first token is the whole output. A budget of one
                // already finished inside the session; otherwise the
                // EOS retires the freshly activated sequence.
                if r.max_new > 1 {
                    sess.retire(sid)?;
                }
                state.seqs.remove(k);
                self.records[req_i].finished = Some(t_end);
                state.served += 1;
            }
        }

        // Decode emissions: TBT samples, EOS-driven retirement.
        for (sid, _token) in &emitted {
            let k = state
                .seqs
                .iter()
                .position(|s| s.seq == *sid)
                .expect("decoding sequence is tracked");
            let (req_i, finished_now, tbt) = {
                let tr = &mut state.seqs[k];
                tr.emitted += 1;
                let tbt = t_end - tr.last_token;
                tr.last_token = t_end;
                let r = &self.trace[tr.req];
                (tr.req, tr.emitted >= r.output_len.min(r.max_new), tbt)
            };
            self.tbts.push(tbt);
            let rec = &mut self.records[req_i];
            if tbt > rec.max_tbt {
                rec.max_tbt = tbt;
            }
            if finished_now {
                let tr = state.seqs.remove(k);
                // EOS before the budget: retire explicitly, freeing the
                // KV slot now. At the budget the session auto-retired.
                if tr.emitted < self.trace[req_i].max_new {
                    sess.retire(tr.seq)?;
                }
                rec.finished = Some(t_end);
                state.served += 1;
            }
        }
        Ok(t_end)
    }

    /// Die temperature worker `w` would have at time `t`: the last
    /// integrated temperature, cooled in closed form (zero-power RC
    /// decay) over any idle gap since.
    fn projected_temp(&self, w: usize, t: f64) -> f64 {
        let st = &self.states[w];
        let d = &self.oracles[w].device;
        let gap = t - st.temp_at;
        if gap <= 0.0 {
            return st.thermal.temp_c;
        }
        d.ambient_temp_c
            + (st.thermal.temp_c - d.ambient_temp_c) * (-gap / d.thermal_time_constant_secs()).exp()
    }

    /// The dispatcher's completion prediction for placing `r` on worker
    /// `w` at time `now`, under the configured thermal policy.
    fn predict(&self, w: usize, now: f64, r: &Request) -> f64 {
        let free = self.states[w].clock.max(now);
        match self.thermal {
            ThermalPolicy::Aware => {
                let temp = self.projected_temp(w, free);
                let mut governor = self.states[w].governor.clone();
                governor.observe(&self.oracles[w].device, temp);
                predicted_completion_secs_thermal(
                    &self.oracles[w],
                    free,
                    temp,
                    governor.is_throttled(),
                    r,
                )
            }
            _ => predicted_completion_secs(&self.oracles[w], free, r),
        }
    }

    /// Admits queued requests while fleet capacity exists, placing each
    /// on the worker minimizing its predicted completion. Requests no
    /// worker could ever hold (prompt + budget exceed every context
    /// capacity) are rejected — the per-request half of the `fits` gate.
    fn try_dispatch(
        &mut self,
        now: f64,
        queue: &mut AdmissionQueue,
        sessions: &mut [DecodeSession<'_>],
        fleet: &FleetSpec,
    ) -> SimResult<()> {
        while let Some(ri) = queue.peek() {
            let r = &self.trace[ri];
            let feasible: Vec<usize> = (0..fleet.workers.len())
                .filter(|&w| r.prompt_len + r.max_new <= fleet.workers[w].max_ctx)
                .collect();
            if feasible.is_empty() {
                queue.pop();
                self.records[ri].rejected = true;
                self.rejected += 1;
                continue;
            }
            let open: Vec<usize> = feasible
                .into_iter()
                .filter(|&w| sessions[w].has_free_slot())
                .collect();
            let Some(&best) = open.iter().min_by(|&&a, &&b| {
                let pa = self.predict(a, now, r);
                let pb = self.predict(b, now, r);
                pa.total_cmp(&pb).then(a.cmp(&b))
            }) else {
                // Capacity exists somewhere but no slot is free yet:
                // wait (head-of-line, priority order preserved).
                break;
            };
            queue.pop();
            let chunk = match self.prefill {
                PrefillMode::Chunked { chunk_tokens } => chunk_tokens,
                PrefillMode::Monolithic => r.prompt_len,
            };
            let was_idle = sessions[best].active_count() + sessions[best].prefilling_count() == 0;
            // Cost-only prompts: token values never matter, length does.
            let sid = sessions[best].admit_prompt(&vec![0u32; r.prompt_len], r.max_new, chunk)?;
            if was_idle {
                let jump = self.states[best].clock.max(now);
                if self.thermal != ThermalPolicy::Disabled {
                    // The worker sat idle until now: its die relaxed
                    // toward ambient over the gap.
                    let cooled = self.projected_temp(best, jump);
                    let st = &mut self.states[best];
                    st.thermal.temp_c = cooled;
                    st.temp_at = jump;
                }
                self.states[best].clock = jump;
            }
            self.states[best].seqs.push(SeqTrack {
                seq: sid,
                req: ri,
                emitted: 0,
                last_token: now,
            });
            self.queue_waits.push(now - r.arrival_secs);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::arrivals::{poisson_trace, replay_trace, TenantSpec};
    use crate::serve::metrics::SloConfig;
    use edgellm::config::ModelId;

    fn tenants() -> [TenantSpec; 2] {
        [TenantSpec::interactive("chat"), TenantSpec::batch("batch")]
    }

    #[test]
    fn serve_trace_is_deterministic_and_conserves_requests() {
        let trace = poisson_trace(&tenants(), 4.0, 12, 3);
        let fleet = FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false);
        let gw = FleetGateway::new(fleet, GatewayConfig::default()).unwrap();
        let a = gw.serve_trace(&trace).unwrap();
        let b = gw.serve_trace(&trace).unwrap();
        assert_eq!(a.completed + a.rejected, 12);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.ttft_p99_secs, b.ttft_p99_secs);
        assert_eq!(a.tbt_p99_secs, b.tbt_p99_secs);
        assert!(a.ttft_p50_secs > 0.0);
        assert!(a.makespan_secs >= trace.last().unwrap().arrival_secs);
        // Tenant rows partition the trace.
        let by_tenant: usize = a.tenants.iter().map(|t| t.requests).sum();
        assert_eq!(by_tenant, 12);
    }

    #[test]
    fn chunked_prefill_bounds_tbt_against_monolithic_stalls() {
        // A steady interactive stream plus mid-run long-prompt arrivals:
        // monolithic prefill stalls the decode batch for the whole
        // prompt pass, chunked prefill keeps p99 TBT near the
        // no-arrivals steady state (the acceptance gate pins 2x).
        let interactive = TenantSpec {
            output_lens: (24, 32),
            ..TenantSpec::interactive("chat")
        };
        let mut trace = replay_trace(
            &interactive,
            &[(0.0, 64, 28), (0.0, 64, 30), (0.0, 64, 32), (0.0, 64, 32)],
        );
        let long = replay_trace(
            &TenantSpec::batch("ingest"),
            &[(0.4, 512, 8), (0.8, 448, 8)],
        );
        for (i, mut r) in long.into_iter().enumerate() {
            r.id = 100 + i as u64;
            trace.push(r);
        }
        let fleet = FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false);
        let chunked = FleetGateway::new(fleet.clone(), GatewayConfig::default()).unwrap();
        let mono = FleetGateway::new(
            fleet,
            GatewayConfig {
                prefill: PrefillMode::Monolithic,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let rc = chunked.serve_trace(&trace).unwrap();
        let rm = mono.serve_trace(&trace).unwrap();
        assert_eq!(rc.completed, trace.len());
        assert_eq!(rm.completed, trace.len());
        // No-arrivals steady state: the oracle's full-batch step time.
        let steady = chunked.oracles()[0].decode_step_secs;
        assert!(
            rc.tbt_p99_secs <= 2.0 * steady,
            "chunked p99 TBT {} vs steady {steady}",
            rc.tbt_p99_secs
        );
        assert!(
            rm.tbt_p99_secs > rc.tbt_p99_secs,
            "monolithic p99 {} must exceed chunked {}",
            rm.tbt_p99_secs,
            rc.tbt_p99_secs
        );
    }

    #[test]
    fn bounded_queue_rejects_under_overload_and_fleet_absorbs_it() {
        let trace = poisson_trace(&tenants(), 12.0, 24, 9);
        let config = GatewayConfig {
            queue_capacity: 4,
            ..GatewayConfig::default()
        };
        let single = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v73(), true),
            config,
        )
        .unwrap();
        let rs = single.serve_trace(&trace).unwrap();
        let fleet = FleetGateway::new(FleetSpec::heterogeneous(ModelId::Qwen1_5B), config).unwrap();
        let rf = fleet.serve_trace(&trace).unwrap();
        assert!(
            rs.rejected > 0,
            "overloaded single device must shed load, got {rs:?}"
        );
        assert!(
            rf.rejected < rs.rejected,
            "fleet rejections {} vs single {}",
            rf.rejected,
            rs.rejected
        );
        assert!(rf.completed > rs.completed);
        // The streamed V73 exists in the fleet and did real work.
        let v73 = rf.workers.iter().find(|w| w.name.contains("8G2")).unwrap();
        assert!(v73.name.contains("streamed"));
    }

    #[test]
    fn unplaceable_prompts_are_rejected_not_stuck() {
        let t = TenantSpec {
            prompt_lens: (4096, 4096),
            ..TenantSpec::batch("huge")
        };
        let trace = replay_trace(&t, &[(0.0, 4096, 8)]);
        let gw = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false),
            GatewayConfig::default(),
        )
        .unwrap();
        let r = gw.serve_trace(&trace).unwrap();
        assert_eq!(r.rejected, 1);
        assert_eq!(r.completed, 0);
    }

    #[test]
    fn thermal_physics_is_inert_below_the_throttle_cap() {
        use crate::serve::scheduler::ThermalPolicy;
        // A short trace never fills the thermal capacitance: with physics
        // on (Blind) the dies warm but never throttle, so every latency
        // number matches the Disabled gateway bit-for-bit — the
        // "thermals change nothing until they must" guarantee.
        let trace = poisson_trace(&tenants(), 4.0, 10, 11);
        let fleet = FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false);
        let disabled = FleetGateway::new(fleet.clone(), GatewayConfig::default()).unwrap();
        let blind = FleetGateway::new(
            fleet,
            GatewayConfig {
                thermal: ThermalPolicy::Blind,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let rd = disabled.serve_trace(&trace).unwrap();
        let rb = blind.serve_trace(&trace).unwrap();
        assert_eq!(rd.makespan_secs, rb.makespan_secs);
        assert_eq!(rd.ttft_p99_secs, rb.ttft_p99_secs);
        assert_eq!(rd.tbt_p99_secs, rb.tbt_p99_secs);
        assert_eq!(rd.completed, rb.completed);
        assert_eq!(rb.workers[0].throttled_steps, 0);
        // Physics ran in one and not the other.
        let ambient = DeviceProfile::v75().ambient_temp_c;
        assert_eq!(rd.workers[0].peak_temp_c, ambient);
        assert!(rb.workers[0].peak_temp_c > ambient);
        assert!(rb.workers[0].peak_temp_c < DeviceProfile::v75().throttle_temp_c);
    }

    #[test]
    fn aware_dispatch_is_deterministic_and_projects_cooling() {
        use crate::serve::scheduler::ThermalPolicy;
        let trace = poisson_trace(&tenants(), 6.0, 16, 13);
        let config = GatewayConfig {
            thermal: ThermalPolicy::Aware,
            ..GatewayConfig::default()
        };
        let gw = FleetGateway::new(FleetSpec::heterogeneous(ModelId::Qwen1_5B), config).unwrap();
        let a = gw.serve_trace(&trace).unwrap();
        let b = gw.serve_trace(&trace).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.tbt_p99_secs, b.tbt_p99_secs);
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(wa.peak_temp_c, wb.peak_temp_c);
            assert_eq!(wa.throttled_steps, wb.throttled_steps);
        }
    }

    #[test]
    fn slo_goodput_counts_only_fast_completions() {
        let trace = poisson_trace(&tenants(), 3.0, 8, 5);
        let strict = GatewayConfig {
            slo: SloConfig {
                ttft_secs: 1e-6,
                tbt_secs: 1e-6,
            },
            ..GatewayConfig::default()
        };
        let gw = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v79(), false),
            strict,
        )
        .unwrap();
        let r = gw.serve_trace(&trace).unwrap();
        assert_eq!(r.slo_good, 0, "nothing meets a microsecond SLO");
        assert_eq!(r.goodput_rps, 0.0);
        let relaxed = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v79(), false),
            GatewayConfig::default(),
        )
        .unwrap();
        let r2 = relaxed.serve_trace(&trace).unwrap();
        assert!(r2.slo_good > 0);
        assert!(r2.goodput_rps > 0.0);
    }
}
