//! The fleet gateway: a deterministic discrete-event serving simulator.
//!
//! [`FleetGateway::serve_trace`] drives a request trace through a fleet
//! of simulated NPU workers. Each worker is a real
//! [`DecodeSession`] over a cost-only model built exactly the way
//! [`crate::pipeline`] builds its measurement deployments (shard plan,
//! streamed weight hierarchy, overlap-aware dispatch), so every charged
//! duration comes from the same calibrated cost model as the paper
//! figures:
//!
//! - a **decode step** costs the steady-state critical path of its
//!   recorded stages ([`steady_state_step_secs`]);
//! - a **chunked prefill** rides the decode walk: the chunk's stages are
//!   fused with the decode step's via [`StepStages::merged`] and the
//!   combined walk is charged once — per-walk overheads (dispatch ring,
//!   session switches, weight fetches) are shared, row-proportional
//!   compute adds;
//! - a **monolithic prefill** is a standalone pass
//!   ([`single_pass_secs`]) during which the worker's decode batch emits
//!   nothing — the head-of-line stall chunking exists to avoid;
//! - EOS-driven early finish goes through [`DecodeSession::retire`],
//!   freeing the KV slot the moment a request's realized output length
//!   is reached, and the dispatcher immediately re-admits from the
//!   queue.
//!
//! The loop is event-driven over two event kinds — request arrivals and
//! worker step completions — with all ties broken deterministically, so
//! a `(fleet, config, trace)` triple always produces the identical
//! [`ServingReport`] (the CI regression gate pins its numbers).

use edgellm::config::ModelConfig;
use edgellm::model::Model;
use edgellm::overlap::{
    lane, single_pass_secs, steady_state_lane_utilization, steady_state_step_secs, DispatchMode,
    StepStages,
};
use hexsim::prelude::*;
use htpops::gemm::DequantVariant;

use crate::serve::arrivals::Request;
use crate::serve::metrics::{jain_index, percentile};
use crate::serve::scheduler::{
    plan_worker, predicted_completion_secs, predicted_completion_secs_thermal, strict_before,
    wfq_before, AdmissionQueue, FleetSpec, GatewayConfig, PreemptionPolicy, PrefillMode,
    QueueEntry, SchedulingPolicy, ThermalPolicy, WfqState, WorkerOracle,
};
use crate::session::{DecodeSession, PreemptedSeq, SeqId, ShardPlan};
use crate::thermal::{DvfsGovernor, ThermalState};

/// Per-worker outcome of a serving run.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker label (SoC plus deployment variant).
    pub name: String,
    /// NPU sessions the worker's deployment spans.
    pub sessions: usize,
    /// Requests that finished on this worker.
    pub served: usize,
    /// Interleaved decode/prefill steps executed.
    pub steps: usize,
    /// Simulated seconds the worker spent stepping.
    pub busy_secs: f64,
    /// Busy fraction of the fleet makespan.
    pub utilization: f64,
    /// Step-duration-weighted average of the NPU lane's busy fraction
    /// across every step the worker executed (accelerator utilization
    /// *within* its steps, not just the last schedule).
    pub npu_lane_utilization: f64,
    /// Tokens emitted by decode steps on this worker.
    pub decoded_tokens: usize,
    /// Hottest die temperature reached (ambient when thermals are
    /// disabled).
    pub peak_temp_c: f64,
    /// Steps executed at the sustained (throttled) clock point.
    pub throttled_steps: usize,
}

/// Per-tenant outcome of a serving run.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant label.
    pub name: String,
    /// Requests the trace contained for this tenant.
    pub requests: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Completed requests that met the SLO.
    pub slo_good: usize,
    /// Tokens (prompt + generated) the fleet served to this tenant.
    pub served_tokens: u64,
    /// This tenant's fraction of all served tokens (0 when nothing was
    /// served fleet-wide).
    pub token_share: f64,
    /// 99th-percentile time-to-first-token across this tenant's
    /// requests that produced a first token.
    pub ttft_p99_secs: f64,
}

/// The gateway's SLO scorecard for one trace.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Requests rejected by the bounded admission queue (or unplaceable
    /// on any worker).
    pub rejected: usize,
    /// Simulated seconds from first arrival to last worker going idle.
    pub makespan_secs: f64,
    /// Median time-to-first-token (queue wait + prefill).
    pub ttft_p50_secs: f64,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99_secs: f64,
    /// Median time-between-tokens across every decode emission.
    pub tbt_p50_secs: f64,
    /// 99th-percentile time-between-tokens.
    pub tbt_p99_secs: f64,
    /// Median admission-queue wait.
    pub queue_wait_p50_secs: f64,
    /// 99th-percentile admission-queue wait.
    pub queue_wait_p99_secs: f64,
    /// Deepest the admission queue got.
    pub peak_queue_depth: usize,
    /// Completed requests that met the SLO.
    pub slo_good: usize,
    /// SLO-good requests per simulated second.
    pub goodput_rps: f64,
    /// Tokens emitted by decode steps fleet-wide.
    pub decoded_tokens: usize,
    /// Decode tokens per simulated second.
    pub tokens_per_sec: f64,
    /// Jain fairness index over per-tenant served tokens: 1.0 when every
    /// tenant got an equal token count, `1/n` when one tenant
    /// monopolized the fleet.
    pub jain_fairness: f64,
    /// Mid-stream preemptions the dispatcher performed (0 unless
    /// [`PreemptionPolicy::Enabled`]).
    pub preemptions: usize,
    /// Per-worker breakdown, in fleet order.
    pub workers: Vec<WorkerReport>,
    /// Per-tenant breakdown, in first-appearance order.
    pub tenants: Vec<TenantReport>,
}

/// One request's lifecycle while (and after) it is in flight.
#[derive(Clone, Debug, Default)]
struct ReqRecord {
    ttft: Option<f64>,
    finished: Option<f64>,
    max_tbt: f64,
    rejected: bool,
}

/// A sequence the gateway is tracking on one worker.
struct SeqTrack {
    seq: SeqId,
    /// Index into the trace.
    req: usize,
    /// Tokens emitted so far (first token included once prefill lands).
    emitted: usize,
    /// Simulated time of the last emission (admission time before it).
    last_token: f64,
}

/// A decode the dispatcher paused mid-stream. The KV snapshot lives in
/// `paused`; the request resumes only on the worker that holds its
/// history (KV cannot migrate), competing for a slot alongside queued
/// requests under the active scheduling discipline.
struct PreemptedTrack {
    /// Worker the sequence ran (and must resume) on.
    worker: usize,
    /// The session-layer pause: KV snapshot plus decode cursor.
    paused: PreemptedSeq,
    /// Index into the trace.
    req: usize,
    /// Tokens emitted before the pause.
    emitted: usize,
    /// Simulated time of the last pre-pause emission.
    last_token: f64,
}

/// Mutable per-worker simulation state.
struct WorkerState {
    clock: f64,
    busy_secs: f64,
    steps: usize,
    served: usize,
    seqs: Vec<SeqTrack>,
    /// Die temperature (lumped RC model; stays at ambient when the
    /// thermal policy is [`ThermalPolicy::Disabled`]).
    thermal: ThermalState,
    /// Simulated time `thermal` is integrated up to.
    temp_at: f64,
    /// Per-worker DVFS governor.
    governor: DvfsGovernor,
    throttled_steps: usize,
    peak_temp_c: f64,
    /// Integral of (NPU-lane busy fraction × step duration) — the
    /// numerator of the duration-weighted lane utilization.
    npu_util_x_secs: f64,
}

/// Everything the event handlers mutate, minus the borrow-sensitive
/// session/context pair (passed alongside).
struct SimState<'t> {
    prefill: PrefillMode,
    thermal: ThermalPolicy,
    scheduling: SchedulingPolicy,
    preemption: PreemptionPolicy,
    oracles: &'t [WorkerOracle],
    trace: &'t [Request],
    states: Vec<WorkerState>,
    records: Vec<ReqRecord>,
    /// Tenant index (first-appearance order) of each trace entry.
    tenant_of: Vec<usize>,
    /// Per-tenant served-token accounting; doubles as the WFQ virtual
    /// clock when [`SchedulingPolicy::Wfq`] is active.
    wfq: WfqState,
    /// Per-tenant queued-or-in-flight request count, for the WFQ
    /// idle-tenant wake re-floor.
    outstanding: Vec<usize>,
    /// Decodes paused mid-stream, awaiting a slot on their worker.
    preempted: Vec<PreemptedTrack>,
    preemptions: usize,
    ttfts: Vec<f64>,
    tbts: Vec<f64>,
    queue_waits: Vec<f64>,
    rejected: usize,
}

/// The serving gateway: admission control in front of a heterogeneous
/// worker fleet. Construction probes every worker through
/// [`crate::backend::Backend::fits`] and fails if any worker cannot hold
/// the model at its configured capacity.
pub struct FleetGateway {
    fleet: FleetSpec,
    config: GatewayConfig,
    oracles: Vec<WorkerOracle>,
}

impl FleetGateway {
    /// Validates the fleet (every worker must pass the `fits` gate) and
    /// measures the dispatch oracle for each worker.
    pub fn new(fleet: FleetSpec, config: GatewayConfig) -> SimResult<Self> {
        assert!(!fleet.workers.is_empty(), "fleet needs at least one worker");
        if let PrefillMode::Chunked { chunk_tokens } = config.prefill {
            assert!(chunk_tokens >= 1, "prefill chunks carry at least one token");
        }
        let oracles = fleet
            .workers
            .iter()
            .map(|w| plan_worker(fleet.model, w))
            .collect::<SimResult<Vec<_>>>()?;
        Ok(FleetGateway {
            fleet,
            config,
            oracles,
        })
    }

    /// The measured per-worker dispatch oracles, in fleet order.
    pub fn oracles(&self) -> &[WorkerOracle] {
        &self.oracles
    }

    /// Serves a trace to completion and reports SLO metrics. The trace
    /// need not be sorted; requests are processed in arrival order (ties
    /// by id). Deterministic: identical inputs produce an identical
    /// report.
    pub fn serve_trace(&self, trace: &[Request]) -> SimResult<ServingReport> {
        let n = self.fleet.workers.len();
        // Build each worker's runtime exactly like the measurement
        // pipeline: shard plan -> sharded cost-only context -> streamed
        // model under overlap-aware dispatch -> decode session.
        let cfg = ModelConfig::for_id(self.fleet.model);
        let mut ctxs: Vec<NpuContext> = Vec::with_capacity(n);
        let mut models: Vec<Model> = Vec::with_capacity(n);
        let mut plan_sessions = Vec::with_capacity(n);
        for w in &self.fleet.workers {
            let plan = if w.streaming {
                ShardPlan::build_streaming(&cfg, w.device.session_va_bytes, w.max_batch, w.max_ctx)?
            } else {
                ShardPlan::build(&cfg, w.device.session_va_bytes, w.max_batch, w.max_ctx)?
            };
            let mut ctx =
                NpuContext::new_sharded(w.device.clone(), ExecMode::CostOnly, plan.sessions());
            let schedule = plan.schedule();
            let mut model = Model::new_streamed(
                &mut ctx,
                self.fleet.model,
                DequantVariant::CoalescedLut,
                1,
                &schedule.streamed,
            )?;
            model.set_layer_schedule(schedule);
            model.set_dispatch_mode(DispatchMode::Overlapped);
            plan_sessions.push(plan.sessions());
            ctxs.push(ctx);
            models.push(model);
        }
        let mut sessions: Vec<DecodeSession<'_>> = Vec::with_capacity(n);
        for (i, model) in models.iter().enumerate() {
            let w = &self.fleet.workers[i];
            let budget = w.max_batch * (w.max_ctx + 2);
            sessions.push(DecodeSession::new(
                &mut ctxs[i],
                model,
                &[0],
                w.max_batch,
                budget,
            )?);
        }

        // Duplicate ids would corrupt every deterministic tie-break in
        // the queue and dispatcher — reject the trace outright (compose
        // traces with `merge_traces`/`replay_trace_from`).
        let mut ids: Vec<u64> = trace.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert!(
            ids.windows(2).all(|w| w[0] != w[1]),
            "serve_trace requires unique request ids; compose traces with \
             merge_traces or replay_trace_from instead of concatenating"
        );

        // Tenant table in first-appearance (trace index) order — the
        // order TenantReport rows use — with each tenant's fair-share
        // weight for the WFQ virtual clock.
        let mut tenant_names: Vec<&str> = Vec::new();
        let mut tenant_weights: Vec<f64> = Vec::new();
        let mut tenant_of: Vec<usize> = Vec::with_capacity(trace.len());
        for r in trace {
            let t = match tenant_names.iter().position(|n| *n == r.tenant) {
                Some(t) => t,
                None => {
                    tenant_names.push(&r.tenant);
                    tenant_weights.push(r.weight);
                    tenant_names.len() - 1
                }
            };
            tenant_of.push(t);
        }

        let mut order: Vec<usize> = (0..trace.len()).collect();
        order.sort_by(|&a, &b| {
            trace[a]
                .arrival_secs
                .total_cmp(&trace[b].arrival_secs)
                .then(trace[a].id.cmp(&trace[b].id))
        });
        let mut sim = SimState {
            prefill: self.config.prefill,
            thermal: self.config.thermal,
            scheduling: self.config.scheduling,
            preemption: self.config.preemption,
            oracles: &self.oracles,
            trace,
            states: self
                .fleet
                .workers
                .iter()
                .map(|w| WorkerState {
                    clock: 0.0,
                    busy_secs: 0.0,
                    steps: 0,
                    served: 0,
                    seqs: Vec::new(),
                    thermal: ThermalState::ambient(&w.device),
                    temp_at: 0.0,
                    governor: DvfsGovernor::new(),
                    throttled_steps: 0,
                    peak_temp_c: w.device.ambient_temp_c,
                    npu_util_x_secs: 0.0,
                })
                .collect(),
            records: vec![ReqRecord::default(); trace.len()],
            tenant_of,
            outstanding: vec![0; tenant_names.len()],
            wfq: WfqState::new(&tenant_weights),
            preempted: Vec::new(),
            preemptions: 0,
            ttfts: Vec::new(),
            tbts: Vec::new(),
            queue_waits: Vec::new(),
            rejected: 0,
        };
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        let mut next_arrival = 0usize;

        loop {
            let arrival = order.get(next_arrival).map(|&ri| trace[ri].arrival_secs);
            let busy_worker = (0..n)
                .filter(|&i| sessions[i].active_count() + sessions[i].prefilling_count() > 0)
                .min_by(|&a, &b| {
                    sim.states[a]
                        .clock
                        .total_cmp(&sim.states[b].clock)
                        .then(a.cmp(&b))
                });
            let take_arrival = match (arrival, busy_worker) {
                (Some(ta), Some(w)) => ta <= sim.states[w].clock,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let now = if take_arrival {
                let ri = order[next_arrival];
                next_arrival += 1;
                let r = &trace[ri];
                let t = sim.tenant_of[ri];
                if sim.scheduling == SchedulingPolicy::Wfq && sim.outstanding[t] == 0 {
                    // The tenant went idle: re-floor its virtual time so
                    // it cannot spend banked credit starving the others.
                    sim.wfq.wake(t);
                }
                sim.outstanding[t] += 1;
                let entry = QueueEntry {
                    req: ri,
                    priority: r.priority,
                    arrival_secs: r.arrival_secs,
                    id: r.id,
                    tenant: t,
                };
                let rej = match sim.scheduling {
                    SchedulingPolicy::StrictPriority => queue.offer(entry, &strict_before),
                    SchedulingPolicy::Wfq => {
                        let vt = sim.wfq.vtimes().to_vec();
                        queue.offer(entry, &|a, b| wfq_before(&vt, a, b))
                    }
                };
                if let Some(rej) = rej {
                    sim.records[rej].rejected = true;
                    sim.rejected += 1;
                    sim.outstanding[sim.tenant_of[rej]] -= 1;
                    // Evicted requests leave their wait in the record —
                    // a request that waited seconds and got shed must
                    // show up in queue_wait_p99.
                    sim.queue_waits
                        .push(r.arrival_secs - trace[rej].arrival_secs);
                }
                r.arrival_secs
            } else if let Some(w) = busy_worker {
                sim.step_worker(w, &mut sessions[w], &mut ctxs[w])?
            } else {
                // No arrivals left, every worker idle: anything still
                // queued was never placeable (dispatch rejects those
                // eagerly, but guard against a stall regardless). Paused
                // decodes cannot be stranded here — an idle worker has a
                // free slot, so the dispatch after its last step resumed
                // them.
                debug_assert!(sim.preempted.is_empty(), "paused decode stranded at drain");
                let drain_at = sim.states.iter().map(|s| s.clock).fold(0.0f64, f64::max);
                while let Some(ri) = queue.pop(&strict_before) {
                    sim.records[ri].rejected = true;
                    sim.rejected += 1;
                    sim.outstanding[sim.tenant_of[ri]] -= 1;
                    sim.queue_waits.push(drain_at - trace[ri].arrival_secs);
                }
                break;
            };
            sim.try_dispatch(now, &mut queue, &mut sessions, &self.fleet)?;
        }

        let report = self.build_report(&sim, &queue, &sessions, &plan_sessions);
        for (sess, ctx) in sessions.into_iter().zip(ctxs.iter_mut()) {
            sess.release(ctx);
        }
        Ok(report)
    }

    fn build_report(
        &self,
        sim: &SimState<'_>,
        queue: &AdmissionQueue,
        sessions: &[DecodeSession<'_>],
        plan_sessions: &[usize],
    ) -> ServingReport {
        let trace = sim.trace;
        let makespan_secs = sim.states.iter().map(|s| s.clock).fold(0.0f64, f64::max);
        let completed = sim.records.iter().filter(|r| r.finished.is_some()).count();
        let mut slo_good = 0usize;
        let mut tenants: Vec<TenantReport> = Vec::new();
        let mut tenant_ttfts: Vec<Vec<f64>> = Vec::new();
        for (i, req) in trace.iter().enumerate() {
            let rec = &sim.records[i];
            let good = rec.finished.is_some()
                && rec
                    .ttft
                    .map(|t| self.config.slo.met(t, rec.max_tbt))
                    .unwrap_or(false);
            slo_good += usize::from(good);
            let t = sim.tenant_of[i];
            if t == tenants.len() {
                tenants.push(TenantReport {
                    name: req.tenant.clone(),
                    requests: 0,
                    completed: 0,
                    rejected: 0,
                    slo_good: 0,
                    served_tokens: 0,
                    token_share: 0.0,
                    ttft_p99_secs: 0.0,
                });
                tenant_ttfts.push(Vec::new());
            }
            let entry = &mut tenants[t];
            entry.requests += 1;
            entry.completed += usize::from(rec.finished.is_some());
            entry.rejected += usize::from(rec.rejected);
            entry.slo_good += usize::from(good);
            if let Some(ttft) = rec.ttft {
                tenant_ttfts[t].push(ttft);
            }
        }
        let total_served: u64 = (0..tenants.len()).map(|t| sim.wfq.served_tokens(t)).sum();
        for (t, entry) in tenants.iter_mut().enumerate() {
            entry.served_tokens = sim.wfq.served_tokens(t);
            entry.token_share = if total_served > 0 {
                entry.served_tokens as f64 / total_served as f64
            } else {
                0.0
            };
            entry.ttft_p99_secs = percentile(&tenant_ttfts[t], 99.0);
        }
        let shares: Vec<f64> = (0..tenants.len())
            .map(|t| sim.wfq.served_tokens(t) as f64)
            .collect();
        let decoded_tokens: usize = sessions.iter().map(|s| s.decoded_tokens()).sum();
        let workers = (0..sessions.len())
            .map(|i| {
                let st = &sim.states[i];
                WorkerReport {
                    name: self.oracles[i].name.clone(),
                    sessions: plan_sessions[i],
                    served: st.served,
                    steps: st.steps,
                    busy_secs: st.busy_secs,
                    utilization: if makespan_secs > 0.0 {
                        st.busy_secs / makespan_secs
                    } else {
                        0.0
                    },
                    npu_lane_utilization: if st.busy_secs > 0.0 {
                        st.npu_util_x_secs / st.busy_secs
                    } else {
                        0.0
                    },
                    decoded_tokens: sessions[i].decoded_tokens(),
                    peak_temp_c: st.peak_temp_c,
                    throttled_steps: st.throttled_steps,
                }
            })
            .collect();
        ServingReport {
            requests: trace.len(),
            completed,
            rejected: sim.rejected,
            makespan_secs,
            ttft_p50_secs: percentile(&sim.ttfts, 50.0),
            ttft_p99_secs: percentile(&sim.ttfts, 99.0),
            tbt_p50_secs: percentile(&sim.tbts, 50.0),
            tbt_p99_secs: percentile(&sim.tbts, 99.0),
            queue_wait_p50_secs: percentile(&sim.queue_waits, 50.0),
            queue_wait_p99_secs: percentile(&sim.queue_waits, 99.0),
            peak_queue_depth: queue.peak_depth(),
            slo_good,
            goodput_rps: if makespan_secs > 0.0 {
                slo_good as f64 / makespan_secs
            } else {
                0.0
            },
            decoded_tokens,
            tokens_per_sec: if makespan_secs > 0.0 {
                decoded_tokens as f64 / makespan_secs
            } else {
                0.0
            },
            jain_fairness: jain_index(&shares),
            preemptions: sim.preemptions,
            workers,
            tenants,
        }
    }
}

impl SimState<'_> {
    /// Advances worker `w` by one event: a monolithic prefill pass, an
    /// interleaved decode+chunk step, or a plain decode step. Returns
    /// the simulated time the event finished at.
    fn step_worker(
        &mut self,
        w: usize,
        sess: &mut DecodeSession<'_>,
        ctx: &mut NpuContext,
    ) -> SimResult<f64> {
        let t0 = self.states[w].clock;
        // Settle the DVFS governor on the pre-step die temperature and
        // pick this step's clock multiplier.
        let mult = if self.thermal == ThermalPolicy::Disabled {
            1.0
        } else {
            let device = &self.oracles[w].device;
            let st = &mut self.states[w];
            st.governor.observe(device, st.thermal.temp_c);
            st.governor.clock_mult(device)
        };
        // Throttled steps run the same recorded schedule with every stage
        // dilated by 1/mult except fixed session switches — the exact
        // repricing `StepStages::at_clock` defines. At burst clocks the
        // schedule passes through untouched.
        let throttle = |s: &StepStages| {
            if mult < 1.0 {
                s.at_clock(mult)
            } else {
                s.clone()
            }
        };
        let has_active = sess.active_count() > 0;
        let has_prefill = sess.prefilling_count() > 0;
        let mut emitted: Vec<(SeqId, u32)> = Vec::new();
        let mut chunk_done: Option<SeqId> = None;
        let (dur, charged) = match self.prefill {
            PrefillMode::Monolithic if has_prefill => {
                // The whole prompt was registered as one chunk: this
                // pass completes it while every active decode stalls.
                let chunk = sess.prefill_step(ctx, |_| 0)?.expect("prefilling");
                debug_assert!(chunk.completed, "monolithic prompts land in one pass");
                if chunk.completed {
                    chunk_done = Some(chunk.id);
                }
                let s = throttle(&chunk.stages);
                (single_pass_secs(&s), s)
            }
            _ => {
                let decode_stages: Option<StepStages> = if has_active {
                    emitted = sess.step(ctx, |_, _| 0)?;
                    sess.last_step_stages().cloned()
                } else {
                    None
                };
                let chunk = if matches!(self.prefill, PrefillMode::Chunked { .. }) && has_prefill {
                    sess.prefill_step(ctx, |_| 0)?
                } else {
                    None
                };
                if let Some(c) = &chunk {
                    if c.completed {
                        chunk_done = Some(c.id);
                    }
                }
                match (&decode_stages, &chunk) {
                    // Chunk rides the decode walk: one fused schedule.
                    (Some(d), Some(c)) => {
                        let s = throttle(&d.merged(&c.stages));
                        (steady_state_step_secs(&s), s)
                    }
                    (Some(d), None) => {
                        let s = throttle(d);
                        (steady_state_step_secs(&s), s)
                    }
                    (None, Some(c)) => {
                        let s = throttle(&c.stages);
                        (single_pass_secs(&s), s)
                    }
                    (None, None) => unreachable!("stepped an idle worker"),
                }
            }
        };
        let t_end = t0 + dur;
        let state = &mut self.states[w];
        state.clock = t_end;
        state.busy_secs += dur;
        state.steps += 1;
        // Duration-weighted lane utilization: every executed schedule
        // counts for as long as it ran, not just the last one.
        state.npu_util_x_secs += steady_state_lane_utilization(&charged, lane::NPU) * dur;
        if self.thermal != ThermalPolicy::Disabled {
            // The step's joules flow into the die at the operating point
            // the governor chose for it.
            let oracle = &self.oracles[w];
            let throttled = state.governor.is_throttled();
            let power_w = if throttled {
                oracle.sustained_power_w
            } else {
                oracle.burst_power_w
            };
            state.thermal.step(&oracle.device, power_w, dur);
            state.temp_at = t_end;
            state.peak_temp_c = state.peak_temp_c.max(state.thermal.temp_c);
            state.throttled_steps += usize::from(throttled);
        }

        // First token of a request whose prompt just completed.
        if let Some(sid) = chunk_done {
            let k = state
                .seqs
                .iter()
                .position(|s| s.seq == sid)
                .expect("prefilling sequence is tracked");
            let req_i = state.seqs[k].req;
            let r = &self.trace[req_i];
            state.seqs[k].emitted = 1;
            state.seqs[k].last_token = t_end;
            let ttft = t_end - r.arrival_secs;
            self.records[req_i].ttft = Some(ttft);
            self.ttfts.push(ttft);
            // The tenant's prompt tokens land with its first token —
            // prefill work is what the fleet just spent on it.
            self.wfq
                .charge(self.tenant_of[req_i], r.prompt_len as u64 + 1);
            if r.output_len.min(r.max_new) <= 1 {
                // The first token is the whole output. A budget of one
                // already finished inside the session; otherwise the
                // EOS retires the freshly activated sequence.
                if r.max_new > 1 {
                    sess.retire(sid)?;
                }
                state.seqs.remove(k);
                self.records[req_i].finished = Some(t_end);
                state.served += 1;
                self.outstanding[self.tenant_of[req_i]] -= 1;
            }
        }

        // Decode emissions: TBT samples, EOS-driven retirement.
        for (sid, _token) in &emitted {
            let k = state
                .seqs
                .iter()
                .position(|s| s.seq == *sid)
                .expect("decoding sequence is tracked");
            let (req_i, finished_now, tbt) = {
                let tr = &mut state.seqs[k];
                tr.emitted += 1;
                let tbt = t_end - tr.last_token;
                tr.last_token = t_end;
                let r = &self.trace[tr.req];
                (tr.req, tr.emitted >= r.output_len.min(r.max_new), tbt)
            };
            self.tbts.push(tbt);
            self.wfq.charge(self.tenant_of[req_i], 1);
            let rec = &mut self.records[req_i];
            if tbt > rec.max_tbt {
                rec.max_tbt = tbt;
            }
            if finished_now {
                let tr = state.seqs.remove(k);
                // EOS before the budget: retire explicitly, freeing the
                // KV slot now. At the budget the session auto-retired.
                if tr.emitted < self.trace[req_i].max_new {
                    sess.retire(tr.seq)?;
                }
                rec.finished = Some(t_end);
                state.served += 1;
                self.outstanding[self.tenant_of[req_i]] -= 1;
            }
        }
        Ok(t_end)
    }

    /// Die temperature worker `w` would have at time `t`: the last
    /// integrated temperature, cooled in closed form (zero-power RC
    /// decay) over any idle gap since.
    fn projected_temp(&self, w: usize, t: f64) -> f64 {
        let st = &self.states[w];
        let d = &self.oracles[w].device;
        let gap = t - st.temp_at;
        if gap <= 0.0 {
            return st.thermal.temp_c;
        }
        d.ambient_temp_c
            + (st.thermal.temp_c - d.ambient_temp_c) * (-gap / d.thermal_time_constant_secs()).exp()
    }

    /// The dispatcher's completion prediction for placing `r` on worker
    /// `w` at time `now`, under the configured thermal policy.
    fn predict(&self, w: usize, now: f64, r: &Request) -> f64 {
        let free = self.states[w].clock.max(now);
        match self.thermal {
            ThermalPolicy::Aware => {
                let temp = self.projected_temp(w, free);
                let mut governor = self.states[w].governor.clone();
                governor.observe(&self.oracles[w].device, temp);
                predicted_completion_secs_thermal(
                    &self.oracles[w],
                    free,
                    temp,
                    governor.is_throttled(),
                    r,
                )
            }
            _ => predicted_completion_secs(&self.oracles[w], free, r),
        }
    }

    /// Jumps an idle worker's clock forward to `now`, relaxing its die
    /// toward ambient over the gap when thermal physics is on.
    fn touch_idle_worker(&mut self, w: usize, now: f64) {
        let jump = self.states[w].clock.max(now);
        if self.thermal != ThermalPolicy::Disabled {
            // The worker sat idle until now: its die relaxed toward
            // ambient over the gap.
            let cooled = self.projected_temp(w, jump);
            let st = &mut self.states[w];
            st.thermal.temp_c = cooled;
            st.temp_at = jump;
        }
        self.states[w].clock = jump;
    }

    /// The best preemption victim for `cand` among `workers`: an active
    /// decode of *strictly lower* priority that also orders after the
    /// candidate under the live discipline (under WFQ that second check
    /// is what makes a pause/resume ping-pong impossible — the resumed
    /// tenant's virtual time is ahead, so it cannot be re-preempted by
    /// the tenant it displaced). Deterministic tie-breaks: lowest
    /// priority, then fewest emitted tokens (longest remaining slot
    /// hold), then lowest worker index, then lowest id. Returns the
    /// `(worker, seq-track index)` pair.
    fn find_victim(
        &self,
        workers: &[usize],
        cand: &QueueEntry,
        before: &dyn Fn(&QueueEntry, &QueueEntry) -> bool,
    ) -> Option<(usize, usize)> {
        type VictimKey = (u8, usize, usize, u64);
        let mut best: Option<(VictimKey, (usize, usize))> = None;
        for &w in workers {
            for (k, s) in self.states[w].seqs.iter().enumerate() {
                if s.emitted == 0 {
                    // Still prefilling: no decode stream to pause.
                    continue;
                }
                let r = &self.trace[s.req];
                if r.priority >= cand.priority {
                    continue;
                }
                let ventry = QueueEntry {
                    req: s.req,
                    priority: r.priority,
                    arrival_secs: r.arrival_secs,
                    id: r.id,
                    tenant: self.tenant_of[s.req],
                };
                if !before(cand, &ventry) {
                    continue;
                }
                let key = (r.priority, s.emitted, w, r.id);
                if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                    best = Some((key, (w, k)));
                }
            }
        }
        best.map(|(_, wk)| wk)
    }

    /// Admits waiting work while fleet capacity exists.
    ///
    /// Each scan orders every candidate — queued requests plus paused
    /// decodes (resumable only on the worker holding their KV) — under
    /// the configured discipline and walks it front to back, skipping
    /// any tenant whose best candidate is blocked so a stuck head of
    /// line cannot idle a worker another tenant could use (per-tenant
    /// order is preserved; cross-tenant order is not sacrificed to it).
    /// The first actionable candidate is admitted, resumed, rejected
    /// (infeasible on every worker — the per-request half of the `fits`
    /// gate), or unblocked by preempting a strictly-lower-priority
    /// active decode; the scan then restarts against the new fleet
    /// state until nothing is actionable.
    fn try_dispatch(
        &mut self,
        now: f64,
        queue: &mut AdmissionQueue,
        sessions: &mut [DecodeSession<'_>],
        fleet: &FleetSpec,
    ) -> SimResult<()> {
        enum Action {
            Admit { req: usize, worker: usize },
            Resume { idx: usize },
            Reject { req: usize },
            Preempt { worker: usize, track: usize },
        }
        loop {
            let vt = self.wfq.vtimes().to_vec();
            let use_wfq = self.scheduling == SchedulingPolicy::Wfq;
            let before = |a: &QueueEntry, b: &QueueEntry| {
                if use_wfq {
                    wfq_before(&vt, a, b)
                } else {
                    strict_before(a, b)
                }
            };
            // Queued entries carry no paused index; paused decodes join
            // the scan with their original request's ordering keys.
            let mut cands: Vec<(QueueEntry, Option<usize>)> =
                queue.entries().iter().map(|e| (*e, None)).collect();
            for (pi, p) in self.preempted.iter().enumerate() {
                let r = &self.trace[p.req];
                cands.push((
                    QueueEntry {
                        req: p.req,
                        priority: r.priority,
                        arrival_secs: r.arrival_secs,
                        id: r.id,
                        tenant: self.tenant_of[p.req],
                    },
                    Some(pi),
                ));
            }
            // Ids are unique, so `before` is a strict total order.
            cands.sort_by(|(a, _), (b, _)| {
                if before(a, b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            let mut blocked = vec![false; self.outstanding.len()];
            let mut action: Option<Action> = None;
            for (e, paused_idx) in &cands {
                if blocked[e.tenant] {
                    continue;
                }
                match paused_idx {
                    Some(pi) => {
                        let w = self.preempted[*pi].worker;
                        if sessions[w].has_free_slot() {
                            action = Some(Action::Resume { idx: *pi });
                            break;
                        }
                        if self.preemption == PreemptionPolicy::Enabled {
                            if let Some((vw, vk)) = self.find_victim(&[w], e, &before) {
                                action = Some(Action::Preempt {
                                    worker: vw,
                                    track: vk,
                                });
                                break;
                            }
                        }
                        blocked[e.tenant] = true;
                    }
                    None => {
                        let r = &self.trace[e.req];
                        let feasible: Vec<usize> = (0..fleet.workers.len())
                            .filter(|&w| r.prompt_len + r.max_new <= fleet.workers[w].max_ctx)
                            .collect();
                        if feasible.is_empty() {
                            action = Some(Action::Reject { req: e.req });
                            break;
                        }
                        let open = feasible
                            .iter()
                            .copied()
                            .filter(|&w| sessions[w].has_free_slot())
                            .min_by(|&a, &b| {
                                let pa = self.predict(a, now, r);
                                let pb = self.predict(b, now, r);
                                pa.total_cmp(&pb).then(a.cmp(&b))
                            });
                        if let Some(best) = open {
                            action = Some(Action::Admit {
                                req: e.req,
                                worker: best,
                            });
                            break;
                        }
                        if self.preemption == PreemptionPolicy::Enabled {
                            if let Some((vw, vk)) = self.find_victim(&feasible, e, &before) {
                                action = Some(Action::Preempt {
                                    worker: vw,
                                    track: vk,
                                });
                                break;
                            }
                        }
                        blocked[e.tenant] = true;
                    }
                }
            }
            match action {
                None => return Ok(()),
                Some(Action::Reject { req }) => {
                    queue.remove(req).expect("rejected request was queued");
                    self.records[req].rejected = true;
                    self.rejected += 1;
                    self.outstanding[self.tenant_of[req]] -= 1;
                    self.queue_waits.push(now - self.trace[req].arrival_secs);
                }
                Some(Action::Admit { req, worker }) => {
                    queue.remove(req).expect("admitted request was queued");
                    let r = &self.trace[req];
                    let chunk = match self.prefill {
                        PrefillMode::Chunked { chunk_tokens } => chunk_tokens,
                        PrefillMode::Monolithic => r.prompt_len,
                    };
                    let was_idle =
                        sessions[worker].active_count() + sessions[worker].prefilling_count() == 0;
                    // Cost-only prompts: token values never matter,
                    // length does.
                    let sid = sessions[worker].admit_prompt(
                        &vec![0u32; r.prompt_len],
                        r.max_new,
                        chunk,
                    )?;
                    if was_idle {
                        self.touch_idle_worker(worker, now);
                    }
                    self.states[worker].seqs.push(SeqTrack {
                        seq: sid,
                        req,
                        emitted: 0,
                        last_token: now,
                    });
                    self.queue_waits.push(now - r.arrival_secs);
                }
                Some(Action::Resume { idx }) => {
                    let p = self.preempted.swap_remove(idx);
                    let w = p.worker;
                    let was_idle = sessions[w].active_count() + sessions[w].prefilling_count() == 0;
                    let sid = sessions[w].resume(&p.paused)?;
                    if was_idle {
                        self.touch_idle_worker(w, now);
                    }
                    self.states[w].seqs.push(SeqTrack {
                        seq: sid,
                        req: p.req,
                        emitted: p.emitted,
                        last_token: p.last_token,
                    });
                }
                Some(Action::Preempt { worker, track }) => {
                    let tr = self.states[worker].seqs.remove(track);
                    let paused = sessions[worker].preempt(tr.seq)?;
                    self.preempted.push(PreemptedTrack {
                        worker,
                        paused,
                        req: tr.req,
                        emitted: tr.emitted,
                        last_token: tr.last_token,
                    });
                    self.preemptions += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::arrivals::{merge_traces, poisson_trace, replay_trace, TenantSpec};
    use crate::serve::metrics::SloConfig;
    use crate::serve::scheduler::WorkerSpec;
    use edgellm::config::ModelId;

    fn tenants() -> [TenantSpec; 2] {
        [TenantSpec::interactive("chat"), TenantSpec::batch("batch")]
    }

    #[test]
    fn serve_trace_is_deterministic_and_conserves_requests() {
        let trace = poisson_trace(&tenants(), 4.0, 12, 3);
        let fleet = FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false);
        let gw = FleetGateway::new(fleet, GatewayConfig::default()).unwrap();
        let a = gw.serve_trace(&trace).unwrap();
        let b = gw.serve_trace(&trace).unwrap();
        assert_eq!(a.completed + a.rejected, 12);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.ttft_p99_secs, b.ttft_p99_secs);
        assert_eq!(a.tbt_p99_secs, b.tbt_p99_secs);
        assert!(a.ttft_p50_secs > 0.0);
        assert!(a.makespan_secs >= trace.last().unwrap().arrival_secs);
        // Tenant rows partition the trace.
        let by_tenant: usize = a.tenants.iter().map(|t| t.requests).sum();
        assert_eq!(by_tenant, 12);
    }

    #[test]
    fn chunked_prefill_bounds_tbt_against_monolithic_stalls() {
        // A steady interactive stream plus mid-run long-prompt arrivals:
        // monolithic prefill stalls the decode batch for the whole
        // prompt pass, chunked prefill keeps p99 TBT near the
        // no-arrivals steady state (the acceptance gate pins 2x).
        let interactive = TenantSpec {
            output_lens: (24, 32),
            ..TenantSpec::interactive("chat")
        };
        let chat = replay_trace(
            &interactive,
            &[(0.0, 64, 28), (0.0, 64, 30), (0.0, 64, 32), (0.0, 64, 32)],
        );
        let long = replay_trace(
            &TenantSpec::batch("ingest"),
            &[(0.4, 512, 8), (0.8, 448, 8)],
        );
        let trace = merge_traces(&[chat, long]);
        let fleet = FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false);
        let chunked = FleetGateway::new(fleet.clone(), GatewayConfig::default()).unwrap();
        let mono = FleetGateway::new(
            fleet,
            GatewayConfig {
                prefill: PrefillMode::Monolithic,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let rc = chunked.serve_trace(&trace).unwrap();
        let rm = mono.serve_trace(&trace).unwrap();
        assert_eq!(rc.completed, trace.len());
        assert_eq!(rm.completed, trace.len());
        // No-arrivals steady state: the oracle's full-batch step time.
        let steady = chunked.oracles()[0].decode_step_secs;
        assert!(
            rc.tbt_p99_secs <= 2.0 * steady,
            "chunked p99 TBT {} vs steady {steady}",
            rc.tbt_p99_secs
        );
        assert!(
            rm.tbt_p99_secs > rc.tbt_p99_secs,
            "monolithic p99 {} must exceed chunked {}",
            rm.tbt_p99_secs,
            rc.tbt_p99_secs
        );
    }

    #[test]
    fn bounded_queue_rejects_under_overload_and_fleet_absorbs_it() {
        let trace = poisson_trace(&tenants(), 12.0, 24, 9);
        let config = GatewayConfig {
            queue_capacity: 4,
            ..GatewayConfig::default()
        };
        let single = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v73(), true),
            config,
        )
        .unwrap();
        let rs = single.serve_trace(&trace).unwrap();
        let fleet = FleetGateway::new(FleetSpec::heterogeneous(ModelId::Qwen1_5B), config).unwrap();
        let rf = fleet.serve_trace(&trace).unwrap();
        assert!(
            rs.rejected > 0,
            "overloaded single device must shed load, got {rs:?}"
        );
        assert!(
            rf.rejected < rs.rejected,
            "fleet rejections {} vs single {}",
            rf.rejected,
            rs.rejected
        );
        assert!(rf.completed > rs.completed);
        // The streamed V73 exists in the fleet and did real work.
        let v73 = rf.workers.iter().find(|w| w.name.contains("8G2")).unwrap();
        assert!(v73.name.contains("streamed"));
    }

    #[test]
    fn unplaceable_prompts_are_rejected_not_stuck() {
        let t = TenantSpec {
            prompt_lens: (4096, 4096),
            ..TenantSpec::batch("huge")
        };
        let trace = replay_trace(&t, &[(0.0, 4096, 8)]);
        let gw = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false),
            GatewayConfig::default(),
        )
        .unwrap();
        let r = gw.serve_trace(&trace).unwrap();
        assert_eq!(r.rejected, 1);
        assert_eq!(r.completed, 0);
    }

    #[test]
    fn thermal_physics_is_inert_below_the_throttle_cap() {
        use crate::serve::scheduler::ThermalPolicy;
        // A short trace never fills the thermal capacitance: with physics
        // on (Blind) the dies warm but never throttle, so every latency
        // number matches the Disabled gateway bit-for-bit — the
        // "thermals change nothing until they must" guarantee.
        let trace = poisson_trace(&tenants(), 4.0, 10, 11);
        let fleet = FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false);
        let disabled = FleetGateway::new(fleet.clone(), GatewayConfig::default()).unwrap();
        let blind = FleetGateway::new(
            fleet,
            GatewayConfig {
                thermal: ThermalPolicy::Blind,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let rd = disabled.serve_trace(&trace).unwrap();
        let rb = blind.serve_trace(&trace).unwrap();
        assert_eq!(rd.makespan_secs, rb.makespan_secs);
        assert_eq!(rd.ttft_p99_secs, rb.ttft_p99_secs);
        assert_eq!(rd.tbt_p99_secs, rb.tbt_p99_secs);
        assert_eq!(rd.completed, rb.completed);
        assert_eq!(rb.workers[0].throttled_steps, 0);
        // Physics ran in one and not the other.
        let ambient = DeviceProfile::v75().ambient_temp_c;
        assert_eq!(rd.workers[0].peak_temp_c, ambient);
        assert!(rb.workers[0].peak_temp_c > ambient);
        assert!(rb.workers[0].peak_temp_c < DeviceProfile::v75().throttle_temp_c);
    }

    #[test]
    fn aware_dispatch_is_deterministic_and_projects_cooling() {
        use crate::serve::scheduler::ThermalPolicy;
        let trace = poisson_trace(&tenants(), 6.0, 16, 13);
        let config = GatewayConfig {
            thermal: ThermalPolicy::Aware,
            ..GatewayConfig::default()
        };
        let gw = FleetGateway::new(FleetSpec::heterogeneous(ModelId::Qwen1_5B), config).unwrap();
        let a = gw.serve_trace(&trace).unwrap();
        let b = gw.serve_trace(&trace).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.tbt_p99_secs, b.tbt_p99_secs);
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(wa.peak_temp_c, wb.peak_temp_c);
            assert_eq!(wa.throttled_steps, wb.throttled_steps);
        }
    }

    #[test]
    #[should_panic(expected = "unique request ids")]
    fn serve_trace_rejects_duplicate_ids() {
        let t = TenantSpec::interactive("chat");
        let mut trace = replay_trace(&t, &[(0.0, 32, 4)]);
        trace.extend(replay_trace(&t, &[(0.5, 32, 4)]));
        let gw = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false),
            GatewayConfig::default(),
        )
        .unwrap();
        let _ = gw.serve_trace(&trace);
    }

    #[test]
    fn defaults_are_strict_priority_without_preemption() {
        let cfg = GatewayConfig::default();
        assert_eq!(cfg.scheduling, SchedulingPolicy::StrictPriority);
        assert_eq!(cfg.preemption, PreemptionPolicy::Disabled);
    }

    #[test]
    fn dispatch_scans_past_a_blocked_head_of_line() {
        // Regression for the head-of-line dispatch stall: a long-context
        // high-priority request that only the big-context worker can run
        // is stuck behind that worker's single busy slot. The old
        // dispatcher `break`ed there, idling the small-context worker
        // even though every queued short request fits it.
        let big_tenant = TenantSpec {
            name: "ingest".into(),
            priority: 3,
            weight: 1.0,
            prompt_lens: (512, 512),
            output_lens: (64, 64),
        };
        let small_tenant = TenantSpec {
            name: "chat".into(),
            priority: 1,
            weight: 1.0,
            prompt_lens: (32, 32),
            output_lens: (8, 16),
        };
        let trace = merge_traces(&[
            replay_trace(&big_tenant, &[(0.0, 512, 64), (0.01, 512, 64)]),
            replay_trace(
                &small_tenant,
                &[(0.02, 32, 8), (0.03, 32, 8), (0.04, 32, 8), (0.05, 32, 8)],
            ),
        ]);
        let fleet = FleetSpec {
            model: ModelId::Qwen1_5B,
            workers: vec![
                WorkerSpec {
                    device: DeviceProfile::v75(),
                    streaming: false,
                    max_batch: 1,
                    max_ctx: 1024,
                },
                WorkerSpec {
                    device: DeviceProfile::v75(),
                    streaming: false,
                    max_batch: 4,
                    max_ctx: 128,
                },
            ],
        };
        let gw = FleetGateway::new(fleet, GatewayConfig::default()).unwrap();
        let rep = gw.serve_trace(&trace).unwrap();
        assert_eq!(rep.completed, 6, "everything eventually runs: {rep:?}");
        // The stalled dispatcher would hold the shorts until the first
        // long decode retires (its full token budget at the batch-1 step
        // rate); the skip-scan runs them on the idle small worker
        // immediately.
        let long_decode_secs = 64.0 * gw.oracles()[0].decode_step_secs;
        let chat = rep.tenants.iter().find(|t| t.name == "chat").unwrap();
        assert!(
            chat.ttft_p99_secs < 0.5 * long_decode_secs,
            "chat p99 TTFT {} vs blocked-head stall {}",
            chat.ttft_p99_secs,
            long_decode_secs
        );
        // The blocked head itself still waited for its worker.
        let ingest = rep.tenants.iter().find(|t| t.name == "ingest").unwrap();
        assert!(ingest.ttft_p99_secs > chat.ttft_p99_secs);
        // The small worker did the short work.
        assert!(rep.workers[1].served >= 4, "small worker idle: {rep:?}");
    }

    fn preemption_scenario() -> (Vec<Request>, FleetSpec) {
        let batch = TenantSpec {
            name: "batch".into(),
            priority: 1,
            weight: 1.0,
            prompt_lens: (64, 64),
            output_lens: (64, 64),
        };
        let chat = TenantSpec {
            name: "chat".into(),
            priority: 2,
            weight: 3.0,
            prompt_lens: (32, 32),
            output_lens: (8, 8),
        };
        let batch_points: Vec<(f64, usize, usize)> =
            (0..8).map(|i| (i as f64 * 0.001, 64, 64)).collect();
        let chat_points: Vec<(f64, usize, usize)> =
            (0..4).map(|i| (1.0 + i as f64 * 0.01, 32, 8)).collect();
        let trace = merge_traces(&[
            replay_trace(&batch, &batch_points),
            replay_trace(&chat, &chat_points),
        ]);
        let fleet = FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v75(), false);
        (trace, fleet)
    }

    #[test]
    fn preemption_cuts_interactive_ttft_without_losing_batch_completions() {
        // Burst over batch: eight long low-priority decodes saturate the
        // worker's slots, then an interactive burst arrives. Without
        // preemption the burst waits for a natural retirement; with it,
        // the dispatcher pauses batch decodes (KV snapshot), serves the
        // burst, and resumes the victims — same completions, far lower
        // interactive TTFT.
        let (trace, fleet) = preemption_scenario();
        let plain = FleetGateway::new(fleet.clone(), GatewayConfig::default()).unwrap();
        let preempting = FleetGateway::new(
            fleet,
            GatewayConfig {
                preemption: PreemptionPolicy::Enabled,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let rp = plain.serve_trace(&trace).unwrap();
        let rq = preempting.serve_trace(&trace).unwrap();
        assert_eq!(rp.completed, trace.len());
        assert_eq!(
            rq.completed,
            trace.len(),
            "preemption lost requests: {rq:?}"
        );
        assert_eq!(rp.preemptions, 0);
        assert!(rq.preemptions > 0, "no preemption happened: {rq:?}");
        let chat_plain = rp.tenants.iter().find(|t| t.name == "chat").unwrap();
        let chat_pre = rq.tenants.iter().find(|t| t.name == "chat").unwrap();
        assert!(
            chat_pre.ttft_p99_secs * 1.3 <= chat_plain.ttft_p99_secs,
            "preemption p99 TTFT {} vs plain {}",
            chat_pre.ttft_p99_secs,
            chat_plain.ttft_p99_secs
        );
        // Paused-and-resumed batch decodes still emit their full budget.
        let batch_pre = rq.tenants.iter().find(|t| t.name == "batch").unwrap();
        assert_eq!(batch_pre.completed, 8);
        assert_eq!(rp.decoded_tokens, rq.decoded_tokens);
        // Deterministic under preemption.
        let rq2 = preempting.serve_trace(&trace).unwrap();
        assert_eq!(rq.makespan_secs, rq2.makespan_secs);
        assert_eq!(rq.preemptions, rq2.preemptions);
        assert_eq!(rq.ttft_p99_secs, rq2.ttft_p99_secs);
    }

    #[test]
    fn wfq_preserves_the_starved_tenant_share_under_overload() {
        // A high-priority interactive flood against a trickle of batch
        // requests on a capacity-starved worker. Strict priority plus
        // bounded-queue eviction shuts the batch tenant out almost
        // entirely; WFQ orders (and evicts) by weighted virtual time, so
        // the batch tenant keeps a bounded token share.
        let chat = TenantSpec {
            name: "chat".into(),
            priority: 2,
            weight: 3.0,
            prompt_lens: (32, 32),
            output_lens: (8, 8),
        };
        let batch = TenantSpec {
            name: "batch".into(),
            priority: 1,
            weight: 1.0,
            prompt_lens: (128, 128),
            output_lens: (16, 16),
        };
        let chat_points: Vec<(f64, usize, usize)> =
            (0..60).map(|i| (i as f64 * 0.05, 32, 8)).collect();
        let batch_points: Vec<(f64, usize, usize)> =
            (0..10).map(|i| (0.1 + i as f64 * 0.2, 128, 16)).collect();
        let trace = merge_traces(&[
            replay_trace(&chat, &chat_points),
            replay_trace(&batch, &batch_points),
        ]);
        let fleet = FleetSpec {
            model: ModelId::Qwen1_5B,
            workers: vec![WorkerSpec {
                device: DeviceProfile::v73(),
                streaming: true,
                max_batch: 2,
                max_ctx: 1024,
            }],
        };
        let config = GatewayConfig {
            queue_capacity: 2,
            ..GatewayConfig::default()
        };
        let strict = FleetGateway::new(fleet.clone(), config).unwrap();
        let wfq = FleetGateway::new(
            fleet,
            GatewayConfig {
                scheduling: SchedulingPolicy::Wfq,
                ..config
            },
        )
        .unwrap();
        let rs = strict.serve_trace(&trace).unwrap();
        let rw = wfq.serve_trace(&trace).unwrap();
        let share = |rep: &ServingReport| {
            rep.tenants
                .iter()
                .find(|t| t.name == "batch")
                .unwrap()
                .token_share
        };
        assert!(
            share(&rw) >= 2.0 * share(&rs),
            "WFQ batch share {} vs strict {}",
            share(&rw),
            share(&rs)
        );
        assert!(
            rw.jain_fairness > rs.jain_fairness,
            "WFQ Jain {} vs strict {}",
            rw.jain_fairness,
            rs.jain_fairness
        );
        // Fairness is not a free lunch: it comes out of the flood's
        // share, not out of thin air.
        let chat_w = rw.tenants.iter().find(|t| t.name == "chat").unwrap();
        let chat_s = rs.tenants.iter().find(|t| t.name == "chat").unwrap();
        assert!(chat_w.token_share <= chat_s.token_share);
        // Deterministic.
        let rw2 = wfq.serve_trace(&trace).unwrap();
        assert_eq!(rw.makespan_secs, rw2.makespan_secs);
        assert_eq!(rw.jain_fairness, rw2.jain_fairness);
    }

    #[test]
    fn evicted_requests_leave_queue_wait_samples() {
        // A request that waits and is then shed on overflow must appear
        // in the queue-wait record (it used to vanish without a sample).
        let slow = TenantSpec {
            name: "slow".into(),
            priority: 1,
            weight: 1.0,
            prompt_lens: (64, 64),
            output_lens: (64, 64),
        };
        let chat = TenantSpec {
            name: "chat".into(),
            priority: 2,
            weight: 1.0,
            prompt_lens: (32, 32),
            output_lens: (8, 8),
        };
        let trace = merge_traces(&[
            replay_trace(&slow, &[(0.0, 64, 64), (0.1, 64, 64)]),
            replay_trace(&chat, &[(0.6, 32, 8)]),
        ]);
        let fleet = FleetSpec {
            model: ModelId::Qwen1_5B,
            workers: vec![WorkerSpec {
                device: DeviceProfile::v75(),
                streaming: false,
                max_batch: 1,
                max_ctx: 1024,
            }],
        };
        let gw = FleetGateway::new(
            fleet,
            GatewayConfig {
                queue_capacity: 1,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let rep = gw.serve_trace(&trace).unwrap();
        // The second slow request queued at 0.1 and was evicted by the
        // higher-priority chat arrival at 0.6: it waited 0.5 s.
        assert_eq!(rep.rejected, 1);
        assert!(
            rep.queue_wait_p99_secs >= 0.5,
            "eviction wait missing from queue-wait record: {rep:?}"
        );
    }

    #[test]
    fn slo_goodput_counts_only_fast_completions() {
        let trace = poisson_trace(&tenants(), 3.0, 8, 5);
        let strict = GatewayConfig {
            slo: SloConfig {
                ttft_secs: 1e-6,
                tbt_secs: 1e-6,
            },
            ..GatewayConfig::default()
        };
        let gw = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v79(), false),
            strict,
        )
        .unwrap();
        let r = gw.serve_trace(&trace).unwrap();
        assert_eq!(r.slo_good, 0, "nothing meets a microsecond SLO");
        assert_eq!(r.goodput_rps, 0.0);
        let relaxed = FleetGateway::new(
            FleetSpec::single(ModelId::Qwen1_5B, DeviceProfile::v79(), false),
            GatewayConfig::default(),
        )
        .unwrap();
        let r2 = relaxed.serve_trace(&trace).unwrap();
        assert!(r2.slo_good > 0);
        assert!(r2.goodput_rps > 0.0);
    }
}
