//! Arrival processes for the serving gateway: seeded Poisson generation
//! over per-tenant specs, and replay of explicit traces.
//!
//! A [`TenantSpec`] describes one request class — its admission priority
//! and the ranges its prompt and output lengths are drawn from. The
//! output length is the *realized* generation length (where the EOS
//! token lands); the per-request decode budget is the range's upper
//! bound, so a fixed-batch executor that cannot retire on EOS pays the
//! full budget while the gateway's continuous batching frees the slot at
//! the realized length.
//!
//! [`poisson_trace`] draws exponential inter-arrival times at a total
//! rate and assigns each arrival to a tenant by weight — fully seeded,
//! so every run of a given `(tenants, rate, n, seed)` tuple produces the
//! identical trace (the CI gate depends on this). [`replay_trace`] wraps
//! explicit `(arrival, prompt, output)` tuples for trace-driven tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request class in the arrival mix.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant label, carried through to the per-tenant report.
    pub name: String,
    /// Admission priority: higher values are served first and survive
    /// queue overflow longer.
    pub priority: u8,
    /// Relative share of arrivals assigned to this tenant.
    pub weight: f64,
    /// Inclusive prompt-length range in tokens.
    pub prompt_lens: (usize, usize),
    /// Inclusive realized output-length range in tokens (the EOS point);
    /// the decode *budget* of every request is the upper bound.
    pub output_lens: (usize, usize),
}

impl TenantSpec {
    /// A latency-sensitive chat tenant: short prompts, short outputs,
    /// high priority.
    pub fn interactive(name: &str) -> Self {
        TenantSpec {
            name: name.to_string(),
            priority: 2,
            weight: 3.0,
            prompt_lens: (32, 96),
            output_lens: (4, 24),
        }
    }

    /// A throughput-oriented batch tenant: long prompts, low priority —
    /// the tenant whose monolithic prefill stalls everyone else's decode.
    pub fn batch(name: &str) -> Self {
        TenantSpec {
            name: name.to_string(),
            priority: 1,
            weight: 1.0,
            prompt_lens: (256, 512),
            output_lens: (8, 32),
        }
    }
}

/// One serving request: arrival time plus the prompt/output shape drawn
/// from its tenant.
#[derive(Clone, Debug)]
pub struct Request {
    /// Stable id, assigned in arrival order from zero.
    pub id: u64,
    /// Name of the tenant the request belongs to.
    pub tenant: String,
    /// Admission priority inherited from the tenant.
    pub priority: u8,
    /// Arrival time in simulated seconds.
    pub arrival_secs: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Realized output length in tokens (first token included) — where
    /// the EOS lands. Always `<= max_new`.
    pub output_len: usize,
    /// Decode budget in tokens: the slot is reclaimed at this length even
    /// if no EOS fired.
    pub max_new: usize,
}

fn draw_range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    assert!(
        lo >= 1 && hi >= lo,
        "length range must be ordered, got {lo}..={hi}"
    );
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Generates `n` requests from a seeded Poisson process at `rate_rps`
/// total requests/second, splitting arrivals across `tenants` by weight.
/// Deterministic in `(tenants, rate_rps, n, seed)`.
///
/// # Panics
///
/// Panics on an empty tenant list, non-positive rate or weights, or
/// malformed length ranges.
pub fn poisson_trace(tenants: &[TenantSpec], rate_rps: f64, n: usize, seed: u64) -> Vec<Request> {
    assert!(!tenants.is_empty(), "need at least one tenant");
    assert!(rate_rps > 0.0, "arrival rate must be positive");
    let total_weight: f64 = tenants.iter().map(|t| t.weight).sum();
    assert!(
        total_weight > 0.0 && tenants.iter().all(|t| t.weight > 0.0),
        "tenant weights must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        // Exponential inter-arrival via inverse transform; 1 - u keeps
        // the log argument strictly positive.
        let u: f64 = rng.gen_range(0.0..1.0);
        clock += -(1.0 - u).ln() / rate_rps;
        let mut pick = rng.gen_range(0.0..total_weight);
        let tenant = tenants
            .iter()
            .find(|t| {
                pick -= t.weight;
                pick < 0.0
            })
            .unwrap_or(&tenants[tenants.len() - 1]);
        let prompt_len = draw_range(&mut rng, tenant.prompt_lens);
        let output_len = draw_range(&mut rng, tenant.output_lens);
        out.push(Request {
            id,
            tenant: tenant.name.clone(),
            priority: tenant.priority,
            arrival_secs: clock,
            prompt_len,
            output_len,
            max_new: tenant.output_lens.1,
        });
    }
    out
}

/// Wraps explicit `(arrival_secs, prompt_len, output_len)` tuples as a
/// request trace for `tenant` — the trace-replay arrival path. The decode
/// budget of every request is the tenant's output upper bound.
pub fn replay_trace(tenant: &TenantSpec, points: &[(f64, usize, usize)]) -> Vec<Request> {
    points
        .iter()
        .enumerate()
        .map(|(i, &(arrival_secs, prompt_len, output_len))| {
            assert!(
                output_len <= tenant.output_lens.1,
                "replayed output {output_len} exceeds the tenant budget {}",
                tenant.output_lens.1
            );
            Request {
                id: i as u64,
                tenant: tenant.name.clone(),
                priority: tenant.priority,
                arrival_secs,
                prompt_len,
                output_len,
                max_new: tenant.output_lens.1,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_seed_deterministic() {
        let tenants = [TenantSpec::interactive("chat"), TenantSpec::batch("batch")];
        let a = poisson_trace(&tenants, 5.0, 32, 42);
        let b = poisson_trace(&tenants, 5.0, 32, 42);
        assert_eq!(a.len(), 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_secs, y.arrival_secs);
            assert_eq!(x.prompt_len, y.prompt_len);
            assert_eq!(x.output_len, y.output_len);
            assert_eq!(x.tenant, y.tenant);
        }
        let c = poisson_trace(&tenants, 5.0, 32, 43);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.arrival_secs != y.arrival_secs));
    }

    #[test]
    fn arrivals_are_ordered_and_mean_rate_is_close() {
        let tenants = [TenantSpec::interactive("chat")];
        let trace = poisson_trace(&tenants, 10.0, 400, 7);
        assert!(trace
            .windows(2)
            .all(|w| w[0].arrival_secs <= w[1].arrival_secs));
        let span = trace.last().unwrap().arrival_secs;
        let rate = 400.0 / span;
        assert!((7.0..13.0).contains(&rate), "empirical rate {rate}");
        for r in &trace {
            assert!(r.output_len <= r.max_new);
            assert!((32..=96).contains(&r.prompt_len));
        }
    }

    #[test]
    fn weights_split_the_mix() {
        let tenants = [TenantSpec::interactive("chat"), TenantSpec::batch("batch")];
        let trace = poisson_trace(&tenants, 5.0, 400, 11);
        let chat = trace.iter().filter(|r| r.tenant == "chat").count();
        // 3:1 weights: expect roughly 300 of 400.
        assert!((240..=360).contains(&chat), "chat share {chat}");
    }

    #[test]
    fn replay_preserves_the_trace() {
        let t = TenantSpec::batch("replay");
        let trace = replay_trace(&t, &[(0.0, 300, 8), (0.5, 400, 16)]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].prompt_len, 400);
        assert_eq!(trace[1].output_len, 16);
        assert_eq!(trace[1].max_new, 32);
        assert_eq!(trace[0].priority, t.priority);
    }
}
