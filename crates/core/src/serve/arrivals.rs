//! Arrival processes for the serving gateway: seeded Poisson generation
//! over per-tenant specs, and replay of explicit traces.
//!
//! A [`TenantSpec`] describes one request class — its admission priority
//! and the ranges its prompt and output lengths are drawn from. The
//! output length is the *realized* generation length (where the EOS
//! token lands); the per-request decode budget is the range's upper
//! bound, so a fixed-batch executor that cannot retire on EOS pays the
//! full budget while the gateway's continuous batching frees the slot at
//! the realized length.
//!
//! [`poisson_trace`] draws exponential inter-arrival times at a total
//! rate and assigns each arrival to a tenant by weight — fully seeded,
//! so every run of a given `(tenants, rate, n, seed)` tuple produces the
//! identical trace (the CI gate depends on this). [`bursty_trace`] layers
//! production-like structure on top: an on/off Markov-modulated rate with
//! a diurnal envelope, sampled exactly by thinning. [`replay_trace`]
//! wraps explicit `(arrival, prompt, output)` tuples for trace-driven
//! tests; [`replay_trace_from`] and [`merge_traces`] compose replayed
//! traces without colliding ids.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request class in the arrival mix.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant label, carried through to the per-tenant report.
    pub name: String,
    /// Admission priority: higher values are served first and survive
    /// queue overflow longer.
    pub priority: u8,
    /// Relative share of arrivals assigned to this tenant.
    pub weight: f64,
    /// Inclusive prompt-length range in tokens.
    pub prompt_lens: (usize, usize),
    /// Inclusive realized output-length range in tokens (the EOS point);
    /// the decode *budget* of every request is the upper bound.
    pub output_lens: (usize, usize),
}

impl TenantSpec {
    /// A latency-sensitive chat tenant: short prompts, short outputs,
    /// high priority.
    pub fn interactive(name: &str) -> Self {
        TenantSpec {
            name: name.to_string(),
            priority: 2,
            weight: 3.0,
            prompt_lens: (32, 96),
            output_lens: (4, 24),
        }
    }

    /// A throughput-oriented batch tenant: long prompts, low priority —
    /// the tenant whose monolithic prefill stalls everyone else's decode.
    pub fn batch(name: &str) -> Self {
        TenantSpec {
            name: name.to_string(),
            priority: 1,
            weight: 1.0,
            prompt_lens: (256, 512),
            output_lens: (8, 32),
        }
    }
}

/// One serving request: arrival time plus the prompt/output shape drawn
/// from its tenant.
#[derive(Clone, Debug)]
pub struct Request {
    /// Stable id, assigned in arrival order from zero.
    pub id: u64,
    /// Name of the tenant the request belongs to.
    pub tenant: String,
    /// Admission priority inherited from the tenant.
    pub priority: u8,
    /// Arrival time in simulated seconds.
    pub arrival_secs: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Realized output length in tokens (first token included) — where
    /// the EOS lands. Always `<= max_new`.
    pub output_len: usize,
    /// Decode budget in tokens: the slot is reclaimed at this length even
    /// if no EOS fired.
    pub max_new: usize,
    /// Fair-share weight inherited from the tenant — the denominator of
    /// the WFQ virtual-time advance.
    pub weight: f64,
}

fn draw_range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    assert!(
        lo >= 1 && hi >= lo,
        "length range must be ordered, got {lo}..={hi}"
    );
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Generates `n` requests from a seeded Poisson process at `rate_rps`
/// total requests/second, splitting arrivals across `tenants` by weight.
/// Deterministic in `(tenants, rate_rps, n, seed)`.
///
/// # Panics
///
/// Panics on an empty tenant list, non-positive rate or weights, or
/// malformed length ranges.
pub fn poisson_trace(tenants: &[TenantSpec], rate_rps: f64, n: usize, seed: u64) -> Vec<Request> {
    assert!(!tenants.is_empty(), "need at least one tenant");
    assert!(rate_rps > 0.0, "arrival rate must be positive");
    let total_weight: f64 = tenants.iter().map(|t| t.weight).sum();
    assert!(
        total_weight > 0.0 && tenants.iter().all(|t| t.weight > 0.0),
        "tenant weights must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        // Exponential inter-arrival via inverse transform; 1 - u keeps
        // the log argument strictly positive.
        let u: f64 = rng.gen_range(0.0..1.0);
        clock += -(1.0 - u).ln() / rate_rps;
        let mut pick = rng.gen_range(0.0..total_weight);
        let tenant = tenants
            .iter()
            .find(|t| {
                pick -= t.weight;
                pick < 0.0
            })
            .unwrap_or(&tenants[tenants.len() - 1]);
        let prompt_len = draw_range(&mut rng, tenant.prompt_lens);
        let output_len = draw_range(&mut rng, tenant.output_lens);
        out.push(Request {
            id,
            tenant: tenant.name.clone(),
            priority: tenant.priority,
            arrival_secs: clock,
            prompt_len,
            output_len,
            max_new: tenant.output_lens.1,
            weight: tenant.weight,
        });
    }
    out
}

/// The shape of a bursty, diurnally modulated arrival process: a
/// two-state (quiet/burst) Markov-modulated Poisson process whose
/// instantaneous rate is further scaled by a sinusoid — the
/// on/off-plus-daily-cycle structure production LLM traces exhibit,
/// versus the memoryless stream [`poisson_trace`] draws.
#[derive(Clone, Copy, Debug)]
pub struct BurstSpec {
    /// Arrival rate during quiet stretches, requests/second.
    pub base_rps: f64,
    /// Arrival rate inside a burst, requests/second.
    pub burst_rps: f64,
    /// Mean quiet-state dwell time in seconds (exponential).
    pub mean_quiet_secs: f64,
    /// Mean burst dwell time in seconds (exponential).
    pub mean_burst_secs: f64,
    /// Period of the sinusoidal diurnal envelope in seconds; `0` turns
    /// the envelope off.
    pub diurnal_period_secs: f64,
    /// Envelope amplitude in `[0, 1)`: the rate swings between
    /// `(1 - depth)` and `(1 + depth)` times the state rate.
    pub diurnal_depth: f64,
}

impl Default for BurstSpec {
    fn default() -> Self {
        BurstSpec {
            base_rps: 1.0,
            burst_rps: 10.0,
            mean_quiet_secs: 8.0,
            mean_burst_secs: 2.0,
            diurnal_period_secs: 60.0,
            diurnal_depth: 0.3,
        }
    }
}

/// Generates `n` requests from a seeded on/off modulated Poisson process
/// with an optional diurnal envelope, splitting arrivals across `tenants`
/// by weight exactly like [`poisson_trace`]. Candidate arrivals are drawn
/// at the peak rate and thinned against the instantaneous rate
/// (Lewis–Shedler), so the output is an exact sample of the
/// inhomogeneous process and fully deterministic in
/// `(tenants, spec, n, seed)`.
pub fn bursty_trace(tenants: &[TenantSpec], spec: &BurstSpec, n: usize, seed: u64) -> Vec<Request> {
    assert!(!tenants.is_empty(), "need at least one tenant");
    assert!(
        spec.base_rps > 0.0 && spec.burst_rps > 0.0,
        "arrival rates must be positive"
    );
    assert!(
        spec.mean_quiet_secs > 0.0 && spec.mean_burst_secs > 0.0,
        "state dwell times must be positive"
    );
    assert!(
        (0.0..1.0).contains(&spec.diurnal_depth),
        "diurnal depth must be in [0, 1)"
    );
    let total_weight: f64 = tenants.iter().map(|t| t.weight).sum();
    assert!(
        total_weight > 0.0 && tenants.iter().all(|t| t.weight > 0.0),
        "tenant weights must be positive"
    );
    fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() * mean
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let peak_rps = spec.base_rps.max(spec.burst_rps) * (1.0 + spec.diurnal_depth);
    let mut clock = 0.0f64;
    let mut bursting = false;
    let mut switch_at = exp_draw(&mut rng, spec.mean_quiet_secs);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Candidate at the peak rate; the state chain advances to the
        // candidate's time before the thinning decision prices it.
        clock += exp_draw(&mut rng, 1.0 / peak_rps);
        while clock >= switch_at {
            bursting = !bursting;
            switch_at += exp_draw(
                &mut rng,
                if bursting {
                    spec.mean_burst_secs
                } else {
                    spec.mean_quiet_secs
                },
            );
        }
        let state_rps = if bursting {
            spec.burst_rps
        } else {
            spec.base_rps
        };
        let envelope = if spec.diurnal_period_secs > 0.0 {
            1.0 + spec.diurnal_depth
                * (std::f64::consts::TAU * clock / spec.diurnal_period_secs).sin()
        } else {
            1.0
        };
        let keep: f64 = rng.gen_range(0.0..1.0);
        if keep * peak_rps >= state_rps * envelope {
            continue;
        }
        let mut pick = rng.gen_range(0.0..total_weight);
        let tenant = tenants
            .iter()
            .find(|t| {
                pick -= t.weight;
                pick < 0.0
            })
            .unwrap_or(&tenants[tenants.len() - 1]);
        let prompt_len = draw_range(&mut rng, tenant.prompt_lens);
        let output_len = draw_range(&mut rng, tenant.output_lens);
        out.push(Request {
            id: out.len() as u64,
            tenant: tenant.name.clone(),
            priority: tenant.priority,
            arrival_secs: clock,
            prompt_len,
            output_len,
            max_new: tenant.output_lens.1,
            weight: tenant.weight,
        });
    }
    out
}

/// Wraps explicit `(arrival_secs, prompt_len, output_len)` tuples as a
/// request trace for `tenant` — the trace-replay arrival path. The decode
/// budget of every request is the tenant's output upper bound. Ids count
/// from zero; compose multiple replayed traces with
/// [`replay_trace_from`] or [`merge_traces`], never by concatenation
/// (duplicate ids corrupt the gateway's deterministic tie-breaks, and
/// [`crate::serve::FleetGateway::serve_trace`] rejects them).
pub fn replay_trace(tenant: &TenantSpec, points: &[(f64, usize, usize)]) -> Vec<Request> {
    replay_trace_from(tenant, points, 0)
}

/// [`replay_trace`] with ids counting from `first_id` — the offset that
/// lets several replayed tenants coexist in one trace without colliding.
pub fn replay_trace_from(
    tenant: &TenantSpec,
    points: &[(f64, usize, usize)],
    first_id: u64,
) -> Vec<Request> {
    points
        .iter()
        .enumerate()
        .map(|(i, &(arrival_secs, prompt_len, output_len))| {
            assert!(
                output_len <= tenant.output_lens.1,
                "replayed output {output_len} exceeds the tenant budget {}",
                tenant.output_lens.1
            );
            Request {
                id: first_id + i as u64,
                tenant: tenant.name.clone(),
                priority: tenant.priority,
                arrival_secs,
                prompt_len,
                output_len,
                max_new: tenant.output_lens.1,
                weight: tenant.weight,
            }
        })
        .collect()
}

/// Merges traces into one, re-offsetting each part's ids past the
/// maximum id of everything before it so the result is collision-free.
/// Relative id order (and hence every same-arrival tie-break) within a
/// part is preserved; request order is the concatenation order.
///
/// # Panics
///
/// Panics if any single part carries an internal duplicate id — that is
/// a corrupt trace, not a composition artifact this helper can repair.
pub fn merge_traces(parts: &[Vec<Request>]) -> Vec<Request> {
    let mut out: Vec<Request> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    let mut next_id = 0u64;
    for part in parts {
        let mut ids: Vec<u64> = part.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert!(
            ids.windows(2).all(|w| w[0] != w[1]),
            "merge_traces input part carries duplicate ids"
        );
        let base = next_id;
        for r in part {
            let mut r = r.clone();
            r.id += base;
            next_id = next_id.max(r.id + 1);
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_seed_deterministic() {
        let tenants = [TenantSpec::interactive("chat"), TenantSpec::batch("batch")];
        let a = poisson_trace(&tenants, 5.0, 32, 42);
        let b = poisson_trace(&tenants, 5.0, 32, 42);
        assert_eq!(a.len(), 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_secs, y.arrival_secs);
            assert_eq!(x.prompt_len, y.prompt_len);
            assert_eq!(x.output_len, y.output_len);
            assert_eq!(x.tenant, y.tenant);
        }
        let c = poisson_trace(&tenants, 5.0, 32, 43);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.arrival_secs != y.arrival_secs));
    }

    #[test]
    fn arrivals_are_ordered_and_mean_rate_is_close() {
        let tenants = [TenantSpec::interactive("chat")];
        let trace = poisson_trace(&tenants, 10.0, 400, 7);
        assert!(trace
            .windows(2)
            .all(|w| w[0].arrival_secs <= w[1].arrival_secs));
        let span = trace.last().unwrap().arrival_secs;
        let rate = 400.0 / span;
        assert!((7.0..13.0).contains(&rate), "empirical rate {rate}");
        for r in &trace {
            assert!(r.output_len <= r.max_new);
            assert!((32..=96).contains(&r.prompt_len));
        }
    }

    #[test]
    fn weights_split_the_mix() {
        let tenants = [TenantSpec::interactive("chat"), TenantSpec::batch("batch")];
        let trace = poisson_trace(&tenants, 5.0, 400, 11);
        let chat = trace.iter().filter(|r| r.tenant == "chat").count();
        // 3:1 weights: expect roughly 300 of 400.
        assert!((240..=360).contains(&chat), "chat share {chat}");
    }

    #[test]
    fn replay_preserves_the_trace() {
        let t = TenantSpec::batch("replay");
        let trace = replay_trace(&t, &[(0.0, 300, 8), (0.5, 400, 16)]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].prompt_len, 400);
        assert_eq!(trace[1].output_len, 16);
        assert_eq!(trace[1].max_new, 32);
        assert_eq!(trace[0].priority, t.priority);
        assert_eq!(trace[0].weight, t.weight);
    }

    #[test]
    fn merged_traces_have_unique_ids_and_preserve_order() {
        let chat = replay_trace(
            &TenantSpec::interactive("chat"),
            &[(0.0, 32, 4), (0.2, 48, 8)],
        );
        let batch = replay_trace_from(&TenantSpec::batch("batch"), &[(0.1, 256, 8)], 0);
        let merged = merge_traces(&[chat.clone(), batch, chat]);
        assert_eq!(merged.len(), 5);
        let mut ids: Vec<u64> = merged.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert!(ids.windows(2).all(|w| w[0] != w[1]), "ids {ids:?}");
        // First part keeps its ids verbatim; later parts shift past it.
        assert_eq!(merged[0].id, 0);
        assert_eq!(merged[1].id, 1);
        assert_eq!(merged[2].id, 2);
        assert_eq!(merged[2].tenant, "batch");
        assert!(merged[3].id > merged[2].id);
        // Arrival shapes survive the renumbering untouched.
        assert_eq!(merged[3].arrival_secs, merged[0].arrival_secs);
        assert_eq!(merged[3].prompt_len, merged[0].prompt_len);
    }

    #[test]
    #[should_panic(expected = "duplicate ids")]
    fn merge_rejects_internally_corrupt_parts() {
        let t = TenantSpec::interactive("chat");
        let mut part = replay_trace(&t, &[(0.0, 32, 4), (0.1, 32, 4)]);
        part[1].id = 0;
        merge_traces(&[part]);
    }

    #[test]
    fn bursty_trace_is_seed_deterministic_and_burstier_than_poisson() {
        let tenants = [TenantSpec::interactive("chat"), TenantSpec::batch("batch")];
        let spec = BurstSpec::default();
        let a = bursty_trace(&tenants, &spec, 300, 17);
        let b = bursty_trace(&tenants, &spec, 300, 17);
        assert_eq!(a.len(), 300);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_secs, y.arrival_secs);
            assert_eq!(x.id, y.id);
            assert_eq!(x.tenant, y.tenant);
        }
        assert!(a.windows(2).all(|w| w[0].arrival_secs <= w[1].arrival_secs));
        // Coefficient of variation of inter-arrival gaps: 1 for a
        // memoryless Poisson stream, strictly above it for the on/off
        // modulated process — the burstiness the generator exists for.
        let cv = |trace: &[Request]| {
            let gaps: Vec<f64> = trace
                .windows(2)
                .map(|w| w[1].arrival_secs - w[0].arrival_secs)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let poisson = poisson_trace(&tenants, 3.0, 300, 17);
        assert!(
            cv(&a) > 1.2 && cv(&a) > cv(&poisson),
            "bursty CV {} vs poisson CV {}",
            cv(&a),
            cv(&poisson)
        );
        let c = bursty_trace(&tenants, &spec, 300, 18);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.arrival_secs != y.arrival_secs));
    }
}
