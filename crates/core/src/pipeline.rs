//! Decode and prefill measurement pipelines over the full model forward.
//!
//! Each pipeline builds a cost-only model on the requested device, sets up
//! the KV state, runs the real forward pass (every kernel charging the
//! calibrated cost model), and reports throughput plus engine-level busy
//! times — the raw material for Figures 11, 12, 13, 16 and 17. These are
//! the measurement engine behind [`crate::backend::NpuSimBackend`]; the
//! comparison exhibits reach them through the
//! [`crate::backend::Backend`] trait.
//!
//! Deployments that exceed one session's 32-bit VA space run through the
//! sharded variants ([`measure_decode_sharded`], [`measure_prefill_sharded`]):
//! the context opens the [`crate::session::ShardPlan`]'s session count,
//! and the model's layer walk charges a CPU-side session switch at every
//! shard boundary (plus the wrap-around back to the first shard), so the
//! Section 8 workaround shows up in the latency model rather than as an
//! error.

use edgellm::config::ModelId;
use edgellm::kv_cache::KvCache;
use edgellm::model::{LayerSchedule, Model};
pub use edgellm::overlap::DispatchMode;
use hexsim::cost::{Engine, NUM_ENGINES};
use hexsim::prelude::*;
use htpops::gemm::DequantVariant;
use serde::{Deserialize, Serialize};

use crate::session::ShardPlan;

/// One decode measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecodePoint {
    /// Model label ("Q1.5", ...).
    pub model: String,
    /// Device SoC label ("8G3", ...).
    pub device: String,
    /// Decode batch size.
    pub batch: usize,
    /// Context length per sequence at measurement time.
    pub ctx_len: usize,
    /// Wall seconds per decode step.
    pub step_secs: f64,
    /// Decode throughput in tokens/second (batch / step).
    pub tokens_per_sec: f64,
    /// Fraction of the step spent on CPU-side work: the logits pass,
    /// plus session switches when the deployment runs sharded (both are
    /// CPU time the NPU waits on, and both appear in the CPU engine's
    /// busy seconds).
    pub cpu_share: f64,
    /// Busy seconds per engine during the step.
    pub engine_secs: [f64; NUM_ENGINES],
    /// NPU sessions the deployment ran across (1 = single session; > 1 =
    /// the paper's Section 8 multi-session sharding, with session-switch
    /// time included in `step_secs`). Analytic backends report 1.
    pub sessions: usize,
}

/// One prefill measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrefillPoint {
    /// Model label.
    pub model: String,
    /// Device SoC label.
    pub device: String,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Wall seconds for the whole prefill.
    pub total_secs: f64,
    /// Prefill throughput in tokens/second.
    pub tokens_per_sec: f64,
    /// NPU sessions the deployment ran across (see
    /// [`DecodePoint::sessions`]).
    pub sessions: usize,
}

impl DecodePoint {
    /// Whether the point carries engine-level activity data. Measured NPU
    /// points always do; analytic roofline points (GPU/QNN/CPU backends)
    /// carry pure throughput and report `false` — power, utilization and
    /// memory-placement models only apply when this holds.
    pub fn has_engine_activity(&self) -> bool {
        self.engine_secs.iter().any(|&s| s > 0.0)
    }
}

/// Errors from the pipeline (model does not fit the device, ...).
pub type PipelineResult<T> = SimResult<T>;

/// Measures one decode step of `model_id` on `device` at the given batch
/// and per-sequence context length, in a single NPU session. Errors with
/// [`SimError::VaSpaceExceeded`] when the deployment does not fit one
/// session — use [`measure_decode_sharded`] with a
/// [`crate::session::ShardPlan`] for those (or go through
/// [`crate::backend::NpuSimBackend`], which plans automatically).
pub fn measure_decode(
    device: &DeviceProfile,
    model_id: ModelId,
    batch: usize,
    ctx_len: usize,
) -> PipelineResult<DecodePoint> {
    measure_decode_with(device, model_id, batch, ctx_len, DispatchMode::Serial)
}

/// Like [`measure_decode`] but with an explicit [`DispatchMode`]:
/// [`DispatchMode::Overlapped`] reports the steady-state critical path of
/// the pipelined schedule (CPU lm_head hidden behind the next step's
/// layers, dispatch riding the double-buffered ring) instead of the
/// serial stage sum. Functional behavior and per-engine busy seconds are
/// identical in both modes.
pub fn measure_decode_with(
    device: &DeviceProfile,
    model_id: ModelId,
    batch: usize,
    ctx_len: usize,
    dispatch: DispatchMode,
) -> PipelineResult<DecodePoint> {
    measure_decode_impl(
        device,
        model_id,
        batch,
        ctx_len,
        1,
        LayerSchedule::single_session(),
        dispatch,
    )
}

/// Measures one decode step across the sessions of a
/// [`crate::session::ShardPlan`] — the paper's Section 8 multi-session
/// execution. The context opens the plan's session count, the layer walk
/// crosses each shard boundary in order, and every crossing (plus the
/// wrap-around back to the first shard) charges the plan's session-switch
/// cost into the step latency.
///
/// # Panics
///
/// Panics if `plan` was built for a different architecture than
/// `model_id` (its shard boundaries must split `model_id`'s layer
/// range).
pub fn measure_decode_sharded(
    device: &DeviceProfile,
    model_id: ModelId,
    batch: usize,
    ctx_len: usize,
    plan: &ShardPlan,
) -> PipelineResult<DecodePoint> {
    measure_decode_sharded_with(device, model_id, batch, ctx_len, plan, DispatchMode::Serial)
}

/// Like [`measure_decode_sharded`] with an explicit [`DispatchMode`];
/// under [`DispatchMode::Overlapped`] the plan's session switches overlap
/// the previous shard's tail kernels instead of serializing.
///
/// # Panics
///
/// Panics if `plan` was built for a different architecture than
/// `model_id`.
pub fn measure_decode_sharded_with(
    device: &DeviceProfile,
    model_id: ModelId,
    batch: usize,
    ctx_len: usize,
    plan: &ShardPlan,
    dispatch: DispatchMode,
) -> PipelineResult<DecodePoint> {
    measure_decode_impl(
        device,
        model_id,
        batch,
        ctx_len,
        plan.sessions(),
        plan.schedule(),
        dispatch,
    )
}

/// Measures one decode step under the weight-streaming deployment: a
/// [`ShardPlan::build_streaming`] placement where hot layers (first/last)
/// stay session-resident and cold layers stream from DDR staging through
/// a double-buffered window, each fetch charged at the device's sustained
/// streaming bandwidth and — under [`DispatchMode::Overlapped`] — hidden
/// behind other layers' compute on the timeline's DMA lane.
pub fn measure_decode_streaming(
    device: &DeviceProfile,
    model_id: ModelId,
    batch: usize,
    ctx_len: usize,
) -> PipelineResult<DecodePoint> {
    measure_decode_streaming_with(device, model_id, batch, ctx_len, DispatchMode::Serial)
}

/// Like [`measure_decode_streaming`] with an explicit [`DispatchMode`].
pub fn measure_decode_streaming_with(
    device: &DeviceProfile,
    model_id: ModelId,
    batch: usize,
    ctx_len: usize,
    dispatch: DispatchMode,
) -> PipelineResult<DecodePoint> {
    let cfg = edgellm::config::ModelConfig::for_id(model_id);
    let plan = ShardPlan::build_streaming(&cfg, device.session_va_bytes, batch, ctx_len)?;
    measure_decode_sharded_with(device, model_id, batch, ctx_len, &plan, dispatch)
}

fn measure_decode_impl(
    device: &DeviceProfile,
    model_id: ModelId,
    batch: usize,
    ctx_len: usize,
    sessions: usize,
    schedule: LayerSchedule,
    dispatch: DispatchMode,
) -> PipelineResult<DecodePoint> {
    let mut ctx = NpuContext::new_sharded(device.clone(), ExecMode::CostOnly, sessions);
    // The schedule's `streamed` list doubles as the build-time hot/cold
    // split: cold layers park in DDR staging, resident schedules (empty
    // list) build bit-identically to the historical path.
    let mut model = Model::new_streamed(
        &mut ctx,
        model_id,
        DequantVariant::CoalescedLut,
        1,
        &schedule.streamed,
    )?;
    model.set_layer_schedule(schedule);
    model.set_dispatch_mode(dispatch);
    let budget = batch * (ctx_len + 2);
    let mut cache = KvCache::new(&mut ctx, &model.cfg, batch, budget)?;
    for s in 0..batch {
        cache.fast_fill(s, ctx_len);
    }
    let snap = ctx.cost.snapshot();
    let out = model.decode_step(&mut ctx, &mut cache, &vec![0u32; batch])?;
    let delta = ctx.cost.delta_since(&snap, "decode");
    // Serial mode keeps the historical additive wall time bit-for-bit;
    // overlapped mode reports the schedule's steady-state critical path.
    let step_secs = match dispatch {
        DispatchMode::Serial => out.cost.wall_secs(),
        DispatchMode::Overlapped => out.cost.overlapped_secs,
    };
    Ok(DecodePoint {
        model: model.cfg.id.label().to_string(),
        device: device.arch.soc_label().to_string(),
        batch,
        ctx_len,
        step_secs,
        tokens_per_sec: batch as f64 / step_secs,
        cpu_share: (out.cost.cpu_secs + out.cost.switch_secs) / step_secs,
        engine_secs: delta.engine_secs,
        sessions,
    })
}

/// Measures a full prefill of `prompt_len` tokens in a single NPU
/// session (see [`measure_prefill_sharded`] for deployments that need
/// the Section 8 workaround).
pub fn measure_prefill(
    device: &DeviceProfile,
    model_id: ModelId,
    prompt_len: usize,
) -> PipelineResult<PrefillPoint> {
    measure_prefill_with(device, model_id, prompt_len, DispatchMode::Serial)
}

/// Like [`measure_prefill`] with an explicit [`DispatchMode`]: prefill is
/// one standalone pass, so overlap hides dispatch and session switches
/// behind the walk but there is no next step to pipeline into.
pub fn measure_prefill_with(
    device: &DeviceProfile,
    model_id: ModelId,
    prompt_len: usize,
    dispatch: DispatchMode,
) -> PipelineResult<PrefillPoint> {
    measure_prefill_impl(
        device,
        model_id,
        prompt_len,
        1,
        LayerSchedule::single_session(),
        dispatch,
    )
}

/// Measures a full prefill across the sessions of a
/// [`crate::session::ShardPlan`] (one sharded layer walk for the whole
/// prompt — prefill amortizes the switches over every prompt token).
///
/// # Panics
///
/// Panics if `plan` was built for a different architecture than
/// `model_id` (its shard boundaries must split `model_id`'s layer
/// range).
pub fn measure_prefill_sharded(
    device: &DeviceProfile,
    model_id: ModelId,
    prompt_len: usize,
    plan: &ShardPlan,
) -> PipelineResult<PrefillPoint> {
    measure_prefill_sharded_with(device, model_id, prompt_len, plan, DispatchMode::Serial)
}

/// Like [`measure_prefill_sharded`] with an explicit [`DispatchMode`].
///
/// # Panics
///
/// Panics if `plan` was built for a different architecture than
/// `model_id`.
pub fn measure_prefill_sharded_with(
    device: &DeviceProfile,
    model_id: ModelId,
    prompt_len: usize,
    plan: &ShardPlan,
    dispatch: DispatchMode,
) -> PipelineResult<PrefillPoint> {
    measure_prefill_impl(
        device,
        model_id,
        prompt_len,
        plan.sessions(),
        plan.schedule(),
        dispatch,
    )
}

fn measure_prefill_impl(
    device: &DeviceProfile,
    model_id: ModelId,
    prompt_len: usize,
    sessions: usize,
    schedule: LayerSchedule,
    dispatch: DispatchMode,
) -> PipelineResult<PrefillPoint> {
    let mut ctx = NpuContext::new_sharded(device.clone(), ExecMode::CostOnly, sessions);
    let mut model = Model::new_streamed(
        &mut ctx,
        model_id,
        DequantVariant::CoalescedLut,
        1,
        &schedule.streamed,
    )?;
    model.set_layer_schedule(schedule);
    model.set_dispatch_mode(dispatch);
    let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, prompt_len + 2)?;
    let out = model.prefill(&mut ctx, &mut cache, 0, &vec![0u32; prompt_len])?;
    let total_secs = match dispatch {
        DispatchMode::Serial => out.cost.wall_secs(),
        DispatchMode::Overlapped => out.cost.overlapped_secs,
    };
    Ok(PrefillPoint {
        model: model.cfg.id.label().to_string(),
        device: device.arch.soc_label().to_string(),
        prompt_len,
        total_secs,
        tokens_per_sec: prompt_len as f64 / total_secs,
        sessions,
    })
}

/// Engine utilization (busy fraction of the step wall time), used by the
/// power model.
pub fn engine_utilization(point: &DecodePoint) -> [f64; NUM_ENGINES] {
    let mut util = [0.0; NUM_ENGINES];
    for (i, u) in util.iter_mut().enumerate() {
        *u = (point.engine_secs[i] / point.step_secs).min(1.0);
    }
    util
}

/// Convenience: HVX busy fraction of a decode point.
pub fn hvx_utilization(point: &DecodePoint) -> f64 {
    engine_utilization(point)[Engine::Hvx.idx_pub()]
}

/// Extension trait exposing the engine index (kept for API continuity;
/// [`Engine::index`] is the underlying accessor).
pub trait EngineIdx {
    /// Stable array index of the engine.
    fn idx_pub(self) -> usize;
}

impl EngineIdx for Engine {
    fn idx_pub(self) -> usize {
        self.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_throughput_increases_with_batch_figure_11() {
        let d = DeviceProfile::v75();
        let t1 = measure_decode(&d, ModelId::Qwen1_5B, 1, 1024).unwrap();
        let t4 = measure_decode(&d, ModelId::Qwen1_5B, 4, 1024).unwrap();
        let t16 = measure_decode(&d, ModelId::Qwen1_5B, 16, 1024).unwrap();
        assert!(t4.tokens_per_sec > t1.tokens_per_sec * 2.0);
        assert!(t16.tokens_per_sec > t4.tokens_per_sec * 1.5);
        // Paper Figure 11 (8G3, Qwen2.5-1.5B): ~10 tok/s at batch 1 rising
        // toward ~100 at batch 16.
        assert!(
            (6.0..22.0).contains(&t1.tokens_per_sec),
            "batch-1 {}",
            t1.tokens_per_sec
        );
        assert!(
            (55.0..160.0).contains(&t16.tokens_per_sec),
            "batch-16 {}",
            t16.tokens_per_sec
        );
    }

    #[test]
    fn devices_order_by_generation() {
        let b = 4;
        let t73 = measure_decode(&DeviceProfile::v73(), ModelId::Llama1B, b, 1024).unwrap();
        let t75 = measure_decode(&DeviceProfile::v75(), ModelId::Llama1B, b, 1024).unwrap();
        let t79 = measure_decode(&DeviceProfile::v79(), ModelId::Llama1B, b, 1024).unwrap();
        assert!(t79.tokens_per_sec > t75.tokens_per_sec);
        assert!(t75.tokens_per_sec > t73.tokens_per_sec);
    }

    #[test]
    fn v73_rejects_3b_models() {
        let err = measure_decode(&DeviceProfile::v73(), ModelId::Qwen3B, 1, 1024).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
    }

    #[test]
    fn prefill_speed_matches_figure_13_scale() {
        let d = DeviceProfile::v75();
        let p = measure_prefill(&d, ModelId::Qwen1_5B, 512).unwrap();
        // Paper Figure 13: Qwen2.5-1.5B prefill in the hundreds to ~1500
        // tokens/s range.
        assert!(
            (300.0..2500.0).contains(&p.tokens_per_sec),
            "prefill {}",
            p.tokens_per_sec
        );
        let p3 = measure_prefill(&d, ModelId::Qwen3B, 512).unwrap();
        assert!(p3.tokens_per_sec < p.tokens_per_sec);
    }

    #[test]
    fn longer_context_slows_decode_mildly_figure_17() {
        let d = DeviceProfile::v75();
        let short = measure_decode(&d, ModelId::Qwen1_5B, 8, 512).unwrap();
        let long = measure_decode(&d, ModelId::Qwen1_5B, 8, 4096).unwrap();
        let drop = 1.0 - long.tokens_per_sec / short.tokens_per_sec;
        // Paper: "relatively subtle" decline from 512 to 4096.
        assert!(drop > 0.01, "some decline expected, got {drop}");
        assert!(drop < 0.45, "decline should be mild, got {drop}");
    }

    #[test]
    fn sharded_decode_costs_exactly_the_switch_overhead_more() {
        // Force a model that fits one V75 session into two shards via an
        // artificially small per-session VA, then compare against the
        // single-session measurement on the same device: the step must
        // cost exactly the plan's switch overhead more.
        let d = DeviceProfile::v75();
        let cfg = edgellm::config::ModelConfig::for_id(ModelId::Qwen1_5B);
        let half = cfg.npu_weight_bytes() / 2 + cfg.npu_layer_weight_bytes();
        let plan = ShardPlan::build(&cfg, half, 4, 1024).unwrap();
        assert!(plan.is_sharded(), "plan must shard: {plan:?}");

        let base = measure_decode(&d, ModelId::Qwen1_5B, 4, 1024).unwrap();
        let sharded = measure_decode_sharded(&d, ModelId::Qwen1_5B, 4, 1024, &plan).unwrap();
        assert_eq!(sharded.sessions, plan.sessions());
        assert_eq!(base.sessions, 1);
        let extra = sharded.step_secs - base.step_secs;
        assert!(
            (extra - plan.switch_overhead_secs()).abs() < 1e-12,
            "extra {extra} vs planned {}",
            plan.switch_overhead_secs()
        );
        // Throughput dips accordingly but stays in the same regime.
        assert!(sharded.tokens_per_sec < base.tokens_per_sec);
        assert!(sharded.tokens_per_sec > base.tokens_per_sec * 0.95);
    }

    #[test]
    fn sharded_decode_unlocks_qwen3b_on_v73() {
        // The headline scenario: Qwen-3B decoding on the Snapdragon 8
        // Gen 2 through a 2-session plan (single-session errors above).
        let d = DeviceProfile::v73();
        let cfg = edgellm::config::ModelConfig::for_id(ModelId::Qwen3B);
        let plan = ShardPlan::build(&cfg, d.session_va_bytes, 1, 1024).unwrap();
        assert_eq!(plan.sessions(), 2);
        let p = measure_decode_sharded(&d, ModelId::Qwen3B, 1, 1024, &plan).unwrap();
        assert_eq!(p.sessions, 2);
        assert!(p.tokens_per_sec > 0.5, "3B on 8G2: {}", p.tokens_per_sec);
        let pf = measure_prefill_sharded(&d, ModelId::Qwen3B, 512, &plan).unwrap();
        assert!(pf.tokens_per_sec > 50.0, "prefill {}", pf.tokens_per_sec);
    }

    #[test]
    fn streaming_decode_charges_fetches_and_overlap_hides_them() {
        // Qwen-7B on the 8 Gen 2: 26 cold layers stream per step. Serial
        // dispatch pays every fetch in full; the overlapped schedule hides
        // them behind compute, keeping throughput near the resident plan.
        let d = DeviceProfile::v73();
        let cfg = edgellm::config::ModelConfig::for_id(ModelId::Qwen7B);
        let resident_plan = ShardPlan::build(&cfg, d.session_va_bytes, 8, 1024).unwrap();
        assert_eq!(resident_plan.sessions(), 3);

        let serial = measure_decode_streaming(&d, ModelId::Qwen7B, 8, 1024).unwrap();
        assert_eq!(serial.sessions, 1);
        let resident_serial =
            measure_decode_sharded(&d, ModelId::Qwen7B, 8, 1024, &resident_plan).unwrap();
        // Serial streaming pays 26 full fetches, minus the 3-session
        // plan's switch overhead the 1-session deployment no longer pays.
        let fetch_secs = 26.0 * cfg.npu_layer_weight_bytes() as f64 / d.ddr_stream_bw;
        let extra = serial.step_secs - resident_serial.step_secs;
        let expect = fetch_secs - resident_plan.switch_overhead_secs();
        assert!(
            (extra - expect).abs() < 1e-9,
            "extra {extra} vs expected {expect}"
        );

        let overlapped =
            measure_decode_streaming_with(&d, ModelId::Qwen7B, 8, 1024, DispatchMode::Overlapped)
                .unwrap();
        let resident_overlapped = measure_decode_sharded_with(
            &d,
            ModelId::Qwen7B,
            8,
            1024,
            &resident_plan,
            DispatchMode::Overlapped,
        )
        .unwrap();
        assert!(
            overlapped.tokens_per_sec >= 0.9 * resident_overlapped.tokens_per_sec,
            "streamed {} vs resident {}",
            overlapped.tokens_per_sec,
            resident_overlapped.tokens_per_sec
        );
        // And streaming is genuinely cheaper in sessions: 1 vs 3.
        assert_eq!(overlapped.sessions, 1);
    }

    #[test]
    fn utilization_fractions_are_sane() {
        let d = DeviceProfile::v75();
        let p = measure_decode(&d, ModelId::Qwen1_5B, 2, 512).unwrap();
        let util = engine_utilization(&p);
        for (i, u) in util.iter().enumerate() {
            assert!((0.0..=1.0).contains(u), "engine {i} utilization {u}");
        }
        // Dequantization keeps the HVX the busiest *compute* engine, though
        // dispatch overheads dilute its absolute share.
        let hvx = util[Engine::Hvx.idx_pub()];
        assert!(hvx > 0.15, "hvx utilization {hvx}");
        assert!(hvx > util[Engine::Hmx.idx_pub()]);
    }
}
