//! The uniform execution interface every decode/prefill engine plugs
//! into.
//!
//! The paper's evaluation (Figure 13) is a comparison across *systems* —
//! the NPU runtime, llama.cpp's OpenCL backend on the Adreno GPU, QNN's
//! FP16 deployment — and the roadmap adds more (a CPU fallback today;
//! real OpenCL/QNN backends in the llm.npu / PowerInfer-2 direction
//! later). [`Backend`] is the trait they all implement, so row
//! generators, the device-sweep example and the benches iterate one
//! `&[Box<dyn Backend>]` instead of hard-coding each engine:
//!
//! - [`Backend::fits`] — capacity probe. For the simulated NPU this runs
//!   the [`MultiSession`] VA-gate check and
//!   *reports* how many 32-bit sessions the model would need instead of
//!   erroring, so callers can distinguish "needs sharding" from "cannot
//!   run at all". For QNN it rejects `batch > 1`: static graphs cannot
//!   express the dynamic batch test-time scaling needs.
//! - [`Backend::decode`] — one measured decode step at a batch and
//!   context length, as a [`DecodePoint`].
//! - [`Backend::prefill`] — a measured prompt prefill, as a
//!   [`PrefillPoint`].
//!
//! Implementations: [`NpuSimBackend`] (the full simulator pipeline),
//! [`GpuBaseline`], [`QnnFp16Baseline`] and [`CpuRefBackend`] (analytic
//! rooflines from [`crate::baselines`]). Analytic backends report zero
//! engine activity in their points; power/engine-utilization consumers
//! treat such points as opaque throughput numbers.

use edgellm::config::{ModelConfig, ModelId};
use hexsim::cost::NUM_ENGINES;
use hexsim::prelude::*;

use crate::baselines::{CpuRefBackend, GpuBaseline, QnnFp16Baseline};
use crate::pipeline::{measure_decode, measure_prefill, DecodePoint, PrefillPoint};
use crate::session::MultiSession;

/// Result of a [`Backend::fits`] capacity probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FitReport {
    /// Number of NPU sessions (32-bit VA spaces) the deployment needs.
    /// `1` means it runs in one session today; `> 1` means it only runs
    /// with the paper's Section 8 multi-session sharding. Non-NPU
    /// backends always report `1`.
    pub sessions: usize,
    /// Total device-resident bytes the probe accounted (weights + KV).
    pub bytes: u64,
}

/// A decode/prefill execution engine: the simulated NPU runtime or one of
/// the comparison systems.
pub trait Backend {
    /// System label, as used in the paper's figure legends.
    fn name(&self) -> &'static str;

    /// Probes whether `model` at `batch`/`ctx_len` can run, without
    /// running it. Errors only when the backend cannot express the
    /// configuration at all (e.g. QNN's static graphs at `batch > 1`, or
    /// a single buffer larger than one NPU session's VA space).
    fn fits(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<FitReport>;

    /// Measures one decode step.
    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint>;

    /// Measures a full prefill.
    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint>;
}

/// Builds a [`DecodePoint`] for an analytic (roofline) backend: pure
/// throughput, no engine activity, no CPU share.
fn analytic_decode_point(
    device: &str,
    model: ModelId,
    batch: usize,
    ctx_len: usize,
    tokens_per_sec: f64,
) -> DecodePoint {
    DecodePoint {
        model: model.label().to_string(),
        device: device.to_string(),
        batch,
        ctx_len,
        step_secs: batch as f64 / tokens_per_sec,
        tokens_per_sec,
        cpu_share: 0.0,
        engine_secs: [0.0; NUM_ENGINES],
    }
}

/// Builds a [`PrefillPoint`] for an analytic backend.
fn analytic_prefill_point(
    device: &str,
    model: ModelId,
    prompt_len: usize,
    tokens_per_sec: f64,
) -> PrefillPoint {
    PrefillPoint {
        model: model.label().to_string(),
        device: device.to_string(),
        prompt_len,
        total_secs: prompt_len as f64 / tokens_per_sec,
        tokens_per_sec,
    }
}

/// The paper's runtime on the simulated Hexagon NPU — the "Ours" series
/// of every figure, wrapping the [`crate::pipeline`] measurement
/// functions.
#[derive(Clone, Debug)]
pub struct NpuSimBackend {
    /// Device profile the pipeline simulates.
    pub device: DeviceProfile,
}

impl NpuSimBackend {
    /// Backend for a device profile.
    pub fn new(device: DeviceProfile) -> Self {
        NpuSimBackend { device }
    }
}

impl Backend for NpuSimBackend {
    fn name(&self) -> &'static str {
        "Ours"
    }

    /// Maps the deployment into [`MultiSession`] at per-layer granularity
    /// (one layer's weights never split across sessions, matching the
    /// paper's Section 8 sharding sketch) plus the KV cache, and reports
    /// the session count — the VA gate becomes a shard count instead of a
    /// panic. Errors only when a single buffer exceeds one session.
    fn fits(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<FitReport> {
        let cfg = ModelConfig::for_id(model);
        let kv_budget = batch * (ctx_len + 2);
        let mut ms = MultiSession::new(self.device.session_va_bytes);
        let mut bytes = 0u64;
        for _ in 0..cfg.layers {
            let b = cfg.npu_layer_weight_bytes();
            ms.map(b)?;
            bytes += b;
        }
        let kv = cfg.kv_cache_bytes(kv_budget);
        ms.map(kv)?;
        bytes += kv;
        Ok(FitReport {
            sessions: ms.sessions(),
            bytes,
        })
    }

    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint> {
        measure_decode(&self.device, model, batch, ctx_len)
    }

    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint> {
        measure_prefill(&self.device, model, prompt_len)
    }
}

impl Backend for GpuBaseline {
    fn name(&self) -> &'static str {
        "llama.cpp-OpenCL"
    }

    fn fits(&self, _model: ModelId, _batch: usize, _ctx_len: usize) -> SimResult<FitReport> {
        // Unified memory: no per-session VA gate on the GPU path.
        Ok(FitReport {
            sessions: 1,
            bytes: 0,
        })
    }

    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint> {
        Ok(analytic_decode_point(
            "GPU",
            model,
            batch,
            ctx_len,
            self.decode_tps(model, batch, ctx_len),
        ))
    }

    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint> {
        Ok(analytic_prefill_point(
            "GPU",
            model,
            prompt_len,
            self.prefill_tps(model, prompt_len),
        ))
    }
}

impl Backend for QnnFp16Baseline {
    fn name(&self) -> &'static str {
        "QNN FP16"
    }

    fn fits(&self, _model: ModelId, batch: usize, _ctx_len: usize) -> SimResult<FitReport> {
        if batch > 1 {
            return Err(SimError::Unsupported {
                reason: format!("QNN static graphs fix the decode batch at 1 (requested {batch})"),
            });
        }
        Ok(FitReport {
            sessions: 1,
            bytes: 0,
        })
    }

    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint> {
        self.fits(model, batch, ctx_len)?;
        Ok(analytic_decode_point(
            "QNN",
            model,
            batch,
            ctx_len,
            self.decode_tps(model),
        ))
    }

    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint> {
        Ok(analytic_prefill_point(
            "QNN",
            model,
            prompt_len,
            self.prefill_tps(model, prompt_len),
        ))
    }
}

impl Backend for CpuRefBackend {
    fn name(&self) -> &'static str {
        "CPU (cpu_ref)"
    }

    fn fits(&self, _model: ModelId, _batch: usize, _ctx_len: usize) -> SimResult<FitReport> {
        Ok(FitReport {
            sessions: 1,
            bytes: 0,
        })
    }

    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint> {
        Ok(analytic_decode_point(
            "CPU",
            model,
            batch,
            ctx_len,
            self.decode_tps(model, batch, ctx_len),
        ))
    }

    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint> {
        Ok(analytic_prefill_point(
            "CPU",
            model,
            prompt_len,
            self.prefill_tps(model, prompt_len),
        ))
    }
}

/// The Figure 13 comparison set on one device: the NPU runtime plus the
/// two paper baselines, in the paper's legend order.
pub fn figure13_backends(device: &DeviceProfile) -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(NpuSimBackend::new(device.clone())),
        Box::new(GpuBaseline::default()),
        Box::new(QnnFp16Baseline::default()),
    ]
}

/// Every available execution backend on one device, the NPU runtime
/// first (the device-sweep set).
pub fn all_backends(device: &DeviceProfile) -> Vec<Box<dyn Backend>> {
    let mut v = figure13_backends(device);
    v.push(Box::new(CpuRefBackend::default()));
    v
}

/// Just the simulated NPU runtime, for NPU-specific exhibits (Figures 16
/// and 17 measure *our* runtime's overheads and context sensitivity).
pub fn npu_backend(device: &DeviceProfile) -> Vec<Box<dyn Backend>> {
    vec![Box::new(NpuSimBackend::new(device.clone()))]
}

/// One backend's decode sweep over several batch sizes — the shared
/// row logic of the device-sweep surfaces (example and bench).
pub enum SweepOutcome {
    /// The smallest batch runs. One entry per requested batch; `None`
    /// where that batch cannot run (QNN past batch 1, KV pushing past the
    /// VA limit).
    Ran(Vec<Option<DecodePoint>>),
    /// The model only runs with the paper's Section 8 multi-session
    /// sharding; carries the session count [`Backend::fits`] reported.
    NeedsSharding(usize),
    /// The configuration cannot run at all; carries the decode error.
    CannotRun(String),
}

/// Probes `backend` at each batch in `batches` (each independently —
/// KV growth can gate large batches even when batch 1 fits). When even
/// the first batch fails, falls back to [`Backend::fits`] to distinguish
/// "needs sharding" from "cannot run".
pub fn decode_sweep(
    backend: &dyn Backend,
    model: ModelId,
    ctx_len: usize,
    batches: &[usize],
) -> SweepOutcome {
    assert!(!batches.is_empty());
    let first = backend.decode(model, batches[0], ctx_len);
    if let Err(e) = &first {
        return match backend.fits(model, batches[0], ctx_len) {
            Ok(fit) if fit.sessions > 1 => SweepOutcome::NeedsSharding(fit.sessions),
            _ => SweepOutcome::CannotRun(e.to_string()),
        };
    }
    let mut points = vec![first.ok()];
    for &b in &batches[1..] {
        points.push(backend.decode(model, b, ctx_len).ok());
    }
    SweepOutcome::Ran(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    // -----------------------------------------------------------------
    // Golden parity: every Backend impl must reproduce the pre-redesign
    // numbers bit-for-bit.
    // -----------------------------------------------------------------

    #[test]
    fn npu_backend_matches_pipeline_bit_for_bit() {
        let device = DeviceProfile::v75();
        let b = NpuSimBackend::new(device.clone());
        let via_trait = b.decode(ModelId::Qwen1_5B, 8, 1024).unwrap();
        let direct = measure_decode(&device, ModelId::Qwen1_5B, 8, 1024).unwrap();
        assert_eq!(via_trait.step_secs, direct.step_secs);
        assert_eq!(via_trait.tokens_per_sec, direct.tokens_per_sec);
        assert_eq!(via_trait.cpu_share, direct.cpu_share);
        assert_eq!(via_trait.engine_secs, direct.engine_secs);
        let p_trait = b.prefill(ModelId::Qwen1_5B, 512).unwrap();
        let p_direct = measure_prefill(&device, ModelId::Qwen1_5B, 512).unwrap();
        assert_eq!(p_trait.total_secs, p_direct.total_secs);
        assert_eq!(p_trait.tokens_per_sec, p_direct.tokens_per_sec);
    }

    #[test]
    fn baseline_backends_match_rooflines_bit_for_bit() {
        let gpu = GpuBaseline::default();
        let qnn = QnnFp16Baseline::default();
        let cpu = CpuRefBackend::default();
        for model in [ModelId::Qwen1_5B, ModelId::Qwen3B] {
            for batch in [1usize, 4, 16] {
                assert_eq!(
                    Backend::decode(&gpu, model, batch, 1024)
                        .unwrap()
                        .tokens_per_sec,
                    gpu.decode_tps(model, batch, 1024)
                );
                assert_eq!(
                    Backend::decode(&cpu, model, batch, 1024)
                        .unwrap()
                        .tokens_per_sec,
                    cpu.decode_tps(model, batch, 1024)
                );
            }
            assert_eq!(
                Backend::decode(&qnn, model, 1, 1024)
                    .unwrap()
                    .tokens_per_sec,
                qnn.decode_tps(model)
            );
            for prompt in [256usize, 1024] {
                assert_eq!(
                    Backend::prefill(&gpu, model, prompt)
                        .unwrap()
                        .tokens_per_sec,
                    gpu.prefill_tps(model, prompt)
                );
                assert_eq!(
                    Backend::prefill(&qnn, model, prompt)
                        .unwrap()
                        .tokens_per_sec,
                    qnn.prefill_tps(model, prompt)
                );
                assert_eq!(
                    Backend::prefill(&cpu, model, prompt)
                        .unwrap()
                        .tokens_per_sec,
                    cpu.prefill_tps(model, prompt)
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // The Figure 13 crossovers, via the trait.
    // -----------------------------------------------------------------

    #[test]
    fn gpu_wins_batch_1_ours_wins_batched() {
        let backends = figure13_backends(&DeviceProfile::v75());
        let tps = |name: &str, batch: usize| {
            backends
                .iter()
                .find(|b| b.name() == name)
                .unwrap()
                .decode(ModelId::Qwen1_5B, batch, 1024)
                .unwrap()
                .tokens_per_sec
        };
        // Paper Figure 13: GPU edges out the NPU at batch 1...
        assert!(tps("llama.cpp-OpenCL", 1) > tps("Ours", 1) * 0.85);
        // ...but saturates early while ours keeps scaling.
        assert!(tps("Ours", 16) > tps("llama.cpp-OpenCL", 16) * 1.5);
    }

    #[test]
    fn qnn_decode_pays_the_fp16_penalty() {
        let backends = figure13_backends(&DeviceProfile::v75());
        let qnn = backends.iter().find(|b| b.name() == "QNN FP16").unwrap();
        let ours = backends.iter().find(|b| b.name() == "Ours").unwrap();
        let qnn_b1 = qnn
            .decode(ModelId::Qwen1_5B, 1, 1024)
            .unwrap()
            .tokens_per_sec;
        // FP16 streams ~3.3 GB/step -> ~18 tok/s upper bound at 60 GB/s.
        assert!((10.0..25.0).contains(&qnn_b1), "qnn decode {qnn_b1}");
        // Static graphs cannot batch: the dynamic path laps it at batch 16.
        assert!(qnn.decode(ModelId::Qwen1_5B, 16, 1024).is_err());
        assert!(qnn.fits(ModelId::Qwen1_5B, 16, 1024).is_err());
        let ours_b16 = ours
            .decode(ModelId::Qwen1_5B, 16, 1024)
            .unwrap()
            .tokens_per_sec;
        assert!(ours_b16 > 3.0 * qnn_b1, "ours {ours_b16} vs qnn {qnn_b1}");
    }

    #[test]
    fn gpu_saturates_at_large_batch() {
        let gpu = GpuBaseline::default();
        let t1 = gpu.decode_tps(ModelId::Qwen1_5B, 1, 1024);
        let t8 = gpu.decode_tps(ModelId::Qwen1_5B, 8, 1024);
        let t16 = gpu.decode_tps(ModelId::Qwen1_5B, 16, 1024);
        // Paper Figure 13: GPU ~12-15 tok/s at batch 1 on the 1.5B model.
        assert!((8.0..20.0).contains(&t1), "gpu batch-1 {t1}");
        assert!(t8 > t1, "some batch benefit expected");
        // Compute-bound saturation: 16 is barely better than 8.
        assert!(t16 < t8 * 1.6, "t8 {t8} t16 {t16}");
    }

    #[test]
    fn prefill_ordering_matches_figure_13() {
        let qnn = QnnFp16Baseline::default();
        let gpu = GpuBaseline::default();
        // Paper Figure 13: QNN FP16 prefill around 1000-1700 tok/s, GPU in
        // the few-hundred range.
        let q = qnn.prefill_tps(ModelId::Qwen1_5B, 1024);
        assert!((700.0..2500.0).contains(&q), "qnn prefill {q}");
        let g = gpu.prefill_tps(ModelId::Qwen1_5B, 1024);
        assert!((100.0..900.0).contains(&g), "gpu prefill {g}");
    }

    #[test]
    fn cpu_ref_trails_every_accelerated_path() {
        let cpu = CpuRefBackend::default();
        let gpu = GpuBaseline::default();
        let npu = NpuSimBackend::new(DeviceProfile::v75());
        // Batch-1 decode is memory-bound around 10 tok/s on the big cores.
        let c1 = cpu.decode_tps(ModelId::Qwen1_5B, 1, 1024);
        assert!((5.0..16.0).contains(&c1), "cpu batch-1 {c1}");
        // The CPU saturates below the GPU and far below the batched NPU.
        let c16 = cpu.decode_tps(ModelId::Qwen1_5B, 16, 1024);
        assert!(c16 < gpu.decode_tps(ModelId::Qwen1_5B, 16, 1024));
        let n16 = npu
            .decode(ModelId::Qwen1_5B, 16, 1024)
            .unwrap()
            .tokens_per_sec;
        assert!(n16 > 4.0 * c16, "npu {n16} vs cpu {c16}");
        // CPU prefill is an order of magnitude below the NPU's.
        let cp = cpu.prefill_tps(ModelId::Qwen1_5B, 512);
        let np = npu.prefill(ModelId::Qwen1_5B, 512).unwrap().tokens_per_sec;
        assert!(np > 5.0 * cp, "npu prefill {np} vs cpu {cp}");
    }

    // -----------------------------------------------------------------
    // The fits probe and the VA gate.
    // -----------------------------------------------------------------

    #[test]
    fn fits_reports_shard_count_instead_of_panicking() {
        // The Figure 11 gate: Qwen3B exceeds the 8G2's per-session VA
        // space. decode() errors; fits() reports the sharding workaround.
        let v73 = NpuSimBackend::new(DeviceProfile::v73());
        assert!(v73.decode(ModelId::Qwen3B, 1, 1024).is_err());
        let fit = v73.fits(ModelId::Qwen3B, 1, 1024).unwrap();
        assert!(fit.sessions > 1, "needs sharding: {fit:?}");
        // On the paper's primary device one session suffices.
        let v75 = NpuSimBackend::new(DeviceProfile::v75());
        assert_eq!(v75.fits(ModelId::Qwen3B, 1, 1024).unwrap().sessions, 1);
    }

    #[test]
    fn decode_sweep_classifies_every_outcome() {
        // NPU on 8G2 with Qwen3B: sharding required.
        let v73 = NpuSimBackend::new(DeviceProfile::v73());
        assert!(matches!(
            decode_sweep(&v73, ModelId::Qwen3B, 1024, &[1, 8]),
            SweepOutcome::NeedsSharding(2)
        ));
        // QNN runs batch 1 and dashes out the batched columns.
        let qnn = QnnFp16Baseline::default();
        match decode_sweep(&qnn, ModelId::Qwen1_5B, 1024, &[1, 8, 16]) {
            SweepOutcome::Ran(points) => {
                assert!(points[0].is_some());
                assert!(points[1].is_none() && points[2].is_none());
            }
            _ => panic!("QNN batch 1 must run"),
        }
        // The GPU roofline runs everything.
        match decode_sweep(
            &GpuBaseline::default(),
            ModelId::Qwen1_5B,
            1024,
            &[1, 8, 16],
        ) {
            SweepOutcome::Ran(points) => assert!(points.iter().all(|p| p.is_some())),
            _ => panic!("GPU must run"),
        }
    }

    #[test]
    fn fits_agrees_with_decode_across_devices_and_models() {
        for device in DeviceProfile::all() {
            let b = NpuSimBackend::new(device.clone());
            for model in ModelId::on_device() {
                let fit = b.fits(model, 1, 1024).unwrap();
                let runs = b.decode(model, 1, 1024).is_ok();
                assert_eq!(
                    fit.sessions == 1,
                    runs,
                    "{}/{}: fits {:?} vs decode ok={}",
                    device.arch.soc_label(),
                    model.label(),
                    fit,
                    runs
                );
            }
        }
    }
}
