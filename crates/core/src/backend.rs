//! The uniform execution interface every decode/prefill engine plugs
//! into.
//!
//! The paper's evaluation (Figure 13) is a comparison across *systems* —
//! the NPU runtime, llama.cpp's OpenCL backend on the Adreno GPU, QNN's
//! FP16 deployment — and the roadmap adds more (a CPU fallback today;
//! real OpenCL/QNN backends in the llm.npu / PowerInfer-2 direction
//! later). [`Backend`] is the trait they all implement, so row
//! generators, the device-sweep example and the benches iterate one
//! `&[Box<dyn Backend>]` instead of hard-coding each engine:
//!
//! - [`Backend::fits`] — capacity probe. For the simulated NPU this
//!   builds the [`crate::session::ShardPlan`] VA placement and *reports*
//!   how many 32-bit sessions the model needs instead of erroring, so
//!   callers can distinguish "runs sharded" from "cannot run at all".
//!   For QNN it rejects `batch > 1`: static graphs cannot express the
//!   dynamic batch test-time scaling needs.
//! - [`Backend::decode`] — one measured decode step at a batch and
//!   context length, as a [`DecodePoint`].
//! - [`Backend::prefill`] — a measured prompt prefill, as a
//!   [`PrefillPoint`].
//!
//! Implementations: [`NpuSimBackend`] (the full simulator pipeline),
//! [`GpuBaseline`], [`QnnFp16Baseline`] and [`CpuRefBackend`] (analytic
//! rooflines from [`crate::baselines`]). Analytic backends report zero
//! engine activity in their points; power/engine-utilization consumers
//! treat such points as opaque throughput numbers.
//!
//! Deployments larger than one 32-bit session are not errors: the NPU
//! backend builds a [`crate::session::ShardPlan`] and runs the paper's
//! Section 8 multi-session sharding automatically.
//!
//! # Examples
//!
//! Probe and decode through the trait — including a model that only
//! runs sharded on the Snapdragon 8 Gen 2:
//!
//! ```
//! use edgellm::config::ModelId;
//! use hexsim::prelude::*;
//! use npuscale::backend::{Backend, NpuSimBackend};
//!
//! let v73 = NpuSimBackend::new(DeviceProfile::v73());
//! // Qwen-3B exceeds one ~2 GiB session: fits reports the shard count...
//! let fit = v73.fits(ModelId::Qwen3B, 1, 1024).unwrap();
//! assert_eq!(fit.sessions, 2);
//! // ...and decode executes that plan instead of erroring.
//! let point = v73.decode(ModelId::Qwen3B, 1, 1024).unwrap();
//! assert_eq!(point.sessions, 2);
//! assert!(point.tokens_per_sec > 0.5);
//!
//! // Smaller models stay on the single-session path.
//! let small = v73.decode(ModelId::Qwen1_5B, 1, 1024).unwrap();
//! assert_eq!(small.sessions, 1);
//! ```

use edgellm::config::{ModelConfig, ModelId};
use hexsim::cost::NUM_ENGINES;
use hexsim::prelude::*;

use crate::baselines::{CpuRefBackend, GpuBaseline, QnnFp16Baseline};
use crate::pipeline::{
    measure_decode_sharded_with, measure_decode_with, measure_prefill_sharded_with,
    measure_prefill_with, DecodePoint, DispatchMode, PrefillPoint,
};
use crate::session::ShardPlan;

/// Result of a [`Backend::fits`] capacity probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FitReport {
    /// Number of NPU sessions (32-bit VA spaces) the deployment needs.
    /// `1` means it runs in one session today; `> 1` means it only runs
    /// with the paper's Section 8 multi-session sharding. Non-NPU
    /// backends always report `1`.
    pub sessions: usize,
    /// Total device-resident bytes the probe accounted (weights + KV).
    pub bytes: u64,
}

/// A decode/prefill execution engine: the simulated NPU runtime or one of
/// the comparison systems.
pub trait Backend {
    /// System label, as used in the paper's figure legends.
    fn name(&self) -> &'static str;

    /// Probes whether `model` at `batch`/`ctx_len` can run, without
    /// running it. Errors only when the backend cannot express the
    /// configuration at all (e.g. QNN's static graphs at `batch > 1`, or
    /// a single buffer larger than one NPU session's VA space).
    fn fits(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<FitReport>;

    /// Measures one decode step.
    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint>;

    /// Measures a full prefill.
    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint>;
}

/// Builds a [`DecodePoint`] for an analytic (roofline) backend: pure
/// throughput, no engine activity, no CPU share.
fn analytic_decode_point(
    device: &str,
    model: ModelId,
    batch: usize,
    ctx_len: usize,
    tokens_per_sec: f64,
) -> DecodePoint {
    DecodePoint {
        model: model.label().to_string(),
        device: device.to_string(),
        batch,
        ctx_len,
        step_secs: batch as f64 / tokens_per_sec,
        tokens_per_sec,
        cpu_share: 0.0,
        engine_secs: [0.0; NUM_ENGINES],
        sessions: 1,
    }
}

/// Builds a [`PrefillPoint`] for an analytic backend.
fn analytic_prefill_point(
    device: &str,
    model: ModelId,
    prompt_len: usize,
    tokens_per_sec: f64,
) -> PrefillPoint {
    PrefillPoint {
        model: model.label().to_string(),
        device: device.to_string(),
        prompt_len,
        total_secs: prompt_len as f64 / tokens_per_sec,
        tokens_per_sec,
        sessions: 1,
    }
}

/// The paper's runtime on the simulated Hexagon NPU — the "Ours" series
/// of every figure, wrapping the [`crate::pipeline`] measurement
/// functions. [`NpuSimBackend::overlapped`] builds the async-dispatch
/// variant ("Ours (async)"): same kernels, same logits, but wall time is
/// the critical path of the Section 7.2.2 pipelined schedule instead of
/// the serial stage sum. [`NpuSimBackend::streamed`] adds the hot/cold
/// weight hierarchy on top of async dispatch ("Ours (streamed)"): cold
/// transformer layers live in a CPU-owned DDR staging region and stream
/// through a double-buffered window on the timeline's DMA lane, so a
/// deployment occupies far fewer sessions (or becomes runnable at all).
#[derive(Clone, Debug)]
pub struct NpuSimBackend {
    /// Device profile the pipeline simulates.
    pub device: DeviceProfile,
    /// Serial (historical, the default) or overlap-aware timing.
    pub dispatch: DispatchMode,
    /// When set, plans the hot/cold streaming placement
    /// ([`ShardPlan::build_streaming`]) instead of the fully resident one.
    pub streaming: bool,
}

impl NpuSimBackend {
    /// Backend for a device profile with serial dispatch (reproduces
    /// every pre-overlap number bit-for-bit).
    pub fn new(device: DeviceProfile) -> Self {
        NpuSimBackend {
            device,
            dispatch: DispatchMode::Serial,
            streaming: false,
        }
    }

    /// Backend with overlap-aware async dispatch: the CPU lm_head hides
    /// behind the next step's layers, command submission rides the
    /// double-buffered ring, and session switches overlap the previous
    /// shard's tail kernels.
    pub fn overlapped(device: DeviceProfile) -> Self {
        NpuSimBackend {
            device,
            dispatch: DispatchMode::Overlapped,
            streaming: false,
        }
    }

    /// Backend with the weight-streaming placement under overlap-aware
    /// dispatch: hot layers (entry and exit) stay resident while cold
    /// layers stream from DDR through a double-buffered window, their
    /// fetches prefetched on the DMA lane one layer ahead so steady-state
    /// decode only pays the *exposed* (non-hidden) fetch time. Streaming
    /// only makes sense with overlap — serial dispatch would expose every
    /// fetch — so the dispatch mode is fixed to
    /// [`DispatchMode::Overlapped`].
    pub fn streamed(device: DeviceProfile) -> Self {
        NpuSimBackend {
            device,
            dispatch: DispatchMode::Overlapped,
            streaming: true,
        }
    }

    /// The three runtime variants on one device, in fixed order: serial
    /// ("Ours"), overlap-aware ("Ours (async)"), weight-streamed
    /// ("Ours (streamed)"). The single construction point behind
    /// [`npu_backends_both`], [`npu_backends_all`] and the
    /// row-generators in [`crate::experiments`] — destructure and pick
    /// the ones an exhibit needs.
    pub fn variants(device: &DeviceProfile) -> [NpuSimBackend; 3] {
        [
            NpuSimBackend::new(device.clone()),
            NpuSimBackend::overlapped(device.clone()),
            NpuSimBackend::streamed(device.clone()),
        ]
    }

    /// Plans the deployment's session placement: contiguous layer shards
    /// (each layer's weights plus its KV slice) across as many 32-bit
    /// sessions as the device needs (1 for everything that fits — the
    /// common case), or the hot/cold streaming placement when this
    /// backend streams. This is the plan [`Backend::decode`] and
    /// [`Backend::prefill`] execute.
    pub fn shard_plan(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<ShardPlan> {
        let cfg = ModelConfig::for_id(model);
        if self.streaming {
            ShardPlan::build_streaming(&cfg, self.device.session_va_bytes, batch, ctx_len)
        } else {
            ShardPlan::build(&cfg, self.device.session_va_bytes, batch, ctx_len)
        }
    }

    fn prefill_plan(&self, model: ModelId, prompt_len: usize) -> SimResult<ShardPlan> {
        let cfg = ModelConfig::for_id(model);
        if self.streaming {
            ShardPlan::build_streaming_with_kv_budget(
                &cfg,
                self.device.session_va_bytes,
                prompt_len + 2,
            )
        } else {
            ShardPlan::build_with_kv_budget(&cfg, self.device.session_va_bytes, prompt_len + 2)
        }
    }

    /// Rejects plans that need more concurrent NPU sessions than the
    /// device exposes ([`DeviceProfile::max_sessions`] — the rpcmem
    /// driver's per-process session cap). The cap is inclusive: a plan
    /// using exactly `max_sessions` still runs. This is the capacity
    /// pressure weight streaming relieves — the same deployment planned
    /// with [`NpuSimBackend::streamed`] needs fewer sessions.
    fn check_session_cap(&self, plan: &ShardPlan) -> SimResult<()> {
        if plan.sessions() > self.device.max_sessions {
            return Err(SimError::Unsupported {
                reason: format!(
                    "plan needs {} NPU sessions but {} exposes only {} \
                     (try the weight-streaming placement)",
                    plan.sessions(),
                    self.device.arch.soc_label(),
                    self.device.max_sessions
                ),
            });
        }
        Ok(())
    }
}

impl Backend for NpuSimBackend {
    fn name(&self) -> &'static str {
        if self.streaming {
            return "Ours (streamed)";
        }
        match self.dispatch {
            DispatchMode::Serial => "Ours",
            DispatchMode::Overlapped => "Ours (async)",
        }
    }

    /// Builds the [`ShardPlan`] — per-layer [`crate::session::MultiSession`]
    /// placement of each layer's weights and KV slice (a layer never
    /// splits across sessions, matching the paper's Section 8 sharding
    /// sketch) — and reports its session count: the VA gate becomes a
    /// shard count instead of a panic. Errors when one layer cannot map
    /// into a whole session, or when the plan exceeds the device's
    /// session cap (where the streaming backend may still fit).
    fn fits(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<FitReport> {
        let plan = self.shard_plan(model, batch, ctx_len)?;
        self.check_session_cap(&plan)?;
        Ok(FitReport {
            sessions: plan.sessions(),
            bytes: plan.bytes,
        })
    }

    /// Decodes through the shard plan automatically: single-session
    /// resident deployments take the historical path bit-for-bit; larger
    /// ones run the paper's Section 8 multi-session execution (e.g.
    /// Qwen-3B on the 8 Gen 2 decodes across 2 sessions instead of
    /// erroring); streaming plans run the hot/cold layer walk whatever
    /// their session count, since the walk must know which layers to
    /// fetch.
    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint> {
        let plan = self.shard_plan(model, batch, ctx_len)?;
        self.check_session_cap(&plan)?;
        if plan.sessions() > 1 || plan.is_streaming() {
            measure_decode_sharded_with(&self.device, model, batch, ctx_len, &plan, self.dispatch)
        } else {
            measure_decode_with(&self.device, model, batch, ctx_len, self.dispatch)
        }
    }

    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint> {
        let plan = self.prefill_plan(model, prompt_len)?;
        self.check_session_cap(&plan)?;
        if plan.sessions() > 1 || plan.is_streaming() {
            measure_prefill_sharded_with(&self.device, model, prompt_len, &plan, self.dispatch)
        } else {
            measure_prefill_with(&self.device, model, prompt_len, self.dispatch)
        }
    }
}

impl Backend for GpuBaseline {
    fn name(&self) -> &'static str {
        "llama.cpp-OpenCL"
    }

    fn fits(&self, _model: ModelId, _batch: usize, _ctx_len: usize) -> SimResult<FitReport> {
        // Unified memory: no per-session VA gate on the GPU path.
        Ok(FitReport {
            sessions: 1,
            bytes: 0,
        })
    }

    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint> {
        Ok(analytic_decode_point(
            "GPU",
            model,
            batch,
            ctx_len,
            self.decode_tps(model, batch, ctx_len),
        ))
    }

    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint> {
        Ok(analytic_prefill_point(
            "GPU",
            model,
            prompt_len,
            self.prefill_tps(model, prompt_len),
        ))
    }
}

impl Backend for QnnFp16Baseline {
    fn name(&self) -> &'static str {
        "QNN FP16"
    }

    fn fits(&self, _model: ModelId, batch: usize, _ctx_len: usize) -> SimResult<FitReport> {
        if batch > 1 {
            return Err(SimError::Unsupported {
                reason: format!("QNN static graphs fix the decode batch at 1 (requested {batch})"),
            });
        }
        Ok(FitReport {
            sessions: 1,
            bytes: 0,
        })
    }

    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint> {
        self.fits(model, batch, ctx_len)?;
        Ok(analytic_decode_point(
            "QNN",
            model,
            batch,
            ctx_len,
            self.decode_tps(model),
        ))
    }

    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint> {
        Ok(analytic_prefill_point(
            "QNN",
            model,
            prompt_len,
            self.prefill_tps(model, prompt_len),
        ))
    }
}

impl Backend for CpuRefBackend {
    fn name(&self) -> &'static str {
        "CPU (cpu_ref)"
    }

    fn fits(&self, _model: ModelId, _batch: usize, _ctx_len: usize) -> SimResult<FitReport> {
        Ok(FitReport {
            sessions: 1,
            bytes: 0,
        })
    }

    fn decode(&self, model: ModelId, batch: usize, ctx_len: usize) -> SimResult<DecodePoint> {
        Ok(analytic_decode_point(
            "CPU",
            model,
            batch,
            ctx_len,
            self.decode_tps(model, batch, ctx_len),
        ))
    }

    fn prefill(&self, model: ModelId, prompt_len: usize) -> SimResult<PrefillPoint> {
        Ok(analytic_prefill_point(
            "CPU",
            model,
            prompt_len,
            self.prefill_tps(model, prompt_len),
        ))
    }
}

/// The Figure 13 comparison set on one device: the NPU runtime plus the
/// two paper baselines, in the paper's legend order.
pub fn figure13_backends(device: &DeviceProfile) -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(NpuSimBackend::new(device.clone())),
        Box::new(GpuBaseline::default()),
        Box::new(QnnFp16Baseline::default()),
    ]
}

/// Every available execution backend on one device, the NPU runtime
/// first (the device-sweep set).
pub fn all_backends(device: &DeviceProfile) -> Vec<Box<dyn Backend>> {
    let mut v = figure13_backends(device);
    v.push(Box::new(CpuRefBackend::default()));
    v
}

/// Just the simulated NPU runtime, for NPU-specific exhibits (Figures 16
/// and 17 measure *our* runtime's overheads and context sensitivity).
pub fn npu_backend(device: &DeviceProfile) -> Vec<Box<dyn Backend>> {
    vec![Box::new(NpuSimBackend::new(device.clone()))]
}

/// The NPU runtime under both dispatch modes — serial ("Ours") first,
/// then overlap-aware async dispatch ("Ours (async)") — for exhibits
/// that show the Section 7.2.2 pipelining win side by side.
pub fn npu_backends_both(device: &DeviceProfile) -> Vec<Box<dyn Backend>> {
    let [serial, overlapped, _] = NpuSimBackend::variants(device);
    vec![Box::new(serial), Box::new(overlapped)]
}

/// Every backend on one device: the three NPU runtime variants (serial,
/// overlap-aware, weight-streamed) followed by the analytic baselines —
/// the single construction point the sweep surfaces and the serving
/// gateway's fleet builder share, so a new variant shows up everywhere
/// at once.
pub fn npu_backends_all(device: &DeviceProfile) -> Vec<Box<dyn Backend>> {
    let [serial, overlapped, streamed] = NpuSimBackend::variants(device);
    vec![
        Box::new(serial),
        Box::new(overlapped),
        Box::new(streamed),
        Box::new(GpuBaseline::default()),
        Box::new(QnnFp16Baseline::default()),
        Box::new(CpuRefBackend::default()),
    ]
}

/// One backend's decode sweep over several batch sizes — the shared
/// row logic of the device-sweep surfaces (example and bench).
pub enum SweepOutcome {
    /// The smallest batch runs (possibly across several NPU sessions —
    /// multi-session sharded execution is a first-class outcome, not a
    /// failure). One entry per requested batch; `None` where that batch
    /// cannot run (QNN past batch 1, KV pushing past every session).
    /// Each point carries its own [`DecodePoint::sessions`] — the count
    /// can grow with batch as the KV cache grows.
    Ran(Vec<Option<DecodePoint>>),
    /// The configuration cannot run at all; carries the decode error.
    CannotRun(String),
}

impl SweepOutcome {
    /// Session counts across the measured points, deduplicated and
    /// ascending — `[1]` for a single-session row, `[2]`/`[3]`/... for a
    /// uniformly sharded one, several values when KV growth forces more
    /// sessions at larger batches. Empty for [`SweepOutcome::CannotRun`].
    pub fn session_counts(&self) -> Vec<usize> {
        let SweepOutcome::Ran(points) = self else {
            return Vec::new();
        };
        let mut counts: Vec<usize> = points.iter().flatten().map(|p| p.sessions).collect();
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// Display tag for a sharded row — `"x2"`, or `"x3-4"` when KV
    /// growth pushes larger batches into more sessions — shared by the
    /// device-sweep surfaces. Only sharded points contribute (a row
    /// whose small batches run single-session while batch 16 spills to
    /// two sessions tags `"x2"`, not `"x1-2"`). `None` for rows with no
    /// sharded point and for [`SweepOutcome::CannotRun`].
    pub fn shard_tag(&self) -> Option<String> {
        let sharded: Vec<String> = self
            .session_counts()
            .into_iter()
            .filter(|&s| s > 1)
            .map(|s| s.to_string())
            .collect();
        if sharded.is_empty() {
            return None;
        }
        Some(format!("x{}", sharded.join("-")))
    }
}

/// Probes `backend` at each batch in `batches` (each independently —
/// KV growth can gate large batches even when batch 1 fits).
pub fn decode_sweep(
    backend: &dyn Backend,
    model: ModelId,
    ctx_len: usize,
    batches: &[usize],
) -> SweepOutcome {
    assert!(!batches.is_empty());
    let first = backend.decode(model, batches[0], ctx_len);
    if let Err(e) = &first {
        return SweepOutcome::CannotRun(e.to_string());
    }
    let mut points = vec![first.ok()];
    for &b in &batches[1..] {
        points.push(backend.decode(model, b, ctx_len).ok());
    }
    SweepOutcome::Ran(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{measure_decode, measure_prefill};

    // -----------------------------------------------------------------
    // Golden parity: every Backend impl must reproduce the pre-redesign
    // numbers bit-for-bit.
    // -----------------------------------------------------------------

    #[test]
    fn npu_backend_matches_pipeline_bit_for_bit() {
        let device = DeviceProfile::v75();
        let b = NpuSimBackend::new(device.clone());
        let via_trait = b.decode(ModelId::Qwen1_5B, 8, 1024).unwrap();
        let direct = measure_decode(&device, ModelId::Qwen1_5B, 8, 1024).unwrap();
        assert_eq!(via_trait.step_secs, direct.step_secs);
        assert_eq!(via_trait.tokens_per_sec, direct.tokens_per_sec);
        assert_eq!(via_trait.cpu_share, direct.cpu_share);
        assert_eq!(via_trait.engine_secs, direct.engine_secs);
        let p_trait = b.prefill(ModelId::Qwen1_5B, 512).unwrap();
        let p_direct = measure_prefill(&device, ModelId::Qwen1_5B, 512).unwrap();
        assert_eq!(p_trait.total_secs, p_direct.total_secs);
        assert_eq!(p_trait.tokens_per_sec, p_direct.tokens_per_sec);
    }

    #[test]
    fn baseline_backends_match_rooflines_bit_for_bit() {
        let gpu = GpuBaseline::default();
        let qnn = QnnFp16Baseline::default();
        let cpu = CpuRefBackend::default();
        for model in [ModelId::Qwen1_5B, ModelId::Qwen3B] {
            for batch in [1usize, 4, 16] {
                assert_eq!(
                    Backend::decode(&gpu, model, batch, 1024)
                        .unwrap()
                        .tokens_per_sec,
                    gpu.decode_tps(model, batch, 1024)
                );
                assert_eq!(
                    Backend::decode(&cpu, model, batch, 1024)
                        .unwrap()
                        .tokens_per_sec,
                    cpu.decode_tps(model, batch, 1024)
                );
            }
            assert_eq!(
                Backend::decode(&qnn, model, 1, 1024)
                    .unwrap()
                    .tokens_per_sec,
                qnn.decode_tps(model)
            );
            for prompt in [256usize, 1024] {
                assert_eq!(
                    Backend::prefill(&gpu, model, prompt)
                        .unwrap()
                        .tokens_per_sec,
                    gpu.prefill_tps(model, prompt)
                );
                assert_eq!(
                    Backend::prefill(&qnn, model, prompt)
                        .unwrap()
                        .tokens_per_sec,
                    qnn.prefill_tps(model, prompt)
                );
                assert_eq!(
                    Backend::prefill(&cpu, model, prompt)
                        .unwrap()
                        .tokens_per_sec,
                    cpu.prefill_tps(model, prompt)
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // The Figure 13 crossovers, via the trait.
    // -----------------------------------------------------------------

    #[test]
    fn gpu_wins_batch_1_ours_wins_batched() {
        let backends = figure13_backends(&DeviceProfile::v75());
        let tps = |name: &str, batch: usize| {
            backends
                .iter()
                .find(|b| b.name() == name)
                .unwrap()
                .decode(ModelId::Qwen1_5B, batch, 1024)
                .unwrap()
                .tokens_per_sec
        };
        // Paper Figure 13: GPU edges out the NPU at batch 1...
        assert!(tps("llama.cpp-OpenCL", 1) > tps("Ours", 1) * 0.85);
        // ...but saturates early while ours keeps scaling.
        assert!(tps("Ours", 16) > tps("llama.cpp-OpenCL", 16) * 1.5);
    }

    #[test]
    fn qnn_decode_pays_the_fp16_penalty() {
        let backends = figure13_backends(&DeviceProfile::v75());
        let qnn = backends.iter().find(|b| b.name() == "QNN FP16").unwrap();
        let ours = backends.iter().find(|b| b.name() == "Ours").unwrap();
        let qnn_b1 = qnn
            .decode(ModelId::Qwen1_5B, 1, 1024)
            .unwrap()
            .tokens_per_sec;
        // FP16 streams ~3.3 GB/step -> ~18 tok/s upper bound at 60 GB/s.
        assert!((10.0..25.0).contains(&qnn_b1), "qnn decode {qnn_b1}");
        // Static graphs cannot batch: the dynamic path laps it at batch 16.
        assert!(qnn.decode(ModelId::Qwen1_5B, 16, 1024).is_err());
        assert!(qnn.fits(ModelId::Qwen1_5B, 16, 1024).is_err());
        let ours_b16 = ours
            .decode(ModelId::Qwen1_5B, 16, 1024)
            .unwrap()
            .tokens_per_sec;
        assert!(ours_b16 > 3.0 * qnn_b1, "ours {ours_b16} vs qnn {qnn_b1}");
    }

    #[test]
    fn gpu_saturates_at_large_batch() {
        let gpu = GpuBaseline::default();
        let t1 = gpu.decode_tps(ModelId::Qwen1_5B, 1, 1024);
        let t8 = gpu.decode_tps(ModelId::Qwen1_5B, 8, 1024);
        let t16 = gpu.decode_tps(ModelId::Qwen1_5B, 16, 1024);
        // Paper Figure 13: GPU ~12-15 tok/s at batch 1 on the 1.5B model.
        assert!((8.0..20.0).contains(&t1), "gpu batch-1 {t1}");
        assert!(t8 > t1, "some batch benefit expected");
        // Compute-bound saturation: 16 is barely better than 8.
        assert!(t16 < t8 * 1.6, "t8 {t8} t16 {t16}");
    }

    #[test]
    fn prefill_ordering_matches_figure_13() {
        let qnn = QnnFp16Baseline::default();
        let gpu = GpuBaseline::default();
        // Paper Figure 13: QNN FP16 prefill around 1000-1700 tok/s, GPU in
        // the few-hundred range.
        let q = qnn.prefill_tps(ModelId::Qwen1_5B, 1024);
        assert!((700.0..2500.0).contains(&q), "qnn prefill {q}");
        let g = gpu.prefill_tps(ModelId::Qwen1_5B, 1024);
        assert!((100.0..900.0).contains(&g), "gpu prefill {g}");
    }

    #[test]
    fn cpu_ref_trails_every_accelerated_path() {
        let cpu = CpuRefBackend::default();
        let gpu = GpuBaseline::default();
        let npu = NpuSimBackend::new(DeviceProfile::v75());
        // Batch-1 decode is memory-bound around 10 tok/s on the big cores.
        let c1 = cpu.decode_tps(ModelId::Qwen1_5B, 1, 1024);
        assert!((5.0..16.0).contains(&c1), "cpu batch-1 {c1}");
        // The CPU saturates below the GPU and far below the batched NPU.
        let c16 = cpu.decode_tps(ModelId::Qwen1_5B, 16, 1024);
        assert!(c16 < gpu.decode_tps(ModelId::Qwen1_5B, 16, 1024));
        let n16 = npu
            .decode(ModelId::Qwen1_5B, 16, 1024)
            .unwrap()
            .tokens_per_sec;
        assert!(n16 > 4.0 * c16, "npu {n16} vs cpu {c16}");
        // CPU prefill is an order of magnitude below the NPU's.
        let cp = cpu.prefill_tps(ModelId::Qwen1_5B, 512);
        let np = npu.prefill(ModelId::Qwen1_5B, 512).unwrap().tokens_per_sec;
        assert!(np > 5.0 * cp, "npu prefill {np} vs cpu {cp}");
    }

    // -----------------------------------------------------------------
    // The fits probe and the VA gate.
    // -----------------------------------------------------------------

    #[test]
    fn sharded_decode_replaces_the_va_gate() {
        // The Figure 11 gate: Qwen3B exceeds the 8G2's per-session VA
        // space. The raw single-session pipeline still errors, but the
        // backend plans a 2-session shard and decodes through it.
        let v73 = NpuSimBackend::new(DeviceProfile::v73());
        assert!(measure_decode(&DeviceProfile::v73(), ModelId::Qwen3B, 1, 1024).is_err());
        let fit = v73.fits(ModelId::Qwen3B, 1, 1024).unwrap();
        assert_eq!(fit.sessions, 2, "needs sharding: {fit:?}");
        let point = v73.decode(ModelId::Qwen3B, 1, 1024).unwrap();
        assert_eq!(point.sessions, 2);
        assert!(point.tokens_per_sec > 0.5);
        let prefill = v73.prefill(ModelId::Qwen3B, 512).unwrap();
        assert_eq!(prefill.sessions, 2);
        // On the paper's primary device one session suffices and the
        // historical single-session path is taken bit-for-bit.
        let v75 = NpuSimBackend::new(DeviceProfile::v75());
        assert_eq!(v75.fits(ModelId::Qwen3B, 1, 1024).unwrap().sessions, 1);
        assert_eq!(v75.decode(ModelId::Qwen3B, 1, 1024).unwrap().sessions, 1);
    }

    #[test]
    fn qwen7b_runs_sharded_where_it_never_fit() {
        // The 7B deployment needs 2 sessions even on the 4 GiB-VA devices
        // and 3 on the 8 Gen 2 — previously unreachable configurations.
        for (device, sessions) in [
            (DeviceProfile::v73(), 3),
            (DeviceProfile::v75(), 2),
            (DeviceProfile::v79(), 2),
        ] {
            let b = NpuSimBackend::new(device.clone());
            let fit = b.fits(ModelId::Qwen7B, 1, 1024).unwrap();
            assert_eq!(
                fit.sessions,
                sessions,
                "{}: {fit:?}",
                device.arch.soc_label()
            );
            let p = b.decode(ModelId::Qwen7B, 1, 1024).unwrap();
            assert_eq!(p.sessions, sessions);
            assert!(
                p.tokens_per_sec > 0.2,
                "{}: 7B decode {}",
                device.arch.soc_label(),
                p.tokens_per_sec
            );
        }
    }

    #[test]
    fn decode_sweep_classifies_every_outcome() {
        // NPU on 8G2 with Qwen3B: runs sharded across 2 sessions.
        let v73 = NpuSimBackend::new(DeviceProfile::v73());
        let sweep = decode_sweep(&v73, ModelId::Qwen3B, 1024, &[1, 8]);
        assert_eq!(sweep.session_counts(), vec![2]);
        match sweep {
            SweepOutcome::Ran(points) => assert!(points.iter().all(|p| p.is_some())),
            _ => panic!("Qwen3B must run sharded on 8G2"),
        }
        // QNN runs batch 1 and dashes out the batched columns.
        let qnn = QnnFp16Baseline::default();
        let sweep = decode_sweep(&qnn, ModelId::Qwen1_5B, 1024, &[1, 8, 16]);
        assert_eq!(sweep.session_counts(), vec![1]);
        match sweep {
            SweepOutcome::Ran(points) => {
                assert!(points[0].is_some());
                assert!(points[1].is_none() && points[2].is_none());
            }
            _ => panic!("QNN batch 1 must run"),
        }
        // The GPU roofline runs everything.
        match decode_sweep(
            &GpuBaseline::default(),
            ModelId::Qwen1_5B,
            1024,
            &[1, 8, 16],
        ) {
            SweepOutcome::Ran(points) => assert!(points.iter().all(|p| p.is_some())),
            _ => panic!("GPU must run"),
        }
        // KV growth can raise the session count within one row: Qwen7B
        // on 8G2 decodes x3 at small batches and x4 at batch 16.
        let counts = decode_sweep(&v73, ModelId::Qwen7B, 1024, &[1, 8, 16]).session_counts();
        assert_eq!(counts.first(), Some(&3));
        assert!(counts.iter().all(|&c| c >= 3));
    }

    #[test]
    fn shard_tag_reports_only_sharded_points() {
        let point = |sessions: usize| {
            Some(DecodePoint {
                model: "Q3".to_string(),
                device: "8G3".to_string(),
                batch: 1,
                ctx_len: 8192,
                step_secs: 0.1,
                tokens_per_sec: 10.0,
                cpu_share: 0.2,
                engine_secs: [0.0; NUM_ENGINES],
                sessions,
            })
        };
        // A row where batch 1 runs single-session but batch 16's KV
        // spills to two sessions tags "x2" — not "x1-2".
        let mixed = SweepOutcome::Ran(vec![point(1), point(2)]);
        assert_eq!(mixed.session_counts(), vec![1, 2]);
        assert_eq!(mixed.shard_tag(), Some("x2".to_string()));
        // Fully sharded rows span their counts; unsharded rows tag None.
        let grown = SweepOutcome::Ran(vec![point(3), point(4)]);
        assert_eq!(grown.shard_tag(), Some("x3-4".to_string()));
        let single = SweepOutcome::Ran(vec![point(1), None]);
        assert_eq!(single.shard_tag(), None);
        assert_eq!(
            SweepOutcome::CannotRun("nope".to_string()).shard_tag(),
            None
        );
    }

    #[test]
    fn fits_agrees_with_decode_across_devices_and_models() {
        // Since sharded execution landed, every deployment fits() accepts
        // must actually decode, at exactly the planned session count.
        for device in DeviceProfile::all() {
            let b = NpuSimBackend::new(device.clone());
            for model in ModelId::on_device() {
                let fit = b.fits(model, 1, 1024).unwrap();
                let point = b.decode(model, 1, 1024).unwrap_or_else(|e| {
                    panic!(
                        "{}/{}: fits {:?} but decode failed: {e}",
                        device.arch.soc_label(),
                        model.label(),
                        fit
                    )
                });
                assert_eq!(
                    point.sessions,
                    fit.sessions,
                    "{}/{}",
                    device.arch.soc_label(),
                    model.label()
                );
            }
        }
    }

    #[test]
    fn fits_agrees_with_decode_at_kv_heavy_configurations() {
        // Large batch x context makes the per-layer KV slices rival the
        // weights, which is exactly where a planner/heap placement
        // divergence would make fits() accept what decode() rejects
        // (weights allocate before KV, packing sessions differently from
        // the plan's combined per-layer units). The heap's envelope
        // semantics make allocation order irrelevant; this pins that.
        let b = NpuSimBackend::new(DeviceProfile::v75());
        for (model, batch, ctx_len) in [
            (ModelId::Qwen1_5B, 32, 8192),
            (ModelId::Qwen3B, 16, 8192),
            (ModelId::Llama3B, 16, 8192),
            (ModelId::Qwen1_5B, 16, 2048),
        ] {
            match b.fits(model, batch, ctx_len) {
                Ok(fit) => {
                    let point = b.decode(model, batch, ctx_len).unwrap_or_else(|e| {
                        panic!(
                            "{}@b{batch}/ctx{ctx_len}: fits {fit:?} but decode failed: {e}",
                            model.label()
                        )
                    });
                    assert_eq!(point.sessions, fit.sessions);
                }
                Err(_) => assert!(b.decode(model, batch, ctx_len).is_err()),
            }
        }
        // The original repro: Qwen1.5B at batch 32 / ctx 8192 on the
        // paper's primary device needs 2 sessions and must run there.
        let fit = b.fits(ModelId::Qwen1_5B, 32, 8192).unwrap();
        assert!(fit.sessions > 1, "{fit:?}");
    }

    // -----------------------------------------------------------------
    // The weight-streaming backend and the session cap.
    // -----------------------------------------------------------------

    #[test]
    fn streamed_backend_matches_streaming_measure_bit_for_bit() {
        use crate::pipeline::measure_decode_streaming_with;
        let device = DeviceProfile::v73();
        let b = NpuSimBackend::streamed(device.clone());
        assert_eq!(b.name(), "Ours (streamed)");
        let via_trait = b.decode(ModelId::Qwen7B, 8, 1024).unwrap();
        let direct = measure_decode_streaming_with(
            &device,
            ModelId::Qwen7B,
            8,
            1024,
            DispatchMode::Overlapped,
        )
        .unwrap();
        assert_eq!(via_trait.step_secs, direct.step_secs);
        assert_eq!(via_trait.tokens_per_sec, direct.tokens_per_sec);
        assert_eq!(via_trait.engine_secs, direct.engine_secs);
        // The streaming placement collapses the 7B's 3 resident sessions
        // on the 8 Gen 2 to a single one, and fits() reports the same.
        assert_eq!(via_trait.sessions, 1);
        let fit = b.fits(ModelId::Qwen7B, 8, 1024).unwrap();
        assert_eq!(fit.sessions, 1);
        let resident = NpuSimBackend::overlapped(device);
        assert_eq!(resident.fits(ModelId::Qwen7B, 8, 1024).unwrap().sessions, 3);
    }

    #[test]
    fn session_cap_gates_resident_but_streaming_still_runs() {
        // Qwen-7B at batch 8 / ctx 8192 on the 8 Gen 2: the resident plan
        // needs more sessions than the rpcmem driver exposes, so both the
        // probe and the measurement reject it — while the streaming
        // placement stays under the cap and decodes.
        let device = DeviceProfile::v73();
        let resident = NpuSimBackend::overlapped(device.clone());
        let streamed = NpuSimBackend::streamed(device.clone());
        let fit_err = resident.fits(ModelId::Qwen7B, 8, 8192).unwrap_err();
        assert!(matches!(fit_err, SimError::Unsupported { .. }), "{fit_err}");
        assert!(resident.decode(ModelId::Qwen7B, 8, 8192).is_err());
        let fit = streamed.fits(ModelId::Qwen7B, 8, 8192).unwrap();
        assert!(fit.sessions <= device.max_sessions, "{fit:?}");
        let point = streamed.decode(ModelId::Qwen7B, 8, 8192).unwrap();
        assert_eq!(point.sessions, fit.sessions);
        assert!(point.tokens_per_sec > 0.2, "{}", point.tokens_per_sec);
        // The cap is inclusive: the resident 7B batch-16 plan lands on
        // exactly max_sessions and must keep running.
        let at_cap = NpuSimBackend::new(device.clone());
        let fit = at_cap.fits(ModelId::Qwen7B, 16, 1024).unwrap();
        assert_eq!(fit.sessions, device.max_sessions);
        assert!(at_cap.decode(ModelId::Qwen7B, 16, 1024).is_ok());
    }
}
