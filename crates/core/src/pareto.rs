//! Accuracy-vs-latency joins for the test-time-scaling trade-off
//! (Figure 10).
//!
//! Combines the calibrated accuracy of a scaling method at budget `N`
//! (from `ttscale`) with the measured per-token decode latency at batch
//! `N` (from the pipeline), including the context growth that test-time
//! scaling causes and the reward-model scoring overhead (the paper notes
//! its cost axis "accounts for the increased context length introduced by
//! TTS").

use edgellm::config::ModelId;
use hexsim::prelude::*;
use mathsynth::mathgen::{DatasetKind, TaskGenerator};
use serde::{Deserialize, Serialize};
use ttscale::beam_search::{self, BeamSearchConfig};
use ttscale::best_of_n;
use ttscale::calib::mean_completion_tokens;
use ttscale::policy::CalibratedPolicy;
use ttscale::verifier::{SimOrm, SimPrm};

use crate::pipeline::{measure_decode, measure_prefill};
use crate::thermal::sustained_decode_curve;

/// Scaling method of a Pareto point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Conventional single-sample decoding.
    Base,
    /// Best-of-N with the outcome reward model.
    BestOfN,
    /// Step-level beam search with the process reward model.
    BeamSearch,
}

impl Method {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Method::Base => "base",
            Method::BestOfN => "Best-of-N",
            Method::BeamSearch => "Beam Search",
        }
    }
}

/// One point of the Figure 10 trade-off space.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Series label as in the paper's legend ("Q1.5-TTS", "Q3-base", ...).
    pub series: String,
    /// Method.
    pub method: Method,
    /// Dataset label.
    pub dataset: String,
    /// Device label.
    pub device: String,
    /// Generation budget (decode batch).
    pub budget: usize,
    /// Task accuracy in percent.
    pub accuracy_pct: f64,
    /// Average per-token decode latency in seconds (the cost axis).
    pub per_token_latency_s: f64,
}

/// Number of tasks evaluated per accuracy point.
pub const TASKS_PER_POINT: usize = 400;
/// Prompt length assumed for the latency coupling.
pub const PROMPT_LEN: usize = 256;

/// Decode latency per token at a batch size, with TTS context growth.
fn per_token_latency(
    device: &DeviceProfile,
    model: ModelId,
    dataset: DatasetKind,
    batch: usize,
) -> SimResult<f64> {
    // Mid-generation context: prompt plus half the mean completion per
    // sample (every sample lengthens its own context).
    let ctx = PROMPT_LEN + mean_completion_tokens(dataset) / 2;
    let point = measure_decode(device, model, batch, ctx)?;
    Ok(point.step_secs)
}

/// Reward-model scoring overhead per generated token: the PRM/ORM (a
/// Skywork-1.5B-class scorer) prefills every candidate's new tokens, so the
/// amortized per-token overhead is `batch / prm_prefill_tps`.
fn scorer_overhead_per_token(device: &DeviceProfile, batch: usize) -> SimResult<f64> {
    let prm = measure_prefill(device, ModelId::Qwen1_5B, 256)?;
    Ok(batch as f64 / prm.tokens_per_sec)
}

/// Computes the Figure 10 points for one (device, dataset) panel.
///
/// TTS series: Q1.5/Q3/L1/L3 at budgets {1, 2, 4, 8, 16}; base series:
/// Q3/L3/Q7 at batch 1. Models that do not fit the device's session VA
/// (e.g. Qwen-7B on a 4 GiB session) are estimated through the
/// multi-session extension (Section 8), i.e. with the VA gate lifted.
pub fn pareto_panel(
    device: &DeviceProfile,
    dataset: DatasetKind,
    method: Method,
    seed: u64,
) -> Vec<ParetoPoint> {
    let budgets = [1usize, 2, 4, 8, 16];
    let tts_models = [
        ModelId::Qwen1_5B,
        ModelId::Qwen3B,
        ModelId::Llama1B,
        ModelId::Llama3B,
    ];
    let base_models = [ModelId::Qwen3B, ModelId::Llama3B, ModelId::Qwen7B];
    let mut tasks = TaskGenerator::new(dataset, seed);
    let tasks = tasks.take(TASKS_PER_POINT);
    let mut out = Vec::new();

    for model in tts_models {
        let policy = CalibratedPolicy::new(model, dataset);
        for &budget in &budgets {
            let accuracy = match method {
                Method::BestOfN | Method::Base => best_of_n::accuracy_over_tasks(
                    &policy,
                    &SimOrm::default(),
                    &tasks,
                    budget,
                    seed,
                ),
                Method::BeamSearch => {
                    let cfg = beam_width_for_budget(budget);
                    beam_search::accuracy_over_tasks(&policy, &SimPrm::default(), &tasks, cfg, seed)
                }
            };
            let Ok(mut latency) = per_token_latency(device, model, dataset, budget) else {
                continue; // Model does not fit this device.
            };
            if budget > 1 {
                if let Ok(overhead) = scorer_overhead_per_token(device, budget) {
                    latency += overhead;
                }
            }
            out.push(ParetoPoint {
                series: format!("{}-TTS", model.label()),
                method,
                dataset: dataset.label().to_string(),
                device: device.arch.soc_label().to_string(),
                budget,
                accuracy_pct: accuracy,
                per_token_latency_s: latency,
            });
        }
    }

    for model in base_models {
        let policy = CalibratedPolicy::new(model, dataset);
        let accuracy = best_of_n::accuracy_over_tasks(&policy, &SimOrm::default(), &tasks, 1, seed);
        // Q7 exceeds a single session's VA space: estimate through the
        // multi-session extension by lifting the gate.
        let mut dev = device.clone();
        if model == ModelId::Qwen7B {
            dev.session_va_bytes = 16 * 1024 * 1024 * 1024;
        }
        let Ok(latency) = per_token_latency(&dev, model, dataset, 1) else {
            continue;
        };
        out.push(ParetoPoint {
            series: format!("{}-base", model.label()),
            method: Method::Base,
            dataset: dataset.label().to_string(),
            device: device.arch.soc_label().to_string(),
            budget: 1,
            accuracy_pct: accuracy,
            per_token_latency_s: latency,
        });
    }
    out
}

/// One cell of the tokens/sec/watt efficiency surface: the same
/// (device, model, batch) decode priced at both DVFS operating points.
///
/// Burst is the paper's snapshot; sustained is what the die delivers once
/// the thermal capacitance has filled (see [`crate::thermal`]). The
/// per-watt axis is what battery-bound test-time scaling actually buys.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Device SoC label.
    pub device: String,
    /// Model label.
    pub model: String,
    /// Decode batch size (generation budget).
    pub batch: usize,
    /// Tokens/sec at burst clocks.
    pub burst_tokens_per_sec: f64,
    /// Tokens/sec at the sustained operating point.
    pub sustained_tokens_per_sec: f64,
    /// Tokens/sec/watt at burst clocks.
    pub burst_tokens_per_sec_per_watt: f64,
    /// Tokens/sec/watt at the sustained operating point.
    pub sustained_tokens_per_sec_per_watt: f64,
}

/// Computes the burst-vs-sustained efficiency surface for one model over
/// a batch sweep. Batches that do not fit the device are skipped.
pub fn efficiency_panel(
    device: &DeviceProfile,
    model: ModelId,
    batches: &[usize],
    ctx_len: usize,
) -> Vec<EfficiencyPoint> {
    batches
        .iter()
        .filter_map(|&batch| {
            // Duration 0: operating points only, no trajectory.
            let curve = sustained_decode_curve(device, model, batch, ctx_len, 0.0).ok()?;
            Some(EfficiencyPoint {
                device: curve.device,
                model: curve.model,
                batch,
                burst_tokens_per_sec: curve.burst_tokens_per_sec,
                sustained_tokens_per_sec: curve.sustained_tokens_per_sec,
                burst_tokens_per_sec_per_watt: curve.burst_tokens_per_joule,
                sustained_tokens_per_sec_per_watt: curve.sustained_tokens_per_joule,
            })
        })
        .collect()
}

/// One cell of the speculative-decoding efficiency surface: the verify
/// batch of a draft-length-`k` pipeline priced like any other decode
/// batch, with the throughput axes discounted to *accepted* tokens.
///
/// A verify step runs `k + 1` rows but commits only the expected
/// `1 + sum_{i=1..k} alpha^i` tokens per round (each drafted position
/// survives with probability `alpha`, plus the verifier's own bonus
/// token), so accepted-tokens/joule sits beside the raw tokens/joule of
/// [`EfficiencyPoint`] on the same per-watt axis.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpecEfficiencyPoint {
    /// Device SoC label.
    pub device: String,
    /// Model label (the verify/target model).
    pub model: String,
    /// Draft length: the verify batch is `draft_len + 1` rows.
    pub draft_len: usize,
    /// Per-token acceptance rate the discount assumes.
    pub acceptance: f64,
    /// Expected committed tokens per verify round.
    pub committed_per_round: f64,
    /// Raw verify-batch tokens/sec at the sustained operating point.
    pub sustained_tokens_per_sec: f64,
    /// Accepted tokens/sec at the sustained operating point.
    pub sustained_accepted_per_sec: f64,
    /// Accepted tokens/joule at burst clocks.
    pub burst_accepted_per_joule: f64,
    /// Accepted tokens/joule at the sustained operating point.
    pub sustained_accepted_per_joule: f64,
}

/// Expected committed tokens per verify round at draft length `k` and
/// per-token acceptance `alpha`: `1 + sum_{i=1..k} alpha^i` (position
/// `i` commits only if all `i` draft tokens before it were accepted).
pub fn expected_committed(draft_len: usize, acceptance: f64) -> f64 {
    let mut committed = 1.0;
    let mut run = 1.0;
    for _ in 0..draft_len {
        run *= acceptance;
        committed += run;
    }
    committed
}

/// Computes the spec-decode operating points for one target model over a
/// draft-length sweep, so accepted-tokens/joule appears beside the plain
/// tokens/joule of [`efficiency_panel`]. Draft lengths whose verify batch
/// does not fit the device are skipped.
pub fn spec_efficiency_panel(
    device: &DeviceProfile,
    model: ModelId,
    ks: &[usize],
    ctx_len: usize,
    acceptance: f64,
) -> Vec<SpecEfficiencyPoint> {
    ks.iter()
        .filter_map(|&k| {
            let curve = sustained_decode_curve(device, model, k + 1, ctx_len, 0.0).ok()?;
            let committed = expected_committed(k, acceptance);
            // The verify batch prices k+1 rows; only `committed` of them
            // become output tokens, so every throughput axis shrinks by
            // committed / (k + 1).
            let discount = committed / (k + 1) as f64;
            Some(SpecEfficiencyPoint {
                device: curve.device,
                model: curve.model,
                draft_len: k,
                acceptance,
                committed_per_round: committed,
                sustained_tokens_per_sec: curve.sustained_tokens_per_sec,
                sustained_accepted_per_sec: curve.sustained_tokens_per_sec * discount,
                burst_accepted_per_joule: curve.burst_tokens_per_joule * discount,
                sustained_accepted_per_joule: curve.sustained_tokens_per_joule * discount,
            })
        })
        .collect()
}

/// Maps a generation budget to a beam configuration (width x expansion =
/// budget, following the common W = E = sqrt(N) split).
pub fn beam_width_for_budget(budget: usize) -> BeamSearchConfig {
    match budget {
        1 => BeamSearchConfig {
            width: 1,
            expansion: 1,
        },
        2 => BeamSearchConfig {
            width: 1,
            expansion: 2,
        },
        4 => BeamSearchConfig {
            width: 2,
            expansion: 2,
        },
        8 => BeamSearchConfig {
            width: 2,
            expansion: 4,
        },
        16 => BeamSearchConfig {
            width: 4,
            expansion: 4,
        },
        n => {
            let w = (n as f64).sqrt().floor().max(1.0) as usize;
            BeamSearchConfig {
                width: w,
                expansion: n.div_ceil(w),
            }
        }
    }
}

/// Returns `true` if `candidate` dominates `other` (no worse on both axes,
/// strictly better on one).
pub fn dominates(candidate: &ParetoPoint, other: &ParetoPoint) -> bool {
    let acc_ge = candidate.accuracy_pct >= other.accuracy_pct;
    let lat_le = candidate.per_token_latency_s <= other.per_token_latency_s;
    let strict = candidate.accuracy_pct > other.accuracy_pct
        || candidate.per_token_latency_s < other.per_token_latency_s;
    acc_ge && lat_le && strict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(method: Method) -> Vec<ParetoPoint> {
        pareto_panel(&DeviceProfile::v75(), DatasetKind::Math500Like, method, 42)
    }

    #[test]
    fn tts_beats_larger_base_models_figure_10() {
        // The paper's headline: Qwen2.5-1.5B + TTS surpasses the Qwen2.5-3B
        // baseline accuracy at comparable or lower latency.
        let points = panel(Method::BestOfN);
        let q15_best = points
            .iter()
            .filter(|p| p.series == "Q1.5-TTS")
            .max_by(|a, b| a.accuracy_pct.partial_cmp(&b.accuracy_pct).unwrap())
            .unwrap();
        let q3_base = points.iter().find(|p| p.series == "Q3-base").unwrap();
        assert!(
            q15_best.accuracy_pct > q3_base.accuracy_pct,
            "Q1.5-TTS best {} vs Q3-base {}",
            q15_best.accuracy_pct,
            q3_base.accuracy_pct
        );
    }

    #[test]
    fn q3_tts_approaches_q7_base() {
        let points = panel(Method::BestOfN);
        let q3_best = points
            .iter()
            .filter(|p| p.series == "Q3-TTS")
            .map(|p| p.accuracy_pct)
            .fold(0.0f64, f64::max);
        let q7_base = points.iter().find(|p| p.series == "Q7-base").unwrap();
        assert!(
            q3_best > q7_base.accuracy_pct - 6.0,
            "Q3-TTS best {} vs Q7-base {}",
            q3_best,
            q7_base.accuracy_pct
        );
    }

    #[test]
    fn latency_grows_with_budget_but_sublinearly() {
        let points = panel(Method::BestOfN);
        let q15: Vec<&ParetoPoint> = points.iter().filter(|p| p.series == "Q1.5-TTS").collect();
        let lat1 = q15
            .iter()
            .find(|p| p.budget == 1)
            .unwrap()
            .per_token_latency_s;
        let lat16 = q15
            .iter()
            .find(|p| p.budget == 16)
            .unwrap()
            .per_token_latency_s;
        assert!(lat16 > lat1);
        assert!(
            lat16 < lat1 * 8.0,
            "batch-16 latency {lat16} should be far below 16x batch-1 {lat1}"
        );
    }

    #[test]
    fn latencies_in_paper_axis_range() {
        // Figure 10's x-axis spans roughly 0.05-0.4 s/token.
        let points = panel(Method::BestOfN);
        for p in &points {
            assert!(
                (0.01..0.8).contains(&p.per_token_latency_s),
                "{}@{}: {} s",
                p.series,
                p.budget,
                p.per_token_latency_s
            );
        }
    }

    #[test]
    fn beam_search_panel_produces_points() {
        let points = panel(Method::BeamSearch);
        assert!(points.iter().any(|p| p.series == "Q1.5-TTS"));
        // Beam accuracy at budget 16 beats budget 1.
        let q15: Vec<&ParetoPoint> = points.iter().filter(|p| p.series == "Q1.5-TTS").collect();
        let a1 = q15.iter().find(|p| p.budget == 1).unwrap().accuracy_pct;
        let a16 = q15.iter().find(|p| p.budget == 16).unwrap().accuracy_pct;
        assert!(a16 > a1 + 8.0, "beam a1={a1} a16={a16}");
    }

    #[test]
    fn efficiency_surface_sustained_point_is_slower_but_bounded() {
        use edgellm::config::ModelId;
        let d = DeviceProfile::v75();
        let panel = efficiency_panel(&d, ModelId::Qwen1_5B, &[1, 8, 16], 1024);
        assert_eq!(panel.len(), 3);
        for p in &panel {
            assert!(
                p.sustained_tokens_per_sec < p.burst_tokens_per_sec,
                "batch {}",
                p.batch
            );
            // Fixed switch costs mean degradation never exceeds the clock
            // ratio itself.
            assert!(
                p.sustained_tokens_per_sec
                    >= p.burst_tokens_per_sec * d.sustained_clock_mult * 0.999,
                "batch {}: sustained {} burst {}",
                p.batch,
                p.sustained_tokens_per_sec,
                p.burst_tokens_per_sec
            );
            assert!(p.burst_tokens_per_sec_per_watt > 0.0);
            assert!(p.sustained_tokens_per_sec_per_watt > 0.0);
        }
        // Batching is the efficiency lever on both operating points.
        assert!(
            panel[1].burst_tokens_per_sec_per_watt > 2.0 * panel[0].burst_tokens_per_sec_per_watt
        );
        assert!(
            panel[1].sustained_tokens_per_sec_per_watt
                > 2.0 * panel[0].sustained_tokens_per_sec_per_watt
        );
    }

    #[test]
    fn spec_efficiency_sits_beside_the_plain_panel() {
        use edgellm::config::ModelId;
        let d = DeviceProfile::v75();
        let plain = efficiency_panel(&d, ModelId::Qwen1_5B, &[1], 1024);
        let spec = spec_efficiency_panel(&d, ModelId::Qwen1_5B, &[1, 2, 3, 4], 1024, 0.7);
        assert_eq!(spec.len(), 4);
        for p in &spec {
            // Committing fewer tokens than rows is a strict discount.
            assert!(
                p.sustained_accepted_per_sec < p.sustained_tokens_per_sec,
                "k={}",
                p.draft_len
            );
            assert!(p.burst_accepted_per_joule > 0.0);
            assert!(p.sustained_accepted_per_joule > 0.0);
            // Closed form: 1 + sum alpha^i.
            let expect = expected_committed(p.draft_len, 0.7);
            assert!((p.committed_per_round - expect).abs() < 1e-12);
        }
        // At a healthy acceptance the verify batch amortizes like any
        // other batch: accepted-tokens/joule at k=3 beats plain batch-1
        // decode even after the committed/(k+1) discount.
        let k3 = spec.iter().find(|p| p.draft_len == 3).unwrap();
        assert!(
            k3.sustained_accepted_per_joule > plain[0].sustained_tokens_per_sec_per_watt,
            "spec k=3 {} vs plain batch-1 {}",
            k3.sustained_accepted_per_joule,
            plain[0].sustained_tokens_per_sec_per_watt
        );
        // Zero acceptance degenerates to plain decode efficiency divided
        // by the wasted rows.
        let cold = spec_efficiency_panel(&d, ModelId::Qwen1_5B, &[3], 1024, 0.0);
        assert!((cold[0].committed_per_round - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominates_is_a_strict_partial_order() {
        let mk = |acc, lat| ParetoPoint {
            series: "x".into(),
            method: Method::Base,
            dataset: "d".into(),
            device: "v".into(),
            budget: 1,
            accuracy_pct: acc,
            per_token_latency_s: lat,
        };
        let a = mk(50.0, 0.1);
        let b = mk(40.0, 0.2);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a));
    }

    #[test]
    fn budget_to_beam_config() {
        assert_eq!(beam_width_for_budget(16).budget(), 16);
        assert_eq!(beam_width_for_budget(4).budget(), 4);
        assert!(beam_width_for_budget(12).budget() >= 12);
    }
}
