//! Cost-side speculative decoding at paper scale (Section 9's
//! generate-then-verify extension, priced on the calibrated cost model).
//!
//! The functional tier of the pipeline lives in `ttscale::spec_decode`:
//! tiny models, bit-faithful logits, output equivalence against plain
//! greedy decoding. This module prices the *same* pipeline shape at paper
//! scale — a Qwen2.5-0.5B-class draft transformer proposing chunks for a
//! Qwen2.5-1.5B target, both [`Model`]s co-resident in one
//! [`NpuContext`] — and reports accepted-tokens/sec under three dispatch
//! regimes:
//!
//! - **plain**: conventional one-token-per-step decode of the target;
//! - **spec-serial**: verify pass + accept loop + `k` draft steps, fully
//!   sequential;
//! - **spec-overlapped**: the draft round's stage breakdown rides the
//!   verify step's `draft_cpu_secs`/`draft_npu_secs` lanes
//!   ([`edgellm::overlap::lane::DRAFT`]), so draft host work hides behind
//!   the target's verify kernels on the timeline critical path and only
//!   the draft's NPU share serializes.
//!
//! Acceptance is replayed from a seeded [`AcceptanceTrace`], so CI gates
//! compare policies (fixed-`k` vs the acceptance-adaptive
//! [`DraftLenController`]) on identical accept/reject streams. The
//! verify batch is bounded by [`crate::backend::Backend::fits`] through
//! [`max_verify_draft_len`]: `k+1` logit rows must map onto the device
//! before the controller is allowed to grow there.

use edgellm::config::ModelId;
use edgellm::kv_cache::KvCache;
use edgellm::model::{DecodeOutput, Model};
use edgellm::overlap::steady_state_step_secs;
use hexsim::prelude::*;
use htpops::gemm::DequantVariant;
use serde::{Deserialize, Serialize};
use ttscale::spec_decode::{
    charge_accept_loop, draft_round_lanes, AcceptanceTrace, DraftLenController,
};

use crate::backend::{Backend, NpuSimBackend};

/// One paper-scale speculative-decoding measurement: a draft/target pair
/// on one device, decoded for a fixed number of verify rounds against a
/// seeded acceptance trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpecDecodePoint {
    /// Device SoC label.
    pub device: String,
    /// Target model label.
    pub target: String,
    /// Draft model label.
    pub draft: String,
    /// Context length at measurement time.
    pub ctx_len: usize,
    /// Verify rounds simulated.
    pub rounds: usize,
    /// Mean draft length over the rounds (constant for a fixed
    /// controller; the adaptive controller's trajectory average here).
    pub mean_draft_len: f64,
    /// Mean drafted tokens accepted per round (the bonus token from the
    /// final verify position is *not* counted here).
    pub mean_accepted: f64,
    /// Tokens committed over all rounds (accepted + 1 per round).
    pub committed_tokens: usize,
    /// Plain target decode, serial dispatch, tokens/second.
    pub plain_serial_tps: f64,
    /// Plain target decode, overlap-aware dispatch, tokens/second.
    pub plain_overlapped_tps: f64,
    /// Speculative decode with every stage sequential, committed
    /// (accepted) tokens/second.
    pub spec_serial_tps: f64,
    /// Speculative decode with the draft round overlapped behind the
    /// verify kernels, committed (accepted) tokens/second.
    pub spec_overlapped_tps: f64,
    /// Draft step wall seconds over target step wall seconds — the cost
    /// ratio that makes speculation worthwhile at all.
    pub draft_step_frac: f64,
}

/// Largest draft length `k <= cap` whose `k+1`-row verify batch the
/// device can map for `target` at `ctx_len`, per the backend's
/// [`Backend::fits`] probe (the verify pass scores `k+1` logit rows in
/// one batched forward, so its working set grows with `k` exactly like a
/// decode batch). Returns at least 1: a device that cannot verify a
/// single drafted token cannot speculate at all, and the caller sees that
/// as the measurement erroring instead.
pub fn max_verify_draft_len(
    device: &DeviceProfile,
    target: ModelId,
    ctx_len: usize,
    cap: usize,
) -> usize {
    let backend = NpuSimBackend::new(device.clone());
    (2..=cap)
        .rev()
        .find(|&k| backend.fits(target, k + 1, ctx_len).is_ok())
        .unwrap_or(1)
}

/// Prices the two-model speculative pipeline on `device`: builds the
/// target and draft models co-resident in one cost-only [`NpuContext`],
/// measures the verify pass per draft length and the draft's per-step
/// cost at `ctx_len`, then replays `rounds` accept/reject rounds from
/// `trace` under `ctrl`'s draft-length policy.
///
/// Errors when the pair does not fit the device's session VA space
/// (both models and both KV caches share one session here — paper-scale
/// sharding of the *pair* is out of scope).
pub fn measure_spec_decode(
    device: &DeviceProfile,
    target_id: ModelId,
    draft_id: ModelId,
    ctx_len: usize,
    ctrl: &mut DraftLenController,
    trace: &mut AcceptanceTrace,
    rounds: usize,
) -> SimResult<SpecDecodePoint> {
    assert!(rounds > 0, "at least one verify round");
    let max_k = ctrl.max_draft_len();
    let mut ctx = NpuContext::new(device.clone(), ExecMode::CostOnly);
    let target = Model::new(&mut ctx, target_id, DequantVariant::CoalescedLut, 1)?;
    let draft = Model::new(&mut ctx, draft_id, DequantVariant::CoalescedLut, 2)?;
    let budget = ctx_len + max_k + 2;
    let mut tcache = KvCache::new(&mut ctx, &target.cfg, 1, budget)?;
    let mut dcache = KvCache::new(&mut ctx, &draft.cfg, 1, budget)?;
    tcache.fast_fill(0, ctx_len);
    dcache.fast_fill(0, ctx_len);

    // Plain decode baseline: one target step at the same context.
    let plain = target.decode_step(&mut ctx, &mut tcache, &[0])?;
    tcache.truncate_seq(0, ctx_len);
    let plain_serial_secs = plain.cost.wall_secs();
    let plain_overlapped_secs = steady_state_step_secs(&plain.stages);

    // Draft per-step cost at the same context (the draft's context trails
    // the target's by at most one round — the difference is noise at
    // ctx_len scale, and a fixed measurement keeps the replay exact).
    let dstep = draft.decode_step(&mut ctx, &mut dcache, &[0])?;
    dcache.truncate_seq(0, ctx_len);
    let (draft_cpu, draft_npu) = draft_round_lanes(std::slice::from_ref(&dstep.stages));
    let draft_step_secs = dstep.cost.wall_secs();

    // Verify pass per draft length, measured lazily: one batched target
    // forward over the k+1 chunk rows (chunked prefill at ctx_len).
    let mut verify: Vec<Option<DecodeOutput>> = (0..max_k).map(|_| None).collect();
    let vocab = target.cfg.vocab;

    let mut committed = 0usize;
    let mut accepted_total = 0usize;
    let mut k_total = 0usize;
    let mut serial_secs = 0.0;
    let mut overlapped_secs = 0.0;
    for _ in 0..rounds {
        let k = ctrl.draft_len();
        debug_assert!(k >= 1 && k <= max_k);
        if verify[k - 1].is_none() {
            let out = target.prefill(&mut ctx, &mut tcache, 0, &vec![0u32; k + 1])?;
            tcache.truncate_seq(0, ctx_len);
            verify[k - 1] = Some(out);
        }
        let v = verify[k - 1].as_ref().unwrap();
        let accept_secs = charge_accept_loop(&mut ctx, k + 1, vocab);

        serial_secs += v.cost.wall_secs() + accept_secs + k as f64 * draft_step_secs;
        // Overlapped: the next speculation round rides the verify step's
        // draft lanes; steady state of the combined graph is the period.
        let mut combined = v.stages.clone();
        combined.cpu_head_secs += accept_secs;
        combined.draft_cpu_secs = k as f64 * draft_cpu;
        combined.draft_npu_secs = k as f64 * draft_npu;
        overlapped_secs += steady_state_step_secs(&combined);

        let accepted = trace.round_accepts(k);
        ctrl.record_round(k, accepted);
        committed += accepted + 1;
        accepted_total += accepted;
        k_total += k;
    }

    Ok(SpecDecodePoint {
        device: device.arch.soc_label().to_string(),
        target: target.cfg.id.label().to_string(),
        draft: draft.cfg.id.label().to_string(),
        ctx_len,
        rounds,
        mean_draft_len: k_total as f64 / rounds as f64,
        mean_accepted: accepted_total as f64 / rounds as f64,
        committed_tokens: committed,
        plain_serial_tps: 1.0 / plain_serial_secs,
        plain_overlapped_tps: 1.0 / plain_overlapped_secs,
        spec_serial_tps: committed as f64 / serial_secs,
        spec_overlapped_tps: committed as f64 / overlapped_secs,
        draft_step_frac: draft_step_secs / plain_serial_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_point(device: &DeviceProfile, k: usize, alpha: f64) -> SpecDecodePoint {
        let mut ctrl = DraftLenController::fixed(k);
        let mut trace = AcceptanceTrace::seeded(7, alpha);
        measure_spec_decode(
            device,
            ModelId::Qwen1_5B,
            ModelId::Qwen0_5B,
            1024,
            &mut ctrl,
            &mut trace,
            32,
        )
        .unwrap()
    }

    #[test]
    fn draft_steps_are_a_fraction_of_target_steps() {
        let p = fixed_point(&DeviceProfile::v75(), 3, 0.7);
        // The 0.5B draft must be meaningfully cheaper per step than the
        // 1.5B target, or speculation can never pay.
        assert!(
            (0.1..0.7).contains(&p.draft_step_frac),
            "draft/target step ratio {}",
            p.draft_step_frac
        );
        assert_eq!(p.mean_draft_len, 3.0);
        assert_eq!(p.target, "Q1.5");
        assert_eq!(p.draft, "Q0.5");
    }

    #[test]
    fn overlap_hides_draft_work_but_never_invents_time() {
        let p = fixed_point(&DeviceProfile::v75(), 3, 0.7);
        // Overlapped speculation strictly beats its own serial schedule
        // (the draft's host share hides behind verify kernels)...
        assert!(
            p.spec_overlapped_tps > p.spec_serial_tps,
            "overlapped {} vs serial {}",
            p.spec_overlapped_tps,
            p.spec_serial_tps
        );
        // ...and the plain baseline's critical path never exceeds its
        // serial stage sum (the timeline's clamp).
        assert!(p.plain_overlapped_tps >= p.plain_serial_tps);
    }

    #[test]
    fn good_acceptance_beats_plain_decode_on_every_generation() {
        for device in DeviceProfile::all() {
            let p = fixed_point(&device, 3, 0.7);
            assert!(
                p.spec_overlapped_tps > p.plain_serial_tps,
                "{}: spec-overlapped {} vs plain {}",
                p.device,
                p.spec_overlapped_tps,
                p.plain_serial_tps
            );
            // At alpha=0.7, k=3: committed/round ~ 1 + 0.7 + 0.49 + 0.343.
            assert!(
                (0.8..2.2).contains(&p.mean_accepted),
                "{}: mean accepted {}",
                p.device,
                p.mean_accepted
            );
        }
    }

    #[test]
    fn hopeless_acceptance_cannot_beat_plain_decode() {
        // alpha=0: every round commits exactly one token but still pays
        // the k draft steps and the wider verify pass.
        let p = fixed_point(&DeviceProfile::v75(), 3, 0.0);
        assert_eq!(p.mean_accepted, 0.0);
        assert!(p.spec_serial_tps < p.plain_serial_tps);
        assert!(p.spec_overlapped_tps < p.plain_serial_tps);
    }

    #[test]
    fn fits_probe_bounds_the_verify_batch() {
        let k = max_verify_draft_len(&DeviceProfile::v75(), ModelId::Qwen1_5B, 1024, 8);
        assert_eq!(k, 8, "the 1.5B verify batch fits at every k <= 8");
        // A deployment that cannot even map batch 3 collapses to k=1.
        let k73_7b = max_verify_draft_len(&DeviceProfile::v73(), ModelId::Qwen7B, 32768, 8);
        assert!(k73_7b >= 1);
    }

    #[test]
    fn adaptive_controller_walks_down_on_a_cold_trace() {
        let max_k = max_verify_draft_len(&DeviceProfile::v75(), ModelId::Qwen1_5B, 1024, 6);
        let mut ctrl = DraftLenController::adaptive(3, 1, max_k);
        let mut trace = AcceptanceTrace::seeded(11, 0.1);
        let p = measure_spec_decode(
            &DeviceProfile::v75(),
            ModelId::Qwen1_5B,
            ModelId::Qwen0_5B,
            1024,
            &mut ctrl,
            &mut trace,
            48,
        )
        .unwrap();
        // The windowed estimate shrinks k toward 1, so the mean draft
        // length ends well below the fixed starting point.
        assert!(p.mean_draft_len < 3.0, "mean k {}", p.mean_draft_len);
        assert_eq!(ctrl.draft_len(), 1, "cold trace pins k at the floor");
    }
}
