//! `npuscale` — the end-to-end LLM inference system for NPU test-time
//! scaling: the paper's primary contribution, assembled from the substrate
//! crates.
//!
//! - [`session`] — the FastRPC/rpcmem runtime protocol: shared-memory
//!   command ring with explicit cache maintenance (one-way coherence), a
//!   polling NPU dispatcher, and the multi-session extension the paper
//!   sketches for the 32-bit VA limit.
//! - [`pipeline`] — decode/prefill measurement pipelines over the full
//!   model forward (Figures 11, 13, 17).
//! - [`power`] — activity-based power/energy accounting (Figure 12).
//! - [`memory`] — dmabuf/CPU-RSS/CPU-utilization accounting (Figure 16).
//! - [`baselines`] — analytic llama.cpp-OpenCL (Adreno GPU) and QNN-FP16
//!   roofline baselines (Figure 13).
//! - [`pareto`] — accuracy-vs-latency joins for the test-time-scaling
//!   trade-off (Figure 10).
//! - [`experiments`] — one typed row-generator per paper table/figure;
//!   the bench harness prints exactly these rows.

pub mod baselines;
pub mod experiments;
pub mod memory;
pub mod pareto;
pub mod pipeline;
pub mod power;
pub mod session;

pub use pipeline::{DecodePoint, PrefillPoint};
pub use power::PowerModel;
pub use session::{NpuSession, SessionConfig};
