//! `npuscale` — the end-to-end LLM inference system for NPU test-time
//! scaling: the paper's primary contribution, assembled from the substrate
//! crates.
//!
//! - [`backend`] — the [`backend::Backend`] trait every execution engine
//!   implements (`fits`/`decode`/`prefill`), with the simulated NPU
//!   runtime and the GPU/QNN/CPU rooflines behind one
//!   `&[Box<dyn Backend>]` interface.
//! - [`session`] — the FastRPC/rpcmem runtime protocol: shared-memory
//!   command ring with explicit cache maintenance (one-way coherence), a
//!   polling NPU dispatcher, and the paper's Section 8 multi-session
//!   sharding: [`session::MultiSession`] VA placement lowered to an
//!   executable [`session::ShardPlan`]. Re-exports the
//!   continuous-batching [`session::DecodeSession`] decode API.
//! - [`pipeline`] — decode/prefill measurement pipelines over the full
//!   model forward (Figures 11, 13, 17), including the sharded variants
//!   that walk a [`session::ShardPlan`] across sessions.
//! - [`power`] — activity-based power/energy accounting (Figure 12).
//! - [`memory`] — dmabuf/CPU-RSS/CPU-utilization accounting (Figure 16).
//! - [`baselines`] — analytic llama.cpp-OpenCL (Adreno GPU), QNN-FP16 and
//!   mobile-CPU roofline constants (Figure 13); execute them through
//!   [`backend`].
//! - [`pareto`] — accuracy-vs-latency joins for the test-time-scaling
//!   trade-off (Figure 10).
//! - [`experiments`] — one typed row-generator per paper table/figure;
//!   the bench harness prints exactly these rows. The system-comparison
//!   generators (Figures 13, 16, 17) consume `&[Box<dyn Backend>]`.
//! - [`serve`] — the fleet-scale serving gateway: seeded Poisson /
//!   trace-replay arrivals, bounded priority admission, chunked prefill
//!   interleaved with continuous-batching decode, SLO metrics
//!   (TTFT/TBT percentiles, goodput) over a heterogeneous device fleet.
//! - [`thermal`] — the power-to-latency feedback loop: lumped RC die
//!   model, burst/sustained DVFS governor with hysteresis, and the
//!   sustained-vs-burst decode curves a phone actually delivers under
//!   multi-minute load.

pub mod backend;
pub mod baselines;
pub mod experiments;
pub mod memory;
pub mod pareto;
pub mod pipeline;
pub mod power;
pub mod serve;
pub mod session;
pub mod spec;
pub mod thermal;

pub use backend::{Backend, FitReport, NpuSimBackend};
pub use pipeline::{DecodePoint, PrefillPoint};
pub use power::PowerModel;
pub use session::{DecodeSession, LayerShard, NpuSession, SessionConfig, ShardPlan};
pub use thermal::{sustained_decode_curve, DvfsGovernor, SustainedCurve, ThermalState};
