//! Activity-based power and energy model (Figure 12).
//!
//! Real power rails are unavailable in simulation; instead, device power is
//! modelled as a base draw plus per-engine increments weighted by busy
//! fraction — the standard mobile-SoC activity model. Constants live in the
//! device profile and are calibrated so the paper's Figure 12 shapes
//! reproduce: the 1.5B model's draw rises with batch (CPU logits work
//! grows) while staying under 5 W, and the 3B model stabilizes around the
//! low-4 W range.

use hexsim::cost::{Engine, NUM_ENGINES};
use hexsim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::pipeline::{engine_utilization, DecodePoint, EngineIdx};

/// One power/energy measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerPoint {
    /// Model label.
    pub model: String,
    /// Decode batch size.
    pub batch: usize,
    /// Average device power in watts during decode.
    pub power_w: f64,
    /// Energy per decode step in joules.
    pub step_energy_j: f64,
    /// Energy per generated token in joules.
    pub energy_per_token_j: f64,
}

/// Activity-based power model for one device.
pub struct PowerModel {
    device: DeviceProfile,
}

impl PowerModel {
    /// Creates the model for a device.
    pub fn new(device: DeviceProfile) -> Self {
        PowerModel { device }
    }

    /// Average power during one decode step.
    pub fn step_power(&self, point: &DecodePoint) -> f64 {
        self.power_from_utilization(&engine_utilization(point))
    }

    /// Power at a given per-engine busy-fraction vector: the base draw
    /// plus per-engine increments weighted by utilization. Each lane is
    /// clamped to `[0, 1]` *before* summing — DMA and `l2fetch` share the
    /// memory-system increment, and clamping their sum instead would
    /// silently drop watts whenever both lanes are busy (the unit hazard
    /// the thermal integrator must never ingest). This is the single
    /// watts formula behind [`PowerModel::step_power`] and the thermal
    /// capacitance integration.
    pub fn power_from_utilization(&self, util: &[f64; NUM_ENGINES]) -> f64 {
        let d = &self.device;
        let lane = |e: Engine| util[e.idx_pub()].clamp(0.0, 1.0);
        let dma = lane(Engine::Dma) + lane(Engine::L2fetch);
        d.base_power_w
            + d.hvx_power_w * lane(Engine::Hvx)
            + d.hmx_power_w * lane(Engine::Hmx)
            + d.dma_power_w * dma
            + d.cpu_core_power_w * 4.0 * lane(Engine::Cpu)
    }

    /// Full power/energy point for a decode measurement.
    pub fn measure(&self, point: &DecodePoint) -> PowerPoint {
        let power_w = self.step_power(point);
        let step_energy_j = power_w * point.step_secs;
        PowerPoint {
            model: point.model.clone(),
            batch: point.batch,
            power_w,
            step_energy_j,
            energy_per_token_j: step_energy_j / point.batch as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::measure_decode;
    use edgellm::config::ModelId;

    fn points(model: ModelId, batches: &[usize]) -> Vec<PowerPoint> {
        let d = DeviceProfile::v75();
        let pm = PowerModel::new(d.clone());
        batches
            .iter()
            .map(|&b| pm.measure(&measure_decode(&d, model, b, 1024).unwrap()))
            .collect()
    }

    #[test]
    fn power_stays_under_5w_figure_12() {
        for p in points(ModelId::Qwen1_5B, &[1, 2, 4, 8, 16]) {
            assert!(
                (2.5..5.0).contains(&p.power_w),
                "batch {}: {} W",
                p.batch,
                p.power_w
            );
        }
    }

    #[test]
    fn qwen15_power_rises_with_batch() {
        let p = points(ModelId::Qwen1_5B, &[1, 16]);
        assert!(
            p[1].power_w > p[0].power_w + 0.3,
            "batch-1 {} W vs batch-16 {} W",
            p[0].power_w,
            p[1].power_w
        );
    }

    #[test]
    fn qwen3b_power_is_stable() {
        let p = points(ModelId::Qwen3B, &[1, 16]);
        let swing = (p[1].power_w - p[0].power_w).abs();
        // Paper: "stabilizes at around 4.3 W". The simulated swing is
        // somewhat larger (no thermal capping in the model) but bounded.
        assert!(swing < 1.4, "3B power swing {swing} W");
        assert!((3.0..4.9).contains(&p[0].power_w), "{} W", p[0].power_w);
    }

    #[test]
    fn per_token_energy_drops_with_batch() {
        let p = points(ModelId::Qwen1_5B, &[1, 8]);
        assert!(
            p[1].energy_per_token_j < p[0].energy_per_token_j / 2.0,
            "batch-1 {} J/tok vs batch-8 {} J/tok",
            p[0].energy_per_token_j,
            p[1].energy_per_token_j
        );
    }

    #[test]
    fn tts_energy_economics_section_7_2_3() {
        // Paper: the 1.5B model decoding at batch 8 spends less energy per
        // generated token than the 3B model at batch 1, while test-time
        // scaling brings its math accuracy to parity — the Pareto argument.
        let d = DeviceProfile::v75();
        let pm = PowerModel::new(d.clone());
        let q15_b8 = pm.measure(&measure_decode(&d, ModelId::Qwen1_5B, 8, 1024).unwrap());
        let q3_b1 = pm.measure(&measure_decode(&d, ModelId::Qwen3B, 1, 1024).unwrap());
        assert!(
            q15_b8.energy_per_token_j < q3_b1.energy_per_token_j / 2.0,
            "1.5B@8 {} J/tok vs 3B@1 {} J/tok",
            q15_b8.energy_per_token_j,
            q3_b1.energy_per_token_j
        );
    }

    #[test]
    fn power_is_monotone_in_every_lane_utilization() {
        // Regression for the per-lane clamp: the old code clamped the *sum*
        // of the DMA and l2fetch utilizations, so once one memory lane was
        // saturated, raising the other added zero watts — power was not
        // monotone in each lane. Per-lane clamping restores strict growth
        // on (0, 1) and flatness only past saturation.
        let pm = PowerModel::new(DeviceProfile::v75());
        for lane in 0..NUM_ENGINES {
            // Saturate every *other* lane so the summed-clamp bug (if it
            // came back) would be exercised for the DMA/l2fetch pair.
            let mut util = [1.0f64; NUM_ENGINES];
            let mut prev = f64::NEG_INFINITY;
            for step in 0..=10 {
                util[lane] = step as f64 / 10.0;
                let p = pm.power_from_utilization(&util);
                assert!(
                    p >= prev,
                    "lane {lane}: power dropped from {prev} to {p} W at util {}",
                    util[lane]
                );
                // Scalar lane carries no power increment; all others must
                // grow strictly while unsaturated.
                if lane != Engine::Scalar.idx_pub() {
                    assert!(
                        p > prev || step == 0,
                        "lane {lane}: power flat at util {}",
                        util[lane]
                    );
                }
                prev = p;
            }
            // Over-saturated inputs clamp instead of inflating watts.
            util[lane] = 2.0;
            assert_eq!(pm.power_from_utilization(&util), prev, "lane {lane}");
            util[lane] = -1.0;
            let floor = pm.power_from_utilization(&util);
            assert!(floor <= prev && floor.is_finite(), "lane {lane}");
        }
    }

    #[test]
    fn both_memory_lanes_saturated_draw_double_the_dma_increment() {
        // The unit hazard fixed in this file: with DMA and l2fetch both
        // pinned at 1.0, the memory system draws *two* increments — the
        // summed `min(1.0)` used to cap it at one.
        let d = DeviceProfile::v75();
        let pm = PowerModel::new(d.clone());
        let mut util = [0.0f64; NUM_ENGINES];
        util[Engine::Dma.idx_pub()] = 1.0;
        util[Engine::L2fetch.idx_pub()] = 1.0;
        let p = pm.power_from_utilization(&util);
        assert!(
            (p - d.base_power_w - 2.0 * d.dma_power_w).abs() < 1e-12,
            "{p} W"
        );
    }

    #[test]
    fn normalized_energy_grows_sublinearly() {
        let p = points(ModelId::Qwen1_5B, &[1, 16]);
        let normalized = p[1].step_energy_j / p[0].step_energy_j;
        // Figure 12: step energy grows a few-fold by batch 16 — far below
        // the 16x of independent decoding.
        assert!(
            (1.5..6.0).contains(&normalized),
            "normalized step energy {normalized}"
        );
    }
}
