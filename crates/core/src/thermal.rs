//! Thermal capacitance, DVFS governor, and sustained-throughput curves.
//!
//! The power model ([`crate::power`]) produces watts; this module closes
//! the loop back into latency. Each device carries a lumped RC thermal
//! model (die + package as one capacitance, case-to-ambient as one
//! resistance) and two DVFS operating points (burst and sustained clocks).
//! Heat flows into the capacitance every simulated decode step; when the
//! die crosses the throttle cap the governor drops to the sustained clock,
//! which scales every engine rate by `sustained_clock_mult` (and dynamic
//! power by its cube) via [`DeviceProfile::at_clock`]. The result is the
//! trajectory a phone actually experiences: burst tokens/sec for the first
//! tens of seconds, then a sustained plateau.
//!
//! Heat flow per step of `dt` seconds at power `P`:
//!
//! ```text
//!   dissipated = dt * (T - T_ambient) / R        (watts out through case)
//!   T += (P * dt - dissipated) / C               (explicit Euler)
//! ```
//!
//! so `P * dt == C * dT + dissipated` holds exactly per step — the energy
//! conservation invariant the property suite checks.

use edgellm::config::ModelId;
use hexsim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::backend::{Backend, NpuSimBackend};
use crate::pipeline::DecodePoint;
use crate::power::PowerModel;

/// Lumped die temperature state for one device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    /// Current die temperature in Celsius.
    pub temp_c: f64,
}

impl ThermalState {
    /// Starts at the device's ambient temperature (a cold phone).
    pub fn ambient(device: &DeviceProfile) -> Self {
        ThermalState {
            temp_c: device.ambient_temp_c,
        }
    }

    /// Advances the die temperature by one explicit-Euler step: `power_w`
    /// flows in for `dt_secs`, heat leaks to ambient through the package
    /// resistance. Returns the joules dissipated to ambient during the
    /// step, so callers can audit energy conservation:
    /// `power_w * dt_secs == capacitance * delta_T + dissipated`.
    ///
    /// The dissipation term uses the *pre-step* temperature, which keeps
    /// the identity above exact (no implicit solve) and is stable for any
    /// `dt_secs` well below the thermal time constant (tens of seconds
    /// for these devices; decode steps are tens of milliseconds).
    pub fn step(&mut self, device: &DeviceProfile, power_w: f64, dt_secs: f64) -> f64 {
        let dissipated =
            dt_secs * (self.temp_c - device.ambient_temp_c) / device.thermal_resistance_c_per_w;
        self.temp_c += (power_w * dt_secs - dissipated) / device.thermal_capacitance_j_per_c;
        dissipated
    }
}

/// Two-point DVFS governor with hysteresis.
///
/// Throttles (drops to `sustained_clock_mult`) when the die reaches the
/// throttle cap, and returns to burst clocks only once the die has cooled
/// `throttle_hysteresis_c` below the cap — the guard band that prevents
/// clock flapping right at the threshold.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvfsGovernor {
    throttled: bool,
}

impl DvfsGovernor {
    /// A governor starting at burst clocks.
    pub fn new() -> Self {
        DvfsGovernor::default()
    }

    /// Updates the throttle decision from the current die temperature.
    pub fn observe(&mut self, device: &DeviceProfile, temp_c: f64) {
        if self.throttled {
            if temp_c < device.throttle_temp_c - device.throttle_hysteresis_c {
                self.throttled = false;
            }
        } else if temp_c >= device.throttle_temp_c {
            self.throttled = true;
        }
    }

    /// Whether the governor is currently at the sustained operating point.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// The clock multiplier the governor currently commands.
    pub fn clock_mult(&self, device: &DeviceProfile) -> f64 {
        if self.throttled {
            device.sustained_clock_mult
        } else {
            1.0
        }
    }
}

/// One decimated sample of a sustained-decode trajectory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TracePoint {
    /// Simulated seconds since decode started.
    pub time_secs: f64,
    /// Die temperature at that time.
    pub temp_c: f64,
    /// Clock multiplier in effect (1.0 burst, `sustained_clock_mult` hot).
    pub clock_mult: f64,
}

/// Burst-vs-sustained decode summary for one (device, model, batch) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SustainedCurve {
    /// Device SoC label.
    pub device: String,
    /// Model label.
    pub model: String,
    /// Decode batch size.
    pub batch: usize,
    /// Context length per sequence.
    pub ctx_len: usize,
    /// Simulated decode steps taken.
    pub steps: usize,
    /// Tokens/sec at burst clocks (the paper's snapshot numbers).
    pub burst_tokens_per_sec: f64,
    /// Tokens/sec at the sustained operating point.
    pub sustained_tokens_per_sec: f64,
    /// Average tokens/sec over the whole simulated window (burst ramp
    /// included) — the number a sustained benchmark run would report.
    pub avg_tokens_per_sec: f64,
    /// Average device watts while at burst clocks.
    pub burst_power_w: f64,
    /// Average device watts while throttled.
    pub sustained_power_w: f64,
    /// Tokens per joule at burst clocks.
    pub burst_tokens_per_joule: f64,
    /// Tokens per joule at the sustained point.
    pub sustained_tokens_per_joule: f64,
    /// Step index at which the governor first throttled, if it did.
    pub first_throttle_step: Option<usize>,
    /// Simulated seconds at which the governor first throttled.
    pub first_throttle_secs: Option<f64>,
    /// Hottest die temperature reached.
    pub peak_temp_c: f64,
    /// Die temperature at the end of the window.
    pub final_temp_c: f64,
    /// Decimated temperature/clock trajectory (at most ~200 points).
    pub trace: Vec<TracePoint>,
}

/// Maximum points kept in a [`SustainedCurve::trace`].
const TRACE_POINTS: usize = 200;

/// Simulates `duration_secs` of back-to-back decode on `device` with the
/// thermal/DVFS loop closed: every step deposits its joules into the die,
/// the governor rethrottles between steps, and throttled steps run on the
/// [`DeviceProfile::at_clock`]-scaled profile (so the whole cost model —
/// HVX, HMX, DMA, streaming fetches, session switches — reprices, not just
/// a headline rate).
pub fn sustained_decode_curve(
    device: &DeviceProfile,
    model: ModelId,
    batch: usize,
    ctx_len: usize,
    duration_secs: f64,
) -> SimResult<SustainedCurve> {
    let burst = NpuSimBackend::overlapped(device.clone()).decode(model, batch, ctx_len)?;
    let hot_device = device.at_clock(device.sustained_clock_mult);
    let sustained = NpuSimBackend::overlapped(hot_device.clone()).decode(model, batch, ctx_len)?;
    let burst_power_w = PowerModel::new(device.clone()).step_power(&burst);
    let sustained_power_w = PowerModel::new(hot_device).step_power(&sustained);

    let mut thermal = ThermalState::ambient(device);
    let mut governor = DvfsGovernor::new();
    let mut now = 0.0f64;
    let mut steps = 0usize;
    let mut tokens = 0.0f64;
    let mut first_throttle = None;
    let mut peak_temp_c = thermal.temp_c;
    let mut trace = Vec::new();
    while now < duration_secs {
        governor.observe(device, thermal.temp_c);
        let (point, power_w): (&DecodePoint, f64) = if governor.is_throttled() {
            (&sustained, sustained_power_w)
        } else {
            (&burst, burst_power_w)
        };
        if governor.is_throttled() && first_throttle.is_none() {
            first_throttle = Some((steps, now));
        }
        trace.push(TracePoint {
            time_secs: now,
            temp_c: thermal.temp_c,
            clock_mult: governor.clock_mult(device),
        });
        thermal.step(device, power_w, point.step_secs);
        peak_temp_c = peak_temp_c.max(thermal.temp_c);
        now += point.step_secs;
        tokens += batch as f64;
        steps += 1;
    }
    let stride = trace.len().div_ceil(TRACE_POINTS).max(1);
    let trace = trace
        .into_iter()
        .step_by(stride)
        .collect::<Vec<TracePoint>>();
    Ok(SustainedCurve {
        device: device.arch.soc_label().to_string(),
        model: burst.model.clone(),
        batch,
        ctx_len,
        steps,
        burst_tokens_per_sec: burst.tokens_per_sec,
        sustained_tokens_per_sec: sustained.tokens_per_sec,
        avg_tokens_per_sec: if now > 0.0 { tokens / now } else { 0.0 },
        burst_power_w,
        sustained_power_w,
        burst_tokens_per_joule: burst.tokens_per_sec / burst_power_w,
        sustained_tokens_per_joule: sustained.tokens_per_sec / sustained_power_w,
        first_throttle_step: first_throttle.map(|(s, _)| s),
        first_throttle_secs: first_throttle.map(|(_, t)| t),
        peak_temp_c,
        final_temp_c: thermal.temp_c,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heating_approaches_the_equilibrium_temperature() {
        let d = DeviceProfile::v75();
        let mut s = ThermalState::ambient(&d);
        let power = 4.0;
        let eq = d.equilibrium_temp_c(power);
        for _ in 0..200_000 {
            s.step(&d, power, 0.01);
        }
        // 2000 s >> tau (30 s): within a tenth of a degree of equilibrium.
        assert!((s.temp_c - eq).abs() < 0.1, "{} vs eq {}", s.temp_c, eq);
    }

    #[test]
    fn idle_die_relaxes_to_ambient_with_the_rc_time_constant() {
        let d = DeviceProfile::v75();
        let mut s = ThermalState {
            temp_c: d.ambient_temp_c + 20.0,
        };
        let tau = d.thermal_time_constant_secs();
        let mut elapsed = 0.0;
        while elapsed < tau {
            s.step(&d, 0.0, 0.01);
            elapsed += 0.01;
        }
        // After one time constant the excess has decayed to ~1/e (= 7.36
        // of the initial 20 degrees); Euler at dt << tau tracks closely.
        let excess = s.temp_c - d.ambient_temp_c;
        assert!(
            (excess - 20.0 / 1.0f64.exp()).abs() < 0.05,
            "excess {excess}"
        );
        while elapsed < 8.0 * tau {
            s.step(&d, 0.0, 0.01);
            elapsed += 0.01;
        }
        assert!(s.temp_c - d.ambient_temp_c < 0.02, "{}", s.temp_c);
    }

    #[test]
    fn step_returns_the_exact_dissipated_joules() {
        let d = DeviceProfile::v79();
        let mut s = ThermalState {
            temp_c: d.ambient_temp_c + 10.0,
        };
        let before = s.temp_c;
        let dissipated = s.step(&d, 3.5, 0.25);
        let joules_in = 3.5 * 0.25;
        let stored = d.thermal_capacitance_j_per_c * (s.temp_c - before);
        assert!(
            (joules_in - stored - dissipated).abs() < 1e-12,
            "in {joules_in} stored {stored} dissipated {dissipated}"
        );
        assert!((dissipated - 0.25 * 10.0 / d.thermal_resistance_c_per_w).abs() < 1e-12);
    }

    #[test]
    fn governor_throttles_at_cap_and_resumes_below_hysteresis() {
        let d = DeviceProfile::v73();
        let mut g = DvfsGovernor::new();
        assert!(!g.is_throttled());
        assert_eq!(g.clock_mult(&d), 1.0);

        g.observe(&d, d.throttle_temp_c - 0.1);
        assert!(!g.is_throttled());
        g.observe(&d, d.throttle_temp_c);
        assert!(g.is_throttled());
        assert_eq!(g.clock_mult(&d), d.sustained_clock_mult);

        // Inside the hysteresis band: stays throttled.
        g.observe(&d, d.throttle_temp_c - d.throttle_hysteresis_c + 0.1);
        assert!(g.is_throttled());
        // Below the band: back to burst.
        g.observe(&d, d.throttle_temp_c - d.throttle_hysteresis_c - 0.1);
        assert!(!g.is_throttled());
    }

    #[test]
    fn sustained_curve_throttles_and_settles_under_the_cap() {
        let d = DeviceProfile::v75();
        let curve = sustained_decode_curve(&d, ModelId::Qwen3B, 8, 1024, 120.0).unwrap();
        assert!(
            curve.first_throttle_step.is_some(),
            "V75 never throttled: peak {} C vs cap {} C",
            curve.peak_temp_c,
            d.throttle_temp_c
        );
        // Cap + at most one burst step of slack.
        let slack = curve.burst_power_w * (curve.batch as f64 / curve.burst_tokens_per_sec)
            / d.thermal_capacitance_j_per_c;
        assert!(
            curve.peak_temp_c <= d.throttle_temp_c + slack,
            "peak {} cap {} slack {}",
            curve.peak_temp_c,
            d.throttle_temp_c,
            slack
        );
        assert!(curve.sustained_tokens_per_sec < curve.burst_tokens_per_sec);
        // The sustained rate is at least the clock multiplier times burst:
        // fixed session-switch costs do not dilate, so throughput cannot
        // degrade by more than the clock ratio.
        assert!(
            curve.sustained_tokens_per_sec
                >= curve.burst_tokens_per_sec * d.sustained_clock_mult * 0.999,
            "sustained {} vs burst {} * mult {}",
            curve.sustained_tokens_per_sec,
            curve.burst_tokens_per_sec,
            d.sustained_clock_mult
        );
        // The long-run average sits between the two operating points.
        assert!(curve.avg_tokens_per_sec < curve.burst_tokens_per_sec);
        assert!(curve.avg_tokens_per_sec > curve.sustained_tokens_per_sec * 0.999);
        assert!(curve.sustained_power_w < curve.burst_power_w);
        assert!(curve.trace.len() <= 200 && !curve.trace.is_empty());
    }

    #[test]
    fn cold_short_run_never_throttles() {
        let d = DeviceProfile::v79();
        // Two seconds of decode barely warms a 5.5 J/C die.
        let curve = sustained_decode_curve(&d, ModelId::Qwen1_5B, 8, 1024, 2.0).unwrap();
        assert!(curve.first_throttle_step.is_none());
        let rel = (curve.avg_tokens_per_sec - curve.burst_tokens_per_sec).abs()
            / curve.burst_tokens_per_sec;
        assert!(
            rel < 1e-9,
            "avg {} burst {}",
            curve.avg_tokens_per_sec,
            curve.burst_tokens_per_sec
        );
        assert!(curve.peak_temp_c < d.throttle_temp_c);
    }
}
