//! One row-generator per paper table and figure.
//!
//! Every public `*_rows()` function regenerates the data behind one exhibit
//! of the paper's evaluation (Section 7). The benchmark harness
//! (`crates/bench`) prints these rows; EXPERIMENTS.md records them against
//! the paper's numbers. Where a quantity cannot be measured without the
//! real hardware or checkpoints, the row carries a *measured proxy* (weight
//! RMSE, logit divergence) plus its calibrated mapping — never a bare
//! constant (see DESIGN.md's substitution table).

use edgellm::config::{ModelConfig, ModelId};
use edgellm::ppl::{mean_kl, perplexity_float};
use edgellm::weights::{LayerFloatWeights, ModelWeights};
use hexsim::cost::Engine;
use hexsim::f16::F16;
use hexsim::prelude::*;
use htpops::exp_lut::{ExpLut16, ExpMethod};
use htpops::gemm::{gemm_mixed, prepare_weights, DequantVariant, GemmConfig};
use htpops::softmax::{softmax_rows, SoftmaxConfig};
use mathsynth::choice::{evaluate as choice_eval, generate_items, ChoiceKind};
use mathsynth::mathgen::{DatasetKind, TaskGenerator};
use serde::{Deserialize, Serialize};
use tilequant::channel::PerChannelQ4;
use tilequant::metrics::QuantError;
use tilequant::synth::{activation_amax, gaussian_matrix};
use tilequant::{QuantScheme, QuantizedMatrix, WeightLayout};
use ttscale::best_of_n;
use ttscale::calib::{quant_capability, quant_skill_penalty};
use ttscale::policy::CalibratedPolicy;
use ttscale::verifier::SimOrm;

use crate::backend::Backend;
use crate::memory::{measure_overhead, OverheadPoint};
use crate::pareto::{pareto_panel, Method, ParetoPoint};
use crate::pipeline::measure_decode;
use crate::power::{PowerModel, PowerPoint};
use crate::serve::{
    poisson_trace, FleetGateway, FleetSpec, GatewayConfig, Request, ServingReport, TenantSpec,
    ThermalPolicy,
};
use crate::thermal::sustained_decode_curve;

// ---------------------------------------------------------------------
// Table 1 — per-group (AWQ) vs per-channel (QNN) W4A16 accuracy.
// ---------------------------------------------------------------------

/// One Table 1 row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// Quantization scheme label.
    pub scheme: String,
    /// Measured relative weight RMSE on outlier-bearing synthetic weights.
    pub weight_rmse_rel: f64,
    /// Derived capability multiplier.
    pub capability: f64,
    /// MATH500-like accuracy (percent); paper: AWQ 15.9, QNN 2.1.
    pub math500_pct: f64,
    /// GSM8K-like accuracy (percent); paper: AWQ 32.6, QNN 3.4.
    pub gsm8k_pct: f64,
    /// Logit KL divergence vs the F16 model, measured functionally on the
    /// instrument model (the ordering instrument behind the PPL column).
    pub logit_kl: f64,
    /// Wikitext perplexity *mapped* from the measured RMSE through the
    /// paper's two anchors (AWQ 19.42, QNN 28.99); see EXPERIMENTS.md.
    pub wiki_ppl_mapped: f64,
}

/// `(matrix, k, n) -> transformed matrix` weight transform.
type MatTransform = dyn Fn(&[f32], usize, usize) -> Vec<f32>;

/// Quantizes every matrix of a float layer set with a transform.
fn map_layers(
    layers: &[LayerFloatWeights],
    cfg: &ModelConfig,
    f: &MatTransform,
) -> Vec<LayerFloatWeights> {
    layers
        .iter()
        .map(|lw| LayerFloatWeights {
            wq: f(&lw.wq, cfg.hidden, cfg.q_dim()),
            wk: f(&lw.wk, cfg.hidden, cfg.kv_dim()),
            wv: f(&lw.wv, cfg.hidden, cfg.kv_dim()),
            wo: f(&lw.wo, cfg.q_dim(), cfg.hidden),
            w_gate: f(&lw.w_gate, cfg.hidden, cfg.ffn),
            w_up: f(&lw.w_up, cfg.hidden, cfg.ffn),
            w_down: f(&lw.w_down, cfg.ffn, cfg.hidden),
        })
        .collect()
}

/// Synthetic PPL stream for tiny-model perplexity.
fn ppl_stream(len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| 4 + ((i * 37 + i * i * 11) % 200) as u32)
        .collect()
}

/// Functional model used as the perplexity instrument: wide enough (hidden
/// 256) that per-channel quantization scales cover many rows, so outlier
/// dilution shows up the way it does at full scale.
fn ppl_instrument_config() -> ModelConfig {
    let mut cfg = ModelConfig::for_id(ModelId::Tiny);
    cfg.hidden = 256;
    cfg.heads = 4;
    cfg.kv_heads = 2;
    cfg.head_dim = 64;
    cfg.ffn = 512;
    cfg
}

/// Regenerates Table 1.
pub fn table1_rows(seed: u64) -> Vec<Table1Row> {
    // Representative layer-scale weight sample with the outlier channels
    // that break coarse quantization (see tilequant::synth).
    let (k, n) = (512, 512);
    let w = gaussian_matrix(k, n, seed, 1.0, 0.02);
    let std = (w.iter().map(|v| (v * v) as f64).sum::<f64>() / w.len() as f64).sqrt();
    let act = activation_amax(k, seed, 4.0);

    // AWQ-style group quantization.
    let awq = tilequant::awq::awq_quantize(&w, k, n, &act, QuantScheme::Q4_0);
    let r_awq = QuantError::measure(&w, &awq.dequantized).rmse / std;
    // QNN-style per-channel quantization.
    let pc = PerChannelQ4::quantize(&w, k, n).dequantize();
    let r_pc = QuantError::measure(&w, &pc).rmse / std;

    // Logit-divergence instrument: a wider-than-tiny functional model
    // (hidden 256) whose per-channel scales span enough rows for outliers
    // to dilute them. The KL of each variant's logits against the F16
    // model's orders the schemes by real forward-pass damage.
    let tiny = ppl_instrument_config();
    let (float_layers, embed) = ModelWeights::generate_float_with_outliers(&tiny, seed, 0.02);
    let stream = ppl_stream(48);
    let base_logits = edgellm::cpu_ref::forward_float(&tiny, &float_layers, &embed, &stream);
    let group_layers = map_layers(&float_layers, &tiny, &|m, kk, nn| {
        QuantizedMatrix::quantize(
            m,
            kk,
            nn,
            QuantScheme::Q4_0,
            WeightLayout::ColumnMajorGroups,
        )
        .dequantize()
    });
    let channel_layers = map_layers(&float_layers, &tiny, &|m, kk, nn| {
        PerChannelQ4::quantize(m, kk, nn).dequantize()
    });
    let kl_group = mean_kl(
        &base_logits,
        &edgellm::cpu_ref::forward_float(&tiny, &group_layers, &embed, &stream),
        tiny.vocab,
    );
    let kl_channel = mean_kl(
        &base_logits,
        &edgellm::cpu_ref::forward_float(&tiny, &channel_layers, &embed, &stream),
        tiny.vocab,
    );

    // PPL mapping through the paper's anchors: ppl(r) = A * exp(B * r)
    // with (r_awq, 19.42) and (r_pc, 28.99).
    let b = (28.99f64 / 19.42).ln() / (r_pc - r_awq);
    let a = 19.42 / (b * r_awq).exp();
    let mapped_ppl = |r: f64| a * (b * r).exp();

    let tasks_math = TaskGenerator::new(DatasetKind::Math500Like, seed).take(400);
    let tasks_gsm = TaskGenerator::new(DatasetKind::Gsm8kLike, seed).take(400);
    let orm = SimOrm::default();
    let row = |label: &str, r: f64, kl: f64| {
        let cap = quant_capability(r);
        let penalty = quant_skill_penalty(r);
        let policy = |ds| CalibratedPolicy::new(ModelId::Llama1B, ds).with_skill_penalty(penalty);
        Table1Row {
            scheme: label.to_string(),
            weight_rmse_rel: r,
            capability: cap,
            math500_pct: best_of_n::accuracy_over_tasks(
                &policy(DatasetKind::Math500Like),
                &orm,
                &tasks_math,
                1,
                seed,
            ),
            gsm8k_pct: best_of_n::accuracy_over_tasks(
                &policy(DatasetKind::Gsm8kLike),
                &orm,
                &tasks_gsm,
                1,
                seed,
            ),
            logit_kl: kl,
            wiki_ppl_mapped: mapped_ppl(r),
        }
    };
    vec![
        row("AutoAWQ (W4A16, group)", r_awq, kl_group),
        row("QNN (W4A16, per-channel)", r_pc, kl_channel),
    ]
}

// ---------------------------------------------------------------------
// Table 2 — HVX vs HMX unit performance.
// ---------------------------------------------------------------------

/// One Table 2 row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Row {
    /// Hardware unit label.
    pub unit: String,
    /// FP16 GEMM throughput in GFLOPS (1024^3 GEMM resident in TCM).
    pub gemm_gflops: f64,
    /// Memory read bandwidth in GB/s.
    pub read_bw_gbs: f64,
}

/// Regenerates Table 2 by timing the simulator's engines on the paper's
/// microbenchmarks.
pub fn table2_rows() -> Vec<Table2Row> {
    let device = DeviceProfile::v75();
    let mut ctx = NpuContext::new(device.clone(), ExecMode::CostOnly);

    // HMX: 1024^3 FP16 GEMM = 32768 tile-ops.
    let flops = 2.0 * 1024f64.powi(3);
    let snap = ctx.cost.snapshot();
    ctx.hmx_charge(32 * 32 * 32);
    let hmx_secs = ctx.cost.delta_since(&snap, "").engine(Engine::Hmx);
    let hmx_gflops = flops / hmx_secs / 1e9;

    // HVX single thread: the calibrated measured constant (the simulator's
    // vector-GEMM model is anchored on it).
    let hvx_gflops = device.hvx_thread_gemm_flops / 1e9;

    // DMA bandwidth: time a 64 MiB transfer.
    let buf = ctx.ddr_alloc(64 * 1024 * 1024).unwrap();
    let t = ctx.tcm_alloc(4096, 128).unwrap();
    let snap = ctx.cost.snapshot();
    for chunk in 0..(64 * 1024 * 1024 / 4096) as u64 {
        let _ = chunk;
        ctx.dma_h2t(buf, 0, t, 4096);
    }
    let dma_secs = ctx.cost.delta_since(&snap, "").engine(Engine::Dma);
    let dma_bw = 64.0 * 1024.0 * 1024.0 / dma_secs / 1e9;

    // HVX core-path load bandwidth: stream 64 MiB of register loads.
    let snap = ctx.cost.snapshot();
    for i in 0..(64 * 1024 * 1024 / 128) as u64 {
        let _ = ctx.vmem_ld_ddr(buf, (i % 1000) * 128);
    }
    let hvx_secs = ctx.cost.delta_since(&snap, "").engine(Engine::Hvx);
    let hvx_bw = 64.0 * 1024.0 * 1024.0 / hvx_secs / 1e9;

    vec![
        Table2Row {
            unit: "HVX (1 thread)".to_string(),
            gemm_gflops: hvx_gflops,
            read_bw_gbs: hvx_bw,
        },
        Table2Row {
            unit: "HMX".to_string(),
            gemm_gflops: hmx_gflops,
            read_bw_gbs: dma_bw,
        },
    ]
}

// ---------------------------------------------------------------------
// Figure 5 — Best-of-N scaling with generation budget.
// ---------------------------------------------------------------------

/// One Figure 5 point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Model label.
    pub model: String,
    /// Generation budget (max batch).
    pub budget: usize,
    /// MATH500-like accuracy, percent.
    pub accuracy_pct: f64,
}

/// Regenerates Figure 5 (budgets 1-16, Llama3.2-1B and Qwen2.5-1.5B).
pub fn fig5_rows(seed: u64) -> Vec<Fig5Row> {
    let tasks = TaskGenerator::new(DatasetKind::Math500Like, seed).take(500);
    let orm = SimOrm::default();
    let mut out = Vec::new();
    for model in [ModelId::Llama1B, ModelId::Qwen1_5B] {
        let policy = CalibratedPolicy::new(model, DatasetKind::Math500Like);
        for budget in [1usize, 2, 4, 6, 8, 12, 16] {
            out.push(Fig5Row {
                model: ModelConfig::for_id(model).name.to_string(),
                budget,
                accuracy_pct: best_of_n::accuracy_over_tasks(&policy, &orm, &tasks, budget, seed),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 8 — FlashAttention latency breakdown.
// ---------------------------------------------------------------------

/// One Figure 8 bar.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Query length (decode batch).
    pub q_len: usize,
    /// "QKVO Load/Store" share, percent.
    pub load_store_pct: f64,
    /// "MatMul" share, percent.
    pub matmul_pct: f64,
    /// "Softmax" share, percent.
    pub softmax_pct: f64,
}

/// Regenerates Figure 8 (Qwen2.5-1.5B geometry, prompt 4096).
pub fn fig8_rows() -> Vec<Fig8Row> {
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
    let lut = ExpLut16::build(&mut ctx).unwrap();
    let cfg = ModelConfig::for_id(ModelId::Qwen1_5B);
    let fa = htpops::attention::FlashAttention::new(&lut, ExpMethod::Lut16, cfg.gqa_group());
    [4usize, 8, 16, 32]
        .iter()
        .map(|&q| {
            let shape = htpops::attention::AttnShape {
                nq: q,
                nkv: 4096,
                head_dim: cfg.head_dim,
            };
            let (_, bd) = fa.run(&mut ctx, shape, &[], &[], &[]);
            let s = bd.shares();
            Fig8Row {
                q_len: q,
                load_store_pct: s[0],
                matmul_pct: s[1],
                softmax_pct: s[2],
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 10 — accuracy/latency Pareto panels.
// ---------------------------------------------------------------------

/// Regenerates one Figure 10 panel.
pub fn fig10_rows(
    device: &DeviceProfile,
    dataset: DatasetKind,
    method: Method,
    seed: u64,
) -> Vec<ParetoPoint> {
    pareto_panel(device, dataset, method, seed)
}

// ---------------------------------------------------------------------
// Figure 11 — decode throughput vs batch across devices.
// ---------------------------------------------------------------------

/// One Figure 11 point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Device SoC label.
    pub device: String,
    /// Model label.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Decode throughput, tokens/second (`None` when the model cannot map
    /// on the device — the 8G2/3B gate).
    pub tokens_per_sec: Option<f64>,
}

/// Regenerates Figure 11 (context 1024).
pub fn fig11_rows() -> Vec<Fig11Row> {
    let mut out = Vec::new();
    for device in DeviceProfile::all() {
        for model in ModelId::on_device() {
            for batch in [1usize, 2, 4, 6, 8, 12, 16] {
                let tps = measure_decode(&device, model, batch, 1024)
                    .ok()
                    .map(|p| p.tokens_per_sec);
                out.push(Fig11Row {
                    device: device.arch.soc_label().to_string(),
                    model: model.label().to_string(),
                    batch,
                    tokens_per_sec: tps,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 12 — power and energy.
// ---------------------------------------------------------------------

/// Regenerates Figure 12 (OnePlus 12, performance mode).
pub fn fig12_rows() -> Vec<PowerPoint> {
    let device = DeviceProfile::v75();
    let pm = PowerModel::new(device.clone());
    let mut out = Vec::new();
    for model in [ModelId::Qwen1_5B, ModelId::Qwen3B] {
        for batch in [1usize, 2, 4, 8, 16] {
            if let Ok(point) = measure_decode(&device, model, batch, 1024) {
                out.push(pm.measure(&point));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 13 — comparison with GPU and QNN baselines.
// ---------------------------------------------------------------------

/// One Figure 13 decode point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig13DecodeRow {
    /// System label.
    pub system: String,
    /// Model label.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Decode throughput, tokens/second.
    pub tokens_per_sec: f64,
}

/// One Figure 13 prefill point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig13PrefillRow {
    /// System label.
    pub system: String,
    /// Model label.
    pub model: String,
    /// Prompt length.
    pub prompt_len: usize,
    /// Prefill throughput, tokens/second.
    pub tokens_per_sec: f64,
}

/// Regenerates Figure 13's decode panels over a backend set
/// (conventionally [`crate::backend::figure13_backends`]). Configurations
/// a backend cannot run — the VA gate, QNN's batch-1 static graphs — are
/// skipped, exactly as they are absent from the paper's plot.
pub fn fig13_decode_rows(backends: &[Box<dyn Backend>]) -> Vec<Fig13DecodeRow> {
    let mut out = Vec::new();
    for model in [ModelId::Qwen1_5B, ModelId::Qwen3B] {
        for batch in [1usize, 2, 4, 8, 16] {
            for b in backends {
                if let Ok(p) = b.decode(model, batch, 1024) {
                    out.push(Fig13DecodeRow {
                        system: b.name().to_string(),
                        model: model.label().to_string(),
                        batch,
                        tokens_per_sec: p.tokens_per_sec,
                    });
                }
            }
        }
    }
    out
}

/// Regenerates Figure 13's prefill panels over a backend set.
pub fn fig13_prefill_rows(backends: &[Box<dyn Backend>]) -> Vec<Fig13PrefillRow> {
    let mut out = Vec::new();
    for model in [ModelId::Qwen1_5B, ModelId::Qwen3B] {
        for prompt in [128usize, 256, 512, 1024, 2048] {
            for b in backends {
                if let Ok(p) = b.prefill(model, prompt) {
                    out.push(Fig13PrefillRow {
                        system: b.name().to_string(),
                        model: model.label().to_string(),
                        prompt_len: prompt,
                        tokens_per_sec: p.tokens_per_sec,
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 14 — softmax exponential ablation.
// ---------------------------------------------------------------------

/// One Figure 14 point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig14Row {
    /// KV length.
    pub nkv: usize,
    /// Query length.
    pub nq: usize,
    /// Exp method label.
    pub method: String,
    /// On-chip softmax latency in microseconds.
    pub latency_us: f64,
    /// Speedup of LUT16 over this method (1.0 for LUT16 itself).
    pub lut_speedup: f64,
}

/// Regenerates Figure 14 (on-chip softmax latency per exp method).
pub fn fig14_rows() -> Vec<Fig14Row> {
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
    let lut = ExpLut16::build(&mut ctx).unwrap();
    let data = ctx.tcm_alloc(128 * 1024, 128).unwrap();
    let mut out = Vec::new();
    for &nkv in &[1024usize, 4096, 16384] {
        for &nq in &[1usize, 4, 16] {
            let mut lat = |method| {
                softmax_rows(
                    &mut ctx,
                    &lut,
                    SoftmaxConfig {
                        rows: nq,
                        cols: nkv,
                        method,
                    },
                    data,
                )
                .wall_secs
                    * 1e6
            };
            let t32 = lat(ExpMethod::F32Poly);
            let t16 = lat(ExpMethod::F16Poly);
            let tlut = lat(ExpMethod::Lut16);
            for (m, t) in [
                (ExpMethod::F32Poly, t32),
                (ExpMethod::F16Poly, t16),
                (ExpMethod::Lut16, tlut),
            ] {
                out.push(Fig14Row {
                    nkv,
                    nq,
                    method: m.label().to_string(),
                    latency_us: t,
                    lut_speedup: t / tlut,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 15 — dequantization GEMV ablation.
// ---------------------------------------------------------------------

/// One Figure 15 point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig15Row {
    /// Weight matrix configuration label ("1536*8960, Q4").
    pub config: String,
    /// Variant label (Figure 15 legend).
    pub variant: String,
    /// GEMV latency in microseconds.
    pub latency_us: f64,
    /// Speedup of "ours" over this variant.
    pub ours_speedup: f64,
}

/// The paper's eleven weight configurations.
pub fn fig15_matrix_configs() -> Vec<(usize, usize, QuantScheme)> {
    vec![
        (1536, 1536, QuantScheme::Q4_0),
        (1536, 8960, QuantScheme::Q4_0),
        (8960, 1536, QuantScheme::Q8_0),
        (2048, 2048, QuantScheme::Q4_0),
        (2048, 8192, QuantScheme::Q4_0),
        (8192, 2048, QuantScheme::Q8_0),
        (2048, 11008, QuantScheme::Q4_0),
        (11008, 2048, QuantScheme::Q8_0),
        (3072, 3072, QuantScheme::Q4_0),
        (3072, 8192, QuantScheme::Q4_0),
        (8192, 3072, QuantScheme::Q8_0),
    ]
}

/// Regenerates Figure 15 (GEMV latency per dequantization arm).
pub fn fig15_rows() -> Vec<Fig15Row> {
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
    let mut out = Vec::new();
    for (k, n, scheme) in fig15_matrix_configs() {
        let mut wall = |variant| {
            let qm = QuantizedMatrix {
                k,
                n,
                scheme,
                layout: DequantVariant::required_layout(variant),
                bytes: Vec::new(),
            };
            let prepared = prepare_weights(&mut ctx, &qm, variant).unwrap();
            let cfg = GemmConfig {
                m: 1,
                k,
                n,
                scheme,
                variant,
                threads: 6,
            };
            let r = gemm_mixed(&mut ctx, &cfg, &prepared, &[]);
            ctx.ddr_free(prepared.buf);
            r.cost.wall_secs * 1e6
        };
        let t_base = wall(DequantVariant::BaselineScatter);
        let t_hmx = wall(DequantVariant::HmxLayoutNaive);
        let t_ours = wall(DequantVariant::CoalescedLut);
        let t_bound = wall(DequantVariant::NoDequantBound);
        let label = format!(
            "{k}*{n}, {}",
            if scheme == QuantScheme::Q4_0 {
                "Q4"
            } else {
                "Q8"
            }
        );
        for (variant, t) in [
            ("baseline", t_base),
            ("w/ HMX layout", t_hmx),
            ("ours", t_ours),
            ("no dequant.", t_bound),
        ] {
            out.push(Fig15Row {
                config: label.clone(),
                variant: variant.to_string(),
                latency_us: t,
                ours_speedup: t / t_ours,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 16 — CPU/memory overhead.
// ---------------------------------------------------------------------

/// Regenerates Figure 16 (decode-stage CPU memory and utilization) over a
/// backend set (conventionally [`crate::backend::npu_backend`]). The
/// overhead model describes *our* runtime's CPU/dmabuf placement, so
/// analytic points without engine activity are skipped rather than
/// fabricated.
pub fn fig16_rows(backends: &[Box<dyn Backend>]) -> Vec<OverheadPoint> {
    let mut out = Vec::new();
    for b in backends {
        for model in [ModelId::Qwen1_5B, ModelId::Qwen3B] {
            for batch in [1usize, 2, 4, 8, 16] {
                if let Ok(p) = b.decode(model, batch, 1024) {
                    if p.has_engine_activity() {
                        out.push(measure_overhead(model, &p, 4096, b.name()));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Overlap extension — serial vs. async-dispatch decode (Section 7.2.2).
// ---------------------------------------------------------------------

/// One serial-vs-overlapped decode comparison point (the rows behind the
/// `BENCH_decode.json` artifact).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecodeOverlapRow {
    /// Device SoC label.
    pub device: String,
    /// Model label.
    pub model: String,
    /// Decode batch size.
    pub batch: usize,
    /// Context length per sequence.
    pub ctx_len: usize,
    /// Decode throughput with serial dispatch, tokens/second.
    pub serial_tps: f64,
    /// Decode throughput with overlap-aware async dispatch, tokens/second.
    pub overlapped_tps: f64,
    /// `overlapped_tps / serial_tps` (>= 1 by construction: the critical
    /// path never exceeds the serial stage sum).
    pub speedup: f64,
    /// NPU sessions the deployment ran across (> 1 = Section 8 sharding,
    /// whose switches the overlapped schedule hides behind tail kernels).
    pub sessions: usize,
}

/// Measures serial vs. overlap-aware decode across the three Snapdragon
/// generations: Qwen2.5-1.5B at batches 1/8/16 everywhere, plus the
/// sharded Qwen-7B deployment (where the session switches are on the
/// line). CI regenerates these rows each push and fails if any overlapped
/// point regresses above its serial baseline.
pub fn decode_overlap_rows() -> Vec<DecodeOverlapRow> {
    let mut out = Vec::new();
    for device in DeviceProfile::all() {
        let [serial, overlapped, _] = crate::backend::NpuSimBackend::variants(&device);
        let mut push = |model: ModelId, batch: usize, ctx_len: usize| {
            // Two independent measurements on purpose: one Overlapped run's
            // StepCost carries both views, but the regression gate is only
            // meaningful when serial goes through its own full pipeline —
            // comparing a number against itself would always pass.
            let (Ok(s), Ok(o)) = (
                serial.decode(model, batch, ctx_len),
                overlapped.decode(model, batch, ctx_len),
            ) else {
                return;
            };
            out.push(DecodeOverlapRow {
                device: device.arch.soc_label().to_string(),
                model: model.label().to_string(),
                batch,
                ctx_len,
                serial_tps: s.tokens_per_sec,
                overlapped_tps: o.tokens_per_sec,
                speedup: o.tokens_per_sec / s.tokens_per_sec,
                sessions: o.sessions,
            });
        };
        for batch in [1usize, 8, 16] {
            push(ModelId::Qwen1_5B, batch, 1024);
        }
        push(ModelId::Qwen7B, 8, 1024);
    }
    out
}

// ---------------------------------------------------------------------
// Streaming extension — resident vs. weight-streamed decode.
// ---------------------------------------------------------------------

/// One resident-vs-streamed decode comparison point (the streaming rows
/// of the `BENCH_decode.json` artifact). Both sides run overlap-aware
/// dispatch, so the row isolates the *placement* change: hot/cold weight
/// hierarchy with DMA-lane prefetch versus everything resident.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecodeStreamRow {
    /// Device SoC label.
    pub device: String,
    /// Model label.
    pub model: String,
    /// Decode batch size.
    pub batch: usize,
    /// Context length per sequence.
    pub ctx_len: usize,
    /// Whether the fully resident plan runs at all on this device (a
    /// `false` here is the streaming headline: the deployment exceeds the
    /// session cap resident but decodes streamed).
    pub resident_runs: bool,
    /// Resident decode throughput, tokens/second (0 when it cannot run).
    pub resident_tps: f64,
    /// Sessions the resident plan occupies (0 when it cannot run).
    pub resident_sessions: usize,
    /// Streamed decode throughput, tokens/second.
    pub streamed_tps: f64,
    /// Sessions the streaming plan occupies.
    pub streamed_sessions: usize,
    /// `resident_sessions - streamed_sessions`: capacity given back to
    /// other tenants of the rpcmem driver (0 when resident cannot run —
    /// the win there is running at all, not saving sessions).
    pub sessions_saved: usize,
    /// `streamed_tps / resident_tps` (0 when resident cannot run). The
    /// CI gate holds this at >= 0.9: the DMA prefetch lane must hide all
    /// but a sliver of the cold-layer fetches.
    pub throughput_ratio: f64,
}

/// Measures resident vs. weight-streamed decode for the sharded Qwen-7B
/// deployment: batch 8 / ctx 1024 on all three Snapdragon generations
/// (where streaming trades sessions for hidden DMA time), plus batch 8 /
/// ctx 8192 on the 8 Gen 2 — a configuration whose resident plan exceeds
/// the session cap entirely and only runs streamed. CI regenerates these
/// rows each push and fails if any streamed point drops below 90% of its
/// resident baseline or the rescue configuration stops running.
pub fn decode_stream_rows() -> Vec<DecodeStreamRow> {
    let mut out = Vec::new();
    let mut push = |device: &DeviceProfile, model: ModelId, batch: usize, ctx_len: usize| {
        let [_, resident, streamed] = crate::backend::NpuSimBackend::variants(device);
        let Ok(s) = streamed.decode(model, batch, ctx_len) else {
            return;
        };
        let (resident_runs, resident_tps, resident_sessions) =
            match resident.decode(model, batch, ctx_len) {
                Ok(r) => (true, r.tokens_per_sec, r.sessions),
                Err(_) => (false, 0.0, 0),
            };
        out.push(DecodeStreamRow {
            device: device.arch.soc_label().to_string(),
            model: model.label().to_string(),
            batch,
            ctx_len,
            resident_runs,
            resident_tps,
            resident_sessions,
            streamed_tps: s.tokens_per_sec,
            streamed_sessions: s.sessions,
            sessions_saved: resident_sessions.saturating_sub(s.sessions),
            throughput_ratio: if resident_runs {
                s.tokens_per_sec / resident_tps
            } else {
                0.0
            },
        });
    };
    for device in DeviceProfile::all() {
        push(&device, ModelId::Qwen7B, 8, 1024);
    }
    push(&DeviceProfile::v73(), ModelId::Qwen7B, 8, 8192);
    out
}

// ---------------------------------------------------------------------
// Thermal extension — sustained-vs-burst decode and thermal-aware fleet
// dispatch (the rows behind the `BENCH_power.json` artifact).
// ---------------------------------------------------------------------

/// The fixed workload every thermal decode row runs: Qwen-3B at batch 8,
/// context 1024 — heavy enough that every Snapdragon generation crosses
/// its throttle cap inside the window.
pub const THERMAL_WORKLOAD: (ModelId, usize, usize) = (ModelId::Qwen3B, 8, 1024);

/// Simulated seconds of back-to-back decode per thermal row (several RC
/// time constants: long enough that the sustained plateau dominates).
pub const THERMAL_WINDOW_SECS: f64 = 120.0;

/// One sustained-vs-burst decode row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThermalDecodeRow {
    /// Device SoC label.
    pub device: String,
    /// Model label.
    pub model: String,
    /// Decode batch size.
    pub batch: usize,
    /// Context length per sequence.
    pub ctx_len: usize,
    /// Tokens/sec at burst clocks — must equal the pre-thermal decode
    /// number for the same deployment bit-for-bit (the CI gate).
    pub burst_tps: f64,
    /// Tokens/sec at the sustained operating point.
    pub sustained_tps: f64,
    /// Average tokens/sec over the whole window (burst ramp included).
    pub avg_tps: f64,
    /// `sustained_tps / burst_tps` — gated at >= the device's sustained
    /// clock multiplier (fixed switch costs only soften the drop).
    pub degradation: f64,
    /// Average watts at burst clocks.
    pub burst_power_w: f64,
    /// Average watts while throttled.
    pub sustained_power_w: f64,
    /// Tokens per joule at burst clocks.
    pub burst_tokens_per_joule: f64,
    /// Tokens per joule at the sustained point.
    pub sustained_tokens_per_joule: f64,
    /// Step index at which the device first throttled.
    pub first_throttle_step: Option<usize>,
    /// Simulated seconds at which the device first throttled.
    pub first_throttle_secs: Option<f64>,
    /// Hottest die temperature reached.
    pub peak_temp_c: f64,
}

/// Regenerates the sustained-vs-burst rows: the fixed Qwen-3B b8 workload
/// decoded for [`THERMAL_WINDOW_SECS`] on each Snapdragon generation with
/// the thermal/DVFS loop closed.
pub fn thermal_decode_rows() -> Vec<ThermalDecodeRow> {
    let (model, batch, ctx_len) = THERMAL_WORKLOAD;
    DeviceProfile::all()
        .iter()
        .filter_map(|device| {
            let c =
                sustained_decode_curve(device, model, batch, ctx_len, THERMAL_WINDOW_SECS).ok()?;
            Some(ThermalDecodeRow {
                device: c.device.clone(),
                model: c.model.clone(),
                batch,
                ctx_len,
                burst_tps: c.burst_tokens_per_sec,
                sustained_tps: c.sustained_tokens_per_sec,
                avg_tps: c.avg_tokens_per_sec,
                degradation: c.sustained_tokens_per_sec / c.burst_tokens_per_sec,
                burst_power_w: c.burst_power_w,
                sustained_power_w: c.sustained_power_w,
                burst_tokens_per_joule: c.burst_tokens_per_joule,
                sustained_tokens_per_joule: c.sustained_tokens_per_joule,
                first_throttle_step: c.first_throttle_step,
                first_throttle_secs: c.first_throttle_secs,
                peak_temp_c: c.peak_temp_c,
            })
        })
        .collect()
}

/// The seeded multi-minute trace the thermal fleet comparison serves:
/// a sustained mixed-tenant stream heavy enough to keep the V79/V75/V73
/// fleet busy past its thermal time constants.
pub fn thermal_fleet_trace(seed: u64) -> Vec<Request> {
    let tenants = [
        TenantSpec {
            output_lens: (16, 48),
            ..TenantSpec::interactive("chat")
        },
        TenantSpec {
            output_lens: (24, 64),
            ..TenantSpec::batch("batch")
        },
    ];
    // ~3 req/s for ~3 simulated minutes.
    poisson_trace(&tenants, 3.0, 540, seed)
}

/// One thermal fleet-dispatch comparison row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetThermalRow {
    /// Dispatch policy label ("blind" / "aware").
    pub policy: String,
    /// Requests completed.
    pub completed: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Completed requests that met the SLO.
    pub slo_good: usize,
    /// SLO-good requests per simulated second — the headline the CI gate
    /// holds: aware >= blind.
    pub goodput_rps: f64,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99_secs: f64,
    /// 99th-percentile time-between-tokens.
    pub tbt_p99_secs: f64,
    /// Simulated seconds from first arrival to last worker idle.
    pub makespan_secs: f64,
    /// Decode tokens per simulated second.
    pub tokens_per_sec: f64,
    /// Fleet-wide steps executed at the sustained clock point.
    pub throttled_steps: usize,
    /// Hottest die temperature across the fleet.
    pub peak_temp_c: f64,
}

fn fleet_thermal_row(
    policy: ThermalPolicy,
    label: &str,
    trace: &[Request],
) -> SimResult<(FleetThermalRow, ServingReport)> {
    let config = GatewayConfig {
        thermal: policy,
        ..GatewayConfig::default()
    };
    let gw = FleetGateway::new(FleetSpec::heterogeneous(ModelId::Qwen1_5B), config)?;
    let r = gw.serve_trace(trace)?;
    let row = FleetThermalRow {
        policy: label.to_string(),
        completed: r.completed,
        rejected: r.rejected,
        slo_good: r.slo_good,
        goodput_rps: r.goodput_rps,
        ttft_p99_secs: r.ttft_p99_secs,
        tbt_p99_secs: r.tbt_p99_secs,
        makespan_secs: r.makespan_secs,
        tokens_per_sec: r.tokens_per_sec,
        throttled_steps: r.workers.iter().map(|w| w.throttled_steps).sum(),
        peak_temp_c: r.workers.iter().map(|w| w.peak_temp_c).fold(0.0, f64::max),
    };
    Ok((row, r))
}

/// Serves [`thermal_fleet_trace`] through the heterogeneous fleet under
/// thermal-blind and thermal-aware dispatch: identical physics, identical
/// trace, only the dispatcher's completion oracle differs. Returns
/// `[blind, aware]`.
pub fn fleet_thermal_rows(seed: u64) -> SimResult<Vec<FleetThermalRow>> {
    let trace = thermal_fleet_trace(seed);
    let (blind, _) = fleet_thermal_row(ThermalPolicy::Blind, "blind", &trace)?;
    let (aware, _) = fleet_thermal_row(ThermalPolicy::Aware, "aware", &trace)?;
    Ok(vec![blind, aware])
}

// ---------------------------------------------------------------------
// Speculative decoding extension — plain vs spec-serial vs spec-overlapped
// and adaptive-vs-fixed draft length (the rows behind `BENCH_spec.json`).
// ---------------------------------------------------------------------

/// Target model of the speculative-decoding rows (the paper's primary
/// on-device model).
pub const SPEC_TARGET: ModelId = ModelId::Qwen1_5B;
/// Draft model: the Qwen2.5-0.5B-class config that exists only to
/// propose chunks for [`SPEC_TARGET`].
pub const SPEC_DRAFT: ModelId = ModelId::Qwen0_5B;
/// Context length of every speculative row.
pub const SPEC_CTX_LEN: usize = 1024;
/// Verify rounds replayed per row (enough that the trace's empirical
/// acceptance converges to its configured rate).
pub const SPEC_ROUNDS: usize = 1024;
/// Fixed draft length of the headline rows.
pub const SPEC_DRAFT_LEN: usize = 3;
/// Acceptance rate of the headline trace (a well-matched draft).
pub const SPEC_ACCEPTANCE: f64 = 0.7;
/// Acceptance rate of the adaptive-vs-fixed comparison (a cold draft —
/// the regime where clinging to a long draft length wastes every round).
pub const SPEC_LOW_ACCEPTANCE: f64 = 0.25;
/// Seed of the replayed acceptance trace (both policies of a comparison
/// see the identical accept/reject stream).
pub const SPEC_TRACE_SEED: u64 = 20260808;

/// One plain-vs-speculative decode row (the headline rows of the
/// `BENCH_spec.json` artifact).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpecDecodeRow {
    /// Device SoC label.
    pub device: String,
    /// Target model label.
    pub target: String,
    /// Draft model label.
    pub draft: String,
    /// Context length.
    pub ctx_len: usize,
    /// Fixed draft length of this row.
    pub draft_len: usize,
    /// Acceptance rate of the replayed trace.
    pub acceptance: f64,
    /// Mean drafted tokens accepted per verify round.
    pub mean_accepted: f64,
    /// Draft step cost over target step cost.
    pub draft_step_frac: f64,
    /// Plain decode, serial dispatch, tokens/second.
    pub plain_tps: f64,
    /// Plain decode, overlap-aware dispatch, tokens/second.
    pub plain_overlapped_tps: f64,
    /// Speculative decode, every stage sequential, accepted-tokens/second.
    pub spec_serial_tps: f64,
    /// Speculative decode with the draft round overlapped behind the
    /// verify kernels, accepted-tokens/second — the headline.
    pub spec_overlapped_tps: f64,
    /// `spec_overlapped_tps / plain_tps` — the CI-gated end-to-end win.
    pub speedup: f64,
    /// `spec_overlapped_tps / spec_serial_tps` — what the DRAFT lane
    /// alone buys (1/(1 + exposed_draft_fraction) in the Section 9
    /// decomposition).
    pub overlap_gain: f64,
}

/// Measures plain vs spec-serial vs spec-overlapped decode on each
/// Snapdragon generation: [`SPEC_TARGET`] verified chunks drafted by
/// [`SPEC_DRAFT`], fixed draft length [`SPEC_DRAFT_LEN`], the seeded
/// [`SPEC_ACCEPTANCE`] trace. CI regenerates these rows each push and
/// fails if spec-overlapped stops beating plain decode anywhere.
pub fn spec_decode_rows() -> Vec<SpecDecodeRow> {
    use ttscale::spec_decode::{AcceptanceTrace, DraftLenController};
    DeviceProfile::all()
        .iter()
        .filter_map(|device| {
            let mut ctrl = DraftLenController::fixed(SPEC_DRAFT_LEN);
            let mut trace = AcceptanceTrace::seeded(SPEC_TRACE_SEED, SPEC_ACCEPTANCE);
            let p = crate::spec::measure_spec_decode(
                device,
                SPEC_TARGET,
                SPEC_DRAFT,
                SPEC_CTX_LEN,
                &mut ctrl,
                &mut trace,
                SPEC_ROUNDS,
            )
            .ok()?;
            Some(SpecDecodeRow {
                device: p.device.clone(),
                target: p.target.clone(),
                draft: p.draft.clone(),
                ctx_len: p.ctx_len,
                draft_len: SPEC_DRAFT_LEN,
                acceptance: SPEC_ACCEPTANCE,
                mean_accepted: p.mean_accepted,
                draft_step_frac: p.draft_step_frac,
                plain_tps: p.plain_serial_tps,
                plain_overlapped_tps: p.plain_overlapped_tps,
                spec_serial_tps: p.spec_serial_tps,
                spec_overlapped_tps: p.spec_overlapped_tps,
                speedup: p.spec_overlapped_tps / p.plain_serial_tps,
                overlap_gain: p.spec_overlapped_tps / p.spec_serial_tps,
            })
        })
        .collect()
}

/// One adaptive-vs-fixed draft-length comparison row: identical device,
/// pair, context and acceptance trace — only the controller differs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpecAdaptiveRow {
    /// Device SoC label.
    pub device: String,
    /// Acceptance rate of the replayed (cold) trace.
    pub acceptance: f64,
    /// Draft length the fixed policy clings to.
    pub fixed_k: usize,
    /// Fixed policy, overlapped accepted-tokens/second.
    pub fixed_tps: f64,
    /// Mean draft length the adaptive controller settled on.
    pub adaptive_mean_k: f64,
    /// Adaptive policy, overlapped accepted-tokens/second.
    pub adaptive_tps: f64,
    /// `adaptive_tps / fixed_tps` — the CI-gated controller win.
    pub advantage: f64,
}

/// Replays the cold [`SPEC_LOW_ACCEPTANCE`] trace under a fixed `k = 6`
/// draft length and under the acceptance-adaptive controller (start 3,
/// bounds `1..=k_max` with `k_max` capped by the device's
/// [`crate::spec::max_verify_draft_len`] probe), on each generation. The
/// adaptive controller shrinks toward `k = 1` and stops paying for
/// doomed draft steps; CI fails if it ever loses to the fixed policy.
pub fn spec_adaptive_rows() -> Vec<SpecAdaptiveRow> {
    use ttscale::spec_decode::{AcceptanceTrace, DraftLenController};
    let fixed_k = 6usize;
    DeviceProfile::all()
        .iter()
        .filter_map(|device| {
            let run = |ctrl: &mut DraftLenController| {
                let mut trace = AcceptanceTrace::seeded(SPEC_TRACE_SEED, SPEC_LOW_ACCEPTANCE);
                crate::spec::measure_spec_decode(
                    device,
                    SPEC_TARGET,
                    SPEC_DRAFT,
                    SPEC_CTX_LEN,
                    ctrl,
                    &mut trace,
                    SPEC_ROUNDS,
                )
            };
            let mut fixed = DraftLenController::fixed(fixed_k);
            let f = run(&mut fixed).ok()?;
            let k_max = crate::spec::max_verify_draft_len(device, SPEC_TARGET, SPEC_CTX_LEN, 6);
            let mut adaptive = DraftLenController::adaptive(3.min(k_max), 1, k_max);
            let a = run(&mut adaptive).ok()?;
            Some(SpecAdaptiveRow {
                device: f.device.clone(),
                acceptance: SPEC_LOW_ACCEPTANCE,
                fixed_k,
                fixed_tps: f.spec_overlapped_tps,
                adaptive_mean_k: a.mean_draft_len,
                adaptive_tps: a.spec_overlapped_tps,
                advantage: a.spec_overlapped_tps / f.spec_overlapped_tps,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 17 — prompt length sensitivity.
// ---------------------------------------------------------------------

/// One Figure 17 point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig17Row {
    /// System label.
    pub system: String,
    /// Model label.
    pub model: String,
    /// Prompt length (context at decode time).
    pub prompt_len: usize,
    /// Batch size.
    pub batch: usize,
    /// Decode throughput, tokens/second.
    pub tokens_per_sec: f64,
}

/// Regenerates Figure 17 over a backend set (conventionally
/// [`crate::backend::npu_backend`]).
pub fn fig17_rows(backends: &[Box<dyn Backend>]) -> Vec<Fig17Row> {
    let mut out = Vec::new();
    for b in backends {
        for model in [ModelId::Qwen1_5B, ModelId::Qwen3B] {
            for &prompt in &[512usize, 1024, 2048, 4096] {
                for &batch in &[1usize, 2, 4, 8, 16] {
                    if let Ok(p) = b.decode(model, batch, prompt) {
                        out.push(Fig17Row {
                            system: b.name().to_string(),
                            model: model.label().to_string(),
                            prompt_len: prompt,
                            batch,
                            tokens_per_sec: p.tokens_per_sec,
                        });
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Table 4 — tile-group vs conventional-group vs F16 accuracy.
// ---------------------------------------------------------------------

/// One Table 4 column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table4Row {
    /// Variant label.
    pub variant: String,
    /// Measured relative weight RMSE.
    pub weight_rmse_rel: f64,
    /// WinoGrande-like accuracy, percent.
    pub winogrande_pct: f64,
    /// MMLU-like accuracy, percent.
    pub mmlu_pct: f64,
    /// Tiny-model perplexity (measured functionally).
    pub tiny_ppl: f64,
}

/// Regenerates Table 4 (Qwen2.5-1.5B geometry for the RMSE sample).
pub fn table4_rows(seed: u64) -> Vec<Table4Row> {
    // Weight-space error of each variant on an outlier-free sample (the
    // paper's premise: pretrained weights are near-Gaussian).
    let (k, n) = (512, 512);
    let w = gaussian_matrix(k, n, seed, 1.0, 0.0);
    let std = (w.iter().map(|v| (v * v) as f64).sum::<f64>() / w.len() as f64).sqrt();
    let rmse_of = |layout| {
        let qm = QuantizedMatrix::quantize(&w, k, n, QuantScheme::Q4_0, layout);
        QuantError::measure(&w, &qm.dequantize()).rmse / std
    };
    let f16_roundtrip: Vec<f32> = w.iter().map(|&v| F16::from_f32(v).to_f32()).collect();
    let r_tile = rmse_of(WeightLayout::HmxTileGroups);
    let r_common = rmse_of(WeightLayout::ColumnMajorGroups);
    let r_f16 = QuantError::measure(&w, &f16_roundtrip).rmse / std;

    // Tiny-model perplexity per variant.
    let tiny = ModelConfig::for_id(ModelId::Tiny);
    let (float_layers, embed) = ModelWeights::generate_float(&tiny, seed);
    let stream = ppl_stream(96);
    let quantize_with = |layout: WeightLayout| {
        map_layers(&float_layers, &tiny, &move |m, kk, nn| {
            QuantizedMatrix::quantize(m, kk, nn, QuantScheme::Q4_0, layout).dequantize()
        })
    };
    let f16_layers = map_layers(&float_layers, &tiny, &|m, _, _| {
        m.iter().map(|&v| F16::from_f32(v).to_f32()).collect()
    });
    let ppl_tile = perplexity_float(
        &tiny,
        &quantize_with(WeightLayout::HmxTileGroups),
        &embed,
        &stream,
    );
    let ppl_common = perplexity_float(
        &tiny,
        &quantize_with(WeightLayout::ColumnMajorGroups),
        &embed,
        &stream,
    );
    let ppl_f16 = perplexity_float(&tiny, &f16_layers, &embed, &stream);

    let wino = generate_items(ChoiceKind::WinoGrandeLike, 8000, seed);
    let mmlu = generate_items(ChoiceKind::MmluLike, 8000, seed + 1);
    let row = |label: &str, r: f64, ppl: f64| Table4Row {
        variant: label.to_string(),
        weight_rmse_rel: r,
        winogrande_pct: choice_eval(&wino, quant_capability(r), seed + 2),
        mmlu_pct: choice_eval(&mmlu, quant_capability(r), seed + 3),
        tiny_ppl: ppl,
    };
    vec![
        row("Tile group (ours)", r_tile, ppl_tile),
        row("Common group", r_common, ppl_common),
        row("F16", r_f16, ppl_f16),
    ]
}

// ---------------------------------------------------------------------
// Table 5 — LUT16 FP16 FlashAttention vs F32 attention accuracy.
// ---------------------------------------------------------------------

/// One Table 5 column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table5Row {
    /// Attention implementation label.
    pub variant: String,
    /// Model-level logit divergence vs the F32 path (mean KL).
    pub logit_kl: f64,
    /// WinoGrande-like accuracy, percent.
    pub winogrande_pct: f64,
    /// MMLU-like accuracy, percent.
    pub mmlu_pct: f64,
}

/// Regenerates Table 5: runs the tiny model's NPU forward (FP16
/// FlashAttention with the LUT softmax) against the F32 reference and
/// measures the logit divergence, then maps both through the choice evals.
pub fn table5_rows(seed: u64) -> Vec<Table5Row> {
    use edgellm::cpu_ref::forward_reference;
    use edgellm::kv_cache::KvCache;
    use edgellm::model::Model;

    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, seed).unwrap();
    let tokens: Vec<u32> = (0..24).map(|i| 4 + (i * 13) % 200).collect();

    // NPU path (FP16 FA + LUT exp): final-position logits.
    let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, 64).unwrap();
    let npu = model.prefill(&mut ctx, &mut cache, 0, &tokens).unwrap();
    // F32 reference path: same weights, conventional attention.
    let ref_logits = forward_reference(&model.cfg, &model.weights, &tokens);
    let last = &ref_logits[(tokens.len() - 1) * model.cfg.vocab..];

    let kl = mean_kl(last, &npu.logits, model.cfg.vocab);
    // Map divergence to capability exactly like quantization damage; the
    // divergence is tiny, so both variants score essentially identically
    // (the paper's Table 5 deltas are within noise).
    let cap_fa = quant_capability(kl.sqrt());
    let wino = generate_items(ChoiceKind::WinoGrandeLike, 8000, seed);
    let mmlu = generate_items(ChoiceKind::MmluLike, 8000, seed + 1);
    vec![
        Table5Row {
            variant: "Our LUT16 FA (FP16)".to_string(),
            logit_kl: kl,
            winogrande_pct: choice_eval(&wino, cap_fa, seed + 2),
            mmlu_pct: choice_eval(&mmlu, cap_fa, seed + 3),
        },
        Table5Row {
            variant: "F32 Attention".to_string(),
            logit_kl: 0.0,
            winogrande_pct: choice_eval(&wino, 1.0, seed + 2),
            mmlu_pct: choice_eval(&mmlu, 1.0, seed + 3),
        },
    ]
}

// ---------------------------------------------------------------------
// Extension: scaling-method comparison at matched budgets.
// ---------------------------------------------------------------------

/// One row of the method-comparison extension (not a paper exhibit; an
/// ablation across the TTS algorithms the paper describes in Section 2.1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExtMethodRow {
    /// Model label.
    pub model: String,
    /// Generation budget (decode batch).
    pub budget: usize,
    /// Best-of-N with the calibrated ORM, percent.
    pub best_of_n_pct: f64,
    /// Step-level beam search with the calibrated PRM, percent.
    pub beam_search_pct: f64,
    /// Self-consistency (majority vote, no reward model), percent.
    pub self_consistency_pct: f64,
    /// pass@N with an oracle verifier (the selection upper bound), percent.
    pub oracle_pct: f64,
}

/// Compares all scaling methods at matched budgets (MATH500 profile).
pub fn ext_method_comparison_rows(model: ModelId, seed: u64) -> Vec<ExtMethodRow> {
    use ttscale::{beam_search, self_consistency};

    let tasks = TaskGenerator::new(DatasetKind::Math500Like, seed).take(400);
    let policy = CalibratedPolicy::new(model, DatasetKind::Math500Like);
    let orm = SimOrm::default();
    let prm = ttscale::verifier::SimPrm::default();
    [1usize, 4, 16]
        .iter()
        .map(|&budget| ExtMethodRow {
            model: model.label().to_string(),
            budget,
            best_of_n_pct: best_of_n::accuracy_over_tasks(&policy, &orm, &tasks, budget, seed),
            beam_search_pct: beam_search::accuracy_over_tasks(
                &policy,
                &prm,
                &tasks,
                crate::pareto::beam_width_for_budget(budget),
                seed,
            ),
            self_consistency_pct: self_consistency::accuracy_over_tasks(
                &policy, &tasks, budget, seed,
            ),
            oracle_pct: best_of_n::pass_at_n_oracle(&policy, &tasks, budget, seed),
        })
        .collect()
}

#[cfg(test)]
mod ext_tests {
    use super::*;

    #[test]
    fn method_ordering_holds() {
        let rows = ext_method_comparison_rows(ModelId::Qwen1_5B, 9);
        for r in &rows {
            // The oracle bounds every realizable method.
            assert!(r.oracle_pct + 1e-9 >= r.best_of_n_pct, "{r:?}");
            assert!(r.oracle_pct + 1e-9 >= r.self_consistency_pct, "{r:?}");
            if r.budget > 1 {
                // Reward-model methods beat unguided majority voting at
                // equal budget on hard tasks.
                assert!(r.best_of_n_pct >= r.self_consistency_pct - 3.0, "{r:?}");
            }
        }
        // All methods scale with budget.
        assert!(rows[2].best_of_n_pct > rows[0].best_of_n_pct + 10.0);
        assert!(rows[2].beam_search_pct > rows[0].beam_search_pct + 10.0);
        assert!(rows[2].self_consistency_pct > rows[0].self_consistency_pct + 3.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_collapse() {
        let rows = table1_rows(7);
        let awq = &rows[0];
        let qnn = &rows[1];
        // Per-channel quantization collapses reasoning accuracy (paper:
        // MATH500 15.9 -> 2.1, GSM8K 32.6 -> 3.4).
        assert!(awq.math500_pct > 3.0 * qnn.math500_pct.max(0.5));
        assert!(awq.gsm8k_pct > 3.0 * qnn.gsm8k_pct.max(0.5));
        // The forward-pass damage instrument orders the same way, and the
        // mapped perplexity reproduces the anchors (paper: 19.42 vs 28.99).
        assert!(qnn.logit_kl > awq.logit_kl);
        assert!((awq.wiki_ppl_mapped - 19.42).abs() < 0.1);
        assert!((qnn.wiki_ppl_mapped - 28.99).abs() < 0.1);
    }

    #[test]
    fn table2_reproduces_unit_gap() {
        let rows = table2_rows();
        let hvx = &rows[0];
        let hmx = &rows[1];
        // Paper: 32.93 vs 12032.54 GFLOPS — over 300x.
        assert!(hmx.gemm_gflops / hvx.gemm_gflops > 300.0);
        assert!((hmx.gemm_gflops - 12032.54).abs() < 50.0);
        assert!((hmx.read_bw_gbs - 60.0).abs() < 2.0);
        assert!((hvx.read_bw_gbs - 26.0).abs() < 2.0);
    }

    #[test]
    fn fig8_shares_sum_to_hundred() {
        for row in fig8_rows() {
            let sum = row.load_store_pct + row.matmul_pct + row.softmax_pct;
            assert!((sum - 100.0).abs() < 1e-6, "q={} sums to {sum}", row.q_len);
        }
    }

    #[test]
    fn fig14_speedups_in_paper_band() {
        let rows = fig14_rows();
        for row in rows.iter().filter(|r| r.method == "F32 exp") {
            assert!(
                (1.2..2.3).contains(&row.lut_speedup),
                "Nkv={} Nq={}: {}",
                row.nkv,
                row.nq,
                row.lut_speedup
            );
        }
        for row in rows.iter().filter(|r| r.method == "F16 exp") {
            assert!(row.lut_speedup >= 1.0 && row.lut_speedup < 1.7);
        }
    }

    #[test]
    fn fig15_speedups_in_paper_band() {
        let rows = fig15_rows();
        let baselines: Vec<&Fig15Row> = rows.iter().filter(|r| r.variant == "baseline").collect();
        for b in &baselines {
            assert!(
                (7.0..22.0).contains(&b.ours_speedup),
                "{}: {}",
                b.config,
                b.ours_speedup
            );
        }
        // Mean slowdown vs the no-dequant bound ~27% in the paper.
        let bounds: Vec<f64> = rows
            .iter()
            .filter(|r| r.variant == "no dequant.")
            .map(|r| 1.0 / r.ours_speedup)
            .collect();
        let mean_ratio = bounds.iter().sum::<f64>() / bounds.len() as f64;
        assert!(
            (1.05..2.0).contains(&mean_ratio),
            "ours/bound mean {mean_ratio}"
        );
    }

    #[test]
    fn table4_tile_close_to_common_far_from_nothing() {
        let rows = table4_rows(3);
        let tile = &rows[0];
        let common = &rows[1];
        let f16 = &rows[2];
        // Tile and common grouping are near-equivalent (paper: 62.56 vs
        // 63.35 WinoGrande), both below F16.
        assert!((tile.winogrande_pct - common.winogrande_pct).abs() < 3.0);
        assert!(f16.winogrande_pct >= tile.winogrande_pct - 1.0);
        assert!(f16.tiny_ppl <= tile.tiny_ppl + 0.5);
        // F16 round-trip error is far below quantization error.
        assert!(tile.weight_rmse_rel > 10.0 * f16.weight_rmse_rel);
    }

    #[test]
    fn stream_rows_trade_sessions_for_hidden_fetches() {
        let rows = decode_stream_rows();
        assert_eq!(rows.len(), 4, "3 devices at ctx 1024 + the 8G2 rescue");
        // Where the resident plan runs, streaming must save at least one
        // session and keep at least 90% of the throughput (the CI gate).
        let resident: Vec<&DecodeStreamRow> = rows.iter().filter(|r| r.resident_runs).collect();
        assert_eq!(resident.len(), 3);
        for r in &resident {
            assert!(
                r.throughput_ratio >= 0.9,
                "{}: streamed/resident {}",
                r.device,
                r.throughput_ratio
            );
            assert!(r.streamed_sessions < r.resident_sessions, "{:?}", r);
            assert!(r.sessions_saved >= 1);
        }
        // The rescue configuration only exists streamed.
        let rescue = rows.iter().find(|r| !r.resident_runs).unwrap();
        assert_eq!((rescue.device.as_str(), rescue.ctx_len), ("8G2", 8192));
        assert!(rescue.streamed_tps > 0.0);
        assert_eq!(rescue.throughput_ratio, 0.0);
        assert_eq!(rescue.sessions_saved, 0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "minutes-long unoptimized; CI runs it in release"
    )]
    fn thermal_rows_throttle_every_generation() {
        let rows = thermal_decode_rows();
        assert_eq!(rows.len(), 3, "Qwen-3B b8 shards onto all devices");
        for r in &rows {
            // Every generation crosses its cap well inside the window.
            let step = r.first_throttle_step.expect("never throttled");
            assert!(step > 0, "{}: throttled on the cold first step", r.device);
            assert!(
                r.first_throttle_secs.unwrap() < THERMAL_WINDOW_SECS / 2.0,
                "{}: throttles too late to matter",
                r.device
            );
            // Throttling costs throughput but the fixed switch overheads
            // keep the drop milder than the raw clock cut.
            assert!(r.sustained_tps < r.burst_tps, "{:?}", r);
            assert!(r.degradation >= 0.55, "{}: {}", r.device, r.degradation);
            assert!(r.avg_tps > r.sustained_tps && r.avg_tps < r.burst_tps);
            // Cube-law power: the sustained point is the efficient one.
            assert!(r.sustained_power_w < r.burst_power_w);
            assert!(r.sustained_tokens_per_joule > r.burst_tokens_per_joule);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "minutes-long unoptimized; CI runs it in release"
    )]
    fn thermal_aware_dispatch_beats_blind_on_the_pinned_trace() {
        let rows = fleet_thermal_rows(20260808).unwrap();
        let (blind, aware) = (&rows[0], &rows[1]);
        assert_eq!(blind.policy, "blind");
        assert_eq!(aware.policy, "aware");
        // Same physics, same trace — only the dispatch oracle differs.
        // Routing around hot workers lets dies recover to burst clocks,
        // so aware wins goodput and spends fewer steps throttled.
        assert!(
            aware.goodput_rps > blind.goodput_rps,
            "aware {} vs blind {}",
            aware.goodput_rps,
            blind.goodput_rps
        );
        assert!(aware.tbt_p99_secs <= blind.tbt_p99_secs);
        assert!(aware.throttled_steps < blind.throttled_steps);
        // Both run hot enough for the comparison to be about thermals.
        assert!(blind.throttled_steps > 0);
        assert!(blind.peak_temp_c > DeviceProfile::v75().ambient_temp_c);
    }

    #[test]
    fn spec_rows_beat_plain_decode_on_every_generation() {
        let rows = spec_decode_rows();
        assert_eq!(rows.len(), 3, "the 1.5B/0.5B pair fits every device");
        for r in &rows {
            // The CI gate: overlapped speculation must beat plain decode
            // in end-to-end accepted-tokens/sec at the pinned trace
            // (measured 1.21-1.31x across the generations).
            assert!(
                r.speedup > 1.1,
                "{}: spec-overlapped {} vs plain {}",
                r.device,
                r.spec_overlapped_tps,
                r.plain_tps
            );
            // The DRAFT lane is doing real work: overlapped speculation
            // beats its own serial schedule by ~1.5x (the draft's CPU
            // share — lm_head over the 152k vocab — hides behind the
            // verify kernels).
            assert!(r.overlap_gain > 1.3, "{}: {}", r.device, r.overlap_gain);
            // And the decomposition's inputs are in the expected regime.
            assert!((0.3..0.8).contains(&r.draft_step_frac), "{r:?}");
            assert!((1.3..1.8).contains(&r.mean_accepted), "{r:?}");
        }
    }

    #[test]
    fn adaptive_draft_length_beats_fixed_on_the_cold_trace() {
        let rows = spec_adaptive_rows();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // The CI gate: on a cold trace the adaptive controller stops
            // paying for doomed draft steps and wins throughput
            // (measured ~5.5x against a fixed k=6).
            assert!(
                r.advantage > 2.0,
                "{}: adaptive {} vs fixed {}",
                r.device,
                r.adaptive_tps,
                r.fixed_tps
            );
            // It wins by actually shrinking the draft length.
            assert!(
                r.adaptive_mean_k < r.fixed_k as f64,
                "{}: mean k {}",
                r.device,
                r.adaptive_mean_k
            );
        }
    }

    #[test]
    fn table5_attention_variants_are_equivalent() {
        let rows = table5_rows(5);
        let fa = &rows[0];
        let f32_ref = &rows[1];
        assert!(fa.logit_kl < 0.05, "logit KL {}", fa.logit_kl);
        assert!(
            (fa.winogrande_pct - f32_ref.winogrande_pct).abs() < 1.5,
            "{} vs {}",
            fa.winogrande_pct,
            f32_ref.winogrande_pct
        );
        assert!((fa.mmlu_pct - f32_ref.mmlu_pct).abs() < 1.5);
    }
}
