//! Memory and CPU-utilization accounting (Figure 16, Section 7.5).
//!
//! The paper reports three runtime footprints during decode: dmabuf (NPU
//! shared memory: weights + KV cache, constant in batch), CPU resident
//! memory (lm_head weights, logits buffers, runtime — growing mildly with
//! batch), and CPU utilization (pinned near 3-3.5 of 4 big cores, rising
//! with the vocabulary-projection load).

use edgellm::config::{ModelConfig, ModelId};
use serde::{Deserialize, Serialize};

use crate::pipeline::DecodePoint;
use crate::session::ShardPlan;

/// One memory/CPU overhead measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// System label (the backend the decode point came from).
    pub system: String,
    /// Model label.
    pub model: String,
    /// Decode batch size.
    pub batch: usize,
    /// CPU resident memory in MiB.
    pub cpu_rss_mib: f64,
    /// NPU shared-memory (dmabuf) footprint in MiB.
    pub dmabuf_mib: f64,
    /// CPU utilization in percent (400% = four cores saturated).
    pub cpu_util_pct: f64,
}

/// Fixed runtime overhead resident on the CPU (code, allocator, tokenizer,
/// graph metadata), MiB.
const RUNTIME_RSS_MIB: f64 = 22.0;

/// Computes the overhead point for a decode measurement at a context
/// budget (4096 in the paper's Section 7.5). `system` labels the backend
/// the point was measured on.
pub fn measure_overhead(
    model: ModelId,
    point: &DecodePoint,
    ctx_budget: usize,
    system: &str,
) -> OverheadPoint {
    let cfg = ModelConfig::for_id(model);
    let mib = |b: f64| b / (1024.0 * 1024.0);

    // CPU RSS: lm_head weights (~1 byte/weight on the CPU path), logits
    // (f32 per batch row), activations staged for the NPU handoff.
    let lm_head = cfg.cpu_lm_head_bytes() as f64;
    let logits = (point.batch * cfg.vocab * 4) as f64;
    let staging = (point.batch * cfg.hidden * 4 * 8) as f64;
    let cpu_rss_mib = mib(lm_head + logits + staging) + RUNTIME_RSS_MIB;

    // dmabuf: constant in batch (weights + KV budget + pools).
    let dmabuf_mib = mib(cfg.dmabuf_bytes(ctx_budget) as f64);

    // CPU utilization: ~3 cores of polling/orchestration baseline plus the
    // logits share of the step mapped onto the big cores.
    let cpu_util_pct = 100.0 * (3.0 + 0.6 * point.cpu_share * 4.0).min(4.0);

    OverheadPoint {
        system: system.to_string(),
        model: point.model.clone(),
        batch: point.batch,
        cpu_rss_mib,
        dmabuf_mib,
        cpu_util_pct,
    }
}

/// Computes the overhead point for a decode over a weight-streaming
/// placement. The hot/cold hierarchy moves the footprint rather than
/// shrinking it: cold transformer layers leave the NPU-mapped dmabuf (only
/// the double-buffered stream window stays pinned there alongside the hot
/// layers and KV) and live instead in the CPU-owned DDR staging region,
/// which — like any malloc'd weight cache — counts toward CPU resident
/// memory. Resident plans pass through [`measure_overhead`] unchanged.
pub fn measure_overhead_planned(
    model: ModelId,
    point: &DecodePoint,
    ctx_budget: usize,
    system: &str,
    plan: &ShardPlan,
) -> OverheadPoint {
    let mut out = measure_overhead(model, point, ctx_budget, system);
    if plan.is_streaming() {
        let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
        out.dmabuf_mib =
            (out.dmabuf_mib - mib(plan.staged_bytes) + mib(plan.window_bytes)).max(0.0);
        out.cpu_rss_mib += mib(plan.staged_bytes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::measure_decode;
    use hexsim::prelude::*;

    fn point(model: ModelId, batch: usize) -> OverheadPoint {
        let d = DeviceProfile::v75();
        let p = measure_decode(&d, model, batch, 1024).unwrap();
        measure_overhead(model, &p, 4096, "Ours")
    }

    #[test]
    fn dmabuf_matches_paper_section_7_5() {
        // Paper: 1056 MiB (1.5B) and 2090 MiB (3B) at a 4096 context
        // budget, constant across batch sizes.
        let q15_b1 = point(ModelId::Qwen1_5B, 1);
        let q15_b16 = point(ModelId::Qwen1_5B, 16);
        assert!((q15_b1.dmabuf_mib - q15_b16.dmabuf_mib).abs() < 1e-9);
        assert!(
            (900.0..1250.0).contains(&q15_b1.dmabuf_mib),
            "1.5B dmabuf {} MiB (paper 1056)",
            q15_b1.dmabuf_mib
        );
        let q3 = point(ModelId::Qwen3B, 1);
        assert!(
            (1800.0..2400.0).contains(&q3.dmabuf_mib),
            "3B dmabuf {} MiB (paper 2090)",
            q3.dmabuf_mib
        );
    }

    #[test]
    fn cpu_rss_in_figure_16_range_and_growing() {
        let b1 = point(ModelId::Qwen1_5B, 1);
        let b16 = point(ModelId::Qwen1_5B, 16);
        // Paper Figure 16a: ~250-300 MiB, rising mildly with batch.
        assert!(
            (180.0..340.0).contains(&b1.cpu_rss_mib),
            "batch-1 rss {}",
            b1.cpu_rss_mib
        );
        assert!(b16.cpu_rss_mib > b1.cpu_rss_mib);
        assert!(b16.cpu_rss_mib - b1.cpu_rss_mib < 80.0);
    }

    #[test]
    fn streaming_moves_cold_weights_from_dmabuf_to_cpu() {
        use crate::backend::{Backend, NpuSimBackend};
        use edgellm::config::ModelConfig;
        let d = DeviceProfile::v73();
        let b = NpuSimBackend::streamed(d.clone());
        let p = b.decode(ModelId::Qwen7B, 8, 1024).unwrap();
        let cfg = ModelConfig::for_id(ModelId::Qwen7B);
        let plan = ShardPlan::build_streaming(&cfg, d.session_va_bytes, 8, 1024).unwrap();
        let resident = measure_overhead(ModelId::Qwen7B, &p, 4096, "Ours (streamed)");
        let streamed =
            measure_overhead_planned(ModelId::Qwen7B, &p, 4096, "Ours (streamed)", &plan);
        let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
        // The dmabuf sheds exactly the staged cold layers and gains back
        // the double-buffered window; the CPU picks the staged bytes up.
        let delta = resident.dmabuf_mib - streamed.dmabuf_mib;
        assert!(
            (delta - (mib(plan.staged_bytes) - mib(plan.window_bytes))).abs() < 1e-9,
            "dmabuf delta {delta} MiB"
        );
        assert!(streamed.dmabuf_mib < resident.dmabuf_mib / 2.0);
        assert!(
            (streamed.cpu_rss_mib - resident.cpu_rss_mib - mib(plan.staged_bytes)).abs() < 1e-9
        );
        // A resident plan is a no-op through the planned entry point.
        let resident_plan = ShardPlan::build(&cfg, d.session_va_bytes, 8, 1024).unwrap();
        let same = measure_overhead_planned(ModelId::Qwen7B, &p, 4096, "Ours", &resident_plan);
        assert_eq!(same.dmabuf_mib, resident.dmabuf_mib);
        assert_eq!(same.cpu_rss_mib, resident.cpu_rss_mib);
    }

    #[test]
    fn cpu_utilization_limited_to_four_cores() {
        let b1 = point(ModelId::Qwen1_5B, 1);
        let b16 = point(ModelId::Qwen1_5B, 16);
        // Paper Figure 16b: ~320% rising to ~340%, never above 400%.
        assert!(b1.cpu_util_pct >= 295.0 && b1.cpu_util_pct <= 400.0);
        assert!(b16.cpu_util_pct > b1.cpu_util_pct);
        assert!(b16.cpu_util_pct <= 400.0);
    }
}
