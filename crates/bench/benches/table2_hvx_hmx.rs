//! Table 2: HVX vs HMX unit performance, plus the Table 3 device list.

fn main() {
    benchutil::banner(
        "Table 2 - HVX vs HMX FP16 GEMM and read bandwidth (V75)",
        "paper Table 2: HVX 32.93 GFLOPS / 26 GB/s; HMX 12032.54 GFLOPS / 60 GB/s",
    );
    for r in npuscale::experiments::table2_rows() {
        println!(
            "{:<16} GEMM {:>9.2} GFLOPS   read {:>6.1} GB/s",
            r.unit, r.gemm_gflops, r.read_bw_gbs
        );
    }
    benchutil::banner("Table 3 - evaluation devices", "paper Table 3");
    for d in hexsim::device::DeviceProfile::all() {
        println!(
            "{:<18} {:<22} NPU {:?} ({})",
            d.name,
            d.soc,
            d.arch,
            d.arch.soc_label()
        );
    }
}
