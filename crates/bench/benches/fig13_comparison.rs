//! Figure 13: throughput comparison with the GPU and QNN baselines,
//! driven through the `Backend` trait. The "Ours (async)" series adds the
//! Section 7.2.2 overlap-aware dispatch on top of the paper's legend.

use hexsim::device::DeviceProfile;
use npuscale::backend::{figure13_backends, Backend, NpuSimBackend};

fn main() {
    benchutil::banner(
        "Figure 13 - inference throughput vs llama.cpp-OpenCL and QNN FP16",
        "paper Fig 13: GPU wins batch-1 decode; ours wins batched decode + prefill",
    );
    let mut backends = figure13_backends(&DeviceProfile::v75());
    let [_, overlapped, _] = NpuSimBackend::variants(&DeviceProfile::v75());
    backends.push(Box::new(overlapped) as Box<dyn Backend>);
    println!("--- decode (tok/s) ---");
    let rows = npuscale::experiments::fig13_decode_rows(&backends);
    println!(
        "{:<18} {:<6} {:>6} {:>10}",
        "system", "model", "batch", "tok/s"
    );
    for r in &rows {
        println!(
            "{:<18} {:<6} {:>6} {:>10.1}",
            r.system, r.model, r.batch, r.tokens_per_sec
        );
    }
    println!("\n--- prefill (tok/s) ---");
    let rows = npuscale::experiments::fig13_prefill_rows(&backends);
    println!(
        "{:<18} {:<6} {:>8} {:>10}",
        "system", "model", "prompt", "tok/s"
    );
    for r in &rows {
        println!(
            "{:<18} {:<6} {:>8} {:>10.1}",
            r.system, r.model, r.prompt_len, r.tokens_per_sec
        );
    }
}
