//! Figure 13: throughput comparison with the GPU and QNN baselines,
//! driven through the `Backend` trait.

use hexsim::device::DeviceProfile;
use npuscale::backend::figure13_backends;

fn main() {
    benchutil::banner(
        "Figure 13 - inference throughput vs llama.cpp-OpenCL and QNN FP16",
        "paper Fig 13: GPU wins batch-1 decode; ours wins batched decode + prefill",
    );
    let backends = figure13_backends(&DeviceProfile::v75());
    println!("--- decode (tok/s) ---");
    let rows = npuscale::experiments::fig13_decode_rows(&backends);
    println!(
        "{:<18} {:<6} {:>6} {:>10}",
        "system", "model", "batch", "tok/s"
    );
    for r in &rows {
        println!(
            "{:<18} {:<6} {:>6} {:>10.1}",
            r.system, r.model, r.batch, r.tokens_per_sec
        );
    }
    println!("\n--- prefill (tok/s) ---");
    let rows = npuscale::experiments::fig13_prefill_rows(&backends);
    println!(
        "{:<18} {:<6} {:>8} {:>10}",
        "system", "model", "prompt", "tok/s"
    );
    for r in &rows {
        println!(
            "{:<18} {:<6} {:>8} {:>10.1}",
            r.system, r.model, r.prompt_len, r.tokens_per_sec
        );
    }
}
