//! Figure 10: accuracy-latency trade-off of test-time scaling.

use hexsim::device::DeviceProfile;
use mathsynth::mathgen::DatasetKind;
use npuscale::pareto::Method;

fn main() {
    benchutil::banner(
        "Figure 10 - accuracy vs per-token decode latency",
        "paper Fig 10: TTS series dominate larger base models",
    );
    for device in [DeviceProfile::v75(), DeviceProfile::v79()] {
        for dataset in [DatasetKind::Math500Like, DatasetKind::Gsm8kLike] {
            for method in [Method::BestOfN, Method::BeamSearch] {
                println!(
                    "\n--- {} - {} - {} ---",
                    dataset.label(),
                    device.arch.soc_label(),
                    method.label()
                );
                println!(
                    "{:<10} {:>7} {:>10} {:>14}",
                    "series", "budget", "accuracy", "latency/token"
                );
                let rows = npuscale::experiments::fig10_rows(&device, dataset, method, 42);
                for p in rows {
                    println!(
                        "{:<10} {:>7} {:>9.1}% {:>14}",
                        p.series,
                        p.budget,
                        p.accuracy_pct,
                        benchutil::fmt_secs(p.per_token_latency_s)
                    );
                }
            }
        }
    }
}
