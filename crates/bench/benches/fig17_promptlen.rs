//! Figure 17: impact of prompt length on decoding throughput, driven
//! through the `Backend` trait — serial and overlap-aware async dispatch
//! side by side.

use hexsim::device::DeviceProfile;
use npuscale::backend::npu_backends_both;

fn main() {
    benchutil::banner(
        "Figure 17 - decode throughput vs prompt length",
        "paper Fig 17: mild decline from 512 to 4096 tokens",
    );
    let backends = npu_backends_both(&DeviceProfile::v75());
    println!(
        "{:<8} {:<6} {:>8} {:>6} {:>10}",
        "system", "model", "prompt", "batch", "tok/s"
    );
    for r in npuscale::experiments::fig17_rows(&backends) {
        println!(
            "{:<8} {:<6} {:>8} {:>6} {:>10.1}",
            r.system, r.model, r.prompt_len, r.batch, r.tokens_per_sec
        );
    }
}
