//! Figure 17: impact of prompt length on decoding throughput.

fn main() {
    benchutil::banner(
        "Figure 17 - decode throughput vs prompt length",
        "paper Fig 17: mild decline from 512 to 4096 tokens",
    );
    println!(
        "{:<6} {:>8} {:>6} {:>10}",
        "model", "prompt", "batch", "tok/s"
    );
    for r in npuscale::experiments::fig17_rows() {
        println!(
            "{:<6} {:>8} {:>6} {:>10.1}",
            r.model, r.prompt_len, r.batch, r.tokens_per_sec
        );
    }
}
