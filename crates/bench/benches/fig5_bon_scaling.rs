//! Figure 5: Best-of-N accuracy vs generation budget on MATH500.

fn main() {
    benchutil::banner(
        "Figure 5 - Best-of-N scaling on MATH500",
        "paper Fig 5: accuracy climbs with budget, ~20%->~50% (L1)",
    );
    let rows = npuscale::experiments::fig5_rows(11);
    let mut current = String::new();
    for r in &rows {
        if r.model != current {
            current = r.model.clone();
            println!("\n{current}");
            println!("{:>8} {:>10}", "budget", "accuracy");
        }
        println!("{:>8} {:>9.1}%", r.budget, r.accuracy_pct);
    }
}
