//! Figure 16: CPU/memory overhead during decode (our runtime's operator
//! placement, measured through the `Backend` trait) — serial and
//! overlap-aware async dispatch side by side (the async rows show higher
//! CPU utilization because the same CPU busy time packs into a shorter
//! step).

use hexsim::device::DeviceProfile;
use npuscale::backend::npu_backends_both;

fn main() {
    benchutil::banner(
        "Figure 16 - CPU memory and utilization during decode",
        "paper Fig 16 + Sec 7.5: RSS ~250-300 MiB; dmabuf 1056/2090 MiB; CPU 320-340%",
    );
    let backends = npu_backends_both(&DeviceProfile::v75());
    println!(
        "{:<8} {:<6} {:>6} {:>12} {:>12} {:>10}",
        "system", "model", "batch", "CPU RSS", "dmabuf", "CPU util"
    );
    for r in npuscale::experiments::fig16_rows(&backends) {
        println!(
            "{:<8} {:<6} {:>6} {:>8.0} MiB {:>8.0} MiB {:>9.0}%",
            r.system, r.model, r.batch, r.cpu_rss_mib, r.dmabuf_mib, r.cpu_util_pct
        );
    }
}
