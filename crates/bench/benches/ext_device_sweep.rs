//! Extension bench: decode throughput across every execution backend,
//! plus power and dmabuf footprint for the NPU runtime, on the three
//! Snapdragon generations — Figures 11, 12 and 16 in one table. Models
//! that exceed one 32-bit session (Qwen-3B on the 8 Gen 2, Qwen-7B
//! everywhere) run the paper's Section 8 multi-session sharding and
//! print their session count.

use edgellm::config::ModelId;
use hexsim::device::DeviceProfile;
use npuscale::backend::{decode_sweep, npu_backends_all, SweepOutcome};
use npuscale::memory::measure_overhead;
use npuscale::power::PowerModel;

fn main() {
    benchutil::banner(
        "Extension - device sweep (decode / power / memory, all backends)",
        "paper Figs 11+12+16 across Hexagon V73/V75/V79 + GPU/QNN/CPU baselines",
    );
    for device in DeviceProfile::all() {
        println!(
            "\n{} / {} (Hexagon {:?})",
            device.name, device.soc, device.arch
        );
        println!(
            "{:<18} {:<8} {:>9} {:>9} {:>9} {:>9} {:>12} {:>9}",
            "system",
            "model",
            "b1 tok/s",
            "b8 tok/s",
            "b16 tok/s",
            "W @ b8",
            "dmabuf MiB",
            "sessions"
        );
        let pm = PowerModel::new(device.clone());
        // All three runtime variants (serial, async, streamed) plus the
        // analytic baselines, from the shared construction point.
        let backends = npu_backends_all(&device);
        for model in [
            ModelId::Llama1B,
            ModelId::Qwen1_5B,
            ModelId::Qwen3B,
            ModelId::Qwen7B,
        ] {
            for b in &backends {
                let sweep = decode_sweep(b.as_ref(), model, 1024, &[1, 8, 16]);
                let shard_tag = sweep.shard_tag();
                let points = match sweep {
                    SweepOutcome::CannotRun(reason) => {
                        println!("{:<18} {:<8} cannot run: {reason}", b.name(), model.label());
                        continue;
                    }
                    SweepOutcome::Ran(points) => points,
                };
                let tps = |p: &Option<npuscale::DecodePoint>| match p {
                    Some(p) => format!("{:>9.1}", p.tokens_per_sec),
                    None => format!("{:>9}", "-"),
                };
                // Power/dmabuf accounting only describes the NPU runtime;
                // analytic points carry no engine activity.
                let (power, dmabuf) = match &points[1] {
                    Some(p8) if p8.has_engine_activity() => {
                        let mem = measure_overhead(model, p8, 4096, b.name());
                        (
                            format!("{:>9.2}", pm.measure(p8).power_w),
                            format!("{:>12.0}", mem.dmabuf_mib),
                        )
                    }
                    _ => (format!("{:>9}", "-"), format!("{:>12}", "-")),
                };
                // Sharded rows (Section 8 multi-session) carry "xN"; a
                // row whose larger batches need more sessions (KV
                // growth) spans counts, e.g. "x3-4".
                let shard = format!("{:>9}", shard_tag.unwrap_or_else(|| "1".to_string()));
                println!(
                    "{:<18} {:<8} {} {} {} {} {} {}",
                    b.name(),
                    model.label(),
                    tps(&points[0]),
                    tps(&points[1]),
                    tps(&points[2]),
                    power,
                    dmabuf,
                    shard
                );
            }
        }
    }
}
