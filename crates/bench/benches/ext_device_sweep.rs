//! Extension bench: decode throughput, power and dmabuf footprint across
//! the three Snapdragon generations — Figures 11, 12 and 16 in one table.

use edgellm::config::ModelId;
use hexsim::device::DeviceProfile;
use npuscale::memory::measure_overhead;
use npuscale::pipeline::measure_decode;
use npuscale::power::PowerModel;

fn main() {
    benchutil::banner(
        "Extension - device sweep (decode / power / memory)",
        "paper Figs 11+12+16 across Hexagon V73/V75/V79",
    );
    for device in DeviceProfile::all() {
        println!(
            "\n{} / {} (Hexagon {:?})",
            device.name, device.soc, device.arch
        );
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>9} {:>12}",
            "model", "b1 tok/s", "b8 tok/s", "b16 tok/s", "W @ b8", "dmabuf MiB"
        );
        let pm = PowerModel::new(device.clone());
        for model in [ModelId::Llama1B, ModelId::Qwen1_5B, ModelId::Qwen3B] {
            // KV-cache VA usage grows with batch, so larger batches can hit
            // the session VA gate even when batch 1 fits — report each batch
            // size independently instead of assuming b1 implies b8/b16.
            let measured = [1, 8, 16].map(|batch| measure_decode(&device, model, batch, 1024));
            match measured {
                [Ok(p1), Ok(p8), Ok(p16)] => {
                    let power = pm.measure(&p8);
                    let mem = measure_overhead(model, &p8, 4096);
                    println!(
                        "{:<8} {:>9.1} {:>9.1} {:>9.1} {:>9.2} {:>12.0}",
                        model.label(),
                        p1.tokens_per_sec,
                        p8.tokens_per_sec,
                        p16.tokens_per_sec,
                        power.power_w,
                        mem.dmabuf_mib
                    );
                }
                [Err(e), ..] | [_, Err(e), _] | [_, _, Err(e)] => {
                    println!("{:<8} cannot run: {e}", model.label())
                }
            }
        }
    }
}
