//! Extension bench: decode throughput across every execution backend,
//! plus power and dmabuf footprint for the NPU runtime, on the three
//! Snapdragon generations — Figures 11, 12 and 16 in one table.

use edgellm::config::ModelId;
use hexsim::device::DeviceProfile;
use npuscale::backend::{all_backends, decode_sweep, SweepOutcome};
use npuscale::memory::measure_overhead;
use npuscale::power::PowerModel;

fn main() {
    benchutil::banner(
        "Extension - device sweep (decode / power / memory, all backends)",
        "paper Figs 11+12+16 across Hexagon V73/V75/V79 + GPU/QNN/CPU baselines",
    );
    for device in DeviceProfile::all() {
        println!(
            "\n{} / {} (Hexagon {:?})",
            device.name, device.soc, device.arch
        );
        println!(
            "{:<18} {:<8} {:>9} {:>9} {:>9} {:>9} {:>12}",
            "system", "model", "b1 tok/s", "b8 tok/s", "b16 tok/s", "W @ b8", "dmabuf MiB"
        );
        let pm = PowerModel::new(device.clone());
        let backends = all_backends(&device);
        for model in [ModelId::Llama1B, ModelId::Qwen1_5B, ModelId::Qwen3B] {
            for b in &backends {
                let points = match decode_sweep(b.as_ref(), model, 1024, &[1, 8, 16]) {
                    SweepOutcome::NeedsSharding(sessions) => {
                        println!(
                            "{:<18} {:<8} needs {} sessions (32-bit VA gate)",
                            b.name(),
                            model.label(),
                            sessions
                        );
                        continue;
                    }
                    SweepOutcome::CannotRun(reason) => {
                        println!("{:<18} {:<8} cannot run: {reason}", b.name(), model.label());
                        continue;
                    }
                    SweepOutcome::Ran(points) => points,
                };
                let tps = |p: &Option<npuscale::DecodePoint>| match p {
                    Some(p) => format!("{:>9.1}", p.tokens_per_sec),
                    None => format!("{:>9}", "-"),
                };
                // Power/dmabuf accounting only describes the NPU runtime;
                // analytic points carry no engine activity.
                let (power, dmabuf) = match &points[1] {
                    Some(p8) if p8.has_engine_activity() => {
                        let mem = measure_overhead(model, p8, 4096, b.name());
                        (
                            format!("{:>9.2}", pm.measure(p8).power_w),
                            format!("{:>12.0}", mem.dmabuf_mib),
                        )
                    }
                    _ => (format!("{:>9}", "-"), format!("{:>12}", "-")),
                };
                println!(
                    "{:<18} {:<8} {} {} {} {} {}",
                    b.name(),
                    model.label(),
                    tps(&points[0]),
                    tps(&points[1]),
                    tps(&points[2]),
                    power,
                    dmabuf
                );
            }
        }
    }
}
