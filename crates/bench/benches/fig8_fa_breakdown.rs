//! Figure 8: FlashAttention latency breakdown on the simulated NPU.

fn main() {
    benchutil::banner(
        "Figure 8 - FlashAttention latency breakdown (Qwen2.5-1.5B, prompt 4096)",
        "paper Fig 8: load/store 58.3% at q=4 shrinking to 11.3%; softmax to 84.6%",
    );
    println!(
        "{:>6} {:>14} {:>10} {:>10}",
        "q", "QKVO ld/st", "MatMul", "Softmax"
    );
    for r in npuscale::experiments::fig8_rows() {
        println!(
            "{:>6} {:>13.1}% {:>9.1}% {:>9.1}%",
            r.q_len, r.load_store_pct, r.matmul_pct, r.softmax_pct
        );
    }
}
