//! Table 5: FP16 LUT FlashAttention vs F32 attention accuracy.

fn main() {
    benchutil::banner(
        "Table 5 - LUT16 FP16 FlashAttention vs conventional F32 attention",
        "paper Table 5: 62.80 vs 62.56 WinoGrande; 35.21 vs 35.47 MMLU (equivalent)",
    );
    println!(
        "{:<22} {:>10} {:>12} {:>8}",
        "variant", "logit KL", "WinoGrande", "MMLU"
    );
    for r in npuscale::experiments::table5_rows(5) {
        println!(
            "{:<22} {:>10.5} {:>11.1}% {:>7.1}%",
            r.variant, r.logit_kl, r.winogrande_pct, r.mmlu_pct
        );
    }
}
