//! Extension bench: speculative decoding on the simulated NPU (paper
//! Section 9's generate-then-verify sketch) — acceptance rate and
//! simulated speedup for draft models of increasing quality.

use hexsim::prelude::*;
use htpops::gemm::DequantVariant;
use ttscale::spec_decode::{greedy_generate, speculative_generate, BigramDraft, DraftModel};

/// Draft that always proposes the target's own greedy choice: the upper
/// bound of drafting quality. The proposal index is derived from the
/// context (committed + drafted tokens so far), not an internal counter —
/// `speculative_generate` commits `draft_len + 1` tokens per fully
/// accepted round (the bonus token comes from the final verify position),
/// so a per-call counter would fall one token behind every round.
struct OracleDraft {
    stream: Vec<u32>,
    prompt_len: usize,
}

impl DraftModel for OracleDraft {
    fn propose(&mut self, context: &[u32]) -> u32 {
        let pos = context.len() - self.prompt_len;
        self.stream[pos.min(self.stream.len() - 1)]
    }
}

fn main() {
    benchutil::banner(
        "Extension - speculative decoding (generate-then-verify)",
        "paper Section 9: batched verification rides idle HMX tiles",
    );
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let model = edgellm::model::Model::new(
        &mut ctx,
        edgellm::config::ModelId::Tiny,
        DequantVariant::CoalescedLut,
        21,
    )
    .expect("tiny model fits every profile");
    let prompt = vec![1u32, 50, 60, 70, 80];
    let new_tokens = 16;

    let (greedy, greedy_cost) =
        greedy_generate(&mut ctx, &model, &prompt, new_tokens).expect("greedy decode");
    println!(
        "{:<14} {:>12} {:>16} {:>14}",
        "draft", "target steps", "accepted/step", "sim latency"
    );
    println!(
        "{:<14} {:>12} {:>16} {:>14}",
        "(none/greedy)",
        new_tokens,
        "1.00",
        benchutil::fmt_secs(greedy_cost.wall_secs())
    );

    let mut bigram = BigramDraft::new(4);
    let weak = speculative_generate(&mut ctx, &model, &mut bigram, &prompt, new_tokens, 3)
        .expect("bigram speculative decode");
    assert_eq!(weak.tokens, greedy, "speculation must be lossless");
    println!(
        "{:<14} {:>12} {:>16.2} {:>14}",
        "bigram",
        weak.target_steps,
        weak.mean_accepted,
        benchutil::fmt_secs(weak.cost.wall_secs())
    );

    let mut oracle = OracleDraft {
        stream: greedy.clone(),
        prompt_len: prompt.len(),
    };
    let perfect = speculative_generate(&mut ctx, &model, &mut oracle, &prompt, new_tokens, 3)
        .expect("oracle speculative decode");
    assert_eq!(perfect.tokens, greedy, "speculation must be lossless");
    println!(
        "{:<14} {:>12} {:>16.2} {:>14}",
        "oracle",
        perfect.target_steps,
        perfect.mean_accepted,
        benchutil::fmt_secs(perfect.cost.wall_secs())
    );
    println!(
        "\noracle speedup over greedy: {:.2}x fewer target steps",
        new_tokens as f64 / perfect.target_steps as f64
    );
}
