//! Criterion microbenchmarks of the functional simulator kernels.
//!
//! Unlike the figure/table harnesses (which report *simulated device*
//! latencies), these measure the host-side execution speed of the
//! bit-exact functional paths — useful when optimizing the simulator
//! itself and as a regression guard for the hot loops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hexsim::f16::F16;
use hexsim::prelude::*;
use htpops::dequant::{dequant_super_q4_lut, DequantEnv};
use htpops::exp_lut::{ExpLut16, ExpMethod};
use htpops::softmax::{softmax_rows, SoftmaxConfig};
use tilequant::block::BlockQ4_0;
use tilequant::super_group::SuperBlockQ4;

fn bench_f16_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("f16");
    group.throughput(Throughput::Elements(4096));
    let values: Vec<f32> = (0..4096).map(|i| (i as f32) * 0.37 - 700.0).collect();
    group.bench_function("from_f32_rtne_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &v in &values {
                acc = acc.wrapping_add(F16::from_f32(std::hint::black_box(v)).0 as u32);
            }
            acc
        })
    });
    // The chunked SIMD-friendly slice converters (bit-identical results,
    // pinned by hexsim's exhaustive tests) against the scalar loops above
    // — the hot path of the CPU lm_head and embedding staging.
    let mut half = vec![F16::ZERO; 4096];
    group.bench_function("from_f32_slice_4096", |b| {
        b.iter(|| {
            F16::from_f32_slice(std::hint::black_box(&values), &mut half);
            half[0].0
        })
    });
    F16::from_f32_slice(&values, &mut half);
    group.bench_function("to_f32_scalar_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &h in &half {
                acc += std::hint::black_box(h).to_f32();
            }
            acc
        })
    });
    let mut floats = vec![0.0f32; 4096];
    group.bench_function("to_f32_slice_4096", |b| {
        b.iter(|| {
            F16::to_f32_slice(std::hint::black_box(&half), &mut floats);
            floats[0]
        })
    });
    group.finish();
}

fn bench_lut_dequant(c: &mut Criterion) {
    let mut group = c.benchmark_group("dequant");
    group.throughput(Throughput::Elements(256));
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let env = DequantEnv::new(&mut ctx);
    let blocks: [BlockQ4_0; 8] = std::array::from_fn(|g| {
        let vals: Vec<f32> = (0..32)
            .map(|i| ((g * 32 + i) as f32 * 0.11).sin())
            .collect();
        BlockQ4_0::quantize(&vals)
    });
    let sb = SuperBlockQ4::from_blocks(&blocks);
    let src = ctx.tcm_alloc(256, 128).unwrap();
    let dst = ctx.tcm_alloc(512, 128).unwrap();
    ctx.tcm_poke(src, &sb.to_bytes());
    group.bench_function("super_q4_lut_256_elems", |b| {
        b.iter(|| dequant_super_q4_lut(&mut ctx, &env, src, dst))
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    group.throughput(Throughput::Elements(4 * 1024));
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let lut = ExpLut16::build(&mut ctx).unwrap();
    let data = ctx.tcm_alloc(4 * 1024 * 2, 128).unwrap();
    let mut bytes = vec![0u8; 4 * 1024 * 2];
    for i in 0..4 * 1024 {
        let v = F16::from_f32(-((i % 97) as f32) / 10.0);
        bytes[2 * i..2 * i + 2].copy_from_slice(&v.0.to_le_bytes());
    }
    ctx.tcm_poke(data, &bytes);
    for method in [ExpMethod::F32Poly, ExpMethod::F16Poly, ExpMethod::Lut16] {
        group.bench_function(format!("rows4_cols1024_{method:?}"), |b| {
            b.iter(|| {
                softmax_rows(
                    &mut ctx,
                    &lut,
                    SoftmaxConfig {
                        rows: 4,
                        cols: 1024,
                        method,
                    },
                    data,
                )
            })
        });
    }
    // The pass-2 host lane sum in isolation: per-lane scalar conversion
    // against the chunked slice converter now used by softmax_rows (both
    // bit-identical, pinned by the exhaustive htpops test) — the same
    // scalar-vs-chunked pin pattern as the f16 group above.
    let vecs: Vec<HvxVec> = (0..64)
        .map(|r| {
            let mut v = HvxVec::zero();
            for lane in 0..HVX_HALVES {
                v.set_hf(
                    lane,
                    F16::from_f32(-((r * HVX_HALVES + lane) as f32 % 97.0) / 10.0),
                );
            }
            v
        })
        .collect();
    group.bench_function("host_lane_sum_scalar_4096", |b| {
        b.iter(|| {
            let mut sum = 0.0f64;
            for v in std::hint::black_box(&vecs) {
                for lane in 0..HVX_HALVES {
                    sum += v.get_hf(lane).to_f32() as f64;
                }
            }
            sum
        })
    });
    group.bench_function("host_lane_sum_chunked_4096", |b| {
        b.iter(|| {
            let mut sum = 0.0f64;
            let mut lanes = [F16::ZERO; HVX_HALVES];
            let mut lanes_f32 = [0.0f32; HVX_HALVES];
            for v in std::hint::black_box(&vecs) {
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    *slot = v.get_hf(lane);
                }
                F16::to_f32_slice(&lanes, &mut lanes_f32);
                for &x in &lanes_f32 {
                    sum += x as f64;
                }
            }
            sum
        })
    });
    group.finish();
}

fn bench_attention_host(c: &mut Criterion) {
    // The attention host-staging hot loops: per-element F16 conversion in
    // the QK^T / PV inner products against the chunked staged form the
    // functional flash kernel now uses (bit-identical, pinned by the
    // `staged_block_math_is_bit_identical_to_elementwise` sweep in
    // htpops). Shapes mirror one KV block of a decode step.
    let mut group = c.benchmark_group("attention_host");
    let (nq, cols, d) = (4usize, 128usize, 64usize);
    group.throughput(Throughput::Elements((nq * cols * d) as u64));
    let q: Vec<F16> = (0..nq * d)
        .map(|i| F16::from_f32(((i % 97) as f32) / 48.0 - 1.0))
        .collect();
    let k: Vec<F16> = (0..cols * d)
        .map(|i| F16::from_f32(((i % 89) as f32) / 44.0 - 1.0))
        .collect();
    group.bench_function("qk_block_scalar_4x128x64", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..nq {
                for j in 0..cols {
                    let mut dot = 0.0f32;
                    for p in 0..d {
                        dot += std::hint::black_box(q[i * d + p]).to_f32() * k[j * d + p].to_f32();
                    }
                    acc += dot;
                }
            }
            acc
        })
    });
    group.bench_function("qk_block_staged_4x128x64", |b| {
        b.iter(|| {
            let qf = F16::vec_to_f32(std::hint::black_box(&q));
            let kf = F16::vec_to_f32(&k);
            let mut acc = 0.0f32;
            for i in 0..nq {
                for j in 0..cols {
                    let mut dot = 0.0f32;
                    for p in 0..d {
                        dot += qf[i * d + p] * kf[j * d + p];
                    }
                    acc += dot;
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_lm_head_row(c: &mut Criterion) {
    // One lm_head row: hidden state against a vocabulary slice — scalar
    // per-element conversion vs the hoisted chunked conversion the model
    // uses (convert the hidden state once, dot in f32; `to_f32` is exact
    // so both accumulate identically).
    let mut group = c.benchmark_group("lm_head");
    let (hidden, vocab) = (256usize, 512usize);
    group.throughput(Throughput::Elements((hidden * vocab) as u64));
    let x: Vec<F16> = (0..hidden)
        .map(|i| F16::from_f32(((i % 61) as f32) / 30.0 - 1.0))
        .collect();
    let w: Vec<f32> = (0..hidden * vocab)
        .map(|i| ((i % 103) as f32) / 51.0 - 1.0)
        .collect();
    group.bench_function("row_scalar_h256_v512", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for v in 0..vocab {
                let row = &w[v * hidden..(v + 1) * hidden];
                let mut dot = 0.0f32;
                for (h, wv) in std::hint::black_box(&x).iter().zip(row) {
                    dot += h.to_f32() * wv;
                }
                acc += dot;
            }
            acc
        })
    });
    group.bench_function("row_staged_h256_v512", |b| {
        b.iter(|| {
            let xf = F16::vec_to_f32(std::hint::black_box(&x));
            let mut acc = 0.0f32;
            for v in 0..vocab {
                let row = &w[v * hidden..(v + 1) * hidden];
                let mut dot = 0.0f32;
                for (h, wv) in xf.iter().zip(row) {
                    dot += h * wv;
                }
                acc += dot;
            }
            acc
        })
    });
    group.finish();
}

fn bench_verify_argmax(c: &mut Criterion) {
    // The speculative-decode verify host loop: one argmax per drafted row
    // over the full vocabulary. Scalar reference against the chunked
    // NEG_INFINITY-sentinel scan `ttscale::spec_decode::argmax` actually
    // uses (bit-identical tie-breaking, pinned by the elementwise
    // differential tests in spec_decode) — the same scalar-vs-chunked pin
    // pattern as the lm_head group above.
    use ttscale::spec_decode::{argmax, argmax_scalar};
    let mut group = c.benchmark_group("verify_argmax");
    let (rows, vocab) = (4usize, 8192usize);
    group.throughput(Throughput::Elements((rows * vocab) as u64));
    let logits: Vec<Vec<f32>> = (0..rows)
        .map(|r| {
            (0..vocab)
                .map(|i| (((r * vocab + i) % 211) as f32) / 7.0 - 15.0)
                .collect()
        })
        .collect();
    for row in &logits {
        assert_eq!(argmax(row), argmax_scalar(row));
    }
    group.bench_function("rows4_scalar_v8192", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for row in std::hint::black_box(&logits) {
                acc = acc.wrapping_add(argmax_scalar(row));
            }
            acc
        })
    });
    group.bench_function("rows4_chunked_v8192", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for row in std::hint::black_box(&logits) {
                acc = acc.wrapping_add(argmax(row));
            }
            acc
        })
    });
    group.finish();
}

fn bench_hmx_tile(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmx");
    group.throughput(Throughput::Elements(32 * 32 * 32));
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let act = ctx.tcm_alloc(2048, 2048).unwrap();
    let wgt = ctx.tcm_alloc(2048, 2048).unwrap();
    let mut tile = [[F16::ZERO; 32]; 32];
    for (r, row) in tile.iter_mut().enumerate() {
        for (cc, v) in row.iter_mut().enumerate() {
            *v = F16::from_f32(((r * 31 + cc) % 17) as f32 * 0.25 - 2.0);
        }
    }
    let packed = hexsim::hmx::pack_tile(&tile);
    ctx.tcm_poke(act, &packed);
    ctx.tcm_poke(wgt, &packed);
    group.bench_function("tile_matmul_32x32x32", |b| {
        b.iter(|| {
            let mut acc = hexsim::hmx::HmxAccumulator::new();
            ctx.hmx_matmul(&mut acc, act, wgt);
            acc.0[0][0]
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_f16_conversion, bench_lut_dequant, bench_softmax, bench_attention_host, bench_lm_head_row, bench_verify_argmax, bench_hmx_tile
}
criterion_main!(benches);
