//! Table 1: per-group (AWQ) vs per-channel (QNN) W4A16 accuracy.

fn main() {
    benchutil::banner(
        "Table 1 - quantization scheme vs reasoning accuracy (Llama3.2-1B)",
        "paper Table 1: AWQ 15.9/32.6/19.42 vs QNN 2.1/3.4/28.99",
    );
    let rows = npuscale::experiments::table1_rows(7);
    println!(
        "{:<28} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "scheme", "rmse_rel", "MATH500", "GSM8K", "logitKL", "PPL(map)"
    );
    for r in &rows {
        println!(
            "{:<28} {:>10.4} {:>8.1}% {:>8.1}% {:>9.3} {:>10.2}",
            r.scheme, r.weight_rmse_rel, r.math500_pct, r.gsm8k_pct, r.logit_kl, r.wiki_ppl_mapped
        );
    }
    println!("\npaper:   AutoAWQ  MATH500 15.9  GSM8K 32.6  Wiki PPL 19.42");
    println!("paper:   QNN      MATH500  2.1  GSM8K  3.4  Wiki PPL 28.99");
}
