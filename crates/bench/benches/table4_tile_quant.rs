//! Table 4: tile-group vs conventional-group vs F16 accuracy.

fn main() {
    benchutil::banner(
        "Table 4 - tile quantization groups vs conventional groups vs F16",
        "paper Table 4: 62.56/63.35/64.61 WinoGrande; 35.47/35.27/34.82 MMLU",
    );
    println!(
        "{:<20} {:>10} {:>12} {:>8} {:>10}",
        "variant", "rmse_rel", "WinoGrande", "MMLU", "tiny PPL"
    );
    for r in npuscale::experiments::table4_rows(3) {
        println!(
            "{:<20} {:>10.5} {:>11.1}% {:>7.1}% {:>10.2}",
            r.variant, r.weight_rmse_rel, r.winogrande_pct, r.mmlu_pct, r.tiny_ppl
        );
    }
}
