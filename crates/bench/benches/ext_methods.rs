//! Extension bench: all four parallel scaling strategies at matched
//! budgets (Section 2.1's method space), including the oracle bound.

fn main() {
    benchutil::banner(
        "Extension - scaling method comparison at matched budgets (MATH500)",
        "paper Section 2.1's method space; oracle = pass@N upper bound",
    );
    for model in [
        edgellm::config::ModelId::Llama1B,
        edgellm::config::ModelId::Qwen1_5B,
    ] {
        println!("\n{}", edgellm::config::ModelConfig::for_id(model).name);
        println!(
            "{:>8} {:>10} {:>12} {:>14} {:>9}",
            "budget", "Best-of-N", "BeamSearch", "SelfConsist.", "oracle"
        );
        for r in npuscale::experiments::ext_method_comparison_rows(model, 11) {
            println!(
                "{:>8} {:>9.1}% {:>11.1}% {:>13.1}% {:>8.1}%",
                r.budget, r.best_of_n_pct, r.beam_search_pct, r.self_consistency_pct, r.oracle_pct
            );
        }
    }
}
