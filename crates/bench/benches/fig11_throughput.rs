//! Figure 11: end-to-end decoding throughput vs batch size.

fn main() {
    benchutil::banner(
        "Figure 11 - decode throughput vs batch across devices (ctx 1024)",
        "paper Fig 11: throughput rises strongly but sublinearly with batch",
    );
    let rows = npuscale::experiments::fig11_rows();
    let mut device = String::new();
    for r in &rows {
        if r.device != device {
            device = r.device.clone();
            println!("\n=== {device} ===");
        }
        match r.tokens_per_sec {
            Some(tps) => println!("{:<6} batch {:>2}: {:>7.1} tok/s", r.model, r.batch, tps),
            None => println!(
                "{:<6} batch {:>2}: (does not fit: session VA limit)",
                r.model, r.batch
            ),
        }
    }
}
