//! Figure 15: dequantization-based GEMV latency ablation.

fn main() {
    benchutil::banner(
        "Figure 15 - GEMV dequantization ablation (V75)",
        "paper Fig 15: ours 9.65-19.04x vs baseline; ~27% off the no-dequant bound",
    );
    println!(
        "{:<16} {:<14} {:>12} {:>14}",
        "config", "variant", "latency", "ours speedup"
    );
    let rows = npuscale::experiments::fig15_rows();
    let mut cfg = String::new();
    let mut base_ratios = Vec::new();
    let mut bound_ratios = Vec::new();
    for r in &rows {
        if r.config != cfg {
            cfg = r.config.clone();
            println!();
        }
        println!(
            "{:<16} {:<14} {:>12} {:>13.2}x",
            r.config,
            r.variant,
            benchutil::fmt_secs(r.latency_us * 1e-6),
            r.ours_speedup
        );
        if r.variant == "baseline" {
            base_ratios.push(r.ours_speedup);
        }
        if r.variant == "no dequant." {
            bound_ratios.push(1.0 / r.ours_speedup);
        }
    }
    let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nspeedup vs baseline: {:.2}-{:.2}x (paper 9.65-19.04x)",
        base_ratios.iter().cloned().fold(f64::INFINITY, f64::min),
        base_ratios.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "mean slowdown vs no-dequant bound: {:.0}% (paper ~27%)",
        (avg(&bound_ratios) - 1.0) * 100.0
    );
}
