//! Figure 12: power and energy during decode.

fn main() {
    benchutil::banner(
        "Figure 12 - decode power and normalized energy (OnePlus 12)",
        "paper Fig 12: <5 W; 1.5B rises with batch; 3B ~4.3 W",
    );
    let rows = npuscale::experiments::fig12_rows();
    let mut base: Option<f64> = None;
    let mut model = String::new();
    println!(
        "{:<6} {:>6} {:>9} {:>12} {:>13} {:>12}",
        "model", "batch", "power", "E/step", "E/step norm", "E/token"
    );
    for p in &rows {
        if p.model != model {
            model = p.model.clone();
            base = Some(p.step_energy_j);
        }
        println!(
            "{:<6} {:>6} {:>7.2} W {:>10.3} J {:>13.2} {:>10.4} J",
            p.model,
            p.batch,
            p.power_w,
            p.step_energy_j,
            p.step_energy_j / base.unwrap(),
            p.energy_per_token_j
        );
    }
}
