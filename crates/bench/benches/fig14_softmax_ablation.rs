//! Figure 14: on-chip softmax latency per exponential implementation.

fn main() {
    benchutil::banner(
        "Figure 14 - softmax latency: F32 exp vs F16 exp vs LUT16 exp (V75)",
        "paper Fig 14: LUT16 1.26-2.19x vs F32, up to 1.60x vs F16",
    );
    println!(
        "{:>7} {:>5} {:<10} {:>12} {:>14}",
        "Nkv", "Nq", "method", "latency", "LUT16 speedup"
    );
    for r in npuscale::experiments::fig14_rows() {
        println!(
            "{:>7} {:>5} {:<10} {:>12} {:>13.2}x",
            r.nkv,
            r.nq,
            r.method,
            benchutil::fmt_secs(r.latency_us * 1e-6),
            r.lut_speedup
        );
    }
}
