//! Shared helpers for the benchmark harness.
//!
//! Every `[[bench]]` target regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index) by calling the corresponding
//! `npuscale::experiments` row generator and printing the rows in the
//! layout the paper reports. Run all of them with `cargo bench`.

/// Prints a section banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("==================================================================");
}

/// Formats seconds as an adaptive human unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Wall-clock timing of the harness itself (host time, not simulated).
pub fn host_timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}
