//! Shared helpers for the benchmark harness.
//!
//! Every `[[bench]]` target regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index) by calling the corresponding
//! `npuscale::experiments` row generator and printing the rows in the
//! layout the paper reports. Run all of them with `cargo bench`.

/// Prints a section banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("==================================================================");
}

/// Formats seconds as an adaptive human unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Wall-clock timing of the harness itself (host time, not simulated).
pub fn host_timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

pub mod json {
    //! Minimal JSON emitter for machine-readable `BENCH_*.json` bench
    //! artifacts.
    //!
    //! The build environment has no crates.io access and the vendored
    //! `serde` shim carries no `serde_json`, so this is a small
    //! hand-rolled value tree + serializer: enough to persist bench rows
    //! (numbers, strings, arrays, objects) deterministically across PRs.
    //! Object keys keep insertion order so emitted artifacts diff cleanly.

    use std::fmt::Write as _;
    use std::io;
    use std::path::Path;

    /// A JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A finite number (non-finite values serialize as `null`, like
        /// serde_json's lossy float mode).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object with insertion-ordered keys.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience string constructor.
        pub fn str(s: impl Into<String>) -> Json {
            Json::Str(s.into())
        }

        /// Convenience object constructor from `(key, value)` pairs.
        pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        /// Serializes with two-space indentation and a trailing newline.
        pub fn to_pretty(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, 0);
            out.push('\n');
            out
        }

        fn write(&self, out: &mut String, indent: usize) {
            let pad = "  ".repeat(indent);
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                Json::Num(n) => {
                    if n.is_finite() {
                        let _ = write!(out, "{n}");
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => write_escaped(out, s),
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        let _ = write!(out, "{pad}  ");
                        item.write(out, indent + 1);
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    let _ = write!(out, "{pad}]");
                }
                Json::Obj(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        let _ = write!(out, "{pad}  ");
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write(out, indent + 1);
                        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                    }
                    let _ = write!(out, "{pad}}}");
                }
            }
        }
    }

    impl From<f64> for Json {
        fn from(v: f64) -> Json {
            Json::Num(v)
        }
    }

    impl From<usize> for Json {
        fn from(v: usize) -> Json {
            Json::Num(v as f64)
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Writes a value as pretty JSON to `path`.
    pub fn write_file(path: impl AsRef<Path>, value: &Json) -> io::Result<()> {
        std::fs::write(path, value.to_pretty())
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn nested_values_serialize_with_stable_layout() {
            let v = Json::obj([
                ("bench", Json::str("decode")),
                (
                    "rows",
                    Json::Arr(vec![Json::obj([
                        ("tps", Json::Num(12.5)),
                        ("batch", Json::from(8usize)),
                        ("ok", Json::Bool(true)),
                    ])]),
                ),
                ("empty", Json::Arr(vec![])),
            ]);
            let s = v.to_pretty();
            assert_eq!(
                s,
                "{\n  \"bench\": \"decode\",\n  \"rows\": [\n    {\n      \"tps\": 12.5,\n      \"batch\": 8,\n      \"ok\": true\n    }\n  ],\n  \"empty\": []\n}\n"
            );
        }

        #[test]
        fn strings_escape_and_nonfinite_numbers_null() {
            let v = Json::Arr(vec![
                Json::str("a\"b\\c\nd"),
                Json::Num(f64::NAN),
                Json::Null,
            ]);
            assert_eq!(
                v.to_pretty(),
                "[\n  \"a\\\"b\\\\c\\nd\",\n  null,\n  null\n]\n"
            );
        }
    }
}
