//! Calibration of policy skill and quantization-damage mappings.
//!
//! Skill parameters are fitted numerically so that the calibrated policy's
//! expected pass@1 over the dataset's difficulty distribution matches the
//! paper's reported baseline accuracies (the "base" points in Figures 5
//! and 10). The constants quoted below next to each target are the paper
//! values; EXPERIMENTS.md records paper-vs-measured for each.

use edgellm::config::ModelId;
use mathsynth::mathgen::DatasetKind;

/// Steepness of the per-task solve-probability logistic. Large values give
/// the heavy-tailed task hardness that makes parallel-scaling curves
/// saturate the way Figure 5 does.
pub const SOLVE_STEEPNESS: f64 = 12.0;

/// Paper-reported pass@1 baselines (percent), read from Figures 5/10 and
/// Table 1: `(model, dataset) -> accuracy`.
pub fn paper_base_accuracy(model: ModelId, dataset: DatasetKind) -> f64 {
    match (model, dataset) {
        (ModelId::Llama1B, DatasetKind::Math500Like) => 18.0,
        (ModelId::Llama1B, DatasetKind::Gsm8kLike) => 47.0,
        (ModelId::Qwen1_5B, DatasetKind::Math500Like) => 30.0,
        (ModelId::Qwen1_5B, DatasetKind::Gsm8kLike) => 62.0,
        (ModelId::Qwen3B, DatasetKind::Math500Like) => 48.0,
        (ModelId::Qwen3B, DatasetKind::Gsm8kLike) => 80.0,
        (ModelId::Llama3B, DatasetKind::Math500Like) => 38.0,
        (ModelId::Llama3B, DatasetKind::Gsm8kLike) => 72.0,
        (ModelId::Qwen7B, DatasetKind::Math500Like) => 60.0,
        (ModelId::Qwen7B, DatasetKind::Gsm8kLike) => 88.0,
        // Draft model for speculative decoding: weak as a solver, but it
        // only ever proposes tokens the target verifies.
        (ModelId::Qwen0_5B, DatasetKind::Math500Like) => 14.0,
        (ModelId::Qwen0_5B, DatasetKind::Gsm8kLike) => 34.0,
        // The tiny test model is far below task competence.
        (ModelId::Tiny, _) => 2.0,
    }
}

/// Deterministic difficulty grid matching a dataset's distribution
/// (inverse-CDF sampling; see `mathsynth::mathgen`).
pub fn difficulty_grid(dataset: DatasetKind, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let u = (i as f64 + 0.5) / n as f64;
            match dataset {
                DatasetKind::Math500Like => u.sqrt(),
                DatasetKind::Gsm8kLike => u * u,
            }
        })
        .collect()
}

/// Logistic solve probability for skill `s` at difficulty `d`.
pub fn solve_prob(skill: f64, difficulty: f64) -> f64 {
    1.0 / (1.0 + (-(SOLVE_STEEPNESS) * (skill - difficulty)).exp())
}

/// Expected pass@1 (percent) of skill `s` over a dataset grid.
pub fn expected_pass1(skill: f64, dataset: DatasetKind) -> f64 {
    let grid = difficulty_grid(dataset, 2000);
    let mean: f64 = grid.iter().map(|&d| solve_prob(skill, d)).sum::<f64>() / grid.len() as f64;
    mean * 100.0
}

/// Fits the skill parameter so expected pass@1 matches the paper baseline
/// (bisection; monotone in skill).
pub fn fit_skill(model: ModelId, dataset: DatasetKind) -> f64 {
    let target = paper_base_accuracy(model, dataset);
    let (mut lo, mut hi) = (-0.5f64, 2.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected_pass1(mid, dataset) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Maps measured relative weight-reconstruction RMSE to a capability
/// multiplier on skill.
///
/// Calibrated against the paper's Table 1 (Llama3.2-1B, MATH500) using the
/// RMSE this project's synthetic outlier-bearing weights actually measure:
/// AWQ group quantization lands at relative RMSE ~0.10 and must retain
/// near-baseline capability (~0.88), while QNN per-channel quantization
/// lands at ~0.41 and must collapse to ~0.32 (15.9% -> 2.1% on MATH500).
/// Fitting `capability = exp(-beta * r^gamma)` through those anchors gives
/// `beta ~ 4.43`, `gamma ~ 1.53`.
pub fn quant_capability(relative_rmse: f64) -> f64 {
    (-4.43 * relative_rmse.powf(1.525)).exp()
}

/// Maps measured relative weight-reconstruction RMSE to an *additive*
/// skill penalty for reasoning tasks.
///
/// Calibrated against Table 1 (Llama3.2-1B, MATH500) at the measured RMSE
/// anchors of the synthetic outlier-bearing weights: group quantization
/// (r ~0.10) costs ~0.025 skill (18% -> ~16%), per-channel (r ~0.41) costs
/// ~0.28 skill (18% -> ~2%). Fitting `penalty = beta * r^gamma` through
/// both anchors gives `beta ~ 2.81`, `gamma ~ 2.05` (the channel anchor is
/// set to 0.45 so the easy-skewed GSM8K profile collapses to the paper's
/// ~3% as well). The additive form reproduces the paper's observation that
/// the collapse hits *both* MATH500 and GSM8K catastrophically.
pub fn quant_skill_penalty(relative_rmse: f64) -> f64 {
    2.81 * relative_rmse.powf(2.05)
}

/// Mean completion length in tokens for a dataset (used by the latency
/// coupling: test-time scaling lengthens contexts, which the paper's
/// Figure 10 cost axis accounts for).
pub fn mean_completion_tokens(dataset: DatasetKind) -> usize {
    match dataset {
        DatasetKind::Math500Like => 350,
        DatasetKind::Gsm8kLike => 220,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_skill_reproduces_base_accuracy() {
        for model in [ModelId::Llama1B, ModelId::Qwen1_5B, ModelId::Qwen7B] {
            for dataset in [DatasetKind::Math500Like, DatasetKind::Gsm8kLike] {
                let skill = fit_skill(model, dataset);
                let acc = expected_pass1(skill, dataset);
                let target = paper_base_accuracy(model, dataset);
                assert!(
                    (acc - target).abs() < 0.5,
                    "{model:?}/{dataset:?}: fitted {acc} vs target {target}"
                );
            }
        }
    }

    #[test]
    fn skill_ordering_matches_model_scale() {
        let d = DatasetKind::Math500Like;
        let l1 = fit_skill(ModelId::Llama1B, d);
        let q15 = fit_skill(ModelId::Qwen1_5B, d);
        let q3 = fit_skill(ModelId::Qwen3B, d);
        let q7 = fit_skill(ModelId::Qwen7B, d);
        assert!(l1 < q15 && q15 < q3 && q3 < q7);
    }

    #[test]
    fn quant_capability_matches_table1_anchors() {
        // Group quantization barely dents capability; per-channel wrecks it
        // (anchors at the measured RMSE of the synthetic weight sample).
        let group = quant_capability(0.10);
        let channel = quant_capability(0.41);
        assert!((0.82..0.95).contains(&group), "group {group}");
        assert!((0.25..0.40).contains(&channel), "channel {channel}");
        assert!((quant_capability(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quant_skill_penalty_matches_table1_anchors() {
        let group = quant_skill_penalty(0.10);
        let channel = quant_skill_penalty(0.41);
        assert!((0.015..0.04).contains(&group), "group {group}");
        assert!((0.35..0.55).contains(&channel), "channel {channel}");
    }

    #[test]
    fn difficulty_grids_match_generators() {
        // Grid means must match the empirical generator means.
        let grid_hard = difficulty_grid(DatasetKind::Math500Like, 1000);
        let mean: f64 = grid_hard.iter().sum::<f64>() / 1000.0;
        assert!((mean - 2.0 / 3.0).abs() < 0.01); // E[sqrt(U)] = 2/3.
        let grid_easy = difficulty_grid(DatasetKind::Gsm8kLike, 1000);
        let mean: f64 = grid_easy.iter().sum::<f64>() / 1000.0;
        assert!((mean - 1.0 / 3.0).abs() < 0.01); // E[U^2] = 1/3.
    }
}
