//! Parallel test-time scaling algorithms and simulated reward models.
//!
//! Implements the three methods the paper runs on the NPU (Section 2.1):
//! **Best-of-N** with an outcome reward model, **step-level beam search**
//! with a process reward model, and **self-consistency** (majority voting).
//! The algorithms are real — they sample trajectories, score them, prune
//! beams — but the policy behind them is a *calibrated stochastic policy*
//! ([`policy::CalibratedPolicy`]) rather than a 1.5B-parameter checkpoint:
//! per-task solve probability follows a logistic curve in task difficulty
//! whose skill parameter is fitted numerically so that pass@1 matches the
//! paper's reported baselines (see [`calib`]). Reward models are noisy
//! scorers with calibrated discrimination, standing in for
//! Skywork-1.5B-PRM.
//!
//! For true end-to-end runs through the simulated NPU, [`llm_policy`] wraps
//! the tiny functional transformer: batched decode, temperature sampling,
//! answer extraction and outcome verification all execute for real.

pub mod beam_search;
pub mod best_of_n;
pub mod calib;
pub mod llm_policy;
pub mod policy;
pub mod self_consistency;
pub mod spec_decode;
pub mod verifier;

pub use beam_search::{beam_search, BeamSearchConfig};
pub use best_of_n::{best_of_n, pass_at_n_oracle};
pub use calib::{quant_capability, quant_skill_penalty};
pub use policy::{CalibratedPolicy, Step, Trajectory};
pub use self_consistency::self_consistency;
pub use spec_decode::{
    charge_accept_loop, draft_round_lanes, greedy_generate, speculative_decode_pipeline,
    speculative_generate, speculative_generate_with, AcceptanceTrace, BigramDraft,
    DraftLenController, DraftModel, SpecPipelineOutcome, SpecRound,
};
pub use verifier::{SimOrm, SimPrm};
