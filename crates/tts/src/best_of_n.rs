//! Best-of-N: sample N complete trajectories in parallel, pick the
//! highest-scoring one (paper Figure 1, left).
//!
//! On the NPU this is the method that turns idle HMX capacity into
//! accuracy: all N samples decode as one batch, so the marginal cost of
//! N > 1 is small (Figure 11), while accuracy climbs with N (Figure 5).

use mathsynth::mathgen::MathTask;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::policy::{CalibratedPolicy, Trajectory};
use crate::verifier::SimOrm;

/// Result of one Best-of-N invocation.
#[derive(Clone, Debug)]
pub struct BonOutcome {
    /// The selected trajectory.
    pub chosen: Trajectory,
    /// Whether the selected trajectory solves the task.
    pub correct: bool,
    /// Whether *any* sampled trajectory solved it (the pass@N oracle).
    pub any_correct: bool,
    /// Mean generated tokens per sample.
    pub mean_tokens: f64,
    /// Generated tokens per sample, in sampling order — the length
    /// distribution a continuous-batching scheduler (the `DecodeSession`
    /// behind `llm_policy`) exploits when trajectories finish early.
    pub sample_tokens: Vec<usize>,
}

/// Runs Best-of-N on one task.
pub fn best_of_n(
    policy: &CalibratedPolicy,
    orm: &SimOrm,
    task: &MathTask,
    n: usize,
    seed: u64,
) -> BonOutcome {
    assert!(n >= 1);
    let mut score_rng = StdRng::seed_from_u64(seed ^ task.id.wrapping_mul(0xBEEF));
    let mut best: Option<(f64, Trajectory)> = None;
    let mut any_correct = false;
    let mut sample_tokens = Vec::with_capacity(n);
    for sample in 0..n {
        let mut rng = policy.task_rng(task, seed.wrapping_add(sample as u64 * 7919));
        let traj = policy.sample_trajectory(task, &mut rng);
        any_correct |= traj.is_correct(task);
        sample_tokens.push(traj.tokens);
        let score = orm.score(&traj, task.answer, &mut score_rng);
        if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
            best = Some((score, traj));
        }
    }
    let (_, chosen) = best.expect("n >= 1");
    let correct = chosen.is_correct(task);
    BonOutcome {
        chosen,
        correct,
        any_correct,
        mean_tokens: sample_tokens.iter().sum::<usize>() as f64 / n as f64,
        sample_tokens,
    }
}

/// pass@N with an oracle verifier (upper bound of Best-of-N) over a task
/// set, in percent.
pub fn pass_at_n_oracle(policy: &CalibratedPolicy, tasks: &[MathTask], n: usize, seed: u64) -> f64 {
    let orm = SimOrm {
        discrimination: 1e9,
    };
    let solved = tasks
        .iter()
        .filter(|t| best_of_n(policy, &orm, t, n, seed).any_correct)
        .count();
    solved as f64 / tasks.len().max(1) as f64 * 100.0
}

/// Best-of-N accuracy (percent) over a task set.
pub fn accuracy_over_tasks(
    policy: &CalibratedPolicy,
    orm: &SimOrm,
    tasks: &[MathTask],
    n: usize,
    seed: u64,
) -> f64 {
    let solved = tasks
        .iter()
        .filter(|t| best_of_n(policy, orm, t, n, seed).correct)
        .count();
    solved as f64 / tasks.len().max(1) as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm::config::ModelId;
    use mathsynth::mathgen::{DatasetKind, TaskGenerator};

    fn setup() -> (CalibratedPolicy, Vec<MathTask>) {
        let policy = CalibratedPolicy::new(ModelId::Llama1B, DatasetKind::Math500Like);
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 21).take(800);
        (policy, tasks)
    }

    #[test]
    fn accuracy_increases_with_budget_figure5() {
        let (policy, tasks) = setup();
        let orm = SimOrm::default();
        let a1 = accuracy_over_tasks(&policy, &orm, &tasks, 1, 3);
        let a4 = accuracy_over_tasks(&policy, &orm, &tasks, 4, 3);
        let a16 = accuracy_over_tasks(&policy, &orm, &tasks, 16, 3);
        assert!(a4 > a1 + 5.0, "a1={a1} a4={a4}");
        assert!(a16 > a4 + 3.0, "a4={a4} a16={a16}");
        // Figure 5: Llama3.2-1B climbs from ~18-20% to ~50% at budget 16.
        assert!((14.0..24.0).contains(&a1), "base {a1}");
        assert!((38.0..62.0).contains(&a16), "budget-16 {a16}");
    }

    #[test]
    fn oracle_bounds_orm_selection() {
        let (policy, tasks) = setup();
        let orm = SimOrm::default();
        let with_orm = accuracy_over_tasks(&policy, &orm, &tasks, 8, 5);
        let oracle = pass_at_n_oracle(&policy, &tasks, 8, 5);
        assert!(oracle >= with_orm, "oracle {oracle} < orm {with_orm}");
        // The ORM should recover most of the oracle headroom.
        assert!(with_orm > oracle * 0.6, "orm {with_orm} oracle {oracle}");
    }

    #[test]
    fn n_equals_one_is_plain_sampling() {
        let (policy, tasks) = setup();
        let weak_orm = SimOrm {
            discrimination: 0.0,
        };
        let strong_orm = SimOrm::default();
        let a_weak = accuracy_over_tasks(&policy, &weak_orm, &tasks, 1, 9);
        let a_strong = accuracy_over_tasks(&policy, &strong_orm, &tasks, 1, 9);
        // With n=1 the verifier is irrelevant.
        assert!((a_weak - a_strong).abs() < 1e-9);
    }

    #[test]
    fn weak_verifier_wastes_budget() {
        let (policy, tasks) = setup();
        let weak = SimOrm {
            discrimination: 0.0,
        };
        let strong = SimOrm::default();
        let a_weak = accuracy_over_tasks(&policy, &weak, &tasks, 16, 11);
        let a_strong = accuracy_over_tasks(&policy, &strong, &tasks, 16, 11);
        assert!(
            a_strong > a_weak + 8.0,
            "strong {a_strong} vs weak {a_weak}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (policy, tasks) = setup();
        let orm = SimOrm::default();
        let a = accuracy_over_tasks(&policy, &orm, &tasks[..100], 4, 42);
        let b = accuracy_over_tasks(&policy, &orm, &tasks[..100], 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_lengths_vary_enough_to_reward_continuous_batching() {
        // The length distribution handed to the DecodeSession scheduler
        // must actually be ragged, otherwise continuous batching has
        // nothing to reclaim.
        let (policy, tasks) = setup();
        let orm = SimOrm::default();
        let out = best_of_n(&policy, &orm, &tasks[0], 8, 13);
        assert_eq!(out.sample_tokens.len(), 8);
        let min = *out.sample_tokens.iter().min().unwrap();
        let max = *out.sample_tokens.iter().max().unwrap();
        assert!(min >= 1);
        assert!(max > min, "lengths must vary: {:?}", out.sample_tokens);
        let mean = out.sample_tokens.iter().sum::<usize>() as f64 / 8.0;
        assert!((mean - out.mean_tokens).abs() < 1e-9);
    }
}
