//! Speculative decoding on the free-batch NPU compute (paper Section 9).
//!
//! The paper observes that generalized speculative decoding and parallel
//! test-time scaling both belong to the *generate-then-verify* framework,
//! and that the system "can theoretically support these applications
//! seamlessly": verifying `k` drafted tokens is one target-model forward
//! over `k` positions — rows that ride in the same HMX tiles that
//! Best-of-N samples would occupy. This module implements that extension
//! end to end on the simulated NPU:
//!
//! 1. a cheap draft proposer speculates `k` tokens;
//! 2. the target model scores all `k` positions in one batched step
//!    (`decode_step` with the drafted tokens as parallel rows over a
//!    shared-prefix cache);
//! 3. greedy verification accepts the longest prefix where the target's
//!    argmax agrees with the draft, plus one corrected token.
//!
//! The speedup is `accepted_per_step / 1` versus plain decoding, and the
//! marginal cost of verifying `k` tokens instead of 1 is small — the same
//! free-compute effect Figure 11 shows for batching.

use edgellm::kv_cache::KvCache;
use edgellm::model::{Model, StepCost};
use hexsim::prelude::*;

/// A draft proposer: anything that can guess the next token cheaply.
pub trait DraftModel {
    /// Proposes the next token given the generated-so-far suffix.
    fn propose(&mut self, context: &[u32]) -> u32;

    /// Feedback hook: an accepted transition `prev -> next`. Default: ignore.
    fn observe(&mut self, prev: u32, next: u32) {
        let _ = (prev, next);
    }
}

/// A trivial deterministic bigram proposer: remembers, for each token, the
/// token that most recently followed it. Cheap and wrong often enough to
/// exercise the rejection path.
#[derive(Default)]
pub struct BigramDraft {
    next: std::collections::HashMap<u32, u32>,
    fallback: u32,
}

impl BigramDraft {
    /// Creates a proposer with a fallback token for unseen contexts.
    pub fn new(fallback: u32) -> Self {
        BigramDraft {
            next: std::collections::HashMap::new(),
            fallback,
        }
    }
}

impl DraftModel for BigramDraft {
    fn propose(&mut self, context: &[u32]) -> u32 {
        context
            .last()
            .and_then(|t| self.next.get(t).copied())
            .unwrap_or(self.fallback)
    }

    fn observe(&mut self, prev: u32, next: u32) {
        self.next.insert(prev, next);
    }
}

/// Outcome of a speculative generation run.
#[derive(Debug)]
pub struct SpecDecodeOutcome {
    /// The generated tokens (target-model-faithful: identical to greedy
    /// decoding of the target).
    pub tokens: Vec<u32>,
    /// Target-model steps executed.
    pub target_steps: usize,
    /// Tokens accepted per target step (the speedup over plain decode).
    pub mean_accepted: f64,
    /// Total simulated cost.
    pub cost: StepCost,
}

/// Greedy argmax over a logits row.
fn argmax(row: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best as u32
}

/// Runs greedy speculative decoding: drafts `draft_len` tokens per round,
/// verifies them with one batched target forward, accepts the agreeing
/// prefix plus the target's correction.
///
/// The verification trick: the cache is built for `draft_len + 1`
/// sequences sharing the prompt; each round, sequence `i` receives the
/// draft prefix up to position `i`, so the single batched `decode_step`
/// yields the target distribution after 0..=draft_len drafted tokens —
/// one NPU pass, `draft_len + 1` verification points.
///
/// Output equivalence: the accepted stream equals plain greedy decoding of
/// the target model (tested).
///
/// # Panics
///
/// Panics in cost-only mode (this is a functional-path extension).
pub fn speculative_generate(
    ctx: &mut NpuContext,
    model: &Model,
    draft: &mut dyn DraftModel,
    prompt: &[u32],
    max_new_tokens: usize,
    draft_len: usize,
) -> SimResult<SpecDecodeOutcome> {
    assert_eq!(ctx.mode, ExecMode::Functional);
    assert!(draft_len >= 1);
    let vocab = model.cfg.vocab;
    let mut cost = StepCost::default();

    // Single-sequence cache; verification rounds re-prefill the accepted
    // draft chunk (chunked prefill = the batched-rows verification pass:
    // same GEMM shapes, m = chunk length).
    let budget = prompt.len() + max_new_tokens + draft_len + 4;
    let mut cache = KvCache::new(ctx, &model.cfg, 1, budget)?;
    let prefill = model.prefill(ctx, &mut cache, 0, prompt)?;
    cost.add(&prefill.cost);

    let mut generated: Vec<u32> = Vec::new();
    let mut next_greedy = argmax(&prefill.logits);
    let mut target_steps = 0usize;
    let mut accepted_total = 0usize;

    while generated.len() < max_new_tokens {
        // The target's committed token (from the previous verification).
        generated.push(next_greedy);
        if generated.len() >= max_new_tokens {
            break;
        }
        // Draft a chunk continuing after the committed token.
        let mut chunk = vec![next_greedy];
        let mut draft_ctx: Vec<u32> = prompt.iter().chain(generated.iter()).copied().collect();
        for _ in 0..draft_len {
            let proposal = draft.propose(&draft_ctx);
            chunk.push(proposal);
            draft_ctx.push(proposal);
        }
        // One target pass over the whole chunk (m = draft_len + 1 rows of
        // free tile compute) — returns logits for every chunk position.
        let verify = model.prefill_all_logits(ctx, &mut cache, 0, &chunk)?;
        cost.add(&verify.cost);
        target_steps += 1;

        // Greedy verification: accept while target argmax == draft.
        let mut accepted = 0usize;
        for pos in 0..draft_len {
            let target_tok = argmax(&verify.logits[pos * vocab..(pos + 1) * vocab]);
            let draft_tok = chunk[pos + 1];
            if target_tok == draft_tok && generated.len() + accepted + 1 < max_new_tokens {
                draft.observe(chunk[pos], draft_tok);
                accepted += 1;
            } else {
                // Reject: the target's own token replaces the draft here.
                next_greedy = target_tok;
                break;
            }
        }
        if accepted == draft_len {
            // Whole draft accepted; the target's next token comes from the
            // final position's logits.
            next_greedy = argmax(&verify.logits[draft_len * vocab..(draft_len + 1) * vocab]);
        }
        // Commit accepted draft tokens.
        for a in 0..accepted {
            generated.push(chunk[a + 1]);
        }
        accepted_total += accepted;

        // Roll the cache back past the rejected suffix: re-prefill exactly
        // the accepted prefix. (The simulator's cache has no truncation;
        // rebuild — costs are charged for the rebuilt region.)
        if accepted < draft_len {
            let keep = prompt.len() + generated.len();
            let mut rebuilt = KvCache::new(ctx, &model.cfg, 1, budget)?;
            let full: Vec<u32> = prompt.iter().chain(generated.iter()).copied().collect();
            let re = model.prefill(ctx, &mut rebuilt, 0, &full[..keep])?;
            // The rebuild cost is an artifact of the simulator's
            // append-only cache, not of the algorithm; real KV caches
            // truncate in O(1). Do not double-charge it.
            let _ = re;
            cache.free(ctx);
            cache = rebuilt;
        }
    }
    generated.truncate(max_new_tokens);

    Ok(SpecDecodeOutcome {
        mean_accepted: 1.0 + accepted_total as f64 / target_steps.max(1) as f64,
        tokens: generated,
        target_steps,
        cost,
    })
}

/// Plain greedy decoding of the target model, for equivalence testing.
pub fn greedy_generate(
    ctx: &mut NpuContext,
    model: &Model,
    prompt: &[u32],
    max_new_tokens: usize,
) -> SimResult<(Vec<u32>, StepCost)> {
    let mut cost = StepCost::default();
    let mut cache = KvCache::new(ctx, &model.cfg, 1, prompt.len() + max_new_tokens + 2)?;
    let prefill = model.prefill(ctx, &mut cache, 0, prompt)?;
    cost.add(&prefill.cost);
    let mut tokens = vec![argmax(&prefill.logits)];
    while tokens.len() < max_new_tokens {
        let out = model.decode_step(ctx, &mut cache, &[*tokens.last().unwrap()])?;
        cost.add(&out.cost);
        tokens.push(argmax(&out.logits));
    }
    Ok((tokens, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm::config::ModelId;
    use htpops::gemm::DequantVariant;

    fn setup() -> (NpuContext, Model) {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
        (ctx, model)
    }

    #[test]
    fn speculative_output_equals_greedy() {
        let (mut ctx, model) = setup();
        let prompt = vec![1u32, 50, 60, 70];
        let (greedy, _) = greedy_generate(&mut ctx, &model, &prompt, 10).unwrap();
        let mut draft = BigramDraft::new(4);
        let spec = speculative_generate(&mut ctx, &model, &mut draft, &prompt, 10, 3).unwrap();
        assert_eq!(spec.tokens, greedy, "speculation must be lossless");
    }

    #[test]
    fn perfect_draft_accepts_everything() {
        // An oracle draft (clone of the target's greedy stream) should be
        // accepted wholesale: steps ~ tokens / (draft_len + 1).
        struct Oracle {
            stream: Vec<u32>,
            pos: usize,
        }
        impl DraftModel for Oracle {
            fn propose(&mut self, _context: &[u32]) -> u32 {
                let t = self.stream[self.pos.min(self.stream.len() - 1)];
                self.pos += 1;
                t
            }
        }
        let (mut ctx, model) = setup();
        let prompt = vec![1u32, 30, 40];
        let (greedy, _) = greedy_generate(&mut ctx, &model, &prompt, 9).unwrap();
        // The oracle replays greedy[1..] as its proposals. The proposal
        // cursor must follow the *accepted* stream; with full acceptance it
        // advances one per call.
        let mut oracle = Oracle {
            stream: greedy[1..].to_vec(),
            pos: 0,
        };
        let spec = speculative_generate(&mut ctx, &model, &mut oracle, &prompt, 9, 3).unwrap();
        assert_eq!(spec.tokens, greedy);
        assert!(
            spec.mean_accepted > 2.5,
            "oracle draft should accept nearly all: {}",
            spec.mean_accepted
        );
        assert!(spec.target_steps <= 4, "steps {}", spec.target_steps);
    }

    #[test]
    fn hopeless_draft_degenerates_to_greedy_speed() {
        struct Wrong;
        impl DraftModel for Wrong {
            fn propose(&mut self, _c: &[u32]) -> u32 {
                3 // STEP_SEP: essentially never the greedy choice here.
            }
        }
        let (mut ctx, model) = setup();
        let prompt = vec![1u32, 90];
        let spec = speculative_generate(&mut ctx, &model, &mut Wrong, &prompt, 8, 3).unwrap();
        // Every round rejects at the first draft position: one new token
        // per target step.
        assert!(spec.mean_accepted < 1.3, "{}", spec.mean_accepted);
        let (greedy, _) = greedy_generate(&mut ctx, &model, &prompt, 8).unwrap();
        assert_eq!(spec.tokens, greedy);
    }

    #[test]
    fn verification_step_is_cheaper_than_sequential_decode() {
        // The free-compute claim: verifying a 4-token chunk in one pass
        // costs far less than four sequential decode steps.
        let (mut ctx, model) = setup();
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, 64).unwrap();
        model
            .prefill(&mut ctx, &mut cache, 0, &[1, 20, 30])
            .unwrap();
        let chunk = model
            .prefill_all_logits(&mut ctx, &mut cache, 0, &[40, 41, 42, 43])
            .unwrap();
        let mut cache2 = KvCache::new(&mut ctx, &model.cfg, 1, 64).unwrap();
        model
            .prefill(&mut ctx, &mut cache2, 0, &[1, 20, 30])
            .unwrap();
        let mut seq_cost = StepCost::default();
        for t in [40u32, 41, 42, 43] {
            let out = model.decode_step(&mut ctx, &mut cache2, &[t]).unwrap();
            seq_cost.add(&out.cost);
        }
        assert!(
            chunk.cost.wall_secs() < 0.5 * seq_cost.wall_secs(),
            "chunk {} vs sequential {}",
            chunk.cost.wall_secs(),
            seq_cost.wall_secs()
        );
    }
}
