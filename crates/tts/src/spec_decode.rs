//! Speculative decoding on the free-batch NPU compute (paper Section 9).
//!
//! The paper observes that generalized speculative decoding and parallel
//! test-time scaling both belong to the *generate-then-verify* framework,
//! and that the system "can theoretically support these applications
//! seamlessly": verifying `k` drafted tokens is one target-model forward
//! over `k` positions — rows that ride in the same HMX tiles that
//! Best-of-N samples would occupy. This module executes that extension
//! end to end on the simulated NPU, in two tiers:
//!
//! 1. [`speculative_generate`]: a host-side [`DraftModel`] proposer
//!    (e.g. the deterministic [`BigramDraft`]) speculates `k` tokens, the
//!    target scores all `k+1` positions in one batched chunked-prefill
//!    pass, and greedy verification accepts the agreeing prefix plus one
//!    corrected token. Rejected KV rows are dropped in place with
//!    `KvCache::truncate_seq` — the O(1) rollback real runtimes do.
//! 2. [`speculative_decode_pipeline`]: the real two-model pipeline — a
//!    small *draft transformer* (its own [`Model`] with a co-resident KV
//!    cache in the same [`NpuContext`]) autoregressively proposes the
//!    chunk, and the target verifies it batched. Per round the draft's
//!    stage breakdown is folded into the verify step's [`StepStages`] as
//!    `draft_cpu_secs`/`draft_npu_secs`, so under
//!    [`edgellm::overlap::DispatchMode::Overlapped`] the next speculation
//!    round is scheduled *behind* the target's verify kernels on the
//!    timeline critical path: the measured speedup is
//!    `accepted_per_step × 1/(1 + exposed_draft_fraction)`, not a
//!    policy-level idealization.
//!
//! Draft length adapts to the observed acceptance rate via
//! [`DraftLenController`]: a windowed acceptance estimate grows `k` when
//! the draft is hot and shrinks it when proposals keep getting rejected
//! (PowerInfer-2-style adaptive pipelining). Cost-only experiments replay
//! a deterministic [`AcceptanceTrace`] so CI gates compare policies on
//! identical accept/reject streams.
//!
//! Output equivalence is the correctness contract: the accepted stream is
//! bit-identical to plain greedy decoding of the target model, whatever
//! the draft proposes (tested here and property-tested at the workspace
//! level).

use edgellm::kv_cache::KvCache;
use edgellm::model::{Model, StepCost};
use edgellm::overlap::{steady_state_step_secs, StepStages};
use hexsim::prelude::*;

/// A draft proposer: anything that can guess the next token cheaply.
pub trait DraftModel {
    /// Proposes the next token given the generated-so-far suffix.
    fn propose(&mut self, context: &[u32]) -> u32;

    /// Feedback hook: an accepted transition `prev -> next`. Default: ignore.
    fn observe(&mut self, prev: u32, next: u32) {
        let _ = (prev, next);
    }
}

/// A trivial deterministic bigram proposer: remembers, for each token, the
/// token that most recently followed it. Cheap and wrong often enough to
/// exercise the rejection path.
///
/// The transition table is a `BTreeMap`, not a `HashMap`: iteration order
/// can never leak into proposals, so a run is reproducible byte for byte
/// across processes (the repo's determinism smoke test covers the
/// `spec_decode` example).
#[derive(Default)]
pub struct BigramDraft {
    next: std::collections::BTreeMap<u32, u32>,
    fallback: u32,
}

impl BigramDraft {
    /// Creates a proposer with a fallback token for unseen contexts.
    pub fn new(fallback: u32) -> Self {
        BigramDraft {
            next: std::collections::BTreeMap::new(),
            fallback,
        }
    }
}

impl DraftModel for BigramDraft {
    fn propose(&mut self, context: &[u32]) -> u32 {
        context
            .last()
            .and_then(|t| self.next.get(t).copied())
            .unwrap_or(self.fallback)
    }

    fn observe(&mut self, prev: u32, next: u32) {
        self.next.insert(prev, next);
    }
}

/// Scalar reference argmax over a logits row: strict `>`, first maximum
/// wins (ties and NaN-poisoned rows resolve exactly as the naive loop
/// does). The chunked [`argmax`] is differential-tested against this.
pub fn argmax_scalar(row: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best as u32
}

/// Width of the chunked argmax's inner blocks (a vector-register-friendly
/// tile, same treatment as the lm_head row loops).
const ARGMAX_CHUNK: usize = 64;

/// Chunked argmax over a logits row, bit-identical to [`argmax_scalar`]:
/// each 64-wide block reduces to a local `(index, value)` candidate with
/// strict-`>` first-max-wins semantics (NaNs never become candidates, so
/// a NaN inside a block cannot shadow a later real maximum), and blocks
/// combine against the running best with the same strict `>` — which also
/// reproduces the scalar loop's NaN-at-index-0 poisoning, because nothing
/// compares greater than NaN.
pub fn argmax(row: &[f32]) -> u32 {
    if row.is_empty() {
        return 0;
    }
    let mut best = 0usize;
    let mut best_val = row[0];
    for (c, chunk) in row.chunks(ARGMAX_CHUNK).enumerate() {
        let mut local: Option<usize> = None;
        let mut local_val = f32::NEG_INFINITY;
        for (i, &v) in chunk.iter().enumerate() {
            if v > local_val {
                local_val = v;
                local = Some(i);
            }
        }
        if let Some(i) = local {
            if local_val > best_val {
                best_val = local_val;
                best = c * ARGMAX_CHUNK + i;
            }
        }
    }
    best as u32
}

/// One verification round's bookkeeping.
#[derive(Clone, Copy, Debug)]
pub struct SpecRound {
    /// Draft length `k` used this round.
    pub draft_len: usize,
    /// Drafted tokens the target accepted (0..=draft_len).
    pub accepted: usize,
    /// Target KV length after the round's rollback — grows by exactly
    /// `accepted + 1` per round (the committed correction plus the
    /// accepted prefix), the invariant the property tests pin.
    pub kv_len: usize,
}

/// Controls the per-round draft length `k`, optionally adapting it to a
/// windowed acceptance rate: a draft that keeps getting rejected wastes
/// both draft compute and verify rows, so `k` shrinks; a hot draft grows
/// `k` to commit more tokens per target pass. Bounds come from the
/// caller (typically the largest verify batch `Backend::fits` admits).
#[derive(Clone, Debug)]
pub struct DraftLenController {
    k: usize,
    min_k: usize,
    max_k: usize,
    adaptive: bool,
    window_proposed: usize,
    window_accepted: usize,
}

/// Proposals per adaptation window.
pub const ADAPT_WINDOW: usize = 16;
/// Windowed acceptance rate above which `k` grows.
const GROW_THRESHOLD: f64 = 0.8;
/// Windowed acceptance rate below which `k` shrinks.
const SHRINK_THRESHOLD: f64 = 0.4;

impl DraftLenController {
    /// A fixed draft length (the classic configuration).
    pub fn fixed(k: usize) -> Self {
        assert!(k >= 1);
        DraftLenController {
            k,
            min_k: k,
            max_k: k,
            adaptive: false,
            window_proposed: 0,
            window_accepted: 0,
        }
    }

    /// An acceptance-adaptive draft length starting at `init`, clamped to
    /// `[min_k, max_k]`.
    pub fn adaptive(init: usize, min_k: usize, max_k: usize) -> Self {
        assert!(min_k >= 1 && min_k <= init && init <= max_k);
        DraftLenController {
            k: init,
            min_k,
            max_k,
            adaptive: true,
            window_proposed: 0,
            window_accepted: 0,
        }
    }

    /// The draft length to use for the next round.
    pub fn draft_len(&self) -> usize {
        self.k
    }

    /// The largest draft length this controller can ever request (verify
    /// batches are `max_draft_len() + 1` rows).
    pub fn max_draft_len(&self) -> usize {
        self.max_k
    }

    /// Feeds one round's outcome into the acceptance window; once the
    /// window has seen [`ADAPT_WINDOW`] proposals the rate decides whether
    /// `k` grows, shrinks or holds, and the window resets.
    pub fn record_round(&mut self, proposed: usize, accepted: usize) {
        debug_assert!(accepted <= proposed);
        if !self.adaptive {
            return;
        }
        self.window_proposed += proposed;
        self.window_accepted += accepted;
        if self.window_proposed >= ADAPT_WINDOW {
            let rate = self.window_accepted as f64 / self.window_proposed as f64;
            if rate >= GROW_THRESHOLD {
                self.k = (self.k + 1).min(self.max_k);
            } else if rate < SHRINK_THRESHOLD {
                self.k = (self.k - 1).max(self.min_k);
            }
            self.window_proposed = 0;
            self.window_accepted = 0;
        }
    }
}

/// A deterministic seeded accept/reject stream for cost-only experiments:
/// each query accepts with probability `alpha`, driven by a 64-bit LCG so
/// every policy under comparison replays the *identical* trace (the CI
/// gates pin seeds).
#[derive(Clone, Debug)]
pub struct AcceptanceTrace {
    state: u64,
    alpha: f64,
}

impl AcceptanceTrace {
    /// A trace accepting each proposal independently with rate `alpha`.
    pub fn seeded(seed: u64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        AcceptanceTrace {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            alpha,
        }
    }

    /// The trace's acceptance rate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether the next drafted token is accepted.
    pub fn next_accept(&mut self) -> bool {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.state >> 40) as f64 / (1u64 << 24) as f64) < self.alpha
    }

    /// How many of `k` drafted tokens a verify round accepts under this
    /// trace: acceptance stops at the first rejection (greedy
    /// verification accepts a prefix, never a subset).
    pub fn round_accepts(&mut self, k: usize) -> usize {
        let mut accepted = 0;
        for _ in 0..k {
            if self.next_accept() {
                accepted += 1;
            } else {
                break;
            }
        }
        accepted
    }
}

/// Outcome of a speculative generation run.
#[derive(Debug)]
pub struct SpecDecodeOutcome {
    /// The generated tokens (target-model-faithful: identical to greedy
    /// decoding of the target).
    pub tokens: Vec<u32>,
    /// Target-model steps executed.
    pub target_steps: usize,
    /// Tokens committed per target step (the speedup over plain decode).
    pub mean_accepted: f64,
    /// Total simulated cost.
    pub cost: StepCost,
    /// Per-round bookkeeping (draft length, accepted count, KV length).
    pub rounds: Vec<SpecRound>,
}

/// Charges the verification host loop (argmax + accept compare over
/// `rows` logit rows) to the CPU roofline and returns its seconds. Public
/// so the cost-side paper-scale measurement (`npuscale::spec`) prices the
/// same host loop with the same roofline.
pub fn charge_accept_loop(ctx: &mut NpuContext, rows: usize, vocab: usize) -> f64 {
    let snap = ctx.cost.snapshot();
    ctx.cost
        .charge_cpu((rows * vocab) as u64, (rows * vocab * 4) as u64);
    ctx.cost.delta_since(&snap, "").wall_secs
}

/// Runs greedy speculative decoding with a fixed draft length: drafts
/// `draft_len` tokens per round, verifies them with one batched target
/// forward, accepts the agreeing prefix plus the target's correction.
///
/// The verification trick: each round the committed token plus the
/// drafted chunk go through `prefill_all_logits` — one batched pass whose
/// `k+1` rows score every draft position at once. Rejected positions'
/// KV rows are dropped in place (`KvCache::truncate_seq`), the O(1)
/// rollback of a real runtime, so nothing is recomputed.
///
/// Output equivalence: the accepted stream equals plain greedy decoding of
/// the target model (tested).
///
/// # Panics
///
/// Panics in cost-only mode (this is a functional-path extension).
pub fn speculative_generate(
    ctx: &mut NpuContext,
    model: &Model,
    draft: &mut dyn DraftModel,
    prompt: &[u32],
    max_new_tokens: usize,
    draft_len: usize,
) -> SimResult<SpecDecodeOutcome> {
    let mut ctrl = DraftLenController::fixed(draft_len);
    speculative_generate_with(ctx, model, draft, prompt, max_new_tokens, &mut ctrl)
}

/// [`speculative_generate`] with an explicit [`DraftLenController`] —
/// fixed or acceptance-adaptive draft length.
pub fn speculative_generate_with(
    ctx: &mut NpuContext,
    model: &Model,
    draft: &mut dyn DraftModel,
    prompt: &[u32],
    max_new_tokens: usize,
    ctrl: &mut DraftLenController,
) -> SimResult<SpecDecodeOutcome> {
    assert_eq!(ctx.mode, ExecMode::Functional);
    let vocab = model.cfg.vocab;
    let mut cost = StepCost::default();

    let budget = prompt.len() + max_new_tokens + ctrl.max_draft_len() + 4;
    let mut cache = KvCache::new(ctx, &model.cfg, 1, budget)?;
    let prefill = model.prefill(ctx, &mut cache, 0, prompt)?;
    cost.add(&prefill.cost);

    let mut generated: Vec<u32> = Vec::new();
    let mut next_greedy = argmax(&prefill.logits);
    let mut target_steps = 0usize;
    let mut accepted_total = 0usize;
    let mut rounds: Vec<SpecRound> = Vec::new();

    while generated.len() < max_new_tokens {
        // The target's committed token (from the previous verification).
        generated.push(next_greedy);
        if generated.len() >= max_new_tokens {
            break;
        }
        let draft_len = ctrl.draft_len();
        // Draft a chunk continuing after the committed token.
        let mut chunk = vec![next_greedy];
        let mut draft_ctx: Vec<u32> = prompt.iter().chain(generated.iter()).copied().collect();
        for _ in 0..draft_len {
            let proposal = draft.propose(&draft_ctx);
            chunk.push(proposal);
            draft_ctx.push(proposal);
        }
        // One target pass over the whole chunk (m = draft_len + 1 rows of
        // free tile compute) — returns logits for every chunk position.
        let verify = model.prefill_all_logits(ctx, &mut cache, 0, &chunk)?;
        cost.add(&verify.cost);
        cost.cpu_secs += charge_accept_loop(ctx, draft_len + 1, vocab);
        target_steps += 1;

        // Greedy verification: accept while target argmax == draft.
        let mut accepted = 0usize;
        for pos in 0..draft_len {
            let target_tok = argmax(&verify.logits[pos * vocab..(pos + 1) * vocab]);
            let draft_tok = chunk[pos + 1];
            if target_tok == draft_tok && generated.len() + accepted + 1 < max_new_tokens {
                draft.observe(chunk[pos], draft_tok);
                accepted += 1;
            } else {
                // Reject: the target's own token replaces the draft here.
                next_greedy = target_tok;
                break;
            }
        }
        if accepted == draft_len {
            // Whole draft accepted; the target's next token comes from the
            // final position's logits.
            next_greedy = argmax(&verify.logits[draft_len * vocab..(draft_len + 1) * vocab]);
        }
        // Commit accepted draft tokens.
        for a in 0..accepted {
            generated.push(chunk[a + 1]);
        }
        accepted_total += accepted;
        ctrl.record_round(draft_len, accepted);

        // Roll the cache back past the rejected suffix: drop the stale KV
        // rows in place (O(1) truncation, no recompute, no re-charge).
        if accepted < draft_len {
            cache.truncate_seq(0, prompt.len() + generated.len());
        }
        rounds.push(SpecRound {
            draft_len,
            accepted,
            kv_len: cache.len(0),
        });
    }
    generated.truncate(max_new_tokens);
    cache.free(ctx);

    Ok(SpecDecodeOutcome {
        mean_accepted: 1.0 + accepted_total as f64 / target_steps.max(1) as f64,
        tokens: generated,
        target_steps,
        cost,
        rounds,
    })
}

/// Outcome of a two-model speculative decoding run through the real stack.
#[derive(Debug)]
pub struct SpecPipelineOutcome {
    /// The generated tokens — bit-identical to plain greedy decoding of
    /// the *target* model (the draft can only accelerate, never alter).
    pub tokens: Vec<u32>,
    /// Verify rounds executed (target batched passes).
    pub target_steps: usize,
    /// Tokens committed per verify round.
    pub mean_accepted: f64,
    /// Target-side cost (prefill + verify passes + accept host loops).
    pub target_cost: StepCost,
    /// Draft-side cost (draft prefill + proposal decode steps).
    pub draft_cost: StepCost,
    /// Per-round bookkeeping.
    pub rounds: Vec<SpecRound>,
    /// Serial decode-phase seconds: every verify pass plus every draft
    /// step, fully sequential (prompt prefills excluded from both
    /// pipeline aggregates).
    pub serial_secs: f64,
    /// Overlap-aware decode-phase seconds: per round, the draft's stage
    /// breakdown rides the verify step's [`StepStages`] draft lanes, so
    /// draft CPU work hides behind verify kernels and only the draft's
    /// NPU share serializes (the exposed draft fraction).
    pub overlapped_secs: f64,
}

/// Folds a slice of draft-step stage breakdowns into the
/// `(draft_cpu_secs, draft_npu_secs)` pair of the verify step: host-side
/// work (embedding, lm_head/argmax, command dispatch, session switches)
/// hides on the draft lane, NPU kernel time serializes on the shared
/// accelerator.
pub fn draft_round_lanes(stages: &[StepStages]) -> (f64, f64) {
    let mut cpu = 0.0;
    let mut npu = 0.0;
    for st in stages {
        cpu += st.cpu_embed_secs + st.cpu_head_secs;
        let mut switches = usize::from(st.wrap_switch);
        for l in &st.layers {
            cpu += l.dispatch_secs;
            npu += l.npu_secs + l.weight_fetch_secs;
            switches += usize::from(l.switch_before);
        }
        cpu += switches as f64 * st.switch_secs;
        npu += st.final_npu_secs;
    }
    (cpu, npu)
}

/// Runs the full two-model speculative pipeline: a small draft [`Model`]
/// autoregressively proposes `k` tokens (its KV cache co-resident with
/// the target's in the same [`NpuContext`]), and the target verifies the
/// chunk in one batched pass. Draft-side KV rolls back in lockstep with
/// the target on rejection, so the draft never re-prefills committed
/// context.
///
/// The outcome carries both the serial decode-phase time and the
/// overlap-aware time in which the draft round is scheduled behind the
/// verify kernels (see [`SpecPipelineOutcome::overlapped_secs`]).
///
/// # Panics
///
/// Panics in cost-only mode (use the cost-side experiment rows for
/// paper-scale models) and if the two models have different vocabularies
/// (draft proposals must be target tokens).
pub fn speculative_decode_pipeline(
    ctx: &mut NpuContext,
    target: &Model,
    draft: &Model,
    prompt: &[u32],
    max_new_tokens: usize,
    ctrl: &mut DraftLenController,
) -> SimResult<SpecPipelineOutcome> {
    assert_eq!(ctx.mode, ExecMode::Functional);
    assert_eq!(
        target.cfg.vocab, draft.cfg.vocab,
        "draft and target must share a vocabulary"
    );
    let vocab = target.cfg.vocab;
    let mut target_cost = StepCost::default();
    let mut draft_cost = StepCost::default();
    let mut serial_secs = 0.0;
    let mut overlapped_secs = 0.0;

    let budget = prompt.len() + max_new_tokens + ctrl.max_draft_len() + 4;
    let mut target_cache = KvCache::new(ctx, &target.cfg, 1, budget)?;
    let mut draft_cache = KvCache::new(ctx, &draft.cfg, 1, budget)?;
    let prefill = target.prefill(ctx, &mut target_cache, 0, prompt)?;
    target_cost.add(&prefill.cost);

    let mut generated: Vec<u32> = Vec::new();
    let mut next_greedy = argmax(&prefill.logits);
    // Tokens of the committed sequence the draft's KV has consumed.
    let mut draft_seen = 0usize;
    let mut target_steps = 0usize;
    let mut accepted_total = 0usize;
    let mut rounds: Vec<SpecRound> = Vec::new();

    while generated.len() < max_new_tokens {
        generated.push(next_greedy);
        if generated.len() >= max_new_tokens {
            break;
        }
        let k = ctrl.draft_len();
        let committed_len = prompt.len() + generated.len();

        // --- Draft round: feed unseen committed tokens, then propose k
        // tokens autoregressively. The first pass catches the draft up on
        // whatever the last round committed (correction token and/or the
        // accepted tail it had not yet consumed).
        let feed: Vec<u32> = prompt
            .iter()
            .chain(generated.iter())
            .copied()
            .skip(draft_seen)
            .collect();
        debug_assert!(!feed.is_empty());
        let mut draft_stages: Vec<StepStages> = Vec::new();
        let first = draft.prefill(ctx, &mut draft_cache, 0, &feed)?;
        draft_cost.add(&first.cost);
        serial_secs += first.cost.wall_secs();
        draft_stages.push(first.stages.clone());
        let mut proposals = vec![argmax(&first.logits)];
        while proposals.len() < k {
            let out = draft.decode_step(ctx, &mut draft_cache, &[*proposals.last().unwrap()])?;
            draft_cost.add(&out.cost);
            serial_secs += out.cost.wall_secs();
            draft_stages.push(out.stages.clone());
            proposals.push(argmax(&out.logits));
        }

        // --- Verify: one batched target pass over the committed token
        // plus the k proposals (k+1 rows sharing the prefix cache).
        let mut chunk = vec![next_greedy];
        chunk.extend_from_slice(&proposals);
        let verify = target.prefill_all_logits(ctx, &mut target_cache, 0, &chunk)?;
        target_cost.add(&verify.cost);
        let accept_secs = charge_accept_loop(ctx, k + 1, vocab);
        target_cost.cpu_secs += accept_secs;
        serial_secs += verify.cost.wall_secs() + accept_secs;
        // Overlap-aware round time: the *next* draft round rides the
        // verify step's draft lanes — draft CPU hides behind the verify
        // kernels, draft NPU kernels queue behind them on the shared
        // accelerator. Steady-state speculation alternates identical
        // rounds, so the per-round period is the steady state of this
        // combined stage graph.
        let (draft_cpu, draft_npu) = draft_round_lanes(&draft_stages);
        let mut combined = verify.stages.clone();
        combined.cpu_head_secs += accept_secs;
        combined.draft_cpu_secs = draft_cpu;
        combined.draft_npu_secs = draft_npu;
        overlapped_secs += steady_state_step_secs(&combined);
        target_steps += 1;

        // --- Accept the agreeing prefix.
        let mut accepted = 0usize;
        for pos in 0..k {
            let target_tok = argmax(&verify.logits[pos * vocab..(pos + 1) * vocab]);
            if target_tok == chunk[pos + 1] && generated.len() + accepted + 1 < max_new_tokens {
                accepted += 1;
            } else {
                next_greedy = target_tok;
                break;
            }
        }
        if accepted == k {
            next_greedy = argmax(&verify.logits[k * vocab..(k + 1) * vocab]);
        }
        for a in 0..accepted {
            generated.push(chunk[a + 1]);
        }
        accepted_total += accepted;
        ctrl.record_round(k, accepted);

        // --- Rollback, both sides in lockstep. The target drops the
        // rejected verify rows; the draft drops its unaccepted proposals
        // (it had consumed proposals p1..p_{k-1} while drafting — of
        // those, only the accepted prefix stays committed).
        if accepted < k {
            target_cache.truncate_seq(0, prompt.len() + generated.len());
        }
        let draft_keep = committed_len + accepted.min(k.saturating_sub(1));
        draft_cache.truncate_seq(0, draft_keep);
        draft_seen = draft_keep;

        rounds.push(SpecRound {
            draft_len: k,
            accepted,
            kv_len: target_cache.len(0),
        });
    }
    generated.truncate(max_new_tokens);
    target_cache.free(ctx);
    draft_cache.free(ctx);

    Ok(SpecPipelineOutcome {
        mean_accepted: 1.0 + accepted_total as f64 / target_steps.max(1) as f64,
        tokens: generated,
        target_steps,
        target_cost,
        draft_cost,
        rounds,
        serial_secs,
        overlapped_secs,
    })
}

/// Plain greedy decoding of the target model, for equivalence testing.
pub fn greedy_generate(
    ctx: &mut NpuContext,
    model: &Model,
    prompt: &[u32],
    max_new_tokens: usize,
) -> SimResult<(Vec<u32>, StepCost)> {
    let mut cost = StepCost::default();
    let mut cache = KvCache::new(ctx, &model.cfg, 1, prompt.len() + max_new_tokens + 2)?;
    let prefill = model.prefill(ctx, &mut cache, 0, prompt)?;
    cost.add(&prefill.cost);
    let mut tokens = vec![argmax(&prefill.logits)];
    while tokens.len() < max_new_tokens {
        let out = model.decode_step(ctx, &mut cache, &[*tokens.last().unwrap()])?;
        cost.add(&out.cost);
        tokens.push(argmax(&out.logits));
    }
    cache.free(ctx);
    Ok((tokens, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm::config::ModelId;
    use htpops::gemm::DequantVariant;

    fn setup() -> (NpuContext, Model) {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
        (ctx, model)
    }

    #[test]
    fn speculative_output_equals_greedy() {
        let (mut ctx, model) = setup();
        let prompt = vec![1u32, 50, 60, 70];
        let (greedy, _) = greedy_generate(&mut ctx, &model, &prompt, 10).unwrap();
        let mut draft = BigramDraft::new(4);
        let spec = speculative_generate(&mut ctx, &model, &mut draft, &prompt, 10, 3).unwrap();
        assert_eq!(spec.tokens, greedy, "speculation must be lossless");
    }

    #[test]
    fn perfect_draft_accepts_everything() {
        // An oracle draft (clone of the target's greedy stream) should be
        // accepted wholesale: steps ~ tokens / (draft_len + 1).
        struct Oracle {
            stream: Vec<u32>,
            pos: usize,
        }
        impl DraftModel for Oracle {
            fn propose(&mut self, _context: &[u32]) -> u32 {
                let t = self.stream[self.pos.min(self.stream.len() - 1)];
                self.pos += 1;
                t
            }
        }
        let (mut ctx, model) = setup();
        let prompt = vec![1u32, 30, 40];
        let (greedy, _) = greedy_generate(&mut ctx, &model, &prompt, 9).unwrap();
        // The oracle replays greedy[1..] as its proposals. The proposal
        // cursor must follow the *accepted* stream; with full acceptance it
        // advances one per call.
        let mut oracle = Oracle {
            stream: greedy[1..].to_vec(),
            pos: 0,
        };
        let spec = speculative_generate(&mut ctx, &model, &mut oracle, &prompt, 9, 3).unwrap();
        assert_eq!(spec.tokens, greedy);
        assert!(
            spec.mean_accepted > 2.5,
            "oracle draft should accept nearly all: {}",
            spec.mean_accepted
        );
        assert!(spec.target_steps <= 4, "steps {}", spec.target_steps);
    }

    #[test]
    fn hopeless_draft_degenerates_to_greedy_speed() {
        struct Wrong;
        impl DraftModel for Wrong {
            fn propose(&mut self, _c: &[u32]) -> u32 {
                3 // STEP_SEP: essentially never the greedy choice here.
            }
        }
        let (mut ctx, model) = setup();
        let prompt = vec![1u32, 90];
        let spec = speculative_generate(&mut ctx, &model, &mut Wrong, &prompt, 8, 3).unwrap();
        // Every round rejects at the first draft position: one new token
        // per target step.
        assert!(spec.mean_accepted < 1.3, "{}", spec.mean_accepted);
        let (greedy, _) = greedy_generate(&mut ctx, &model, &prompt, 8).unwrap();
        assert_eq!(spec.tokens, greedy);
    }

    #[test]
    fn verification_step_is_cheaper_than_sequential_decode() {
        // The free-compute claim: verifying a 4-token chunk in one pass
        // costs far less than four sequential decode steps.
        let (mut ctx, model) = setup();
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, 64).unwrap();
        model
            .prefill(&mut ctx, &mut cache, 0, &[1, 20, 30])
            .unwrap();
        let chunk = model
            .prefill_all_logits(&mut ctx, &mut cache, 0, &[40, 41, 42, 43])
            .unwrap();
        let mut cache2 = KvCache::new(&mut ctx, &model.cfg, 1, 64).unwrap();
        model
            .prefill(&mut ctx, &mut cache2, 0, &[1, 20, 30])
            .unwrap();
        let mut seq_cost = StepCost::default();
        for t in [40u32, 41, 42, 43] {
            let out = model.decode_step(&mut ctx, &mut cache2, &[t]).unwrap();
            seq_cost.add(&out.cost);
        }
        assert!(
            chunk.cost.wall_secs() < 0.5 * seq_cost.wall_secs(),
            "chunk {} vs sequential {}",
            chunk.cost.wall_secs(),
            seq_cost.wall_secs()
        );
    }

    #[test]
    fn kv_length_grows_by_accepted_plus_one_per_round() {
        let (mut ctx, model) = setup();
        let prompt = vec![1u32, 50, 60, 70];
        let mut draft = BigramDraft::new(4);
        let spec = speculative_generate(&mut ctx, &model, &mut draft, &prompt, 12, 3).unwrap();
        let mut expect = prompt.len();
        for r in &spec.rounds {
            expect += r.accepted + 1;
            assert_eq!(r.kv_len, expect, "KV invariant violated at {r:?}");
        }
    }

    #[test]
    fn chunked_argmax_matches_scalar_reference() {
        // Elementwise differential over the hazardous shapes: ties inside
        // and across chunk boundaries, NaN in every position class,
        // -inf-only rows, sizes around the chunk width.
        let cases: Vec<Vec<f32>> = vec![
            vec![],
            vec![0.5],
            vec![f32::NAN],
            vec![f32::NAN, 7.0],
            vec![1.0, f32::NAN, 5.0],
            vec![1.0, f32::NAN, 0.5],
            vec![f32::NEG_INFINITY; 130],
            vec![3.0; 200],
        ];
        for case in cases {
            assert_eq!(argmax(&case), argmax_scalar(&case), "case {case:?}");
        }
        // A tie straddling the 64-wide chunk boundary keeps first-wins.
        let mut tie = vec![0.0f32; 130];
        tie[63] = 9.0;
        tie[64] = 9.0;
        assert_eq!(argmax(&tie), 63);
        assert_eq!(argmax(&tie), argmax_scalar(&tie));
        // NaN leading a later chunk must not shadow the chunk's max.
        let mut shadow = vec![1.0f32; 130];
        shadow[64] = f32::NAN;
        shadow[65] = 8.0;
        assert_eq!(argmax(&shadow), 65);
        assert_eq!(argmax(&shadow), argmax_scalar(&shadow));
        // Deterministic pseudo-random sweep across sizes.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for n in [1usize, 5, 63, 64, 65, 127, 128, 129, 500] {
            let row: Vec<f32> = (0..n).map(|_| next()).collect();
            assert_eq!(argmax(&row), argmax_scalar(&row), "n={n}");
        }
    }

    #[test]
    fn bigram_draft_is_deterministic() {
        // Identical observation streams must yield identical proposal
        // streams — the BTreeMap backing has no iteration-order hazard.
        let mut runs: Vec<Vec<u32>> = Vec::new();
        for _ in 0..2 {
            let mut d = BigramDraft::new(9);
            for (a, b) in [(1u32, 2u32), (2, 3), (1, 4), (7, 1), (3, 3)] {
                d.observe(a, b);
            }
            runs.push((0..10u32).map(|t| d.propose(&[t])).collect());
        }
        assert_eq!(runs[0], runs[1]);
        // Latest observation wins, matching the HashMap insert semantics.
        assert_eq!(runs[0][1], 4);
    }

    #[test]
    fn controller_grows_on_hot_draft_and_shrinks_on_cold() {
        let mut hot = DraftLenController::adaptive(3, 1, 8);
        for _ in 0..8 {
            hot.record_round(3, 3);
        }
        assert!(
            hot.draft_len() > 3,
            "hot draft must grow: {}",
            hot.draft_len()
        );
        let mut cold = DraftLenController::adaptive(3, 1, 8);
        for _ in 0..16 {
            cold.record_round(3, 0);
        }
        assert_eq!(cold.draft_len(), 1, "cold draft must shrink to min");
        let mut fixed = DraftLenController::fixed(4);
        for _ in 0..16 {
            fixed.record_round(4, 0);
        }
        assert_eq!(fixed.draft_len(), 4);
        // Bounds hold under indefinite pressure.
        let mut capped = DraftLenController::adaptive(2, 1, 3);
        for _ in 0..64 {
            capped.record_round(capped.draft_len(), capped.draft_len());
        }
        assert_eq!(capped.draft_len(), 3);
    }

    #[test]
    fn acceptance_trace_is_deterministic_and_calibrated() {
        let mut a = AcceptanceTrace::seeded(7, 0.7);
        let mut b = AcceptanceTrace::seeded(7, 0.7);
        let xs: Vec<bool> = (0..64).map(|_| a.next_accept()).collect();
        let ys: Vec<bool> = (0..64).map(|_| b.next_accept()).collect();
        assert_eq!(xs, ys);
        let mut c = AcceptanceTrace::seeded(11, 0.7);
        let hits = (0..20_000).filter(|_| c.next_accept()).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
        // Round accepts stop at the first rejection.
        let mut d = AcceptanceTrace::seeded(3, 0.0);
        assert_eq!(d.round_accepts(5), 0);
        let mut e = AcceptanceTrace::seeded(3, 1.0);
        assert_eq!(e.round_accepts(5), 5);
    }

    #[test]
    fn two_model_pipeline_is_lossless() {
        // A *different* draft transformer (other seed, so other weights)
        // proposes; the output must still equal the target's greedy
        // stream bit for bit.
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let target = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
        let draft = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 7).unwrap();
        let prompt = vec![1u32, 50, 60, 70, 80];
        let (greedy, _) = greedy_generate(&mut ctx, &target, &prompt, 12).unwrap();
        let mut ctrl = DraftLenController::fixed(3);
        let out =
            speculative_decode_pipeline(&mut ctx, &target, &draft, &prompt, 12, &mut ctrl).unwrap();
        assert_eq!(out.tokens, greedy, "two-model speculation must be lossless");
        assert!(out.target_steps <= 12);
        assert!(out.overlapped_secs <= out.serial_secs + 1e-12);
        assert!(out.draft_cost.wall_secs() > 0.0);
        // KV invariant holds round by round.
        let mut expect = prompt.len();
        for r in &out.rounds {
            expect += r.accepted + 1;
            assert_eq!(r.kv_len, expect, "KV invariant violated at {r:?}");
        }
    }

    #[test]
    fn same_weights_draft_accepts_everything() {
        // Draft == target (same seed): every proposal is the target's own
        // greedy choice, so acceptance is total and rounds commit k+1.
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let target = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
        let draft = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
        let prompt = vec![1u32, 30, 40];
        let (greedy, _) = greedy_generate(&mut ctx, &target, &prompt, 9).unwrap();
        let mut ctrl = DraftLenController::fixed(3);
        let out =
            speculative_decode_pipeline(&mut ctx, &target, &draft, &prompt, 9, &mut ctrl).unwrap();
        assert_eq!(out.tokens, greedy);
        assert!(
            out.mean_accepted > 2.5,
            "identical draft should accept nearly all: {}",
            out.mean_accepted
        );
        assert!(out.target_steps <= 4, "steps {}", out.target_steps);
    }

    #[test]
    fn adaptive_pipeline_stays_lossless() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let target = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
        let draft = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 7).unwrap();
        let prompt = vec![1u32, 50, 60];
        let (greedy, _) = greedy_generate(&mut ctx, &target, &prompt, 14).unwrap();
        let mut ctrl = DraftLenController::adaptive(3, 1, 5);
        let out =
            speculative_decode_pipeline(&mut ctx, &target, &draft, &prompt, 14, &mut ctrl).unwrap();
        assert_eq!(out.tokens, greedy, "adaptive speculation must be lossless");
        // Rounds may use different k, but every k stays in bounds.
        for r in &out.rounds {
            assert!((1..=5).contains(&r.draft_len));
        }
    }
}
