//! Step-level beam search with a process reward model (paper Figure 1,
//! right).
//!
//! Width-`W` beams each expand into `E` candidate next steps; the PRM
//! scores every candidate prefix and the top `W` survive. Low-quality
//! reasoning paths are pruned *before* they waste decode budget, which is
//! why beam search reaches a given accuracy at lower cost than Best-of-N
//! in the paper's Figure 10. The decode batch occupied on the NPU is
//! `W x E` during expansion.

use mathsynth::mathgen::MathTask;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::policy::{CalibratedPolicy, Step};
use crate::verifier::SimPrm;

/// Beam search configuration.
#[derive(Clone, Copy, Debug)]
pub struct BeamSearchConfig {
    /// Number of surviving beams per step.
    pub width: usize,
    /// Expansions sampled per beam per step.
    pub expansion: usize,
}

impl BeamSearchConfig {
    /// Decode batch occupied during expansion (the paper's "generation
    /// budget" axis).
    pub fn budget(&self) -> usize {
        self.width * self.expansion
    }
}

#[derive(Clone)]
struct Beam {
    steps: Vec<Step>,
    score: f64,
    all_correct: bool,
    tokens: usize,
}

/// Outcome of one beam-search invocation.
#[derive(Clone, Debug)]
pub struct BeamOutcome {
    /// Whether the best final beam solves the task.
    pub correct: bool,
    /// Tokens generated across all expansions (compute actually spent).
    pub total_tokens: usize,
    /// Tokens in the winning beam (useful output length).
    pub chosen_tokens: usize,
    /// Tokens spent on candidate steps discarded at pruning — the slack a
    /// continuous-batching decoder (`DecodeSession`) reclaims by retiring
    /// pruned candidates' KV slots instead of decoding them to the end.
    pub pruned_tokens: usize,
}

/// Runs step-level beam search on one task.
pub fn beam_search(
    policy: &CalibratedPolicy,
    prm: &SimPrm,
    task: &MathTask,
    cfg: BeamSearchConfig,
    seed: u64,
) -> BeamOutcome {
    assert!(cfg.width >= 1 && cfg.expansion >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ task.id.wrapping_mul(0x5EED));
    let n_steps = task.steps.max(1);
    let mut beams = vec![
        Beam {
            steps: Vec::new(),
            score: 0.0,
            all_correct: true,
            tokens: 0,
        };
        cfg.width
    ];
    let mut total_tokens = 0usize;
    let mut pruned_tokens = 0usize;

    for _step in 0..n_steps {
        let mut candidates: Vec<Beam> = Vec::with_capacity(cfg.width * cfg.expansion);
        for beam in &beams {
            for _e in 0..cfg.expansion {
                let mut srng = policy.task_rng(task, seed.wrapping_add(candidates.len() as u64));
                // Mix the outer RNG so expansions differ across steps.
                let step = policy.sample_step(task, &mut rng);
                let _ = &mut srng;
                let score = prm.score_step(&step, &mut rng);
                total_tokens += step.tokens;
                let mut next = beam.clone();
                next.steps.push(step);
                next.score += score;
                next.all_correct &= step.correct;
                next.tokens += step.tokens;
                candidates.push(next);
            }
        }
        // total_cmp: PRM scores are sums of float rewards, and a NaN from
        // a poisoned reward must not panic the pruning sort.
        candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
        let dropped = candidates.split_off(cfg.width);
        pruned_tokens += dropped
            .iter()
            .map(|c| c.steps.last().expect("expanded").tokens)
            .sum::<usize>();
        beams = candidates;
    }

    let best = beams
        .into_iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .expect("width >= 1");
    BeamOutcome {
        correct: best.all_correct,
        total_tokens,
        chosen_tokens: best.tokens + 15,
        pruned_tokens,
    }
}

/// Beam-search accuracy (percent) over a task set.
pub fn accuracy_over_tasks(
    policy: &CalibratedPolicy,
    prm: &SimPrm,
    tasks: &[MathTask],
    cfg: BeamSearchConfig,
    seed: u64,
) -> f64 {
    let solved = tasks
        .iter()
        .filter(|t| beam_search(policy, prm, t, cfg, seed).correct)
        .count();
    solved as f64 / tasks.len().max(1) as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best_of_n;
    use crate::verifier::SimOrm;
    use edgellm::config::ModelId;
    use mathsynth::mathgen::{DatasetKind, TaskGenerator};

    fn setup() -> (CalibratedPolicy, Vec<MathTask>) {
        let policy = CalibratedPolicy::new(ModelId::Qwen1_5B, DatasetKind::Math500Like);
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 31).take(600);
        (policy, tasks)
    }

    #[test]
    fn wider_beams_are_more_accurate() {
        let (policy, tasks) = setup();
        let prm = SimPrm::default();
        let narrow = accuracy_over_tasks(
            &policy,
            &prm,
            &tasks,
            BeamSearchConfig {
                width: 1,
                expansion: 1,
            },
            7,
        );
        let wide = accuracy_over_tasks(
            &policy,
            &prm,
            &tasks,
            BeamSearchConfig {
                width: 4,
                expansion: 4,
            },
            7,
        );
        assert!(wide > narrow + 10.0, "narrow {narrow} wide {wide}");
    }

    #[test]
    fn beam_search_beats_best_of_n_at_matched_budget() {
        // The paper's Figure 10: step-level pruning uses budget more
        // efficiently than outcome-only selection.
        let (policy, tasks) = setup();
        let prm = SimPrm::default();
        let orm = SimOrm::default();
        let budget = 16;
        let beam = accuracy_over_tasks(
            &policy,
            &prm,
            &tasks,
            BeamSearchConfig {
                width: 4,
                expansion: 4,
            },
            3,
        );
        let bon = best_of_n::accuracy_over_tasks(&policy, &orm, &tasks, budget, 3);
        assert!(
            beam > bon - 2.0,
            "beam {beam} should be at least competitive with BoN {bon}"
        );
    }

    #[test]
    fn width_one_expansion_one_is_greedy_sampling() {
        let (policy, tasks) = setup();
        let prm = SimPrm::default();
        let acc = accuracy_over_tasks(
            &policy,
            &prm,
            &tasks,
            BeamSearchConfig {
                width: 1,
                expansion: 1,
            },
            5,
        );
        // Should be close to the base pass@1 (~30% for Qwen1.5 MATH500).
        assert!((22.0..38.0).contains(&acc), "greedy {acc}");
    }

    #[test]
    fn budget_accounting() {
        let cfg = BeamSearchConfig {
            width: 4,
            expansion: 4,
        };
        assert_eq!(cfg.budget(), 16);
        let (policy, tasks) = setup();
        let prm = SimPrm::default();
        let out = beam_search(&policy, &prm, &tasks[0], cfg, 1);
        // Total compute = width x expansion samples per step.
        assert!(out.total_tokens >= out.chosen_tokens);
    }

    #[test]
    fn pruned_tokens_quantify_reclaimable_slack() {
        let (policy, tasks) = setup();
        let prm = SimPrm::default();
        // With expansion > 1, W·(E-1) candidates are discarded per step;
        // their step tokens are the slack continuous batching reclaims.
        let wide = beam_search(
            &policy,
            &prm,
            &tasks[0],
            BeamSearchConfig {
                width: 2,
                expansion: 4,
            },
            9,
        );
        assert!(wide.pruned_tokens > 0);
        assert!(wide.pruned_tokens < wide.total_tokens);
        // With expansion 1 nothing is ever pruned.
        let narrow = beam_search(
            &policy,
            &prm,
            &tasks[0],
            BeamSearchConfig {
                width: 3,
                expansion: 1,
            },
            9,
        );
        assert_eq!(narrow.pruned_tokens, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (policy, tasks) = setup();
        let prm = SimPrm::default();
        let cfg = BeamSearchConfig {
            width: 2,
            expansion: 2,
        };
        let a = beam_search(&policy, &prm, &tasks[3], cfg, 11);
        let b = beam_search(&policy, &prm, &tasks[3], cfg, 11);
        assert_eq!(a.correct, b.correct);
        assert_eq!(a.total_tokens, b.total_tokens);
    }
}
