//! End-to-end Best-of-N through the simulated NPU with a real (tiny)
//! transformer: prefill once, broadcast the prompt KV, decode N samples as
//! one batch, extract and verify answers.
//!
//! This is the integration path that exercises every layer of the stack —
//! tokenizer, batched KV cache, tile-quantized GEMMs, FP16 FlashAttention
//! with the `vgather` exp LUT, CPU lm_head, temperature sampling — exactly
//! the way the paper's runtime executes Best-of-N on the phone. The tiny
//! model is untrained, so its *answers* are noise; what this module
//! demonstrates and tests is the machinery and its costs, not task skill
//! (the calibrated policy covers accuracy).

use edgellm::kv_cache::KvCache;
use edgellm::model::{Model, StepCost};
use edgellm::tokenizer::Tokenizer;
use hexsim::prelude::*;
use mathsynth::mathgen::MathTask;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Temperature + top-k sampler over CPU logits.
#[derive(Clone, Copy, Debug)]
pub struct LlmSampler {
    /// Softmax temperature (0 = greedy).
    pub temperature: f32,
    /// Top-k truncation (0 = disabled).
    pub top_k: usize,
}

impl Default for LlmSampler {
    fn default() -> Self {
        LlmSampler {
            temperature: 0.9,
            top_k: 40,
        }
    }
}

impl LlmSampler {
    /// Samples one token id from a logits row.
    pub fn sample(&self, logits: &[f32], rng: &mut StdRng) -> u32 {
        if self.temperature <= 0.0 {
            return argmax(logits);
        }
        // Top-k filter.
        let mut idx: Vec<usize> = (0..logits.len()).collect();
        idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap());
        let k = if self.top_k == 0 {
            logits.len()
        } else {
            self.top_k.min(logits.len())
        };
        let kept = &idx[..k];
        let maxv = logits[kept[0]];
        let weights: Vec<f64> = kept
            .iter()
            .map(|&i| (((logits[i] - maxv) / self.temperature) as f64).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        for (w, &i) in weights.iter().zip(kept) {
            if pick < *w {
                return i as u32;
            }
            pick -= w;
        }
        kept[k - 1] as u32
    }
}

fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}

/// Extracts the first integer (optionally negative) from generated text.
pub fn extract_answer(text: &str) -> Option<i64> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit()
            || (bytes[i] == b'-'
                && bytes
                    .get(i + 1)
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false))
        {
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if let Ok(v) = text[start..i].parse::<i64>() {
                return Some(v);
            }
        }
        i += 1;
    }
    None
}

/// Result of an end-to-end NPU Best-of-N run.
#[derive(Clone, Debug)]
pub struct LlmBonOutcome {
    /// Decoded completions, one per sample.
    pub completions: Vec<String>,
    /// Extracted answers (`None` when no integer was produced).
    pub answers: Vec<Option<i64>>,
    /// Whether any sample verified against the task.
    pub any_correct: bool,
    /// Total decode steps executed.
    pub steps: usize,
    /// Accumulated cost of prefill + all decode steps.
    pub cost: StepCost,
    /// Decode throughput in tokens per second of simulated device time.
    pub decode_tokens_per_sec: f64,
}

/// Runs Best-of-N end to end on the simulated NPU.
///
/// # Panics
///
/// Panics if `n` is zero or the context is not functional.
pub fn llm_best_of_n(
    ctx: &mut NpuContext,
    model: &Model,
    task: &MathTask,
    n: usize,
    max_new_tokens: usize,
    seed: u64,
) -> SimResult<LlmBonOutcome> {
    assert!(n >= 1);
    assert_eq!(
        ctx.mode,
        ExecMode::Functional,
        "end-to-end runs are functional"
    );
    let tok = Tokenizer::new();
    let prompt = format!("{}\nAnswer: ", task.statement);
    let prompt_tokens = tok.encode_with_bos(&prompt);

    let budget = prompt_tokens.len() + n * (max_new_tokens + 1) + 8;
    let mut cache = KvCache::new(ctx, &model.cfg, n, budget * n)?;
    let mut total = StepCost::default();

    // Prefill once on sequence 0, then share the prompt KV across samples.
    let prefill = model.prefill(ctx, &mut cache, 0, &prompt_tokens)?;
    total.add(&prefill.cost);
    cache.broadcast_prompt(true);

    // Sample the first token per sequence from the prefill logits.
    let sampler = LlmSampler::default();
    let mut rng = StdRng::seed_from_u64(seed ^ task.id);
    let mut current: Vec<u32> = (0..n)
        .map(|_| sampler.sample(&prefill.logits, &mut rng))
        .collect();
    let mut generated: Vec<Vec<u32>> = (0..n).map(|s| vec![current[s]]).collect();

    let mut decode_secs = 0.0f64;
    let mut steps = 0usize;
    for _ in 1..max_new_tokens {
        let out = model.decode_step(ctx, &mut cache, &current)?;
        total.add(&out.cost);
        decode_secs += out.cost.wall_secs();
        steps += 1;
        for s in 0..n {
            let row = &out.logits[s * model.cfg.vocab..(s + 1) * model.cfg.vocab];
            let next = sampler.sample(row, &mut rng);
            current[s] = next;
            generated[s].push(next);
        }
    }

    let completions: Vec<String> = generated.iter().map(|g| tok.decode(g)).collect();
    let answers: Vec<Option<i64>> = completions.iter().map(|c| extract_answer(c)).collect();
    let any_correct = answers
        .iter()
        .any(|a| a.map(|v| task.verify(v)).unwrap_or(false));
    let tokens = steps * n;
    Ok(LlmBonOutcome {
        completions,
        answers,
        any_correct,
        steps,
        cost: total,
        decode_tokens_per_sec: if decode_secs > 0.0 {
            tokens as f64 / decode_secs
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm::config::ModelId;
    use htpops::gemm::DequantVariant;
    use mathsynth::mathgen::{DatasetKind, TaskGenerator};

    #[test]
    fn extract_answer_parses_integers() {
        assert_eq!(extract_answer("the answer is 42."), Some(42));
        assert_eq!(extract_answer("-17 apples"), Some(-17));
        assert_eq!(extract_answer("x = 3, y = 4"), Some(3));
        assert_eq!(extract_answer("no numbers here"), None);
    }

    #[test]
    fn sampler_greedy_picks_argmax() {
        let s = LlmSampler {
            temperature: 0.0,
            top_k: 0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample(&[0.1, 0.9, 0.3], &mut rng), 1);
    }

    #[test]
    fn sampler_respects_top_k() {
        let s = LlmSampler {
            temperature: 1.0,
            top_k: 2,
        };
        let mut rng = StdRng::seed_from_u64(2);
        // Only the two largest logits may be sampled.
        for _ in 0..200 {
            let t = s.sample(&[5.0, -100.0, 4.9, -100.0], &mut rng);
            assert!(t == 0 || t == 2, "sampled {t}");
        }
    }

    #[test]
    fn end_to_end_bon_runs_on_simulated_npu() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 3).unwrap();
        let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 5).next_task();
        let out = llm_best_of_n(&mut ctx, &model, &task, 4, 8, 9).unwrap();
        assert_eq!(out.completions.len(), 4);
        assert_eq!(out.steps, 7);
        assert!(out.cost.wall_secs() > 0.0);
        assert!(out.decode_tokens_per_sec > 0.0);
        // Samples must diverge (independent sampling per sequence).
        assert!(
            out.completions
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1,
            "all samples identical: {:?}",
            out.completions
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
            let model =
                Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 3).unwrap();
            let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 5).next_task();
            llm_best_of_n(&mut ctx, &model, &task, 2, 6, 1)
                .unwrap()
                .completions
        };
        assert_eq!(run(), run());
    }
}
