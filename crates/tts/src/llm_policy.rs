//! End-to-end Best-of-N through the simulated NPU with a real (tiny)
//! transformer: prefill once, share the prompt KV through a
//! [`DecodeSession`], decode N samples with continuous batching, extract
//! and verify answers.
//!
//! This is the integration path that exercises every layer of the stack —
//! tokenizer, batched KV cache with slot reuse, tile-quantized GEMMs, FP16
//! FlashAttention with the `vgather` exp LUT, CPU lm_head, temperature
//! sampling — exactly the way the paper's runtime executes Best-of-N on
//! the phone. The tiny model is untrained, so its *answers* are noise;
//! what this module demonstrates and tests is the machinery and its
//! costs, not task skill (the calibrated policy covers accuracy).
//!
//! [`llm_bon_continuous`] and [`llm_bon_fixed_batch`] run the same
//! variable-length workload through the dynamic session and through a
//! static-graph-style fixed batch respectively; their throughput gap is
//! the paper's core argument for bypassing QNN.

use edgellm::decode_session::DecodeSession;
use edgellm::kv_cache::KvCache;
use edgellm::model::{Model, StepCost};
use edgellm::tokenizer::Tokenizer;
use hexsim::prelude::*;
use mathsynth::mathgen::MathTask;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Temperature + top-k sampler over CPU logits.
#[derive(Clone, Copy, Debug)]
pub struct LlmSampler {
    /// Softmax temperature (0 = greedy).
    pub temperature: f32,
    /// Top-k truncation (0 = disabled).
    pub top_k: usize,
}

impl Default for LlmSampler {
    fn default() -> Self {
        LlmSampler {
            temperature: 0.9,
            top_k: 40,
        }
    }
}

impl LlmSampler {
    /// Samples one token id from a logits row. NaN logits (a poisoned
    /// softmax upstream) are treated as negative infinity: they never
    /// panic the sort and never get sampled.
    pub fn sample(&self, logits: &[f32], rng: &mut StdRng) -> u32 {
        if self.temperature <= 0.0 {
            return argmax(logits);
        }
        // NaN-proof logit accessor: total_cmp orders NaN deterministically,
        // and mapping NaN to -inf zeroes its sampling weight.
        let logit = |i: usize| {
            let v = logits[i];
            if v.is_nan() {
                f32::NEG_INFINITY
            } else {
                v
            }
        };
        // Top-k filter.
        let mut idx: Vec<usize> = (0..logits.len()).collect();
        idx.sort_by(|&a, &b| logit(b).total_cmp(&logit(a)));
        let k = if self.top_k == 0 {
            logits.len()
        } else {
            self.top_k.min(logits.len())
        };
        let kept = &idx[..k];
        let maxv = logit(kept[0]);
        if !maxv.is_finite() {
            // Every candidate is NaN/-inf; nothing to weight.
            return kept[0] as u32;
        }
        let weights: Vec<f64> = kept
            .iter()
            .map(|&i| (((logit(i) - maxv) / self.temperature) as f64).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        for (w, &i) in weights.iter().zip(kept) {
            if pick < *w {
                return i as u32;
            }
            pick -= w;
        }
        kept[k - 1] as u32
    }
}

fn argmax(logits: &[f32]) -> u32 {
    // NaN entries are never selected (unless every entry is NaN, which
    // degrades to index 0), matching the sampled path's NaN handling.
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        if logits[best].is_nan() || v > logits[best] {
            best = i;
        }
    }
    best as u32
}

/// Extracts the first integer (optionally negative) from generated text.
pub fn extract_answer(text: &str) -> Option<i64> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit()
            || (bytes[i] == b'-'
                && bytes
                    .get(i + 1)
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false))
        {
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if let Ok(v) = text[start..i].parse::<i64>() {
                return Some(v);
            }
        }
        i += 1;
    }
    None
}

/// Result of an end-to-end NPU Best-of-N run.
#[derive(Clone, Debug)]
pub struct LlmBonOutcome {
    /// Decoded completions, one per sample.
    pub completions: Vec<String>,
    /// Extracted answers (`None` when no integer was produced).
    pub answers: Vec<Option<i64>>,
    /// Whether any sample verified against the task.
    pub any_correct: bool,
    /// Total decode steps executed.
    pub steps: usize,
    /// Accumulated cost of prefill + all decode steps.
    pub cost: StepCost,
    /// Decode throughput in tokens per second of simulated device time.
    pub decode_tokens_per_sec: f64,
}

/// Runs Best-of-N end to end on the simulated NPU through a
/// [`DecodeSession`]: one shared prefill, then all `n` samples decode as
/// one continuously batched pool (uniform budgets here, so the batch
/// stays at `n` until every sample retires together).
///
/// # Panics
///
/// Panics if `n` is zero or the context is not functional.
pub fn llm_best_of_n(
    ctx: &mut NpuContext,
    model: &Model,
    task: &MathTask,
    n: usize,
    max_new_tokens: usize,
    seed: u64,
) -> SimResult<LlmBonOutcome> {
    assert!(n >= 1);
    // Plain Best-of-N is the uniform-length special case of the
    // continuous-batching runner with every slot occupied at once.
    let lengths = vec![max_new_tokens; n];
    let report = llm_bon_continuous(ctx, model, task, &lengths, n, seed)?;
    let answers: Vec<Option<i64>> = report
        .completions
        .iter()
        .map(|c| extract_answer(c))
        .collect();
    let any_correct = answers
        .iter()
        .any(|a| a.map(|v| task.verify(v)).unwrap_or(false));
    Ok(LlmBonOutcome {
        answers,
        any_correct,
        steps: report.steps,
        cost: report.total_cost,
        decode_tokens_per_sec: report.tokens_per_sec,
        completions: report.completions,
    })
}

/// Decode-side report of one batched Best-of-N machinery run, used to
/// compare scheduling strategies on identical workloads.
#[derive(Clone, Debug)]
pub struct BatchedBonReport {
    /// Decoded completions in admission order.
    pub completions: Vec<String>,
    /// Decode-sampled tokens that landed within a sample's budget (the
    /// admission token is excluded on both sides: it comes from the
    /// shared prefill).
    pub useful_tokens: usize,
    /// Simulated decode wall seconds.
    pub decode_secs: f64,
    /// Useful decode throughput, tokens per simulated second.
    pub tokens_per_sec: f64,
    /// Decode steps executed.
    pub steps: usize,
    /// Accumulated cost of prefill(s) + every decode step.
    pub total_cost: StepCost,
}

/// Runs a variable-length Best-of-N workload (`lengths[i]` = total tokens
/// sample `i` may emit) through the continuous-batching
/// [`DecodeSession`]: at most `max_batch` samples decode concurrently,
/// and every early finisher's slot is re-used by a queued sample in the
/// same step.
pub fn llm_bon_continuous(
    ctx: &mut NpuContext,
    model: &Model,
    task: &MathTask,
    lengths: &[usize],
    max_batch: usize,
    seed: u64,
) -> SimResult<BatchedBonReport> {
    assert!(!lengths.is_empty());
    assert_eq!(
        ctx.mode,
        ExecMode::Functional,
        "end-to-end runs are functional"
    );
    let tok = Tokenizer::new();
    let prompt = format!("{}\nAnswer: ", task.statement);
    let prompt_tokens = tok.encode_with_bos(&prompt);
    let max_len = lengths.iter().copied().max().expect("non-empty");
    let budget = max_batch * (prompt_tokens.len() + max_len + 2) + prompt_tokens.len();

    let mut session = DecodeSession::new(ctx, model, &prompt_tokens, max_batch, budget)?;
    let sampler = LlmSampler::default();
    let mut rng = StdRng::seed_from_u64(seed ^ task.id);
    for &len in lengths {
        let first = sampler.sample(session.prompt_logits(), &mut rng);
        session.admit(first, len)?;
    }
    while session.active_count() > 0 {
        session.step(ctx, |_, row| sampler.sample(row, &mut rng))?;
    }

    let useful_tokens = session.decoded_tokens();
    let decode_secs = session.decode_secs();
    let steps = session.steps();
    let mut total_cost = session.prefill_cost();
    total_cost.add(&session.decode_cost());
    let completions = session
        .into_finished(ctx)
        .iter()
        .map(|f| tok.decode(&f.tokens))
        .collect();
    Ok(BatchedBonReport {
        completions,
        useful_tokens,
        decode_secs,
        tokens_per_sec: if decode_secs > 0.0 {
            useful_tokens as f64 / decode_secs
        } else {
            0.0
        },
        steps,
        total_cost,
    })
}

/// The same workload through a static fixed batch, the way a
/// static-graph deployment (QNN-style) has to run it: samples are chunked
/// into waves of `max_batch`, every wave decodes the *full* batch until
/// its longest sample finishes, and slots whose samples finished early —
/// or were never occupied in a ragged final wave — keep burning decode
/// steps because the compiled batch cannot shrink or swap mid-flight.
pub fn llm_bon_fixed_batch(
    ctx: &mut NpuContext,
    model: &Model,
    task: &MathTask,
    lengths: &[usize],
    max_batch: usize,
    seed: u64,
) -> SimResult<BatchedBonReport> {
    assert!(!lengths.is_empty());
    assert!(max_batch >= 1);
    assert_eq!(
        ctx.mode,
        ExecMode::Functional,
        "end-to-end runs are functional"
    );
    let tok = Tokenizer::new();
    let prompt = format!("{}\nAnswer: ", task.statement);
    let prompt_tokens = tok.encode_with_bos(&prompt);
    let sampler = LlmSampler::default();
    let mut rng = StdRng::seed_from_u64(seed ^ task.id);

    let mut completions = Vec::with_capacity(lengths.len());
    let mut useful_tokens = 0usize;
    let mut decode_secs = 0.0f64;
    let mut steps = 0usize;
    let mut total_cost = StepCost::default();
    for wave in lengths.chunks(max_batch) {
        let wave_max = wave.iter().copied().max().expect("non-empty");
        let budget = max_batch * (prompt_tokens.len() + wave_max + 2);
        let mut cache = KvCache::new(ctx, &model.cfg, max_batch, budget)?;
        let prefill = model.prefill(ctx, &mut cache, 0, &prompt_tokens)?;
        total_cost.add(&prefill.cost);
        cache.broadcast_prompt(true);
        let mut current: Vec<u32> = (0..max_batch)
            .map(|_| sampler.sample(&prefill.logits, &mut rng))
            .collect();
        let mut generated: Vec<Vec<u32>> = current.iter().map(|&t| vec![t]).collect();
        for _ in 1..wave_max {
            let out = model.decode_step(ctx, &mut cache, &current)?;
            decode_secs += out.cost.wall_secs();
            total_cost.add(&out.cost);
            steps += 1;
            for s in 0..max_batch {
                let row = &out.logits[s * model.cfg.vocab..(s + 1) * model.cfg.vocab];
                let next = sampler.sample(row, &mut rng);
                current[s] = next;
                // Tokens past a sample's budget (or in an unoccupied
                // padding slot) are decoded but wasted.
                if s < wave.len() && generated[s].len() < wave[s] {
                    generated[s].push(next);
                    useful_tokens += 1;
                }
            }
        }
        cache.free(ctx);
        completions.extend(generated[..wave.len()].iter().map(|g| tok.decode(g)));
    }
    Ok(BatchedBonReport {
        completions,
        useful_tokens,
        decode_secs,
        tokens_per_sec: if decode_secs > 0.0 {
            useful_tokens as f64 / decode_secs
        } else {
            0.0
        },
        steps,
        total_cost,
    })
}

/// Knobs for [`llm_serve_eos`].
#[derive(Clone, Copy, Debug)]
pub struct ServeEosConfig {
    /// Samples to serve.
    pub n: usize,
    /// Per-sample token budget (the EOS predicate usually fires first).
    pub max_new_tokens: usize,
    /// Concurrent decode slots.
    pub max_batch: usize,
    /// Sampling seed (xored with the task id).
    pub seed: u64,
}

/// Outcome of an EOS-driven serving run: the decode-side numbers plus the
/// realized per-sample lengths the EOS predicate produced.
#[derive(Clone, Debug)]
pub struct ServeEosOutcome {
    /// Decode-side report. Every decoded token is useful here: EOS
    /// retirement means nothing past a sample's end is ever decoded.
    pub report: BatchedBonReport,
    /// Realized lengths in admission order, admission token included.
    pub realized_lengths: Vec<usize>,
    /// Samples whose final token fired the EOS predicate (the rest ran
    /// into the `max_new_tokens` budget).
    pub eos_finishes: usize,
}

/// EOS-driven serving through the continuous-batching [`DecodeSession`]:
/// `n` samples share one prompt prefill and decode under a token budget,
/// but each sample is retired the moment `is_eos` fires on its sampled
/// token, and the freed slot is refilled from the queue in the same step.
/// A static fixed batch has to decode every slot to the longest sample,
/// so on mixed realized lengths the EOS path turns the early finishers'
/// slack into useful throughput — the serving gateway's goodput claim
/// demonstrated at the functional policy layer.
pub fn llm_serve_eos(
    ctx: &mut NpuContext,
    model: &Model,
    task: &MathTask,
    cfg: ServeEosConfig,
    is_eos: impl Fn(u32) -> bool,
) -> SimResult<ServeEosOutcome> {
    assert!(cfg.n >= 1);
    assert!(cfg.max_new_tokens >= 1);
    assert_eq!(
        ctx.mode,
        ExecMode::Functional,
        "end-to-end runs are functional"
    );
    let tok = Tokenizer::new();
    let prompt = format!("{}\nAnswer: ", task.statement);
    let prompt_tokens = tok.encode_with_bos(&prompt);
    let budget =
        cfg.max_batch * (prompt_tokens.len() + cfg.max_new_tokens + 2) + prompt_tokens.len();

    let mut session = DecodeSession::new(ctx, model, &prompt_tokens, cfg.max_batch, budget)?;
    let sampler = LlmSampler::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ task.id);
    for _ in 0..cfg.n {
        let first = sampler.sample(session.prompt_logits(), &mut rng);
        let id = session.admit(first, cfg.max_new_tokens)?;
        // An EOS admission token ends the sample before it decodes at all
        // (budget-1 samples already finished inside admit).
        if cfg.max_new_tokens > 1 && is_eos(first) {
            session.retire(id)?;
        }
    }
    // Tokens per sample including the admission token, to tell a budget
    // auto-retire (already finished) from an EOS early retire.
    let mut emitted = vec![1usize; cfg.n];
    while session.active_count() > 0 {
        let sampled = session.step(ctx, |_, row| sampler.sample(row, &mut rng))?;
        for (id, token) in sampled {
            let i = id as usize;
            emitted[i] += 1;
            if is_eos(token) && emitted[i] < cfg.max_new_tokens {
                session.retire(id)?;
            }
        }
    }

    let useful_tokens = session.decoded_tokens();
    let decode_secs = session.decode_secs();
    let steps = session.steps();
    let mut total_cost = session.prefill_cost();
    total_cost.add(&session.decode_cost());
    let finished = session.into_finished(ctx);
    let realized_lengths: Vec<usize> = finished.iter().map(|f| f.tokens.len()).collect();
    let eos_finishes = finished
        .iter()
        .filter(|f| f.tokens.last().map(|&t| is_eos(t)).unwrap_or(false))
        .count();
    let completions = finished.iter().map(|f| tok.decode(&f.tokens)).collect();
    Ok(ServeEosOutcome {
        report: BatchedBonReport {
            completions,
            useful_tokens,
            decode_secs,
            tokens_per_sec: if decode_secs > 0.0 {
                useful_tokens as f64 / decode_secs
            } else {
                0.0
            },
            steps,
            total_cost,
        },
        realized_lengths,
        eos_finishes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm::config::ModelId;
    use htpops::gemm::DequantVariant;
    use mathsynth::mathgen::{DatasetKind, TaskGenerator};

    #[test]
    fn extract_answer_parses_integers() {
        assert_eq!(extract_answer("the answer is 42."), Some(42));
        assert_eq!(extract_answer("-17 apples"), Some(-17));
        assert_eq!(extract_answer("x = 3, y = 4"), Some(3));
        assert_eq!(extract_answer("no numbers here"), None);
    }

    #[test]
    fn sampler_greedy_picks_argmax() {
        let s = LlmSampler {
            temperature: 0.0,
            top_k: 0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample(&[0.1, 0.9, 0.3], &mut rng), 1);
    }

    #[test]
    fn sampler_survives_nan_logits() {
        // NaN logits must neither panic the top-k sort nor be sampled.
        let s = LlmSampler {
            temperature: 1.0,
            top_k: 0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let t = s.sample(&[f32::NAN, 1.0, f32::NAN, 2.0], &mut rng);
            assert!(t == 1 || t == 3, "sampled NaN index {t}");
        }
        // All-NaN rows degrade to a deterministic pick instead of a panic.
        let t = s.sample(&[f32::NAN, f32::NAN], &mut rng);
        assert!(t < 2);
        // The greedy path must not pick a NaN either, even at index 0.
        let greedy = LlmSampler {
            temperature: 0.0,
            top_k: 0,
        };
        assert_eq!(greedy.sample(&[f32::NAN, 1.0, 2.0], &mut rng), 2);
    }

    #[test]
    fn sampler_respects_top_k() {
        let s = LlmSampler {
            temperature: 1.0,
            top_k: 2,
        };
        let mut rng = StdRng::seed_from_u64(2);
        // Only the two largest logits may be sampled.
        for _ in 0..200 {
            let t = s.sample(&[5.0, -100.0, 4.9, -100.0], &mut rng);
            assert!(t == 0 || t == 2, "sampled {t}");
        }
    }

    #[test]
    fn end_to_end_bon_runs_on_simulated_npu() {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 3).unwrap();
        let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 5).next_task();
        let out = llm_best_of_n(&mut ctx, &model, &task, 4, 8, 9).unwrap();
        assert_eq!(out.completions.len(), 4);
        assert_eq!(out.steps, 7);
        assert!(out.cost.wall_secs() > 0.0);
        assert!(out.decode_tokens_per_sec > 0.0);
        // Samples must diverge (independent sampling per sequence).
        assert!(
            out.completions
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1,
            "all samples identical: {:?}",
            out.completions
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
            let model =
                Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 3).unwrap();
            let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 5).next_task();
            llm_best_of_n(&mut ctx, &model, &task, 2, 6, 1)
                .unwrap()
                .completions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn continuous_batching_beats_fixed_batch_when_half_finish_early() {
        // Half the samples emit 2 tokens, half emit 16 — the Best-of-N
        // shape where answers arrive at very different lengths. The fixed
        // batch (static-graph semantics) decodes two full waves to the
        // longest sample; the DecodeSession retires the short ones and
        // refills their slots from the queue in the same step.
        let lengths = [2usize, 16, 2, 16, 2, 16, 2, 16];
        let max_batch = 4;
        let run = |fixed: bool| {
            let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
            let model =
                Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 3).unwrap();
            let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 5).next_task();
            if fixed {
                llm_bon_fixed_batch(&mut ctx, &model, &task, &lengths, max_batch, 7).unwrap()
            } else {
                llm_bon_continuous(&mut ctx, &model, &task, &lengths, max_batch, 7).unwrap()
            }
        };
        let cont = run(false);
        let fixed = run(true);
        // Identical useful work on both sides: every sample's budget minus
        // its prefill-sampled admission token.
        let expected: usize = lengths.iter().map(|l| l - 1).sum();
        assert_eq!(cont.useful_tokens, expected);
        assert_eq!(fixed.useful_tokens, expected);
        assert_eq!(cont.completions.len(), lengths.len());
        assert_eq!(fixed.completions.len(), lengths.len());
        // The tentpole claim: continuous batching turns the early
        // finishers' slack into useful throughput.
        assert!(
            cont.tokens_per_sec > fixed.tokens_per_sec * 1.2,
            "continuous {} tok/s vs fixed {} tok/s",
            cont.tokens_per_sec,
            fixed.tokens_per_sec
        );
        assert!(cont.decode_secs < fixed.decode_secs);
    }

    #[test]
    fn eos_retirement_beats_fixed_batch_on_realized_lengths() {
        // Lengths are *realized* by an EOS predicate instead of assigned
        // up front — the serving-gateway shape. The EOS path retires each
        // sample the step its terminator is sampled; the fixed batch then
        // replays the same realized lengths with static-graph semantics
        // (each wave decodes to its longest sample).
        let cfg = ServeEosConfig {
            n: 8,
            max_new_tokens: 16,
            max_batch: 4,
            seed: 11,
        };
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 3).unwrap();
        let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 5).next_task();
        let eos = llm_serve_eos(&mut ctx, &model, &task, cfg, |t| t % 5 == 0).unwrap();
        assert_eq!(eos.realized_lengths.len(), cfg.n);
        let min = *eos.realized_lengths.iter().min().unwrap();
        let max = *eos.realized_lengths.iter().max().unwrap();
        assert!(
            min < max && eos.eos_finishes > 0,
            "predicate produced no length mix: {:?}",
            eos.realized_lengths
        );
        // Every decoded token on the EOS path is useful.
        let expected: usize = eos.realized_lengths.iter().map(|l| l - 1).sum();
        assert_eq!(eos.report.useful_tokens, expected);
        let fixed = llm_bon_fixed_batch(
            &mut ctx,
            &model,
            &task,
            &eos.realized_lengths,
            cfg.max_batch,
            cfg.seed,
        )
        .unwrap();
        assert_eq!(fixed.useful_tokens, expected);
        assert!(
            eos.report.tokens_per_sec > fixed.tokens_per_sec * 1.1,
            "EOS serving {} tok/s vs fixed batch {} tok/s",
            eos.report.tokens_per_sec,
            fixed.tokens_per_sec
        );
    }
}
