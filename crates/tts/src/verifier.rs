//! Simulated reward models (Skywork-1.5B-PRM stand-ins).
//!
//! Reward models are noisy observers of latent correctness: an ORM scores
//! complete trajectories, a PRM scores individual steps. The
//! `discrimination` parameter (signal-to-noise of the score) is the single
//! calibration knob; the default of 1.8 yields Best-of-N selection quality
//! consistent with the paper's Figure 5 scaling curves.

use rand::rngs::StdRng;
use rand::Rng;

use crate::policy::{Step, Trajectory};

/// Default discrimination for both reward models.
pub const DEFAULT_DISCRIMINATION: f64 = 1.8;

/// Gaussian sample via Box-Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Outcome reward model: scores a finished trajectory.
#[derive(Clone, Copy, Debug)]
pub struct SimOrm {
    /// Mean score separation between correct and incorrect trajectories,
    /// in units of the score noise's standard deviation.
    pub discrimination: f64,
}

impl Default for SimOrm {
    fn default() -> Self {
        SimOrm {
            discrimination: DEFAULT_DISCRIMINATION,
        }
    }
}

impl SimOrm {
    /// Scores one trajectory (higher = believed better).
    pub fn score(&self, traj: &Trajectory, truth: i64, rng: &mut StdRng) -> f64 {
        let correct = traj.answer == truth;
        self.discrimination * (correct as i32 as f64) + normal(rng)
    }
}

/// Process reward model: scores individual reasoning steps.
#[derive(Clone, Copy, Debug)]
pub struct SimPrm {
    /// Mean score separation between correct and incorrect steps.
    pub discrimination: f64,
}

impl Default for SimPrm {
    fn default() -> Self {
        SimPrm {
            discrimination: DEFAULT_DISCRIMINATION,
        }
    }
}

impl SimPrm {
    /// Scores one step.
    pub fn score_step(&self, step: &Step, rng: &mut StdRng) -> f64 {
        self.discrimination * (step.correct as i32 as f64) + normal(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn traj(correct: bool) -> Trajectory {
        Trajectory {
            steps: vec![Step {
                correct,
                tokens: 30,
            }],
            answer: if correct { 7 } else { 8 },
            tokens: 45,
        }
    }

    #[test]
    fn orm_separates_correct_from_incorrect_on_average() {
        let orm = SimOrm::default();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 4000;
        let mean = |correct: bool, rng: &mut StdRng| {
            (0..n)
                .map(|_| orm.score(&traj(correct), 7, rng))
                .sum::<f64>()
                / n as f64
        };
        let good = mean(true, &mut rng);
        let bad = mean(false, &mut rng);
        assert!((good - bad - DEFAULT_DISCRIMINATION).abs() < 0.1);
    }

    #[test]
    fn prm_step_scores_are_noisy_but_informative() {
        let prm = SimPrm::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut correct_wins = 0;
        let n = 2000;
        for _ in 0..n {
            let good = prm.score_step(
                &Step {
                    correct: true,
                    tokens: 30,
                },
                &mut rng,
            );
            let bad = prm.score_step(
                &Step {
                    correct: false,
                    tokens: 30,
                },
                &mut rng,
            );
            if good > bad {
                correct_wins += 1;
            }
        }
        let win_rate = correct_wins as f64 / n as f64;
        // d' = 1.8 -> P(correct scores higher) ~ Phi(1.8/sqrt(2)) ~ 0.90.
        assert!((0.85..0.95).contains(&win_rate), "win rate {win_rate}");
    }

    #[test]
    fn zero_discrimination_is_chance() {
        let orm = SimOrm {
            discrimination: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut wins = 0;
        for _ in 0..2000 {
            let g = orm.score(&traj(true), 7, &mut rng);
            let b = orm.score(&traj(false), 7, &mut rng);
            if g > b {
                wins += 1;
            }
        }
        let rate = wins as f64 / 2000.0;
        assert!((0.45..0.55).contains(&rate), "rate {rate}");
    }
}
