//! The calibrated stochastic policy: step-level trajectory sampling.
//!
//! A trajectory is a sequence of reasoning steps, each latently correct or
//! not; the final answer is the task's true answer iff every step is
//! correct (mirroring how a single flawed reasoning step derails chain-of-
//! thought). The per-step success rate is derived from the task-level
//! solve probability, so pass@1 matches the calibration targets while the
//! *step structure* gives process reward models something real to score.

use mathsynth::mathgen::MathTask;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use edgellm::config::ModelId;
use mathsynth::mathgen::DatasetKind;

use crate::calib::{fit_skill, solve_prob};

/// One reasoning step of a sampled trajectory.
#[derive(Clone, Copy, Debug)]
pub struct Step {
    /// Latent correctness (what an oracle PRM would see).
    pub correct: bool,
    /// Tokens the step consumed.
    pub tokens: usize,
}

/// One complete sampled solution.
#[derive(Clone, Debug)]
pub struct Trajectory {
    /// Reasoning steps.
    pub steps: Vec<Step>,
    /// Proposed final answer.
    pub answer: i64,
    /// Total generated tokens.
    pub tokens: usize,
}

impl Trajectory {
    /// Whether the trajectory solves the task.
    pub fn is_correct(&self, task: &MathTask) -> bool {
        task.verify(self.answer)
    }
}

/// Policy with paper-calibrated skill, optionally degraded by
/// quantization damage.
#[derive(Clone, Debug)]
pub struct CalibratedPolicy {
    /// Model identity (for reports).
    pub model: ModelId,
    /// Dataset profile the skill was fitted on.
    pub dataset: DatasetKind,
    /// Fitted skill parameter.
    pub skill: f64,
    /// Capability multiplier (1.0 = undamaged; see
    /// [`crate::calib::quant_capability`]).
    pub capability: f64,
    /// Additive skill penalty (0.0 = undamaged; see
    /// [`crate::calib::quant_skill_penalty`]). Models the catastrophic
    /// reasoning collapse coarse quantization causes (Table 1).
    pub skill_penalty: f64,
}

impl CalibratedPolicy {
    /// Builds a policy with skill fitted to the paper's baseline accuracy.
    pub fn new(model: ModelId, dataset: DatasetKind) -> Self {
        CalibratedPolicy {
            model,
            dataset,
            skill: fit_skill(model, dataset),
            capability: 1.0,
            skill_penalty: 0.0,
        }
    }

    /// Same policy with a capability multiplier applied (quantization
    /// damage experiments, Table 1).
    pub fn with_capability(mut self, capability: f64) -> Self {
        self.capability = capability;
        self
    }

    /// Same policy with an additive skill penalty applied.
    pub fn with_skill_penalty(mut self, penalty: f64) -> Self {
        self.skill_penalty = penalty;
        self
    }

    /// Task-level solve probability.
    pub fn solve_prob(&self, task: &MathTask) -> f64 {
        solve_prob(
            self.skill * self.capability - self.skill_penalty,
            task.difficulty,
        )
    }

    /// Per-step success rate such that a full trajectory of `n` steps
    /// succeeds with the task-level probability.
    pub fn step_success_rate(&self, task: &MathTask) -> f64 {
        let p = self.solve_prob(task).clamp(1e-9, 1.0 - 1e-12);
        let n = task.steps.max(1) as f64;
        p.powf(1.0 / n)
    }

    /// Samples one step.
    pub fn sample_step(&self, task: &MathTask, rng: &mut StdRng) -> Step {
        Step {
            correct: rng.gen::<f64>() < self.step_success_rate(task),
            tokens: 25 + rng.gen_range(0..30),
        }
    }

    /// Samples a complete trajectory.
    pub fn sample_trajectory(&self, task: &MathTask, rng: &mut StdRng) -> Trajectory {
        let n = task.steps.max(1);
        let mut steps = Vec::with_capacity(n);
        let mut all_correct = true;
        let mut tokens = 0usize;
        for _ in 0..n {
            let s = self.sample_step(task, rng);
            all_correct &= s.correct;
            tokens += s.tokens;
            steps.push(s);
        }
        tokens += 15; // Final-answer tokens.
        let answer = if all_correct {
            task.answer
        } else {
            wrong_answer(task.answer, rng)
        };
        Trajectory {
            steps,
            answer,
            tokens,
        }
    }

    /// Deterministic per-task RNG (stable across methods for pairing).
    pub fn task_rng(&self, task: &MathTask, sample: u64) -> StdRng {
        StdRng::seed_from_u64(
            task.id
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(sample)
                .wrapping_add((self.model as u64) << 32),
        )
    }
}

/// Generates a wrong answer distinct from the truth. Wrong answers are
/// dispersed so that self-consistency's majority vote rarely collides on
/// the same mistake (empirically true for numeric tasks).
pub fn wrong_answer(truth: i64, rng: &mut StdRng) -> i64 {
    loop {
        let delta = rng.gen_range(-999i64..=999);
        if delta != 0 {
            return truth + delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathsynth::mathgen::TaskGenerator;

    fn policy() -> CalibratedPolicy {
        CalibratedPolicy::new(ModelId::Qwen1_5B, DatasetKind::Math500Like)
    }

    #[test]
    fn empirical_pass1_matches_calibration() {
        let p = policy();
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 17).take(3000);
        let mut correct = 0usize;
        for t in &tasks {
            let mut rng = p.task_rng(t, 0);
            if p.sample_trajectory(t, &mut rng).is_correct(t) {
                correct += 1;
            }
        }
        let acc = correct as f64 / tasks.len() as f64 * 100.0;
        // Paper baseline: Qwen2.5-1.5B on MATH500 ~30%.
        assert!((25.0..35.0).contains(&acc), "empirical pass@1 {acc}");
    }

    #[test]
    fn trajectory_correct_iff_all_steps_correct() {
        let p = policy();
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 3).take(200);
        for t in &tasks {
            let mut rng = p.task_rng(t, 1);
            let traj = p.sample_trajectory(t, &mut rng);
            let all = traj.steps.iter().all(|s| s.correct);
            assert_eq!(all, traj.is_correct(t));
        }
    }

    #[test]
    fn capability_degrades_accuracy() {
        let full = policy();
        let damaged = policy().with_capability(0.3);
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 5).take(1500);
        let acc = |p: &CalibratedPolicy| {
            tasks
                .iter()
                .filter(|t| {
                    let mut rng = p.task_rng(t, 0);
                    p.sample_trajectory(t, &mut rng).is_correct(t)
                })
                .count() as f64
                / tasks.len() as f64
                * 100.0
        };
        let a_full = acc(&full);
        let a_damaged = acc(&damaged);
        assert!(
            a_damaged < a_full / 3.0,
            "damaged {a_damaged} vs full {a_full}"
        );
    }

    #[test]
    fn easy_tasks_are_solved_more_often() {
        let p = policy();
        let mut easy = 0;
        let mut hard = 0;
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 9).take(2000);
        for t in &tasks {
            let mut rng = p.task_rng(t, 0);
            let ok = p.sample_trajectory(t, &mut rng).is_correct(t);
            if t.difficulty < 0.3 && ok {
                easy += 1;
            }
            if t.difficulty > 0.7 && ok {
                hard += 1;
            }
        }
        assert!(easy > hard * 3, "easy {easy} hard {hard}");
    }

    #[test]
    fn wrong_answers_never_equal_truth() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert_ne!(wrong_answer(42, &mut rng), 42);
        }
    }

    #[test]
    fn token_counts_scale_with_steps() {
        let p = policy();
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 13).take(300);
        for t in &tasks {
            let mut rng = p.task_rng(t, 0);
            let traj = p.sample_trajectory(t, &mut rng);
            assert!(traj.tokens >= 25 * t.steps.max(1));
            assert_eq!(traj.steps.len(), t.steps.max(1));
        }
    }
}
