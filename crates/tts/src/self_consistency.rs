//! Self-consistency: sample N trajectories and majority-vote the answer
//! (Wang et al., the simplest parallel test-time scaling method).
//!
//! Works without any reward model: numeric wrong answers rarely collide,
//! so even a thin plurality of correct samples wins the vote.

use std::collections::HashMap;

use mathsynth::mathgen::MathTask;

use crate::policy::CalibratedPolicy;

/// Outcome of one self-consistency invocation.
#[derive(Clone, Debug)]
pub struct ConsistencyOutcome {
    /// The majority answer.
    pub answer: i64,
    /// Whether the majority answer is correct.
    pub correct: bool,
    /// Number of samples agreeing with the majority.
    pub votes: usize,
}

/// Runs self-consistency with `n` samples on one task.
pub fn self_consistency(
    policy: &CalibratedPolicy,
    task: &MathTask,
    n: usize,
    seed: u64,
) -> ConsistencyOutcome {
    assert!(n >= 1);
    let mut counts: HashMap<i64, usize> = HashMap::new();
    let mut order: Vec<i64> = Vec::new();
    for sample in 0..n {
        let mut rng = policy.task_rng(task, seed.wrapping_add(sample as u64 * 104_729));
        let traj = policy.sample_trajectory(task, &mut rng);
        let c = counts.entry(traj.answer).or_insert(0);
        if *c == 0 {
            order.push(traj.answer);
        }
        *c += 1;
    }
    // Majority with first-seen tie-breaking (deterministic).
    let mut best_answer = order[0];
    let mut best_votes = 0usize;
    for &ans in &order {
        let v = counts[&ans];
        if v > best_votes {
            best_votes = v;
            best_answer = ans;
        }
    }
    ConsistencyOutcome {
        answer: best_answer,
        correct: task.verify(best_answer),
        votes: best_votes,
    }
}

/// Self-consistency accuracy (percent) over a task set.
pub fn accuracy_over_tasks(
    policy: &CalibratedPolicy,
    tasks: &[MathTask],
    n: usize,
    seed: u64,
) -> f64 {
    let solved = tasks
        .iter()
        .filter(|t| self_consistency(policy, t, n, seed).correct)
        .count();
    solved as f64 / tasks.len().max(1) as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgellm::config::ModelId;
    use mathsynth::mathgen::{DatasetKind, TaskGenerator};

    fn setup() -> (CalibratedPolicy, Vec<MathTask>) {
        let policy = CalibratedPolicy::new(ModelId::Qwen1_5B, DatasetKind::Gsm8kLike);
        let tasks = TaskGenerator::new(DatasetKind::Gsm8kLike, 41).take(600);
        (policy, tasks)
    }

    #[test]
    fn majority_voting_improves_accuracy() {
        let (policy, tasks) = setup();
        let a1 = accuracy_over_tasks(&policy, &tasks, 1, 3);
        let a9 = accuracy_over_tasks(&policy, &tasks, 9, 3);
        assert!(a9 > a1 + 5.0, "1-sample {a1} vs 9-sample {a9}");
    }

    #[test]
    fn correct_answers_cluster() {
        // With p > 0.5 on easy tasks, the vote should almost always win.
        let (policy, tasks) = setup();
        let easy: Vec<_> = tasks
            .iter()
            .filter(|t| t.difficulty < 0.15)
            .cloned()
            .collect();
        if easy.is_empty() {
            return;
        }
        let acc = accuracy_over_tasks(&policy, &easy, 15, 5);
        assert!(acc > 85.0, "easy-task consistency accuracy {acc}");
    }

    #[test]
    fn single_sample_equals_plain_sampling() {
        let (policy, tasks) = setup();
        let out = self_consistency(&policy, &tasks[0], 1, 7);
        assert_eq!(out.votes, 1);
    }

    #[test]
    fn votes_never_exceed_n() {
        let (policy, tasks) = setup();
        for t in tasks.iter().take(50) {
            let out = self_consistency(&policy, t, 7, 9);
            assert!(out.votes >= 1 && out.votes <= 7);
        }
    }
}
