//! Event-timeline scheduler: per-engine lanes with dependency edges.
//!
//! The phase-level cost model ([`crate::cost`]) composes time *within* a
//! kernel — engines overlap inside a phase, phases are sequential. This
//! module provides the next level up: a deterministic list scheduler over
//! named *lanes* (one per engine or runtime thread) where each submitted
//! task starts as soon as its lane is free **and** every dependency has
//! finished. The makespan of such a schedule is the critical path of the
//! task graph, which is exactly the wall time of a pipelined runtime that
//! overlaps independent work across engines (paper Section 7.2.2: the CPU
//! lm_head of token *t* runs while the NPU computes the first layers of
//! token *t+1*; DMA hides behind compute; session switches hide behind the
//! previous shard's tail kernels). The weight-streaming hierarchy adds a
//! dedicated *DMA prefetch lane*: cold layers' DDR weight fetches are
//! submitted there with finish-to-start edges into the next layer's
//! kernels, so a fetch overlaps the previous layer's compute and only its
//! exposed remainder lengthens the step.
//!
//! The scheduler is intentionally simple and fully deterministic:
//!
//! - a **lane** is a serial resource (one engine, one dispatch thread);
//!   tasks on the same lane execute in submission order, back to back when
//!   dependencies allow;
//! - a **task** occupies one lane for a fixed duration and may depend on
//!   any previously submitted tasks (finish-to-start edges);
//! - tasks must be submitted in a topological order of the dependency
//!   graph (dependencies refer to already submitted tasks), which makes
//!   scheduling a single forward pass with no solver.
//!
//! `edgellm::overlap` builds decode/prefill step graphs on top of this;
//! the unit tests below pin the scheduling semantics in isolation.
//!
//! # Examples
//!
//! Two lanes, three tasks: `b` depends on `a`, while `c` runs on the other
//! lane concurrently with both.
//!
//! ```
//! use hexsim::timeline::Timeline;
//!
//! let mut tl = Timeline::new(2);
//! let a = tl.submit(0, 2.0, &[]);
//! let b = tl.submit(0, 1.0, &[a]);
//! let c = tl.submit(1, 2.5, &[]);
//! assert_eq!(tl.finish(b), 3.0);
//! assert_eq!(tl.finish(c), 2.5);
//! assert_eq!(tl.makespan(), 3.0);
//! ```

/// Handle to a task submitted to a [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskId(usize);

#[derive(Clone, Copy, Debug)]
struct Task {
    start: f64,
    finish: f64,
    lane: usize,
}

/// A deterministic multi-lane list scheduler (see module docs).
#[derive(Clone, Debug)]
pub struct Timeline {
    lane_free: Vec<f64>,
    lane_busy: Vec<f64>,
    tasks: Vec<Task>,
}

impl Timeline {
    /// Creates a timeline with `lanes` serial resources, all free at t=0.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1, "a timeline needs at least one lane");
        Timeline {
            lane_free: vec![0.0; lanes],
            lane_busy: vec![0.0; lanes],
            tasks: Vec::new(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lane_free.len()
    }

    /// Number of submitted tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Submits a task: it starts at the earliest instant when its lane is
    /// free and every dependency has finished, and occupies the lane for
    /// `duration` seconds. Returns the task's handle.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `duration` is negative/NaN.
    pub fn submit(&mut self, lane: usize, duration: f64, deps: &[TaskId]) -> TaskId {
        assert!(lane < self.lane_free.len(), "lane {lane} out of range");
        assert!(
            duration >= 0.0 && duration.is_finite(),
            "task duration must be finite and non-negative, got {duration}"
        );
        let mut start = self.lane_free[lane];
        for d in deps {
            start = start.max(self.tasks[d.0].finish);
        }
        let finish = start + duration;
        self.lane_free[lane] = finish;
        self.lane_busy[lane] += duration;
        self.tasks.push(Task {
            start,
            finish,
            lane,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Start time of a task.
    pub fn start(&self, t: TaskId) -> f64 {
        self.tasks[t.0].start
    }

    /// Finish time of a task.
    pub fn finish(&self, t: TaskId) -> f64 {
        self.tasks[t.0].finish
    }

    /// Lane a task was submitted to.
    pub fn lane_of(&self, t: TaskId) -> usize {
        self.tasks[t.0].lane
    }

    /// Latest finish time across all tasks (0 when empty) — the schedule's
    /// critical-path wall time.
    pub fn makespan(&self) -> f64 {
        self.tasks.iter().fold(0.0f64, |acc, t| acc.max(t.finish))
    }

    /// Total busy seconds accumulated on one lane.
    pub fn lane_busy_secs(&self, lane: usize) -> f64 {
        self.lane_busy[lane]
    }

    /// Busy fraction of one lane over the schedule's makespan (0 for an
    /// empty timeline) — how much of the critical-path wall time the
    /// lane's resource actually worked.
    pub fn lane_utilization(&self, lane: usize) -> f64 {
        let span = self.makespan();
        if span > 0.0 {
            self.lane_busy[lane] / span
        } else {
            0.0
        }
    }

    /// Sum of every task's duration — the wall time a fully serial
    /// executor would need. The makespan can never exceed this.
    pub fn serial_secs(&self) -> f64 {
        self.lane_busy.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_lane_tasks_serialize_in_submission_order() {
        let mut tl = Timeline::new(1);
        let a = tl.submit(0, 1.0, &[]);
        let b = tl.submit(0, 2.0, &[]);
        assert_eq!(tl.start(a), 0.0);
        assert_eq!(tl.start(b), 1.0);
        assert_eq!(tl.finish(b), 3.0);
        assert_eq!(tl.makespan(), 3.0);
        assert_eq!(tl.serial_secs(), 3.0);
    }

    #[test]
    fn independent_lanes_overlap() {
        let mut tl = Timeline::new(3);
        tl.submit(0, 1.0, &[]);
        tl.submit(1, 2.0, &[]);
        tl.submit(2, 0.5, &[]);
        assert_eq!(tl.makespan(), 2.0);
        assert_eq!(tl.serial_secs(), 3.5);
    }

    #[test]
    fn dependencies_delay_start_across_lanes() {
        let mut tl = Timeline::new(2);
        let a = tl.submit(0, 2.0, &[]);
        let b = tl.submit(1, 1.0, &[a]);
        assert_eq!(tl.start(b), 2.0);
        assert_eq!(tl.finish(b), 3.0);
    }

    #[test]
    fn lane_free_and_deps_combine_with_max() {
        let mut tl = Timeline::new(2);
        let a = tl.submit(0, 1.0, &[]); // lane 0 busy until 1.0
        let long = tl.submit(1, 5.0, &[]); // lane 1 busy until 5.0
                                           // Lane 0 frees at 1.0 but the dependency holds until 5.0.
        let c = tl.submit(0, 1.0, &[a, long]);
        assert_eq!(tl.start(c), 5.0);
        assert_eq!(tl.makespan(), 6.0);
    }

    #[test]
    fn pipelined_iterations_reach_steady_state() {
        // Producer lane feeds consumer lane: after the fill, the period is
        // the max stage time (classic two-stage pipeline).
        let mut tl = Timeline::new(2);
        let mut prev_consume: Option<TaskId> = None;
        let mut finishes = Vec::new();
        for _ in 0..6 {
            let p = tl.submit(0, 1.0, &[]);
            let deps: Vec<TaskId> = Some(p).iter().chain(prev_consume.iter()).copied().collect();
            let c = tl.submit(1, 3.0, &deps);
            prev_consume = Some(c);
            finishes.push(tl.finish(c));
        }
        // Steady-state period = slowest stage (3.0), not the sum (4.0).
        let period = finishes[5] - finishes[4];
        assert!((period - 3.0).abs() < 1e-12);
        assert!(tl.makespan() < tl.serial_secs());
    }

    #[test]
    fn zero_duration_tasks_are_events() {
        let mut tl = Timeline::new(1);
        let a = tl.submit(0, 0.0, &[]);
        assert_eq!(tl.finish(a), 0.0);
        assert_eq!(tl.makespan(), 0.0);
        assert_eq!(tl.lane_utilization(0), 0.0);
    }

    #[test]
    fn lane_utilization_is_busy_over_makespan() {
        let mut tl = Timeline::new(2);
        tl.submit(0, 1.0, &[]);
        tl.submit(0, 1.0, &[]);
        tl.submit(1, 4.0, &[]);
        assert!((tl.lane_utilization(0) - 0.5).abs() < 1e-12);
        assert!((tl.lane_utilization(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_lane_panics() {
        let mut tl = Timeline::new(1);
        tl.submit(1, 1.0, &[]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let mut tl = Timeline::new(1);
        tl.submit(0, -1.0, &[]);
    }
}
