//! Functional + cost-model simulator of a Hexagon-class mobile NPU.
//!
//! This crate is the hardware substrate for the reproduction of *"Scaling LLM
//! Test-Time Compute with Mobile NPU on Smartphones"* (EuroSys '26). The paper
//! evaluates on real Snapdragon silicon (Hexagon V73/V75/V79); this simulator
//! replaces that hardware with:
//!
//! - a **functional model** that computes real bytes for every operation the
//!   paper's kernels rely on — IEEE binary16 arithmetic ([`f16::F16`]), the
//!   1024-bit HVX vector unit with `vlut16`/`vgather`/shuffle instructions
//!   ([`hvx`]), and the HMX 32x32 FP16 tile matrix engine with its two-level
//!   interleaved memory layout ([`hmx`]); and
//! - a **cost model** ([`cost::CostModel`]) that charges cycles, bytes and
//!   tile-ops to per-engine accumulators, calibrated against the numbers the
//!   paper reports (Table 2 unit throughput, `vgather` packet latency, DMA
//!   and core-path bandwidths), so that latency figures are *derived* from
//!   instruction traces rather than hardcoded.
//!
//! The two models share one code path: kernels emit operations through
//! [`ctx::NpuContext`], which executes them functionally and charges their
//! cost. For paper-scale shapes, [`ctx::NpuContext::replay`] measures one
//! representative block and scales the cost delta, keeping simulation time
//! bounded while preserving cost exactness for data-independent kernels.
//!
//! # Examples
//!
//! ```
//! use hexsim::prelude::*;
//!
//! let device = DeviceProfile::v75();
//! let mut ctx = NpuContext::new(device, ExecMode::Functional);
//! let a = ctx.tcm_alloc(2048, 2048).unwrap();
//! assert_eq!(a.0 % 2048, 0);
//! ```

pub mod cost;
pub mod ctx;
pub mod device;
pub mod error;
pub mod f16;
pub mod hmx;
pub mod hvx;
pub mod mem;
pub mod ring;
pub mod shared;
pub mod timeline;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cost::{CostModel, Engine, PhaseCost};
    pub use crate::ctx::{ExecMode, NpuContext};
    pub use crate::device::{DeviceProfile, NpuArch};
    pub use crate::error::{SimError, SimResult};
    pub use crate::f16::F16;
    pub use crate::hmx::{HmxAccumulator, TILE_BYTES, TILE_DIM};
    pub use crate::hvx::{HvxVec, HVX_BYTES, HVX_HALVES, HVX_WORDS};
    pub use crate::mem::{DdrBuffer, TcmAddr};
    pub use crate::ring::{NpuSession, OpCode, Request, SessionConfig};
    pub use crate::shared::SharedBuffer;
    pub use crate::timeline::{TaskId, Timeline};
}
