//! Error type for modelled runtime failures of the simulated NPU.
//!
//! Programmer errors (out-of-bounds TCM addresses, misaligned tiles) panic,
//! mirroring how they would fault on silicon; *modelled* conditions that the
//! paper's runtime must handle — allocation exhaustion, the 32-bit session
//! address-space limit, cache-coherence violations — surface as [`SimError`]
//! so callers can react the way the paper's system does (e.g. refusing to map
//! a 3B model on Snapdragon 8 Gen 2).

use std::fmt;

/// A modelled runtime failure of the simulated NPU or its runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// TCM bump allocator exhausted (capacity, requested bytes).
    TcmExhausted {
        /// Total TCM capacity in bytes.
        capacity: u32,
        /// Size of the failed request in bytes.
        requested: u32,
    },
    /// Mapping would exceed the NPU session's virtual address space.
    ///
    /// This reproduces the Snapdragon 8 Gen 2 limitation that prevents
    /// models of 3B+ parameters from running (paper Section 7.2.1).
    VaSpaceExceeded {
        /// Session VA capacity in bytes.
        capacity: u64,
        /// Bytes already mapped.
        mapped: u64,
        /// Size of the failed mapping in bytes.
        requested: u64,
    },
    /// The NPU observed stale data in a shared buffer because the CPU did
    /// not clean the cache before handing it off (one-way coherence,
    /// paper Section 6).
    CoherenceViolation {
        /// Identifier of the offending shared buffer.
        buffer: u64,
    },
    /// An operation required data in TCM but was given a DDR location
    /// (HMX and vector scatter/gather can only access TCM, Section 3.1.2).
    NotInTcm {
        /// Description of the operation that was attempted.
        op: &'static str,
    },
    /// A DMA descriptor was malformed (zero rows, overlapping ranges, ...).
    BadDma {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The requested model/session combination is unsupported on the device.
    Unsupported {
        /// Human-readable description of the gate.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TcmExhausted {
                capacity,
                requested,
            } => write!(
                f,
                "TCM exhausted: requested {requested} B of {capacity} B scratch"
            ),
            SimError::VaSpaceExceeded {
                capacity,
                mapped,
                requested,
            } => write!(
                f,
                "NPU session VA space exceeded: {mapped} B mapped + {requested} B \
                 requested > {capacity} B"
            ),
            SimError::CoherenceViolation { buffer } => write!(
                f,
                "coherence violation: NPU read shared buffer {buffer} before the \
                 CPU cleaned its cache"
            ),
            SimError::NotInTcm { op } => {
                write!(f, "{op} requires operands in TCM")
            }
            SimError::BadDma { reason } => write!(f, "bad DMA descriptor: {reason}"),
            SimError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias for simulator results.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::VaSpaceExceeded {
            capacity: 2 << 30,
            mapped: 1 << 30,
            requested: 2 << 30,
        };
        let msg = e.to_string();
        assert!(msg.contains("VA space"));
        let e = SimError::NotInTcm { op: "vgather" };
        assert!(e.to_string().contains("vgather"));
    }
}
