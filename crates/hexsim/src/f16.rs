//! Software IEEE 754 binary16 ("half precision", `__fp16`) arithmetic.
//!
//! The paper's kernels are FP16 end-to-end: HMX tiles, the `vgather` exp LUT
//! (65536 possible bit patterns), `vlut16` dequantization tables, and the
//! FlashAttention state are all half precision. Reproducing them bit-exactly
//! requires a faithful binary16 implementation, so this module provides one
//! from scratch (no external `half` dependency): conversions with
//! round-to-nearest-even, subnormal handling, and arithmetic performed by
//! widening to `f32` (which is exact for binary16 add/sub/mul because an f32
//! significand holds the full double-width product of two 11-bit
//! significands).

use std::cmp::Ordering;
use std::fmt;

/// An IEEE 754 binary16 floating-point value, stored as its bit pattern.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 significand bits.
/// Largest finite value is 65504; smallest positive subnormal is 2^-24.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct F16(pub u16);

/// Sign mask of a binary16 bit pattern.
pub const SIGN_MASK: u16 = 0x8000;
/// Exponent mask of a binary16 bit pattern.
pub const EXP_MASK: u16 = 0x7c00;
/// Significand (mantissa) mask of a binary16 bit pattern.
pub const MANT_MASK: u16 = 0x03ff;

// Arithmetic is exposed as named methods rather than operator overloads on
// purpose: every call site is an explicit binary16 rounding step, mirroring
// one hardware instruction.
#[allow(clippy::should_implement_trait)]
impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xbc00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A canonical quiet NaN.
    pub const NAN: F16 = F16(0x7e00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7bff);
    /// Most negative finite value, -65504.
    pub const MIN: F16 = F16(0xfbff);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);

    /// Reinterprets a raw bit pattern as an `F16`.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Overflow produces infinity; underflow produces (signed) zero or a
    /// subnormal; NaN maps to the canonical quiet NaN with the input sign.
    pub fn from_f32(value: f32) -> Self {
        let x = value.to_bits();
        let sign = ((x >> 16) & 0x8000) as u16;
        let exp = ((x >> 23) & 0xff) as i32;
        let mant = x & 0x007f_ffff;

        if exp == 0xff {
            // Infinity or NaN.
            return if mant == 0 {
                F16(sign | EXP_MASK)
            } else {
                F16(sign | 0x7e00)
            };
        }
        if exp == 0 {
            // f32 subnormals are below 2^-126, far under the f16 underflow
            // threshold of 2^-25, so they round to signed zero.
            return F16(sign);
        }

        // 24-bit significand with the implicit leading one made explicit.
        let sig = mant | 0x0080_0000;
        let unbiased = exp - 127;

        if unbiased > 15 {
            // Magnitude >= 2^16 > 65504: overflow to infinity.
            return F16(sign | EXP_MASK);
        }
        if unbiased >= -14 {
            // Normal result. Re-bias so that adding the 11-bit shifted
            // significand (which contains the implicit bit at position 10)
            // lands the exponent field correctly, then round RTNE on the 13
            // discarded bits. A mantissa carry naturally increments the
            // exponent, and a carry out of exponent 30 correctly yields
            // infinity (0x7c00).
            let base = ((unbiased + 14) as u32) << 10;
            let mut h = base + (sig >> 13);
            let rem = sig & 0x1fff;
            if rem > 0x1000 || (rem == 0x1000 && (h & 1) == 1) {
                h += 1;
            }
            return F16(sign | (h as u16));
        }

        // Subnormal (or zero) result: value = sig * 2^(unbiased - 23), and the
        // f16 subnormal unit is 2^-24, so the stored mantissa is
        // sig >> (-unbiased - 1), rounded RTNE. For unbiased < -25 the shift
        // discards everything including the rounding bit.
        let shift = (-unbiased - 1) as u32;
        if shift > 25 {
            return F16(sign);
        }
        let shifted = if shift >= 32 { 0 } else { sig >> shift };
        let rem = sig & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut h = shifted;
        if rem > half || (rem == half && (h & 1) == 1) {
            h += 1;
        }
        F16(sign | (h as u16))
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> 10) as u32;
        let mant = (self.0 & MANT_MASK) as u32;

        let bits = if exp == 0x1f {
            // Infinity or NaN.
            if mant == 0 {
                sign | 0x7f80_0000
            } else {
                sign | 0x7fc0_0000 | (mant << 13)
            }
        } else if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalize into an f32, which has ample range.
                let mut e = -14i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= MANT_MASK as u32;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Converts from `f64` by first rounding to `f32`.
    ///
    /// Double rounding f64 -> f32 -> f16 can differ from direct f64 -> f16
    /// rounding only for values within half an f32 ULP of an f16 tie, which
    /// does not occur for the LUT contents generated in this project; the
    /// paper's LUT is likewise precomputed at >= 32-bit precision.
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MANT_MASK) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// Returns `true` if the value is finite (neither infinite nor NaN).
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Returns `true` for subnormal values (nonzero with a zero exponent).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MANT_MASK) != 0
    }

    /// Returns `true` if the sign bit is set (including -0.0 and NaN).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// Negation (flips the sign bit, also for NaN, matching IEEE `negate`).
    #[inline]
    pub fn neg(self) -> Self {
        F16(self.0 ^ SIGN_MASK)
    }

    /// IEEE maximum of two values; returns the other operand if one is NaN.
    pub fn max(self, other: Self) -> Self {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// IEEE minimum of two values; returns the other operand if one is NaN.
    pub fn min(self, other: Self) -> Self {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.to_f32() <= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// Correctly rounded binary16 addition.
    pub fn add(self, other: Self) -> Self {
        F16::from_f32(self.to_f32() + other.to_f32())
    }

    /// Correctly rounded binary16 subtraction.
    pub fn sub(self, other: Self) -> Self {
        F16::from_f32(self.to_f32() - other.to_f32())
    }

    /// Correctly rounded binary16 multiplication.
    pub fn mul(self, other: Self) -> Self {
        F16::from_f32(self.to_f32() * other.to_f32())
    }

    /// Binary16 division (via f32; double rounding is possible but only off
    /// by one ULP in rare cases, matching the tolerance of HVX reciprocal
    /// sequences on real hardware).
    pub fn div(self, other: Self) -> Self {
        F16::from_f32(self.to_f32() / other.to_f32())
    }

    /// Total order comparison on finite values; NaN sorts greater than all.
    pub fn total_cmp(self, other: Self) -> Ordering {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self
                .to_f32()
                .partial_cmp(&other.to_f32())
                .unwrap_or(Ordering::Equal),
        }
    }
}

// ---------------------------------------------------------------------
// Chunked slice conversions.
//
// The scalar `from_f32`/`to_f32` above are the readable reference; the
// functions below are the hot-loop versions. They process fixed-size
// chunks with branch-reduced integer/float arithmetic so LLVM can
// auto-vectorize the inner loops (the crate denies `unsafe`, so explicit
// intrinsics are off the table), and they are pinned bit-identical to the
// scalar paths by exhaustive tests. `kernel_microbench` tracks the
// speedup; the CPU-side lm_head and embedding paths in `edgellm` are the
// main consumers.
// ---------------------------------------------------------------------

/// Elements per inner chunk of the slice converters (two HVX-width rows;
/// also a comfortable width for NEON/AVX2 autovectorization).
const CONVERT_CHUNK: usize = 16;

/// Branch-reduced f32 -> binary16 conversion on raw bits, RTNE. Exactly
/// matches [`F16::from_f32`] for every input (including NaN payloads
/// canonicalizing to the quiet NaN with the input sign).
#[inline(always)]
fn f32_bits_to_f16_bits(x: u32) -> u16 {
    let sign = ((x >> 16) & 0x8000) as u16;
    let a = x & 0x7fff_ffff;
    if a >= 0x3880_0000 {
        // Normal f16 range, overflow, infinity or NaN.
        if a >= 0x4780_0000 {
            // >= 2^16: overflow to infinity; NaN canonicalizes to 0x7e00.
            return if a > 0x7f80_0000 {
                sign | 0x7e00
            } else {
                sign | EXP_MASK
            };
        }
        // Rebias the exponent by -112 and round to nearest-even on the 13
        // discarded mantissa bits: adding 0xFFF plus the ties-to-even bit
        // carries into the mantissa (and, on overflow, the exponent)
        // exactly when RTNE rounds up.
        let mant_odd = (a >> 13) & 1;
        let b = a.wrapping_add(0xC800_0FFF).wrapping_add(mant_odd);
        sign | ((b >> 13) as u16)
    } else {
        // Subnormal or zero result.
        if a < 0x3280_0000 {
            // Below 2^-26: underflows to signed zero even after rounding
            // (f32 subnormal inputs land here too).
            return sign;
        }
        let shift = 126 - (a >> 23);
        let sig = (a & 0x007f_ffff) | 0x0080_0000;
        let shifted = sig >> shift;
        let rem = sig & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round = (rem > half || (rem == half && (shifted & 1) == 1)) as u32;
        sign | ((shifted + round) as u16)
    }
}

/// Branch-reduced binary16 -> f32 conversion on raw bits. Exactly matches
/// [`F16::to_f32`] for every one of the 65536 bit patterns.
#[inline(always)]
fn f16_bits_to_f32(h: u16) -> f32 {
    if (h & EXP_MASK) == EXP_MASK {
        // Infinity / NaN: take the readable path (rare and the float
        // trick below cannot produce the infinite exponent).
        return F16(h).to_f32();
    }
    // Place the f16 exponent/mantissa in the f32 fields and rescale by
    // 2^112 (= 2^(127-15)); the multiply is exact for both normals and
    // subnormals (a power-of-two scale only shifts the exponent, and every
    // subnormal f16 value is a normal f32 after scaling).
    let sign = ((h & SIGN_MASK) as u32) << 16;
    let magnitude = f32::from_bits(((h & 0x7fff) as u32) << 13) * f32::from_bits(0x7780_0000);
    f32::from_bits(magnitude.to_bits() | sign)
}

impl F16 {
    /// Converts `src` into `dst` with round-to-nearest-even, bit-identical
    /// to elementwise [`F16::from_f32`] but in chunked, SIMD-friendly
    /// inner loops (the host-side hot path for embeddings and activation
    /// staging).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_f32_slice(src: &[f32], dst: &mut [F16]) {
        assert_eq!(src.len(), dst.len(), "slice lengths must match");
        let mut s = src.chunks_exact(CONVERT_CHUNK);
        let mut d = dst.chunks_exact_mut(CONVERT_CHUNK);
        for (cs, cd) in (&mut s).zip(&mut d) {
            for i in 0..CONVERT_CHUNK {
                cd[i] = F16(f32_bits_to_f16_bits(cs[i].to_bits()));
            }
        }
        for (v, o) in s.remainder().iter().zip(d.into_remainder()) {
            *o = F16(f32_bits_to_f16_bits(v.to_bits()));
        }
    }

    /// Converts `src` into `dst` exactly, bit-identical to elementwise
    /// [`F16::to_f32`] but in chunked, SIMD-friendly inner loops (the
    /// host-side hot path for the CPU lm_head).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn to_f32_slice(src: &[F16], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "slice lengths must match");
        let mut s = src.chunks_exact(CONVERT_CHUNK);
        let mut d = dst.chunks_exact_mut(CONVERT_CHUNK);
        for (cs, cd) in (&mut s).zip(&mut d) {
            for i in 0..CONVERT_CHUNK {
                cd[i] = f16_bits_to_f32(cs[i].0);
            }
        }
        for (v, o) in s.remainder().iter().zip(d.into_remainder()) {
            *o = f16_bits_to_f32(v.0);
        }
    }

    /// Allocating convenience over [`F16::from_f32_slice`].
    pub fn vec_from_f32(src: &[f32]) -> Vec<F16> {
        let mut out = vec![F16::ZERO; src.len()];
        F16::from_f32_slice(src, &mut out);
        out
    }

    /// Allocating convenience over [`F16::to_f32_slice`].
    pub fn vec_to_f32(src: &[F16]) -> Vec<f32> {
        let mut out = vec![0.0f32; src.len()];
        F16::to_f32_slice(src, &mut out);
        out
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} /*0x{:04x}*/)", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

/// Reads a little-endian `F16` from a 2-byte slice.
///
/// # Panics
///
/// Panics if `bytes` is shorter than 2 bytes.
pub fn f16_from_le_bytes(bytes: &[u8]) -> F16 {
    F16(u16::from_le_bytes([bytes[0], bytes[1]]))
}

/// Writes an `F16` as little-endian into a 2-byte slice.
///
/// # Panics
///
/// Panics if `out` is shorter than 2 bytes.
pub fn f16_to_le_bytes(v: F16, out: &mut [u8]) {
    out[..2].copy_from_slice(&v.0.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_bit_patterns() {
        // Every f16 converts to f32 exactly, so from_f32 must return the
        // identical bit pattern (NaNs canonicalize but stay NaN).
        for bits in 0..=u16::MAX {
            let h = F16(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x} lost NaN-ness");
            } else {
                assert_eq!(h.0, back.0, "bits {bits:#06x} did not round-trip");
            }
        }
    }

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(1.0).0, 0x3c00);
        assert_eq!(F16::from_f32(-2.0).0, 0xc000);
        assert_eq!(F16::from_f32(65504.0).0, 0x7bff);
        assert_eq!(F16::from_f32(0.5).0, 0x3800);
        assert_eq!(F16::from_f32(0.099975586).0, 0x2e66);
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // 65520 is the midpoint between 65504 (odd mantissa) and the next
        // representable step 65536; ties-to-even rounds up to infinity.
        assert_eq!(F16::from_f32(65520.0).0, 0x7c00);
        assert_eq!(F16::from_f32(65519.996).0, 0x7bff);
        assert_eq!(F16::from_f32(1e9).0, 0x7c00);
        assert_eq!(F16::from_f32(-1e9).0, 0xfc00);
    }

    #[test]
    fn subnormal_boundaries() {
        // 2^-24 is the smallest subnormal.
        assert_eq!(F16::from_f32(5.9604645e-8).0, 0x0001);
        // 2^-25 is exactly half the smallest subnormal: ties-to-even -> 0.
        assert_eq!(F16::from_f32(2.9802322e-8).0, 0x0000);
        // Slightly above 2^-25 rounds up to the smallest subnormal.
        assert_eq!(F16::from_f32(3.0e-8).0, 0x0001);
        // Below 2^-25 underflows to zero.
        assert_eq!(F16::from_f32(1.0e-8).0, 0x0000);
        // Largest subnormal.
        let largest_sub = (1023.0 / 1024.0) * 2.0f32.powi(-14);
        assert_eq!(F16::from_f32(largest_sub).0, 0x03ff);
        // Smallest normal.
        assert_eq!(F16::from_f32(2.0f32.powi(-14)).0, 0x0400);
    }

    #[test]
    fn rtne_ties() {
        // 1.0 + 2^-11 is exactly between 1.0 (even) and 1.0+2^-10: round down.
        let tie_down = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie_down).0, 0x3c00);
        // 1.0 + 3*2^-11 is between 1.0+2^-10 (odd) and 1.0+2^-9 (even): up.
        let tie_up = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie_up).0, 0x3c02);
    }

    #[test]
    fn nan_propagation() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.add(F16::ONE).is_nan());
        assert!(!F16::INFINITY.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::INFINITY.sub(F16::INFINITY).is_nan());
    }

    #[test]
    fn arithmetic_basics() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!(a.add(b).to_f32(), 3.75);
        assert_eq!(a.mul(b).to_f32(), 3.375);
        assert_eq!(b.sub(a).to_f32(), 0.75);
        assert_eq!(b.div(F16::from_f32(0.5)).to_f32(), 4.5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn max_min_with_nan() {
        assert_eq!(F16::NAN.max(F16::ONE), F16::ONE);
        assert_eq!(F16::ONE.max(F16::NAN), F16::ONE);
        assert_eq!(F16::NAN.min(F16::ONE), F16::ONE);
    }

    #[test]
    fn neg_and_abs() {
        assert_eq!(F16::ONE.neg(), F16::NEG_ONE);
        assert_eq!(F16::NEG_ONE.abs(), F16::ONE);
        assert_eq!(F16::ZERO.neg(), F16::NEG_ZERO);
    }

    #[test]
    fn subnormals_to_f32_exact() {
        for bits in 1..0x0400u16 {
            let h = F16(bits);
            let expected = bits as f32 * 2.0f32.powi(-24);
            assert_eq!(h.to_f32(), expected, "subnormal {bits:#06x}");
        }
    }

    #[test]
    fn le_bytes_helpers() {
        let v = F16::from_f32(1.5);
        let mut buf = [0u8; 2];
        f16_to_le_bytes(v, &mut buf);
        assert_eq!(f16_from_le_bytes(&buf), v);
    }

    #[test]
    fn to_f32_slice_matches_scalar_for_all_bit_patterns() {
        // The chunked converter must be bit-identical to the readable
        // scalar path for every one of the 65536 binary16 patterns
        // (including NaN payloads, which callers may bit-compare).
        let src: Vec<F16> = (0..=u16::MAX).map(F16).collect();
        let batch = F16::vec_to_f32(&src);
        for (h, &got) in src.iter().zip(&batch) {
            let want = h.to_f32();
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "bits {:#06x}: batch {got} vs scalar {want}",
                h.0
            );
        }
    }

    #[test]
    fn from_f32_slice_matches_scalar_on_structured_sweep() {
        // Every f16 value, every half-ulp midpoint around it, values just
        // above/below the midpoints, and a dense pseudorandom sweep: the
        // chunked RTNE converter must agree with the scalar path bitwise.
        let mut inputs: Vec<f32> = Vec::new();
        for bits in 0..=u16::MAX {
            let h = F16(bits);
            let f = h.to_f32();
            inputs.push(f);
            let fb = f.to_bits();
            // Perturb around the exact value in f32 ulps (crosses the
            // rounding boundaries of from_f32's 13 discarded bits).
            for delta in [1u32, 0xFFF, 0x1000, 0x1001] {
                inputs.push(f32::from_bits(fb.wrapping_add(delta)));
                inputs.push(f32::from_bits(fb.wrapping_sub(delta)));
            }
        }
        // Dense LCG sweep over raw f32 bit patterns (hits subnormals,
        // overflow range and NaNs).
        let mut state = 0x2545_f491u32;
        for _ in 0..200_000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            inputs.push(f32::from_bits(state));
        }
        let batch = F16::vec_from_f32(&inputs);
        for (&v, got) in inputs.iter().zip(&batch) {
            let want = F16::from_f32(v);
            assert_eq!(
                got.0,
                want.0,
                "input {v} ({:#010x}): batch {:#06x} vs scalar {:#06x}",
                v.to_bits(),
                got.0,
                want.0
            );
        }
    }

    #[test]
    fn slice_converters_handle_remainders_and_empty() {
        for len in [0usize, 1, 7, 15, 16, 17, 33] {
            let src: Vec<f32> = (0..len).map(|i| i as f32 * 0.37 - 3.0).collect();
            let half = F16::vec_from_f32(&src);
            assert_eq!(half.len(), len);
            for (&v, h) in src.iter().zip(&half) {
                assert_eq!(h.0, F16::from_f32(v).0);
            }
            let back = F16::vec_to_f32(&half);
            for (h, &f) in half.iter().zip(&back) {
                assert_eq!(f.to_bits(), h.to_f32().to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn slice_length_mismatch_panics() {
        let mut out = [F16::ZERO; 2];
        F16::from_f32_slice(&[1.0], &mut out);
    }

    #[test]
    fn total_cmp_ordering() {
        let mut vals = [
            F16::from_f32(3.0),
            F16::NEG_INFINITY,
            F16::from_f32(-1.0),
            F16::ZERO,
            F16::INFINITY,
        ];
        vals.sort_by(|a, b| a.total_cmp(*b));
        let f: Vec<f32> = vals.iter().map(|v| v.to_f32()).collect();
        assert_eq!(f, vec![f32::NEG_INFINITY, -1.0, 0.0, 3.0, f32::INFINITY]);
    }
}
