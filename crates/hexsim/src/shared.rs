//! CPU/NPU shared memory buffers with one-way cache coherence.
//!
//! The paper's runtime communicates between llama.cpp on the CPU and the NPU
//! operator library through `rpcmem` shared memory (a dmabuf wrapper). On
//! Snapdragon SoCs coherence is one-way: NPU writes become visible to the
//! CPU, but after the CPU writes, the NPU's cache must be explicitly
//! invalidated ("we manually clear the cache before NPU polls", Section 6).
//! [`SharedBuffer`] models that protocol and, in strict mode, faults any NPU
//! read of a region the CPU dirtied but did not clean — turning a class of
//! silent data-corruption bugs into test failures.

use crate::error::{SimError, SimResult};

/// A CPU/NPU shared memory region (rpcmem/dmabuf analog).
#[derive(Debug)]
pub struct SharedBuffer {
    id: u64,
    data: Vec<u8>,
    /// CPU wrote since the last cache clean; NPU reads are stale.
    cpu_dirty: bool,
    /// Whether stale NPU reads are errors (true) or silently allowed with
    /// the stale data returned (false, like real hardware).
    strict: bool,
    /// Total cache-maintenance operations performed (for overhead reports).
    maintenance_ops: u64,
}

impl SharedBuffer {
    /// Allocates a zeroed shared buffer of `size` bytes.
    ///
    /// `strict` enables coherence-violation detection: NPU reads of
    /// CPU-dirtied data return [`SimError::CoherenceViolation`] instead of
    /// stale bytes.
    pub fn new(id: u64, size: usize, strict: bool) -> Self {
        SharedBuffer {
            id,
            data: vec![0u8; size],
            cpu_dirty: false,
            strict,
            maintenance_ops: 0,
        }
    }

    /// Buffer identifier (dmabuf fd analog).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes from the CPU side. Marks the buffer dirty: the NPU must not
    /// read until [`SharedBuffer::cache_clean`] is called.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn cpu_write(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.cpu_dirty = true;
    }

    /// Reads from the CPU side. NPU writes are immediately visible (the
    /// one-way coherent direction), so this never faults.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn cpu_read(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }

    /// Flushes CPU caches so the NPU observes the latest CPU writes.
    pub fn cache_clean(&mut self) {
        self.cpu_dirty = false;
        self.maintenance_ops += 1;
    }

    /// Reads from the NPU side.
    ///
    /// In strict mode, returns [`SimError::CoherenceViolation`] if the CPU
    /// wrote since the last [`SharedBuffer::cache_clean`].
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn npu_read(&self, offset: usize, len: usize) -> SimResult<&[u8]> {
        if self.cpu_dirty && self.strict {
            return Err(SimError::CoherenceViolation { buffer: self.id });
        }
        Ok(&self.data[offset..offset + len])
    }

    /// Writes from the NPU side; visible to the CPU without maintenance.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn npu_write(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Whether an NPU read right now would observe stale data.
    pub fn is_cpu_dirty(&self) -> bool {
        self.cpu_dirty
    }

    /// Number of cache maintenance operations performed so far.
    pub fn maintenance_ops(&self) -> u64 {
        self.maintenance_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_handoff_roundtrips() {
        let mut buf = SharedBuffer::new(7, 64, true);
        buf.cpu_write(0, &[1, 2, 3, 4]);
        buf.cache_clean();
        assert_eq!(buf.npu_read(0, 4).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn strict_mode_faults_stale_reads() {
        let mut buf = SharedBuffer::new(9, 64, true);
        buf.cpu_write(0, &[1]);
        let err = buf.npu_read(0, 1).unwrap_err();
        assert_eq!(err, SimError::CoherenceViolation { buffer: 9 });
    }

    #[test]
    fn lenient_mode_returns_possibly_stale_bytes() {
        let mut buf = SharedBuffer::new(3, 64, false);
        buf.cpu_write(0, &[5]);
        // Real hardware would return whatever is in the NPU cache; the model
        // returns the latest bytes but does not fault.
        assert_eq!(buf.npu_read(0, 1).unwrap(), &[5]);
    }

    #[test]
    fn npu_writes_are_cpu_visible_without_maintenance() {
        let mut buf = SharedBuffer::new(1, 16, true);
        buf.npu_write(4, &[9, 9]);
        assert_eq!(buf.cpu_read(4, 2), &[9, 9]);
    }

    #[test]
    fn maintenance_counter_increments() {
        let mut buf = SharedBuffer::new(1, 16, true);
        buf.cpu_write(0, &[1]);
        buf.cache_clean();
        buf.cpu_write(0, &[2]);
        buf.cache_clean();
        assert_eq!(buf.maintenance_ops(), 2);
        assert!(!buf.is_cpu_dirty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_cpu_write_panics() {
        let mut buf = SharedBuffer::new(1, 4, true);
        buf.cpu_write(2, &[0, 0, 0]);
    }
}
