//! Device profiles for the three Snapdragon generations evaluated in the
//! paper (Table 3), plus the calibration constants the cost model needs.
//!
//! | Device            | SoC               | NPU arch |
//! |-------------------|-------------------|----------|
//! | OnePlus Ace3      | Snapdragon 8 Gen 2 | V73     |
//! | OnePlus 12        | Snapdragon 8 Gen 3 | V75     |
//! | OnePlus Ace5 Pro  | Snapdragon 8 Elite | V79     |
//!
//! The V75 profile is calibrated directly against the paper's measurements
//! (Table 2: HVX single-thread FP16 GEMM 32.93 GFLOPS, HMX 12032.54 GFLOPS,
//! HVX core-path read 26 GB/s, DMA 60 GB/s; Section 5.2.1: `vgather` latency
//! 24-48 instruction packets). V73 and V79 are scaled from public generation
//! deltas and the relative throughput ordering visible in Figure 11.

use serde::{Deserialize, Serialize};

/// Hexagon NPU architecture generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NpuArch {
    /// Snapdragon 8 Gen 2 (OnePlus Ace3).
    V73,
    /// Snapdragon 8 Gen 3 (OnePlus 12) — the paper's primary device.
    V75,
    /// Snapdragon 8 Elite (OnePlus Ace5 Pro).
    V79,
}

impl NpuArch {
    /// Short marketing name of the SoC, as used in the paper's figures.
    pub fn soc_label(self) -> &'static str {
        match self {
            NpuArch::V73 => "8G2",
            NpuArch::V75 => "8G3",
            NpuArch::V79 => "8G4",
        }
    }
}

/// Static description of one simulated device.
///
/// All rate constants are expressed in base SI units (bytes/s, flops/s, Hz)
/// so the cost model can convert instruction and byte counts into seconds
/// without unit juggling.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name (paper Table 3).
    pub name: &'static str,
    /// SoC name (paper Table 3).
    pub soc: &'static str,
    /// NPU architecture generation.
    pub arch: NpuArch,

    /// Number of scalar VLIW hardware threads (6-8 per Section 3.1.2).
    pub scalar_threads: u32,
    /// Number of HVX vector unit contexts (4-6 per Section 3.1.2).
    pub hvx_units: u32,
    /// Vector core clock in Hz; one instruction packet retires per cycle
    /// per thread in the simulator's cost model.
    pub vector_clock_hz: f64,

    /// Peak FP16 HMX throughput in FLOP/s (Table 2: 12032.54 GFLOPS on V75).
    pub hmx_flops: f64,
    /// Measured single-thread HVX FP16 GEMM throughput in FLOP/s
    /// (Table 2: 32.93 GFLOPS on V75). Used to calibrate vector-unit math.
    pub hvx_thread_gemm_flops: f64,

    /// DMA read bandwidth from DDR in bytes/s (Table 2: ~60 GB/s).
    pub dma_bw: f64,
    /// Sustained DDR weight-streaming bandwidth in bytes/s: whole-layer
    /// fetches from the CPU-owned staging region into the session window
    /// while NPU kernels run. Lower than `dma_bw` because the stream
    /// contends with the kernels' own DDR traffic (activations, KV) on the
    /// shared LPDDR controller; modeled at 75% of the idle DMA rate.
    pub ddr_stream_bw: f64,
    /// `l2fetch` bandwidth from DDR into L2 in bytes/s (20-30 GB/s, Fig. 3).
    pub l2fetch_bw: f64,
    /// HVX core-path load bandwidth in bytes/s (Table 2: < 30 GB/s; 26
    /// measured).
    pub hvx_load_bw: f64,
    /// TCM (vector scratch) load/store bandwidth in bytes/s. On-chip SRAM is
    /// much faster than the DDR path; this bounds HVX <-> TCM streaming.
    pub tcm_bw: f64,

    /// Tightly coupled memory capacity in bytes (8 MiB).
    pub tcm_bytes: u32,
    /// Shared L2 cache capacity in bytes (1 MiB).
    pub l2_bytes: u32,

    /// `vgather` latency in instruction packets (paper: 24-48 on V75). The
    /// simulator charges the midpoint for a standalone gather and the lower
    /// bound when the kernel declares software pipelining.
    pub vgather_packets_min: u32,
    /// Upper bound of `vgather` latency in packets.
    pub vgather_packets_max: u32,

    /// Whether HVX float ops produce IEEE FP16 directly. Prior to V79 they
    /// produce the internal `qfloat` format, costing extra convert
    /// instructions (Section 5.2.2).
    pub ieee_fp16_native: bool,

    /// Virtual address space usable by one NPU session, in bytes. Older
    /// devices expose a 2 GiB limit that prevents 3B+ models from running
    /// (Figure 11 note); newer ones the full 32-bit space.
    pub session_va_bytes: u64,
    /// Maximum concurrently mapped NPU sessions the runtime can hold open
    /// (FastRPC handles + dmabuf registrations). Multi-session sharding
    /// (Section 8) spends one per shard, so a model whose resident plan
    /// needs more sessions than this is unfittable without streaming.
    pub max_sessions: usize,

    /// Idle (base) SoC power draw during inference in watts, used by the
    /// activity-based power model (Figure 12 calibration).
    pub base_power_w: f64,
    /// Incremental power per fully busy engine in watts: HVX, HMX, DMA, CPU
    /// (4 big cores at full utilization).
    pub hvx_power_w: f64,
    /// Incremental HMX power in watts.
    pub hmx_power_w: f64,
    /// Incremental DMA/memory-system power in watts.
    pub dma_power_w: f64,
    /// Incremental CPU power (per fully-utilized core) in watts.
    pub cpu_core_power_w: f64,

    /// Aggregate CPU FP32 throughput available to the runtime (4 big cores),
    /// in FLOP/s. Used for operators placed on the CPU (lm_head, sampling).
    pub cpu_flops: f64,
    /// CPU memory bandwidth in bytes/s (shared LPDDR).
    pub cpu_mem_bw: f64,

    /// DVFS sustained operating point: the clock multiplier the governor
    /// drops to when the die crosses [`DeviceProfile::throttle_temp_c`]
    /// (burst is multiplier 1.0). Rates scale linearly with the
    /// multiplier, dynamic power cubically (P ∝ f·V², V ∝ f) — see
    /// [`DeviceProfile::at_clock`].
    pub sustained_clock_mult: f64,
    /// Die thermal mass in J/°C: joules needed to warm the package one
    /// degree. With the resistance below it sets the thermal time
    /// constant τ = R·C (tens of seconds on a passively cooled phone).
    pub thermal_capacitance_j_per_c: f64,
    /// Thermal resistance die → ambient in °C/W: the steady-state die
    /// temperature under power `P` is `ambient + R·P`.
    pub thermal_resistance_c_per_w: f64,
    /// Ambient (skin/sink) temperature in °C the die relaxes toward.
    pub ambient_temp_c: f64,
    /// Throttle cap in °C: crossing it drops the clock to the sustained
    /// operating point.
    pub throttle_temp_c: f64,
    /// Governor hysteresis in °C: burst clocks resume only once the die
    /// cools below `throttle_temp_c - throttle_hysteresis_c`, preventing
    /// burst/sustained oscillation around the cap.
    pub throttle_hysteresis_c: f64,
}

impl DeviceProfile {
    /// Snapdragon 8 Gen 2 (Hexagon V73) — OnePlus Ace3.
    pub fn v73() -> Self {
        DeviceProfile {
            name: "OnePlus Ace3",
            soc: "Snapdragon 8 Gen 2",
            arch: NpuArch::V73,
            scalar_threads: 6,
            hvx_units: 4,
            vector_clock_hz: 1.05e9,
            hmx_flops: 8.2e12,
            hvx_thread_gemm_flops: 26.0e9,
            dma_bw: 49.0e9,
            ddr_stream_bw: 36.75e9,
            l2fetch_bw: 20.0e9,
            hvx_load_bw: 21.0e9,
            tcm_bw: 110.0e9,
            tcm_bytes: 8 * 1024 * 1024,
            l2_bytes: 1024 * 1024,
            vgather_packets_min: 26,
            vgather_packets_max: 52,
            ieee_fp16_native: false,
            // Known VA-space limitation: ~2 GiB per session minus reserved
            // regions, so 3B+ models cannot map their weights (Figure 11
            // excludes them on 8G2).
            session_va_bytes: 1_900_000_000,
            max_sessions: 4,
            base_power_w: 2.1,
            hvx_power_w: 1.1,
            hmx_power_w: 0.9,
            dma_power_w: 0.55,
            cpu_core_power_w: 0.75,
            cpu_flops: 80.0e9,
            cpu_mem_bw: 28.0e9,
            sustained_clock_mult: 0.62,
            thermal_capacitance_j_per_c: 4.5,
            thermal_resistance_c_per_w: 5.2,
            ambient_temp_c: 25.0,
            throttle_temp_c: 44.0,
            throttle_hysteresis_c: 8.0,
        }
    }

    /// Snapdragon 8 Gen 3 (Hexagon V75) — OnePlus 12, the paper's primary
    /// measurement platform; constants match Table 2 where reported.
    pub fn v75() -> Self {
        DeviceProfile {
            name: "OnePlus 12",
            soc: "Snapdragon 8 Gen 3",
            arch: NpuArch::V75,
            scalar_threads: 6,
            hvx_units: 4,
            vector_clock_hz: 1.15e9,
            // Table 2: 12032.54 GFLOPS FP16 GEMM on HMX.
            hmx_flops: 12.03254e12,
            // Table 2: 32.93 GFLOPS FP16 GEMM on one HVX thread.
            hvx_thread_gemm_flops: 32.93e9,
            // Table 2: ~60 GB/s DMA read from DDR.
            dma_bw: 60.0e9,
            ddr_stream_bw: 45.0e9,
            l2fetch_bw: 25.0e9,
            // Table 2: 26 GB/s HVX core-path read.
            hvx_load_bw: 26.0e9,
            tcm_bw: 130.0e9,
            tcm_bytes: 8 * 1024 * 1024,
            l2_bytes: 1024 * 1024,
            // Section 5.2.1: vgather is 24-48 instruction packets on V75.
            vgather_packets_min: 24,
            vgather_packets_max: 48,
            ieee_fp16_native: false,
            session_va_bytes: 4 * 1024 * 1024 * 1024 - 4096,
            max_sessions: 4,
            base_power_w: 2.2,
            hvx_power_w: 1.2,
            hmx_power_w: 1.0,
            dma_power_w: 0.6,
            cpu_core_power_w: 0.8,
            cpu_flops: 95.0e9,
            cpu_mem_bw: 32.0e9,
            sustained_clock_mult: 0.60,
            thermal_capacitance_j_per_c: 5.0,
            thermal_resistance_c_per_w: 5.5,
            ambient_temp_c: 25.0,
            throttle_temp_c: 46.0,
            throttle_hysteresis_c: 8.0,
        }
    }

    /// Snapdragon 8 Elite (Hexagon V79) — OnePlus Ace5 Pro. Native IEEE
    /// FP16 vector arithmetic (no qfloat converts) and higher clocks.
    pub fn v79() -> Self {
        DeviceProfile {
            name: "OnePlus Ace5 Pro",
            soc: "Snapdragon 8 Elite",
            arch: NpuArch::V79,
            scalar_threads: 8,
            hvx_units: 6,
            vector_clock_hz: 1.35e9,
            hmx_flops: 15.5e12,
            hvx_thread_gemm_flops: 41.0e9,
            dma_bw: 72.0e9,
            ddr_stream_bw: 54.0e9,
            l2fetch_bw: 30.0e9,
            hvx_load_bw: 30.0e9,
            tcm_bw: 160.0e9,
            tcm_bytes: 8 * 1024 * 1024,
            l2_bytes: 1024 * 1024,
            vgather_packets_min: 22,
            vgather_packets_max: 44,
            ieee_fp16_native: true,
            session_va_bytes: 4 * 1024 * 1024 * 1024 - 4096,
            max_sessions: 4,
            base_power_w: 2.15,
            hvx_power_w: 1.25,
            hmx_power_w: 1.05,
            dma_power_w: 0.65,
            cpu_core_power_w: 0.85,
            cpu_flops: 120.0e9,
            cpu_mem_bw: 38.0e9,
            sustained_clock_mult: 0.65,
            thermal_capacitance_j_per_c: 5.5,
            thermal_resistance_c_per_w: 4.8,
            ambient_temp_c: 25.0,
            throttle_temp_c: 45.0,
            throttle_hysteresis_c: 8.0,
        }
    }

    /// All three evaluation devices in paper order (Table 3).
    pub fn all() -> Vec<DeviceProfile> {
        vec![Self::v73(), Self::v75(), Self::v79()]
    }

    /// Returns the profile for an architecture generation.
    pub fn for_arch(arch: NpuArch) -> Self {
        match arch {
            NpuArch::V73 => Self::v73(),
            NpuArch::V75 => Self::v75(),
            NpuArch::V79 => Self::v79(),
        }
    }

    /// HMX tile-op throughput in 32x32x32 FP16 tile multiply-accumulates
    /// per second (one tile-op is `2 * 32^3` flops).
    pub fn hmx_tile_ops_per_sec(&self) -> f64 {
        self.hmx_flops / (2.0 * 32.0 * 32.0 * 32.0)
    }

    /// Extra instructions per vector float op for qfloat -> IEEE conversion
    /// (zero on V79+, where HVX produces IEEE FP16 natively).
    pub fn qf16_convert_ops(&self) -> u64 {
        if self.ieee_fp16_native {
            0
        } else {
            1
        }
    }

    /// The profile re-derived at a DVFS clock multiplier: every rate
    /// constant (clocks, FLOP/s, bandwidths — the whole SoC rides one
    /// DVFS domain in this model) scales linearly with `mult`, while the
    /// per-engine *dynamic* power increments scale cubically (P ∝ f·V²
    /// with V ∝ f) and the base draw stays put. Capacities, latencies in
    /// *packets*, VA limits and the thermal constants are untouched.
    ///
    /// `at_clock(1.0)` is the identity; the throttled profile is
    /// `at_clock(sustained_clock_mult)`. Because every rate scales by the
    /// same factor, every engine's busy seconds for a fixed workload
    /// scale by exactly `1/mult` — the differential property the DVFS
    /// test suite pins. Fixed host-side overheads charged in raw seconds
    /// (FastRPC session switches) do not scale, by design.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < mult <= 1`.
    pub fn at_clock(&self, mult: f64) -> Self {
        assert!(
            mult > 0.0 && mult <= 1.0,
            "clock multiplier {mult} outside (0, 1]"
        );
        let p = mult * mult * mult;
        DeviceProfile {
            vector_clock_hz: self.vector_clock_hz * mult,
            hmx_flops: self.hmx_flops * mult,
            hvx_thread_gemm_flops: self.hvx_thread_gemm_flops * mult,
            dma_bw: self.dma_bw * mult,
            ddr_stream_bw: self.ddr_stream_bw * mult,
            l2fetch_bw: self.l2fetch_bw * mult,
            hvx_load_bw: self.hvx_load_bw * mult,
            tcm_bw: self.tcm_bw * mult,
            cpu_flops: self.cpu_flops * mult,
            cpu_mem_bw: self.cpu_mem_bw * mult,
            hvx_power_w: self.hvx_power_w * p,
            hmx_power_w: self.hmx_power_w * p,
            dma_power_w: self.dma_power_w * p,
            cpu_core_power_w: self.cpu_core_power_w * p,
            ..self.clone()
        }
    }

    /// Thermal time constant τ = R·C in seconds: the e-folding time of
    /// the die's exponential approach to its steady-state temperature.
    pub fn thermal_time_constant_secs(&self) -> f64 {
        self.thermal_resistance_c_per_w * self.thermal_capacitance_j_per_c
    }

    /// Steady-state die temperature in °C under a constant `power_w`.
    pub fn equilibrium_temp_c(&self, power_w: f64) -> f64 {
        self.ambient_temp_c + self.thermal_resistance_c_per_w * power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants_on_v75() {
        let d = DeviceProfile::v75();
        assert!((d.hmx_flops / 1e9 - 12032.54).abs() < 0.01);
        assert!((d.hvx_thread_gemm_flops / 1e9 - 32.93).abs() < 0.01);
        assert!((d.dma_bw / 1e9 - 60.0).abs() < 1e-9);
        assert!((d.hvx_load_bw / 1e9 - 26.0).abs() < 1e-9);
    }

    #[test]
    fn generation_ordering_matches_figure_11() {
        // Fig 11: throughput ordering 8G4 > 8G3 > 8G2 at matched batch.
        let (v73, v75, v79) = (
            DeviceProfile::v73(),
            DeviceProfile::v75(),
            DeviceProfile::v79(),
        );
        assert!(v79.hmx_flops > v75.hmx_flops);
        assert!(v75.hmx_flops > v73.hmx_flops);
        assert!(v79.dma_bw > v75.dma_bw);
        assert!(v75.dma_bw > v73.dma_bw);
    }

    #[test]
    fn va_space_gate() {
        // 8G2's ~2 GiB session limit is what excludes 3B models in Fig 11.
        assert!(DeviceProfile::v73().session_va_bytes <= 2 * 1024 * 1024 * 1024);
        assert!(DeviceProfile::v75().session_va_bytes > 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn qf16_penalty_only_pre_v79() {
        assert_eq!(DeviceProfile::v73().qf16_convert_ops(), 1);
        assert_eq!(DeviceProfile::v75().qf16_convert_ops(), 1);
        assert_eq!(DeviceProfile::v79().qf16_convert_ops(), 0);
    }

    #[test]
    fn soc_labels() {
        assert_eq!(NpuArch::V73.soc_label(), "8G2");
        assert_eq!(NpuArch::V75.soc_label(), "8G3");
        assert_eq!(NpuArch::V79.soc_label(), "8G4");
    }

    #[test]
    fn at_clock_scales_rates_linearly_and_power_cubically() {
        let base = DeviceProfile::v75();
        let m = 0.6;
        let d = base.at_clock(m);
        for (got, want) in [
            (d.vector_clock_hz, base.vector_clock_hz * m),
            (d.hmx_flops, base.hmx_flops * m),
            (d.hvx_thread_gemm_flops, base.hvx_thread_gemm_flops * m),
            (d.dma_bw, base.dma_bw * m),
            (d.ddr_stream_bw, base.ddr_stream_bw * m),
            (d.l2fetch_bw, base.l2fetch_bw * m),
            (d.hvx_load_bw, base.hvx_load_bw * m),
            (d.tcm_bw, base.tcm_bw * m),
            (d.cpu_flops, base.cpu_flops * m),
            (d.cpu_mem_bw, base.cpu_mem_bw * m),
        ] {
            assert_eq!(got, want);
        }
        let p = m * m * m;
        assert_eq!(d.hvx_power_w, base.hvx_power_w * p);
        assert_eq!(d.hmx_power_w, base.hmx_power_w * p);
        assert_eq!(d.dma_power_w, base.dma_power_w * p);
        assert_eq!(d.cpu_core_power_w, base.cpu_core_power_w * p);
        // Base draw, capacities, limits and thermal constants untouched.
        assert_eq!(d.base_power_w, base.base_power_w);
        assert_eq!(d.tcm_bytes, base.tcm_bytes);
        assert_eq!(d.session_va_bytes, base.session_va_bytes);
        assert_eq!(d.max_sessions, base.max_sessions);
        assert_eq!(d.throttle_temp_c, base.throttle_temp_c);
        assert_eq!(d.sustained_clock_mult, base.sustained_clock_mult);
    }

    #[test]
    fn at_clock_unity_is_identity() {
        let base = DeviceProfile::v79();
        let d = base.at_clock(1.0);
        assert_eq!(d.vector_clock_hz, base.vector_clock_hz);
        assert_eq!(d.hvx_power_w, base.hvx_power_w);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn at_clock_rejects_overclock() {
        let _ = DeviceProfile::v75().at_clock(1.1);
    }

    #[test]
    fn thermal_constants_give_plausible_throttle_story() {
        for d in DeviceProfile::all() {
            // The cap sits between ambient and a heavy-decode equilibrium
            // (~4 W), so burst clocks eventually throttle under sustained
            // load but a cool die always starts at burst.
            assert!(d.ambient_temp_c < d.throttle_temp_c);
            assert!(d.equilibrium_temp_c(4.2) > d.throttle_temp_c, "{}", d.name);
            // Sustained clocks must be thermally sustainable even in the
            // absolute worst case: every engine saturated, both memory
            // lanes (DMA + L2fetch) drawing at once, all four CPU cores
            // busy. If this equilibrium stayed above the cap, a throttled
            // die could never stop heating and the cap would be a lie.
            let s = d.at_clock(d.sustained_clock_mult);
            let sustained_max_w = s.base_power_w
                + s.hvx_power_w
                + s.hmx_power_w
                + 2.0 * s.dma_power_w
                + 4.0 * s.cpu_core_power_w;
            assert!(
                d.equilibrium_temp_c(sustained_max_w) < d.throttle_temp_c,
                "{}: worst-case sustained equilibrium above cap",
                d.name
            );
            // Tens-of-seconds thermal mass: the phone-chassis regime.
            let tau = d.thermal_time_constant_secs();
            assert!((10.0..120.0).contains(&tau), "{}: tau {tau}", d.name);
            assert!(d.throttle_hysteresis_c > 0.0);
            assert!((0.0..1.0).contains(&d.sustained_clock_mult));
        }
    }

    #[test]
    fn tile_op_rate_consistent() {
        let d = DeviceProfile::v75();
        let per_sec = d.hmx_tile_ops_per_sec();
        assert!((per_sec * 65536.0 - d.hmx_flops).abs() / d.hmx_flops < 1e-12);
    }
}
