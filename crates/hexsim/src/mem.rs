//! Memory-system model: TCM scratch, DDR heap, and session VA accounting.
//!
//! The Hexagon NPU's memory hierarchy (paper Figure 3) is: DDR, a shared
//! 1 MiB L2, and 8 MiB of software-managed TCM. `l2fetch` pulls DDR into L2
//! (20-30 GB/s); the DMA engine moves 1D/2D blocks into TCM (~60 GB/s);
//! vector scatter/gather and *all* HMX instructions can only touch TCM.
//! This module provides the storage; bandwidth costs are charged by
//! [`crate::ctx::NpuContext`], which owns both the storage and the cost
//! model.

use std::collections::HashMap;

use crate::error::{SimError, SimResult};

/// A byte address inside the TCM (valid range `0..tcm_bytes`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TcmAddr(pub u32);

impl TcmAddr {
    /// Returns the address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u32) -> TcmAddr {
        TcmAddr(self.0 + bytes)
    }
}

/// Handle to a DDR allocation owned by the simulated NPU session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DdrBuffer(pub u64);

pub(crate) struct DdrBufferState {
    pub size: u64,
    /// Session VA space this allocation is mapped into, or
    /// [`STAGING_SESSION`] for CPU-owned staging allocations that live
    /// outside every NPU session's VA space.
    pub session: usize,
    /// Backing bytes; `None` in cost-only mode (shape-level simulation).
    pub data: Option<Vec<u8>>,
}

/// Sentinel session label for staging allocations: DDR that the CPU owns
/// and the NPU reaches only through explicit streamed copies, so it does
/// not consume any session's VA space.
pub(crate) const STAGING_SESSION: usize = usize::MAX;

/// Heap of DDR allocations with session VA-space accounting.
///
/// The VA limit models the 32-bit address space of a single NPU session: on
/// Snapdragon 8 Gen 2 only ~2 GiB is usable, which is exactly why the paper
/// cannot run 3B-parameter models there (Section 7.2.1, Figure 11).
///
/// A heap created with [`DdrHeap::with_sessions`] models the paper's
/// Section 8 workaround instead: up to `max_sessions` independent VA
/// spaces, each `va_per_session` bytes. The heap enforces the *envelope*
/// those sessions provide — no single buffer may exceed one session, and
/// the total mapped bytes may not exceed `max_sessions *
/// va_per_session` — while bin-level placement is the shard planner's
/// job (a loader maps buffers where the plan says, not in allocation
/// order, and any plan-feasible placement refines to the heap's finer
/// per-buffer granularity). Session labels are assigned first-fit for
/// introspection ([`DdrHeap::sessions`]), falling back to the
/// least-used session rather than failing, precisely because allocation
/// order is not placement.
pub(crate) struct DdrHeap {
    buffers: HashMap<u64, DdrBufferState>,
    next_id: u64,
    pub mapped_bytes: u64,
    /// Bytes in the CPU-owned staging region (outside every session's VA).
    pub staged_bytes: u64,
    /// VA capacity of each session (32-bit space minus reserved regions).
    pub va_per_session: u64,
    /// Maximum number of sessions this heap may open.
    pub max_sessions: usize,
    /// Bytes mapped into each currently open session.
    session_used: Vec<u64>,
}

impl DdrHeap {
    pub fn with_sessions(va_per_session: u64, max_sessions: usize) -> Self {
        assert!(max_sessions >= 1, "a heap needs at least one session");
        DdrHeap {
            buffers: HashMap::new(),
            next_id: 1,
            mapped_bytes: 0,
            staged_bytes: 0,
            va_per_session,
            max_sessions,
            session_used: vec![0],
        }
    }

    /// Number of sessions currently open (>= 1).
    pub fn sessions(&self) -> usize {
        self.session_used.len()
    }

    /// Checks the session envelope and picks a session label for a new
    /// allocation: first-fit over open sessions, opening a new one while
    /// allowed, else the least-used session (see the type-level docs for
    /// why running out of first-fit room is not a failure).
    fn place(&mut self, size: u64) -> SimResult<usize> {
        if size > self.va_per_session {
            // A single buffer larger than one session can never map.
            return Err(SimError::VaSpaceExceeded {
                capacity: self.va_per_session,
                mapped: self.mapped_bytes,
                requested: size,
            });
        }
        let total_capacity = self.va_per_session * self.max_sessions as u64;
        if self.mapped_bytes + size > total_capacity {
            return Err(SimError::VaSpaceExceeded {
                capacity: total_capacity,
                mapped: self.mapped_bytes,
                requested: size,
            });
        }
        if let Some(s) = self
            .session_used
            .iter()
            .position(|&used| used + size <= self.va_per_session)
        {
            return Ok(s);
        }
        if self.session_used.len() < self.max_sessions {
            self.session_used.push(0);
            return Ok(self.session_used.len() - 1);
        }
        let least = self
            .session_used
            .iter()
            .enumerate()
            .min_by_key(|&(_, &used)| used)
            .map(|(i, _)| i)
            .expect("at least one session is always open");
        Ok(least)
    }

    pub fn alloc(&mut self, size: u64, materialize: bool) -> SimResult<DdrBuffer> {
        let session = self.place(size)?;
        let id = self.next_id;
        self.next_id += 1;
        self.mapped_bytes += size;
        self.session_used[session] += size;
        let data = if materialize {
            Some(vec![0u8; size as usize])
        } else {
            None
        };
        self.buffers.insert(
            id,
            DdrBufferState {
                size,
                session,
                data,
            },
        );
        Ok(DdrBuffer(id))
    }

    /// Allocates in the CPU-owned staging region: no session VA is
    /// consumed, so the envelope checks of [`DdrHeap::place`] do not apply.
    /// The weight-streaming path parks cold layers here and copies each
    /// into a small session-resident window right before its layer runs.
    pub fn alloc_staged(&mut self, size: u64, materialize: bool) -> DdrBuffer {
        let id = self.next_id;
        self.next_id += 1;
        self.staged_bytes += size;
        let data = if materialize {
            Some(vec![0u8; size as usize])
        } else {
            None
        };
        self.buffers.insert(
            id,
            DdrBufferState {
                size,
                session: STAGING_SESSION,
                data,
            },
        );
        DdrBuffer(id)
    }

    pub fn free(&mut self, buf: DdrBuffer) {
        if let Some(state) = self.buffers.remove(&buf.0) {
            if state.session == STAGING_SESSION {
                self.staged_bytes -= state.size;
            } else {
                self.mapped_bytes -= state.size;
                self.session_used[state.session] -= state.size;
            }
        }
    }

    pub fn get(&self, buf: DdrBuffer) -> &DdrBufferState {
        self.buffers
            .get(&buf.0)
            .expect("use of freed or foreign DdrBuffer")
    }

    pub fn get_mut(&mut self, buf: DdrBuffer) -> &mut DdrBufferState {
        self.buffers
            .get_mut(&buf.0)
            .expect("use of freed or foreign DdrBuffer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn va_space_is_enforced() {
        let mut heap = DdrHeap::with_sessions(1000, 1);
        let a = heap.alloc(600, false).unwrap();
        let err = heap.alloc(600, false).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
        heap.free(a);
        heap.alloc(600, false).unwrap();
    }

    #[test]
    fn free_returns_va_space() {
        let mut heap = DdrHeap::with_sessions(100, 1);
        let a = heap.alloc(100, false).unwrap();
        assert_eq!(heap.mapped_bytes, 100);
        heap.free(a);
        assert_eq!(heap.mapped_bytes, 0);
    }

    #[test]
    fn materialized_buffers_are_zeroed() {
        let mut heap = DdrHeap::with_sessions(1 << 20, 1);
        let a = heap.alloc(64, true).unwrap();
        let state = heap.get(a);
        assert_eq!(state.data.as_ref().unwrap().len(), 64);
        assert!(state.data.as_ref().unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn cost_only_buffers_have_no_backing() {
        let mut heap = DdrHeap::with_sessions(1 << 40, 1);
        let a = heap.alloc(1 << 35, false).unwrap(); // 32 GiB, shape only.
        assert!(heap.get(a).data.is_none());
        assert_eq!(heap.get(a).size, 1 << 35);
    }

    #[test]
    fn tcm_addr_offset() {
        assert_eq!(TcmAddr(128).offset(64), TcmAddr(192));
    }

    #[test]
    fn multi_session_heap_opens_sessions_first_fit() {
        // Three 600-byte buffers over 1000-byte sessions: two sessions,
        // with the third buffer backfilling nothing (first-fit).
        let mut heap = DdrHeap::with_sessions(1000, 3);
        heap.alloc(600, false).unwrap();
        assert_eq!(heap.sessions(), 1);
        heap.alloc(600, false).unwrap();
        assert_eq!(heap.sessions(), 2);
        // 300 bytes first-fits back into session 0's slack.
        let small = heap.alloc(300, false).unwrap();
        assert_eq!(heap.sessions(), 2);
        assert_eq!(heap.get(small).session, 0);
    }

    #[test]
    fn multi_session_heap_enforces_session_cap() {
        let mut heap = DdrHeap::with_sessions(1000, 2);
        heap.alloc(900, false).unwrap();
        heap.alloc(900, false).unwrap();
        let err = heap.alloc(900, false).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
        // A single buffer larger than one session can never map.
        assert!(heap.alloc(1001, false).is_err());
    }

    #[test]
    fn envelope_is_order_insensitive() {
        // 800 + 800 + 400 over two 1000-byte sessions: a strict first-fit
        // bin packer would reject the 400 (each session has 200 slack),
        // but real placement follows the shard plan, not allocation
        // order — the heap only enforces the 2000-byte envelope.
        let mut heap = DdrHeap::with_sessions(1000, 2);
        heap.alloc(800, false).unwrap();
        heap.alloc(800, false).unwrap();
        heap.alloc(400, false).unwrap();
        assert_eq!(heap.mapped_bytes, 2000);
        // The envelope itself is still binding.
        assert!(matches!(
            heap.alloc(1, false).unwrap_err(),
            SimError::VaSpaceExceeded { .. }
        ));
    }

    #[test]
    fn staged_allocations_bypass_the_session_envelope() {
        let mut heap = DdrHeap::with_sessions(1000, 1);
        heap.alloc(900, false).unwrap();
        // 5000 bytes would overflow the session envelope five times over,
        // but the staging region is CPU memory with no VA constraint.
        let staged = heap.alloc_staged(5000, true);
        assert_eq!(heap.staged_bytes, 5000);
        assert_eq!(heap.mapped_bytes, 900);
        assert_eq!(heap.sessions(), 1);
        assert_eq!(heap.get(staged).session, STAGING_SESSION);
        assert_eq!(heap.get(staged).data.as_ref().unwrap().len(), 5000);
        heap.free(staged);
        assert_eq!(heap.staged_bytes, 0);
        assert_eq!(heap.mapped_bytes, 900);
    }

    #[test]
    fn multi_session_free_returns_space_to_owning_session() {
        let mut heap = DdrHeap::with_sessions(1000, 2);
        let a = heap.alloc(900, false).unwrap();
        let b = heap.alloc(900, false).unwrap();
        assert_eq!(heap.get(a).session, 0);
        assert_eq!(heap.get(b).session, 1);
        heap.free(a);
        // Session 0 has room again; a new buffer lands there.
        let c = heap.alloc(800, false).unwrap();
        assert_eq!(heap.get(c).session, 0);
        assert_eq!(heap.mapped_bytes, 1700);
    }
}
