//! Memory-system model: TCM scratch, DDR heap, and session VA accounting.
//!
//! The Hexagon NPU's memory hierarchy (paper Figure 3) is: DDR, a shared
//! 1 MiB L2, and 8 MiB of software-managed TCM. `l2fetch` pulls DDR into L2
//! (20-30 GB/s); the DMA engine moves 1D/2D blocks into TCM (~60 GB/s);
//! vector scatter/gather and *all* HMX instructions can only touch TCM.
//! This module provides the storage; bandwidth costs are charged by
//! [`crate::ctx::NpuContext`], which owns both the storage and the cost
//! model.

use std::collections::HashMap;

use crate::error::{SimError, SimResult};

/// A byte address inside the TCM (valid range `0..tcm_bytes`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TcmAddr(pub u32);

impl TcmAddr {
    /// Returns the address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u32) -> TcmAddr {
        TcmAddr(self.0 + bytes)
    }
}

/// Handle to a DDR allocation owned by the simulated NPU session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DdrBuffer(pub u64);

pub(crate) struct DdrBufferState {
    pub size: u64,
    /// Backing bytes; `None` in cost-only mode (shape-level simulation).
    pub data: Option<Vec<u8>>,
}

/// Heap of DDR allocations with session VA-space accounting.
///
/// The VA limit models the 32-bit address space of a single NPU session: on
/// Snapdragon 8 Gen 2 only ~2 GiB is usable, which is exactly why the paper
/// cannot run 3B-parameter models there (Section 7.2.1, Figure 11).
pub(crate) struct DdrHeap {
    buffers: HashMap<u64, DdrBufferState>,
    next_id: u64,
    pub mapped_bytes: u64,
    pub va_capacity: u64,
}

impl DdrHeap {
    pub fn new(va_capacity: u64) -> Self {
        DdrHeap {
            buffers: HashMap::new(),
            next_id: 1,
            mapped_bytes: 0,
            va_capacity,
        }
    }

    pub fn alloc(&mut self, size: u64, materialize: bool) -> SimResult<DdrBuffer> {
        if self.mapped_bytes + size > self.va_capacity {
            return Err(SimError::VaSpaceExceeded {
                capacity: self.va_capacity,
                mapped: self.mapped_bytes,
                requested: size,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.mapped_bytes += size;
        let data = if materialize {
            Some(vec![0u8; size as usize])
        } else {
            None
        };
        self.buffers.insert(id, DdrBufferState { size, data });
        Ok(DdrBuffer(id))
    }

    pub fn free(&mut self, buf: DdrBuffer) {
        if let Some(state) = self.buffers.remove(&buf.0) {
            self.mapped_bytes -= state.size;
        }
    }

    pub fn get(&self, buf: DdrBuffer) -> &DdrBufferState {
        self.buffers
            .get(&buf.0)
            .expect("use of freed or foreign DdrBuffer")
    }

    pub fn get_mut(&mut self, buf: DdrBuffer) -> &mut DdrBufferState {
        self.buffers
            .get_mut(&buf.0)
            .expect("use of freed or foreign DdrBuffer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn va_space_is_enforced() {
        let mut heap = DdrHeap::new(1000);
        let a = heap.alloc(600, false).unwrap();
        let err = heap.alloc(600, false).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
        heap.free(a);
        heap.alloc(600, false).unwrap();
    }

    #[test]
    fn free_returns_va_space() {
        let mut heap = DdrHeap::new(100);
        let a = heap.alloc(100, false).unwrap();
        assert_eq!(heap.mapped_bytes, 100);
        heap.free(a);
        assert_eq!(heap.mapped_bytes, 0);
    }

    #[test]
    fn materialized_buffers_are_zeroed() {
        let mut heap = DdrHeap::new(1 << 20);
        let a = heap.alloc(64, true).unwrap();
        let state = heap.get(a);
        assert_eq!(state.data.as_ref().unwrap().len(), 64);
        assert!(state.data.as_ref().unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn cost_only_buffers_have_no_backing() {
        let mut heap = DdrHeap::new(1 << 40);
        let a = heap.alloc(1 << 35, false).unwrap(); // 32 GiB, shape only.
        assert!(heap.get(a).data.is_none());
        assert_eq!(heap.get(a).size, 1 << 35);
    }

    #[test]
    fn tcm_addr_offset() {
        assert_eq!(TcmAddr(128).offset(64), TcmAddr(192));
    }
}
