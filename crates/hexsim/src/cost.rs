//! Engine-level cost accounting for the simulated NPU.
//!
//! Every operation emitted through [`crate::ctx::NpuContext`] charges time to
//! one of six engines. Within a *phase*, engines run concurrently (wall time
//! is the maximum of the engine deltas — this models DMA double-buffering
//! overlapped with HVX/HMX compute, which the paper's kernels rely on);
//! across phases, time is sequential. Kernels report a [`PhaseCost`]
//! breakdown, which is exactly the data behind the paper's Figure 8 latency
//! decomposition and the Figure 14/15 ablations.

use serde::{Deserialize, Serialize};

use crate::device::DeviceProfile;

/// A hardware engine that can be busy concurrently with the others.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// Scalar VLIW control core(s).
    Scalar,
    /// HVX vector unit(s).
    Hvx,
    /// HMX matrix unit.
    Hmx,
    /// DMA engine (DDR <-> TCM).
    Dma,
    /// `l2fetch` prefetch engine (DDR -> L2).
    L2fetch,
    /// Host CPU (big cores), for operators the runtime places there.
    Cpu,
}

/// Number of distinct engines (array-map size).
pub const NUM_ENGINES: usize = 6;

impl Engine {
    /// All engines, in a fixed order usable as array indices.
    pub const ALL: [Engine; NUM_ENGINES] = [
        Engine::Scalar,
        Engine::Hvx,
        Engine::Hmx,
        Engine::Dma,
        Engine::L2fetch,
        Engine::Cpu,
    ];

    /// Stable array index of the engine (the position in [`Engine::ALL`]
    /// and in every `[f64; NUM_ENGINES]` engine-seconds array).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Engine::Scalar => 0,
            Engine::Hvx => 1,
            Engine::Hmx => 2,
            Engine::Dma => 3,
            Engine::L2fetch => 4,
            Engine::Cpu => 5,
        }
    }

    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.index()
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Hvx => "hvx",
            Engine::Hmx => "hmx",
            Engine::Dma => "dma",
            Engine::L2fetch => "l2fetch",
            Engine::Cpu => "cpu",
        }
    }
}

/// Raw activity counters, useful for reports and calibration checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// HVX vector instructions issued.
    pub hvx_instructions: u64,
    /// `vgather` instructions issued (they dominate LUT softmax cost).
    pub vgathers: u64,
    /// `vlut16` instructions issued.
    pub vluts: u64,
    /// HMX 32x32x32 FP16 tile multiply-accumulates.
    pub hmx_tile_ops: u64,
    /// Bytes moved by the DMA engine.
    pub dma_bytes: u64,
    /// Bytes prefetched by `l2fetch`.
    pub l2fetch_bytes: u64,
    /// Bytes loaded by HVX over the core path (DDR/L2, not TCM).
    pub hvx_ddr_load_bytes: u64,
    /// Bytes moved between HVX and TCM.
    pub tcm_bytes: u64,
    /// FP32 floating-point operations executed on the host CPU.
    pub cpu_flops: u64,
    /// Bytes moved by the host CPU.
    pub cpu_bytes: u64,
}

impl Counters {
    fn add(&mut self, other: &Counters) {
        self.hvx_instructions += other.hvx_instructions;
        self.vgathers += other.vgathers;
        self.vluts += other.vluts;
        self.hmx_tile_ops += other.hmx_tile_ops;
        self.dma_bytes += other.dma_bytes;
        self.l2fetch_bytes += other.l2fetch_bytes;
        self.hvx_ddr_load_bytes += other.hvx_ddr_load_bytes;
        self.tcm_bytes += other.tcm_bytes;
        self.cpu_flops += other.cpu_flops;
        self.cpu_bytes += other.cpu_bytes;
    }

    fn scale(&mut self, base: &Counters, factor: u64) {
        // self = base + (self - base) * factor, elementwise.
        macro_rules! sc {
            ($f:ident) => {
                self.$f = base.$f + (self.$f - base.$f) * factor;
            };
        }
        sc!(hvx_instructions);
        sc!(vgathers);
        sc!(vluts);
        sc!(hmx_tile_ops);
        sc!(dma_bytes);
        sc!(l2fetch_bytes);
        sc!(hvx_ddr_load_bytes);
        sc!(tcm_bytes);
        sc!(cpu_flops);
        sc!(cpu_bytes);
    }
}

/// Busy time per engine plus the wall-clock composition of one phase.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Phase label (e.g. `"softmax"`, `"matmul"`, `"qkvo load/store"`).
    pub label: String,
    /// Busy seconds per engine during the phase.
    pub engine_secs: [f64; NUM_ENGINES],
    /// Wall-clock seconds: max over engines (they overlap within a phase).
    pub wall_secs: f64,
}

impl PhaseCost {
    /// Busy seconds of one engine.
    pub fn engine(&self, e: Engine) -> f64 {
        self.engine_secs[e.idx()]
    }

    /// Merges another phase's engine times into this one (concurrent union:
    /// engine times add, wall recomputed as max).
    pub fn merge_concurrent(&mut self, other: &PhaseCost) {
        for i in 0..NUM_ENGINES {
            self.engine_secs[i] += other.engine_secs[i];
        }
        self.wall_secs = self.engine_secs.iter().fold(0.0f64, |acc, &s| acc.max(s));
    }
}

/// Snapshot token for [`CostModel::snapshot`] / [`CostModel::scale_since`].
#[derive(Clone, Copy, Debug)]
pub struct CostSnapshot {
    engine_secs: [f64; NUM_ENGINES],
    counters: Counters,
}

/// Accumulates engine-busy time and activity counters for one NPU context.
///
/// The model is intentionally first-order: each HVX instruction packet takes
/// one vector-clock cycle on its thread; `vgather` takes the device's
/// published 24-48 packets; byte movement is charged at the engine's
/// calibrated bandwidth; HMX tile-ops at the device's peak tile rate. The
/// paper's speedups (Figures 14 and 15) emerge from instruction and byte
/// *counts*, which the kernels produce faithfully.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Active profile all charges price against — the base device
    /// re-derived at the current DVFS clock multiplier.
    device: DeviceProfile,
    /// The burst-clock profile as constructed, kept so the multiplier can
    /// change mid-flight without compounding scale factors.
    base_device: DeviceProfile,
    /// Current DVFS clock multiplier (1.0 = burst).
    clock_mult: f64,
    engine_secs: [f64; NUM_ENGINES],
    counters: Counters,
    phases: Vec<PhaseCost>,
    phase_start: Option<(String, [f64; NUM_ENGINES])>,
    /// Divisor applied to HVX charges: number of vector threads the current
    /// kernel declared it spreads across (1 = single-threaded).
    hvx_parallelism: f64,
}

impl CostModel {
    /// Creates an empty cost model for a device.
    pub fn new(device: DeviceProfile) -> Self {
        CostModel {
            device: device.clone(),
            base_device: device,
            clock_mult: 1.0,
            engine_secs: [0.0; NUM_ENGINES],
            counters: Counters::default(),
            phases: Vec::new(),
            phase_start: None,
            hvx_parallelism: 1.0,
        }
    }

    /// The device this model charges against (at the current clock — see
    /// [`CostModel::set_clock_mult`]).
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Moves the model to a DVFS operating point: subsequent charges are
    /// priced against [`DeviceProfile::at_clock`]`(mult)` of the *base*
    /// device, so repeated calls never compound. Already-accumulated time
    /// is untouched — the multiplier applies from this call onward, which
    /// is exactly how a mid-decode throttle event lands. Returns the
    /// previous multiplier so callers can restore it.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < mult <= 1` (see [`DeviceProfile::at_clock`]).
    pub fn set_clock_mult(&mut self, mult: f64) -> f64 {
        let prev = self.clock_mult;
        self.device = self.base_device.at_clock(mult);
        self.clock_mult = mult;
        prev
    }

    /// The current DVFS clock multiplier (1.0 = burst).
    pub fn clock_mult(&self) -> f64 {
        self.clock_mult
    }

    /// Raw activity counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Total busy seconds of one engine since creation (or last reset).
    pub fn engine_secs(&self, e: Engine) -> f64 {
        self.engine_secs[e.idx()]
    }

    /// Sum of recorded phase wall times (sequential composition).
    pub fn wall_secs(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_secs).sum()
    }

    /// All recorded phases in order.
    pub fn phases(&self) -> &[PhaseCost] {
        &self.phases
    }

    /// Drops recorded phase history (engine totals and counters are kept).
    /// Long-running pipelines call this per step to bound memory.
    pub fn clear_phases(&mut self) {
        self.phases.clear();
    }

    /// Clears all accumulated time, counters and phases, and returns the
    /// clock to burst (multiplier 1.0).
    pub fn reset(&mut self) {
        self.engine_secs = [0.0; NUM_ENGINES];
        self.counters = Counters::default();
        self.phases.clear();
        self.phase_start = None;
        self.hvx_parallelism = 1.0;
        self.device = self.base_device.clone();
        self.clock_mult = 1.0;
    }

    /// Declares that subsequent HVX charges are spread over `threads` vector
    /// threads (clamped to the device's scalar thread count). Returns the
    /// previous value so callers can restore it.
    pub fn set_hvx_parallelism(&mut self, threads: u32) -> f64 {
        let prev = self.hvx_parallelism;
        let t = threads.clamp(1, self.device.scalar_threads) as f64;
        self.hvx_parallelism = t;
        prev
    }

    /// Restores a previously saved HVX parallelism divisor.
    pub fn restore_hvx_parallelism(&mut self, prev: f64) {
        self.hvx_parallelism = prev;
    }

    /// Opens a named phase. Phases must not nest.
    ///
    /// # Panics
    ///
    /// Panics if a phase is already open.
    pub fn begin_phase(&mut self, label: &str) {
        assert!(
            self.phase_start.is_none(),
            "cost phases must not nest (open: {:?})",
            self.phase_start.as_ref().map(|(l, _)| l.clone())
        );
        self.phase_start = Some((label.to_string(), self.engine_secs));
    }

    /// Closes the open phase and records its engine/wall breakdown.
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    pub fn end_phase(&mut self) -> PhaseCost {
        let (label, start) = self
            .phase_start
            .take()
            .expect("end_phase called with no open phase");
        let mut engine_secs = [0.0; NUM_ENGINES];
        for i in 0..NUM_ENGINES {
            engine_secs[i] = self.engine_secs[i] - start[i];
        }
        let wall_secs = engine_secs.iter().fold(0.0f64, |acc, &s| acc.max(s));
        let phase = PhaseCost {
            label,
            engine_secs,
            wall_secs,
        };
        self.phases.push(phase.clone());
        phase
    }

    /// Charges `packets` instruction packets to the HVX engine, honoring the
    /// declared thread parallelism.
    pub fn charge_hvx_packets(&mut self, packets: u64) {
        self.counters.hvx_instructions += packets;
        let secs = packets as f64 / self.device.vector_clock_hz / self.hvx_parallelism;
        self.engine_secs[Engine::Hvx.idx()] += secs;
    }

    /// Charges one `vgather` (paper: 24-48 packets on V75). `pipelined`
    /// charges the lower bound, modelling multiple gathers in flight.
    pub fn charge_vgather(&mut self, pipelined: bool) {
        self.counters.vgathers += 1;
        let p = if pipelined {
            self.device.vgather_packets_min
        } else {
            (self.device.vgather_packets_min + self.device.vgather_packets_max) / 2
        };
        self.charge_hvx_packets(p as u64);
    }

    /// Charges one `vlut16` instruction.
    pub fn charge_vlut16(&mut self) {
        self.counters.vluts += 1;
        self.charge_hvx_packets(1);
    }

    /// Charges `n` HMX 32x32x32 FP16 tile multiply-accumulates.
    pub fn charge_hmx_tile_ops(&mut self, n: u64) {
        self.counters.hmx_tile_ops += n;
        let secs = n as f64 / self.device.hmx_tile_ops_per_sec();
        self.engine_secs[Engine::Hmx.idx()] += secs;
    }

    /// Charges a DMA transfer of `bytes` between DDR and TCM.
    pub fn charge_dma(&mut self, bytes: u64) {
        self.counters.dma_bytes += bytes;
        self.engine_secs[Engine::Dma.idx()] += bytes as f64 / self.device.dma_bw;
    }

    /// Charges a whole-layer weight stream of `bytes` from the CPU-owned
    /// DDR staging region into the session window, at the device's
    /// sustained (compute-contended) streaming bandwidth — slower than the
    /// idle [`CostModel::charge_dma`] rate. Returns the charged seconds so
    /// the caller can record the fetch as an overlap-schedulable stage.
    pub fn charge_ddr_stream(&mut self, bytes: u64) -> f64 {
        self.counters.dma_bytes += bytes;
        let secs = bytes as f64 / self.device.ddr_stream_bw;
        self.engine_secs[Engine::Dma.idx()] += secs;
        secs
    }

    /// Charges an `l2fetch` prefetch of `bytes` from DDR into L2.
    pub fn charge_l2fetch(&mut self, bytes: u64) {
        self.counters.l2fetch_bytes += bytes;
        self.engine_secs[Engine::L2fetch.idx()] += bytes as f64 / self.device.l2fetch_bw;
    }

    /// Charges an HVX load/store over the core path from DDR/L2 (the slow
    /// path, Table 2: 26 GB/s on V75).
    pub fn charge_hvx_ddr_bytes(&mut self, bytes: u64) {
        self.counters.hvx_ddr_load_bytes += bytes;
        let secs = bytes as f64 / self.device.hvx_load_bw / self.hvx_parallelism;
        self.engine_secs[Engine::Hvx.idx()] += secs;
    }

    /// Charges HVX <-> TCM streaming of `bytes` (fast on-chip path).
    pub fn charge_tcm_bytes(&mut self, bytes: u64) {
        self.counters.tcm_bytes += bytes;
        let secs = bytes as f64 / self.device.tcm_bw / self.hvx_parallelism;
        self.engine_secs[Engine::Hvx.idx()] += secs;
    }

    /// Charges `flops` FP32 operations on the host CPU at its calibrated
    /// aggregate throughput, plus `bytes` of memory traffic; the slower of
    /// the two bounds the time (simple roofline).
    pub fn charge_cpu(&mut self, flops: u64, bytes: u64) {
        self.counters.cpu_flops += flops;
        self.counters.cpu_bytes += bytes;
        let t_flops = flops as f64 / self.device.cpu_flops;
        let t_bytes = bytes as f64 / self.device.cpu_mem_bw;
        self.engine_secs[Engine::Cpu.idx()] += t_flops.max(t_bytes);
    }

    /// Charges raw seconds to an engine (escape hatch for modelled fixed
    /// overheads such as RPC handshakes).
    pub fn charge_secs(&mut self, e: Engine, secs: f64) {
        self.engine_secs[e.idx()] += secs;
    }

    /// Takes a snapshot for later [`CostModel::scale_since`].
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            engine_secs: self.engine_secs,
            counters: self.counters,
        }
    }

    /// Difference between now and a snapshot, as a [`PhaseCost`].
    #[allow(clippy::needless_range_loop)]
    pub fn delta_since(&self, snap: &CostSnapshot, label: &str) -> PhaseCost {
        let mut engine_secs = [0.0; NUM_ENGINES];
        for i in 0..NUM_ENGINES {
            engine_secs[i] = self.engine_secs[i] - snap.engine_secs[i];
        }
        let wall_secs = engine_secs.iter().fold(0.0f64, |acc, &s| acc.max(s));
        PhaseCost {
            label: label.to_string(),
            engine_secs,
            wall_secs,
        }
    }

    /// Multiplies everything charged since `snap` by `factor`. Used by
    /// [`crate::ctx::NpuContext::replay`] to extrapolate one representative
    /// block execution to `factor` identical blocks.
    pub fn scale_since(&mut self, snap: &CostSnapshot, factor: u64) {
        for i in 0..NUM_ENGINES {
            let delta = self.engine_secs[i] - snap.engine_secs[i];
            self.engine_secs[i] = snap.engine_secs[i] + delta * factor as f64;
        }
        self.counters.scale(&snap.counters, factor);
    }

    /// Adds the totals of another cost model (e.g. a per-thread context)
    /// into this one.
    pub fn absorb(&mut self, other: &CostModel) {
        for i in 0..NUM_ENGINES {
            self.engine_secs[i] += other.engine_secs[i];
        }
        self.counters.add(&other.counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(DeviceProfile::v75())
    }

    #[test]
    fn hvx_packet_time_matches_clock() {
        let mut m = model();
        m.charge_hvx_packets(1_150_000); // 1 ms at 1.15 GHz.
        assert!((m.engine_secs(Engine::Hvx) - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    fn parallelism_divides_hvx_time() {
        let mut m = model();
        let prev = m.set_hvx_parallelism(4);
        m.charge_hvx_packets(4_000);
        m.restore_hvx_parallelism(prev);
        m.charge_hvx_packets(1_000);
        // 4000/4 + 1000 = 2000 cycle-equivalents.
        let expect = 2000.0 / 1.15e9;
        assert!((m.engine_secs(Engine::Hvx) - expect).abs() < 1e-15);
    }

    #[test]
    fn parallelism_clamps_to_thread_count() {
        let mut m = model();
        m.set_hvx_parallelism(64);
        m.charge_hvx_packets(6_000);
        // V75 has 6 scalar threads; 64 must clamp to 6.
        let expect = 1000.0 / 1.15e9;
        assert!((m.engine_secs(Engine::Hvx) - expect).abs() < 1e-15);
    }

    #[test]
    fn dma_time_matches_bandwidth() {
        let mut m = model();
        m.charge_dma(60_000_000_000); // 1 s at 60 GB/s.
        assert!((m.engine_secs(Engine::Dma) - 1.0).abs() < 1e-9);
        assert_eq!(m.counters().dma_bytes, 60_000_000_000);
    }

    #[test]
    fn ddr_stream_time_matches_sustained_bandwidth() {
        let mut m = model();
        // 1 s at the V75 sustained streaming rate (45 GB/s, below the
        // 60 GB/s idle DMA rate).
        let secs = m.charge_ddr_stream(45_000_000_000);
        assert!((secs - 1.0).abs() < 1e-9);
        assert!((m.engine_secs(Engine::Dma) - 1.0).abs() < 1e-9);
        assert_eq!(m.counters().dma_bytes, 45_000_000_000);
    }

    #[test]
    fn hmx_tile_rate_matches_table2() {
        let mut m = model();
        // 1 second of tile-ops at peak should equal hmx_flops of work.
        let tiles_per_sec = DeviceProfile::v75().hmx_tile_ops_per_sec();
        m.charge_hmx_tile_ops(tiles_per_sec as u64);
        assert!((m.engine_secs(Engine::Hmx) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn phase_wall_is_max_of_engines() {
        let mut m = model();
        m.begin_phase("p");
        m.charge_dma(6_000_000); // 0.1 ms on DMA.
        m.charge_hvx_packets(230_000); // 0.2 ms on HVX.
        let p = m.end_phase();
        assert!((p.wall_secs - 0.2e-3).abs() < 1e-8);
        assert!((m.wall_secs() - 0.2e-3).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "must not nest")]
    fn nested_phase_panics() {
        let mut m = model();
        m.begin_phase("a");
        m.begin_phase("b");
    }

    #[test]
    fn scale_since_multiplies_delta_only() {
        let mut m = model();
        m.charge_dma(1000);
        let snap = m.snapshot();
        m.charge_dma(500);
        m.charge_hvx_packets(10);
        m.scale_since(&snap, 8);
        assert_eq!(m.counters().dma_bytes, 1000 + 500 * 8);
        assert_eq!(m.counters().hvx_instructions, 80);
    }

    #[test]
    fn vgather_charges_device_packets() {
        let mut m = model();
        m.charge_vgather(true);
        let t_min = 24.0 / 1.15e9;
        assert!((m.engine_secs(Engine::Hvx) - t_min).abs() < 1e-15);
        m.reset();
        m.charge_vgather(false);
        let t_mid = 36.0 / 1.15e9;
        assert!((m.engine_secs(Engine::Hvx) - t_mid).abs() < 1e-15);
    }

    #[test]
    fn cpu_roofline_takes_slower_bound() {
        let mut m = model();
        // Tiny flops, huge bytes: memory-bound.
        m.charge_cpu(1, 32_000_000_000);
        assert!((m.engine_secs(Engine::Cpu) - 1.0).abs() < 1e-9);
    }

    /// From-scratch scalar reference for one charge sequence at a DVFS
    /// multiplier: prices every lane directly off the scaled constants,
    /// sharing no code with `CostModel` beyond the device struct.
    fn throttled_reference(base: &DeviceProfile, mult: f64) -> [f64; NUM_ENGINES] {
        let mut secs = [0.0f64; NUM_ENGINES];
        // HVX: 4600 packets single-threaded + one pipelined vgather.
        secs[Engine::Hvx.idx()] +=
            (4600.0 + base.vgather_packets_min as f64) / (base.vector_clock_hz * mult);
        // HVX core-path load of 13 MB and 26 MB of TCM streaming.
        secs[Engine::Hvx.idx()] += 13.0e6 / (base.hvx_load_bw * mult);
        secs[Engine::Hvx.idx()] += 26.0e6 / (base.tcm_bw * mult);
        // HMX: 1000 tile-ops at the scaled tile rate.
        secs[Engine::Hmx.idx()] += 1000.0 / ((base.hmx_flops * mult) / (2.0 * 32.0 * 32.0 * 32.0));
        // DMA: a 6 MB idle-rate transfer plus a 9 MB sustained weight
        // stream (the streaming lane must scale too).
        secs[Engine::Dma.idx()] += 6.0e6 / (base.dma_bw * mult);
        secs[Engine::Dma.idx()] += 9.0e6 / (base.ddr_stream_bw * mult);
        // l2fetch: 5 MB prefetch.
        secs[Engine::L2fetch.idx()] += 5.0e6 / (base.l2fetch_bw * mult);
        // CPU roofline: a compute-bound and a memory-bound charge, plus a
        // fixed 30 us session switch that must NOT scale.
        secs[Engine::Cpu.idx()] += 2.0e9 / (base.cpu_flops * mult);
        secs[Engine::Cpu.idx()] += 64.0e6 / (base.cpu_mem_bw * mult);
        secs[Engine::Cpu.idx()] += 30e-6;
        secs
    }

    /// Replays the same charge sequence through the cost model.
    fn throttled_charges(m: &mut CostModel) {
        m.charge_hvx_packets(4600);
        m.charge_vgather(true);
        m.charge_hvx_ddr_bytes(13_000_000);
        m.charge_tcm_bytes(26_000_000);
        m.charge_hmx_tile_ops(1000);
        m.charge_dma(6_000_000);
        let _ = m.charge_ddr_stream(9_000_000);
        m.charge_l2fetch(5_000_000);
        m.charge_cpu(2_000_000_000, 0);
        m.charge_cpu(0, 64_000_000);
        m.charge_secs(Engine::Cpu, 30e-6);
    }

    #[test]
    fn throttled_charges_match_the_scalar_reference_on_every_lane() {
        for base in DeviceProfile::all() {
            for mult in [1.0, 0.82, 0.65, 0.6] {
                let mut m = CostModel::new(base.clone());
                m.set_clock_mult(mult);
                throttled_charges(&mut m);
                let want = throttled_reference(&base, mult);
                for e in Engine::ALL {
                    let got = m.engine_secs(e);
                    let w = want[e.idx()];
                    assert!(
                        (got - w).abs() <= w.abs() * 1e-12,
                        "{} {} mult {mult}: {got} vs reference {w}",
                        base.name,
                        e.label()
                    );
                }
            }
        }
    }

    #[test]
    fn throttled_lanes_scale_by_exactly_one_over_mult() {
        // Every rate scales by the same factor, so busy seconds for the
        // same workload scale by 1/mult on every lane — except the fixed
        // session-switch seconds, which are subtracted out here.
        let base = DeviceProfile::v75();
        let mult = 0.6;
        let mut burst = CostModel::new(base.clone());
        throttled_charges(&mut burst);
        let mut slow = CostModel::new(base);
        slow.set_clock_mult(mult);
        throttled_charges(&mut slow);
        for e in Engine::ALL {
            let fixed = if e == Engine::Cpu { 30e-6 } else { 0.0 };
            let b = burst.engine_secs(e) - fixed;
            let s = slow.engine_secs(e) - fixed;
            assert!(
                (s - b / mult).abs() <= (b / mult).abs() * 1e-9 + 1e-18,
                "{}: {s} vs {b}/{mult}",
                e.label()
            );
        }
        // Counters are clock-independent (same instructions, same bytes).
        assert_eq!(burst.counters(), slow.counters());
    }

    #[test]
    fn set_clock_mult_does_not_compound_and_reset_restores_burst() {
        let mut m = model();
        let prev = m.set_clock_mult(0.5);
        assert_eq!(prev, 1.0);
        // Re-setting from the *base* device: 0.5 twice is still 0.5.
        m.set_clock_mult(0.5);
        m.charge_dma(30_000_000_000); // 1 s at burst, 2 s at half clock.
        assert!((m.engine_secs(Engine::Dma) - 1.0).abs() < 1e-9);
        assert_eq!(m.clock_mult(), 0.5);
        m.reset();
        assert_eq!(m.clock_mult(), 1.0);
        m.charge_dma(60_000_000_000);
        assert!((m.engine_secs(Engine::Dma) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mid_flight_throttle_prices_only_subsequent_charges() {
        let mut m = model();
        m.charge_dma(60_000_000_000); // 1 s at burst.
        m.set_clock_mult(0.5);
        m.charge_dma(60_000_000_000); // 2 s throttled.
        assert!((m.engine_secs(Engine::Dma) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_concurrent_recomputes_wall() {
        let mut a = PhaseCost {
            label: "a".into(),
            engine_secs: [0.0; NUM_ENGINES],
            wall_secs: 0.0,
        };
        a.engine_secs[Engine::Hvx.idx()] = 1.0;
        a.wall_secs = 1.0;
        let mut b = a.clone();
        b.engine_secs[Engine::Dma.idx()] = 3.0;
        a.merge_concurrent(&b);
        assert!((a.wall_secs - 3.0).abs() < 1e-12);
        assert!((a.engine(Engine::Hvx) - 2.0).abs() < 1e-12);
    }
}
