//! FastRPC/rpcmem command ring: the CPU <-> NPU transport protocol.
//!
//! The paper's runtime (Section 6) starts a remote NPU session over
//! FastRPC, then switches to a shared-memory command channel: the CPU
//! writes a request descriptor into rpcmem, cleans the cache (one-way
//! coherence), and an NPU-side thread polls the region for work. Responses
//! flow back without maintenance because NPU writes are CPU-visible. This
//! module reproduces that protocol over [`crate::shared::SharedBuffer`],
//! including the failure mode the strict coherence model catches: skipping
//! `cache_clean` delivers stale descriptors.
//!
//! The ring lives in `hexsim` (rather than the system crate upstairs)
//! because it is part of the device substrate: `edgellm`'s layer walk
//! drives one descriptor through [`NpuSession`] per dispatched op, so the
//! transport protocol and the cost model share a single code path.

use serde::{Deserialize, Serialize};

use crate::cost::Engine;
use crate::ctx::NpuContext;
use crate::error::{SimError, SimResult};
use crate::shared::SharedBuffer;

/// Command opcodes the CPU can enqueue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpCode {
    /// No operation (used for liveness checks).
    Nop,
    /// Matrix multiply with streamed dequantization.
    MatMul,
    /// FlashAttention over a KV range.
    Attention,
    /// RMSNorm / RoPE / activation (grouped as "misc").
    Misc,
}

/// A command descriptor as written into the shared ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Monotonic sequence number.
    pub seq: u32,
    /// Operation.
    pub op: OpCode,
    /// Opaque argument word (tensor handle, length, ...).
    pub arg: u32,
}

const REQ_BYTES: usize = 12;
const RING_SLOTS: usize = 64;
const HDR_BYTES: usize = 8; // head (u32) + tail (u32).

fn encode(req: &Request) -> [u8; REQ_BYTES] {
    let mut out = [0u8; REQ_BYTES];
    out[0..4].copy_from_slice(&req.seq.to_le_bytes());
    out[4..8].copy_from_slice(&(req.op as u32).to_le_bytes());
    out[8..12].copy_from_slice(&req.arg.to_le_bytes());
    out
}

fn decode(bytes: &[u8]) -> Request {
    let seq = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let op = match u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) {
        0 => OpCode::Nop,
        1 => OpCode::MatMul,
        2 => OpCode::Attention,
        _ => OpCode::Misc,
    };
    let arg = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    Request { seq, op, arg }
}

/// Session tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Whether stale reads fault (strict) or return garbage (lenient).
    pub strict_coherence: bool,
    /// One-way CPU->NPU submission latency over the polling channel,
    /// seconds (shared-memory polling beats default FastRPC; ~10 us).
    pub submit_latency: f64,
    /// Completion-notification latency, seconds.
    pub complete_latency: f64,
    /// Double-buffered dispatch: when the CPU submitted the next request
    /// while the current one executed (the request was already queued
    /// when the previous dispatch finished), the NPU-side poller's
    /// completion overhead hides behind that execution and is not charged
    /// — the paper's Section 7.2.2 async-dispatch direction. Off by
    /// default so every historical number reproduces.
    ///
    /// This is the *transport-level* knob on the explicit command ring
    /// that `edgellm`'s layer walk drives per dispatched op; the
    /// measurement pipelines model the same depth-2 ring analytically at
    /// step level (`edgellm::overlap` schedules each layer's
    /// `dispatch_secs` one layer ahead of its compute). The layer walk
    /// keeps the knob off so the per-op completion charges it pays equal
    /// the serial dispatch overhead the pinned figures were measured
    /// with; "Ours (async)" hides that overhead at the schedule level
    /// instead.
    pub double_buffered: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            strict_coherence: true,
            submit_latency: 10e-6,
            complete_latency: 8e-6,
            double_buffered: false,
        }
    }
}

/// One CPU <-> NPU command session over shared memory.
pub struct NpuSession {
    ring: SharedBuffer,
    cfg: SessionConfig,
    next_seq: u32,
    head: u32,
    tail: u32,
    /// Whether the next request to dispatch was already in the ring when
    /// the previous dispatch finished (its descriptor prefetched into the
    /// second buffer, so a double-buffered poller picks it up for free).
    primed: bool,
    /// Completed requests, in order.
    pub completed: Vec<Request>,
}

impl NpuSession {
    /// Opens a session: allocates the command ring and "starts" the NPU
    /// poller (modelled synchronously; the polling thread's work is charged
    /// per dispatch).
    pub fn open(cfg: SessionConfig) -> Self {
        let ring = SharedBuffer::new(1, HDR_BYTES + RING_SLOTS * REQ_BYTES, cfg.strict_coherence);
        NpuSession {
            ring,
            cfg,
            next_seq: 1,
            head: 0,
            tail: 0,
            primed: false,
            completed: Vec::new(),
        }
    }

    /// Number of requests currently queued.
    pub fn pending(&self) -> u32 {
        self.head - self.tail
    }

    /// CPU side: enqueues a request descriptor. `clean` controls whether
    /// the cache maintenance step is performed — passing `false` models the
    /// bug the strict coherence check exists to catch.
    pub fn submit(
        &mut self,
        ctx: &mut NpuContext,
        op: OpCode,
        arg: u32,
        clean: bool,
    ) -> SimResult<u32> {
        if self.pending() as usize >= RING_SLOTS {
            return Err(SimError::Unsupported {
                reason: "command ring full".to_string(),
            });
        }
        let req = Request {
            seq: self.next_seq,
            op,
            arg,
        };
        self.next_seq += 1;
        let slot = (self.head as usize) % RING_SLOTS;
        self.ring
            .cpu_write(HDR_BYTES + slot * REQ_BYTES, &encode(&req));
        self.head += 1;
        let head = self.head;
        self.ring.cpu_write(0, &head.to_le_bytes());
        if clean {
            self.ring.cache_clean();
        }
        ctx.cost.charge_secs(Engine::Cpu, self.cfg.submit_latency);
        Ok(req.seq)
    }

    /// NPU side: polls the ring and dispatches at most one request.
    /// Returns the request if one was executed.
    pub fn poll_dispatch(&mut self, ctx: &mut NpuContext) -> SimResult<Option<Request>> {
        // The poller reads the head pointer from shared memory.
        let head_bytes = self.ring.npu_read(0, 4)?;
        let head = u32::from_le_bytes([head_bytes[0], head_bytes[1], head_bytes[2], head_bytes[3]]);
        if head == self.tail {
            return Ok(None);
        }
        let slot = (self.tail as usize) % RING_SLOTS;
        let req = decode(
            self.ring
                .npu_read(HDR_BYTES + slot * REQ_BYTES, REQ_BYTES)?,
        );
        self.tail += 1;
        // Completion: NPU writes are CPU-visible without maintenance.
        let tail = self.tail;
        self.ring.npu_write(4, &tail.to_le_bytes());
        // A double-buffered ring hides the poller's completion overhead
        // for requests that were already queued while the previous one
        // executed (the CPU submitted layer N+1 during layer N); only the
        // pipeline-fill dispatch pays it.
        if !(self.cfg.double_buffered && self.primed) {
            ctx.cost
                .charge_secs(Engine::Scalar, self.cfg.complete_latency);
        }
        self.primed = head != self.tail;
        self.completed.push(req);
        Ok(Some(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ExecMode;
    use crate::device::DeviceProfile;

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly)
    }

    #[test]
    fn submit_then_poll_roundtrip() {
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        let seq = s.submit(&mut c, OpCode::MatMul, 42, true).unwrap();
        let req = s.poll_dispatch(&mut c).unwrap().unwrap();
        assert_eq!(req.seq, seq);
        assert_eq!(req.op, OpCode::MatMul);
        assert_eq!(req.arg, 42);
        assert!(s.poll_dispatch(&mut c).unwrap().is_none());
    }

    #[test]
    fn skipping_cache_clean_faults_in_strict_mode() {
        // The bug class Section 6 warns about: CPU writes the descriptor
        // but does not clean the cache before the NPU polls.
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        s.submit(&mut c, OpCode::Attention, 7, false).unwrap();
        let err = s.poll_dispatch(&mut c).unwrap_err();
        assert!(matches!(err, SimError::CoherenceViolation { .. }));
    }

    #[test]
    fn requests_dispatch_in_order() {
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        for i in 0..5 {
            s.submit(&mut c, OpCode::Misc, i, true).unwrap();
        }
        for i in 0..5 {
            let req = s.poll_dispatch(&mut c).unwrap().unwrap();
            assert_eq!(req.arg, i);
        }
    }

    #[test]
    fn ring_capacity_is_enforced() {
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        for i in 0..64 {
            s.submit(&mut c, OpCode::Nop, i, true).unwrap();
        }
        let err = s.submit(&mut c, OpCode::Nop, 99, true).unwrap_err();
        assert!(matches!(err, SimError::Unsupported { .. }));
    }

    #[test]
    fn double_buffered_ring_hides_back_to_back_completion_overhead() {
        let cfg = SessionConfig {
            double_buffered: true,
            ..SessionConfig::default()
        };
        // A burst of 8 requests submitted ahead (layer N+1 queued while N
        // executes): only the pipeline-fill dispatch pays the poller's
        // completion overhead.
        let mut c = ctx();
        let mut s = NpuSession::open(cfg);
        for i in 0..8 {
            s.submit(&mut c, OpCode::MatMul, i, true).unwrap();
        }
        let before = c.cost.engine_secs(Engine::Scalar);
        for _ in 0..8 {
            s.poll_dispatch(&mut c).unwrap().unwrap();
        }
        let charged = c.cost.engine_secs(Engine::Scalar) - before;
        assert!(
            (charged - cfg.complete_latency).abs() < 1e-15,
            "burst of 8 must pay one completion: {charged}"
        );

        // Strictly alternating submit/poll gives the poller nothing to
        // prefetch — no lookahead, no overlap, full serial charges.
        let mut c2 = ctx();
        let mut s2 = NpuSession::open(cfg);
        let before = c2.cost.engine_secs(Engine::Scalar);
        for i in 0..8 {
            s2.submit(&mut c2, OpCode::MatMul, i, true).unwrap();
            s2.poll_dispatch(&mut c2).unwrap().unwrap();
        }
        let charged = c2.cost.engine_secs(Engine::Scalar) - before;
        assert!((charged - 8.0 * cfg.complete_latency).abs() < 1e-15);
    }

    #[test]
    fn serial_ring_charges_are_unchanged_by_default() {
        // The knob off reproduces the historical accounting exactly,
        // even for a submitted-ahead burst.
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        for i in 0..8 {
            s.submit(&mut c, OpCode::MatMul, i, true).unwrap();
        }
        let before = c.cost.engine_secs(Engine::Scalar);
        for _ in 0..8 {
            s.poll_dispatch(&mut c).unwrap().unwrap();
        }
        let charged = c.cost.engine_secs(Engine::Scalar) - before;
        let expect = 8.0 * SessionConfig::default().complete_latency;
        assert!((charged - expect).abs() < 1e-15);
    }

    #[test]
    fn submission_charges_cpu_time() {
        let mut c = ctx();
        let mut s = NpuSession::open(SessionConfig::default());
        s.submit(&mut c, OpCode::Nop, 0, true).unwrap();
        assert!(c.cost.engine_secs(Engine::Cpu) >= 10e-6);
    }
}
