//! HVX vector register datapath: 1024-bit values and pure lane operations.
//!
//! An HVX context has 32 vector registers of 1024 bits (paper Section
//! 3.1.2). This module provides the register value type [`HvxVec`] and the
//! *functional* semantics of the lane operations the paper's kernels use;
//! instruction costs are charged by [`crate::ctx::NpuContext`], which wraps
//! these helpers. Lane widths follow HVX naming: `b` = byte (128 lanes),
//! `h` = halfword (64 lanes), `w`/`sf` = word / single float (32 lanes),
//! `hf` = half float (64 lanes).

use crate::f16::F16;

/// Bytes per HVX vector register (1024 bits).
pub const HVX_BYTES: usize = 128;
/// Halfword (16-bit) lanes per register.
pub const HVX_HALVES: usize = 64;
/// Word (32-bit) lanes per register.
pub const HVX_WORDS: usize = 32;

/// A 1024-bit HVX vector register value.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HvxVec(pub [u8; HVX_BYTES]);

impl Default for HvxVec {
    fn default() -> Self {
        HvxVec([0u8; HVX_BYTES])
    }
}

impl std::fmt::Debug for HvxVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HvxVec[")?;
        for i in 0..4 {
            write!(f, "{} ", self.get_hf(i))?;
        }
        write!(f, "... ]")
    }
}

impl HvxVec {
    /// The all-zeros register.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a register from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly 128 bytes long.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut v = [0u8; HVX_BYTES];
        v.copy_from_slice(bytes);
        HvxVec(v)
    }

    /// Reads halfword lane `i` (little-endian).
    #[inline]
    pub fn get_h(&self, i: usize) -> u16 {
        u16::from_le_bytes([self.0[2 * i], self.0[2 * i + 1]])
    }

    /// Writes halfword lane `i`.
    #[inline]
    pub fn set_h(&mut self, i: usize, v: u16) {
        self.0[2 * i..2 * i + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads word lane `i`.
    #[inline]
    pub fn get_w(&self, i: usize) -> u32 {
        u32::from_le_bytes([
            self.0[4 * i],
            self.0[4 * i + 1],
            self.0[4 * i + 2],
            self.0[4 * i + 3],
        ])
    }

    /// Writes word lane `i`.
    #[inline]
    pub fn set_w(&mut self, i: usize, v: u32) {
        self.0[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads half-float lane `i`.
    #[inline]
    pub fn get_hf(&self, i: usize) -> F16 {
        F16(self.get_h(i))
    }

    /// Writes half-float lane `i`.
    #[inline]
    pub fn set_hf(&mut self, i: usize, v: F16) {
        self.set_h(i, v.0);
    }

    /// Reads single-float lane `i`.
    #[inline]
    pub fn get_sf(&self, i: usize) -> f32 {
        f32::from_bits(self.get_w(i))
    }

    /// Writes single-float lane `i`.
    #[inline]
    pub fn set_sf(&mut self, i: usize, v: f32) {
        self.set_w(i, v.to_bits());
    }

    /// Builds a register holding 64 half floats.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is not exactly 64 elements.
    pub fn from_hf_slice(vals: &[F16]) -> Self {
        assert_eq!(vals.len(), HVX_HALVES);
        let mut v = HvxVec::zero();
        for (i, &x) in vals.iter().enumerate() {
            v.set_hf(i, x);
        }
        v
    }

    /// Extracts all 64 half-float lanes.
    pub fn to_hf_vec(&self) -> Vec<F16> {
        (0..HVX_HALVES).map(|i| self.get_hf(i)).collect()
    }

    /// Broadcast a halfword pattern to all 64 lanes.
    pub fn splat_h(v: u16) -> Self {
        let mut out = HvxVec::zero();
        for i in 0..HVX_HALVES {
            out.set_h(i, v);
        }
        out
    }

    /// Broadcast a byte to all 128 lanes.
    pub fn splat_b(v: u8) -> Self {
        HvxVec([v; HVX_BYTES])
    }

    /// Broadcast a word pattern to all 32 lanes.
    pub fn splat_w(v: u32) -> Self {
        let mut out = HvxVec::zero();
        for i in 0..HVX_WORDS {
            out.set_w(i, v);
        }
        out
    }
}

/// Elementwise binary op over half-float lanes.
pub fn map2_hf(a: &HvxVec, b: &HvxVec, f: impl Fn(F16, F16) -> F16) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_HALVES {
        out.set_hf(i, f(a.get_hf(i), b.get_hf(i)));
    }
    out
}

/// Elementwise unary op over half-float lanes.
pub fn map_hf(a: &HvxVec, f: impl Fn(F16) -> F16) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_HALVES {
        out.set_hf(i, f(a.get_hf(i)));
    }
    out
}

/// Elementwise binary op over single-float lanes.
pub fn map2_sf(a: &HvxVec, b: &HvxVec, f: impl Fn(f32, f32) -> f32) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_WORDS {
        out.set_sf(i, f(a.get_sf(i), b.get_sf(i)));
    }
    out
}

/// Elementwise binary op over byte lanes.
pub fn map2_b(a: &HvxVec, b: &HvxVec, f: impl Fn(u8, u8) -> u8) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_BYTES {
        out.0[i] = f(a.0[i], b.0[i]);
    }
    out
}

/// `vlut16` semantics: each of the 128 byte lanes of `idx` (low 4 bits)
/// selects one of 16 halfword `table` entries; the 128 halfword results fill
/// a register pair (lanes 0-63 in `.0`, lanes 64-127 in `.1`).
///
/// The real instruction's lane crossing is more intricate; the simulator
/// models the architectural effect (16-entry LUT, byte indices, pair
/// output), which is what the paper's Figure 9 dequantization path uses.
pub fn vlut16(idx: &HvxVec, table: &[u16; 16]) -> (HvxVec, HvxVec) {
    let mut lo = HvxVec::zero();
    let mut hi = HvxVec::zero();
    for i in 0..HVX_BYTES {
        let t = table[(idx.0[i] & 0x0f) as usize];
        if i < HVX_HALVES {
            lo.set_h(i, t);
        } else {
            hi.set_h(i - HVX_HALVES, t);
        }
    }
    (lo, hi)
}

/// Interleave ("shuffle") the halfword lanes of two registers:
/// out pair = (a0,b0,a1,b1,...): `.0` holds lanes from the low half,
/// `.1` from the high half. This is the primitive used to build the HMX
/// two-row interleaved tile layout (paper Figure 4a).
pub fn vshuff_h(a: &HvxVec, b: &HvxVec) -> (HvxVec, HvxVec) {
    let mut lo = HvxVec::zero();
    let mut hi = HvxVec::zero();
    for i in 0..HVX_HALVES {
        let (av, bv) = (a.get_h(i), b.get_h(i));
        let pos = 2 * i;
        if pos < HVX_HALVES {
            lo.set_h(pos, av);
            lo.set_h(pos + 1, bv);
        } else {
            hi.set_h(pos - HVX_HALVES, av);
            hi.set_h(pos - HVX_HALVES + 1, bv);
        }
    }
    (lo, hi)
}

/// Deinterleave ("deal") halfword lanes: inverse of [`vshuff_h`].
pub fn vdeal_h(lo: &HvxVec, hi: &HvxVec) -> (HvxVec, HvxVec) {
    let mut a = HvxVec::zero();
    let mut b = HvxVec::zero();
    for i in 0..HVX_HALVES {
        let (src, lane) = if 2 * i < HVX_HALVES {
            (lo, 2 * i)
        } else {
            (hi, 2 * i - HVX_HALVES)
        };
        a.set_h(i, src.get_h(lane));
        b.set_h(i, src.get_h(lane + 1));
    }
    (a, b)
}

/// Zero-extends the 128 byte lanes into 128 halfword lanes (register pair).
pub fn vunpack_ub_h(v: &HvxVec) -> (HvxVec, HvxVec) {
    let mut lo = HvxVec::zero();
    let mut hi = HvxVec::zero();
    for i in 0..HVX_BYTES {
        let val = v.0[i] as u16;
        if i < HVX_HALVES {
            lo.set_h(i, val);
        } else {
            hi.set_h(i - HVX_HALVES, val);
        }
    }
    (lo, hi)
}

/// Sign-extends the 128 byte lanes (as i8) into halfword lanes (as i16).
pub fn vunpack_b_h(v: &HvxVec) -> (HvxVec, HvxVec) {
    let mut lo = HvxVec::zero();
    let mut hi = HvxVec::zero();
    for i in 0..HVX_BYTES {
        let val = v.0[i] as i8 as i16 as u16;
        if i < HVX_HALVES {
            lo.set_h(i, val);
        } else {
            hi.set_h(i - HVX_HALVES, val);
        }
    }
    (lo, hi)
}

/// Converts signed 16-bit integer lanes to half-float lanes.
pub fn vcvt_h_hf(v: &HvxVec) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_HALVES {
        let x = v.get_h(i) as i16;
        out.set_hf(i, F16::from_f32(x as f32));
    }
    out
}

/// Widens 64 half-float lanes to 64 single-float lanes (register pair).
pub fn vcvt_hf_sf(v: &HvxVec) -> (HvxVec, HvxVec) {
    let mut lo = HvxVec::zero();
    let mut hi = HvxVec::zero();
    for i in 0..HVX_HALVES {
        let x = v.get_hf(i).to_f32();
        if i < HVX_WORDS {
            lo.set_sf(i, x);
        } else {
            hi.set_sf(i - HVX_WORDS, x);
        }
    }
    (lo, hi)
}

/// Narrows a single-float register pair to one half-float register (RTNE).
pub fn vcvt_sf_hf(lo: &HvxVec, hi: &HvxVec) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_WORDS {
        out.set_hf(i, F16::from_f32(lo.get_sf(i)));
        out.set_hf(i + HVX_WORDS, F16::from_f32(hi.get_sf(i)));
    }
    out
}

/// Logical shift right on each halfword lane.
pub fn vshr_h(v: &HvxVec, n: u32) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_HALVES {
        out.set_h(i, v.get_h(i) >> n);
    }
    out
}

/// Logical shift left on each halfword lane.
pub fn vshl_h(v: &HvxVec, n: u32) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_HALVES {
        out.set_h(i, v.get_h(i) << n);
    }
    out
}

/// Logical shift right on each byte lane.
pub fn vshr_b(v: &HvxVec, n: u32) -> HvxVec {
    let mut out = HvxVec::zero();
    for i in 0..HVX_BYTES {
        out.0[i] = v.0[i] >> n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_accessors_roundtrip() {
        let mut v = HvxVec::zero();
        v.set_h(0, 0xBEEF);
        v.set_h(63, 0x1234);
        v.set_w(8, 0xDEAD_BEEF);
        assert_eq!(v.get_h(0), 0xBEEF);
        assert_eq!(v.get_h(63), 0x1234);
        assert_eq!(v.get_w(8), 0xDEAD_BEEF);
        v.set_hf(5, F16::from_f32(1.5));
        assert_eq!(v.get_hf(5).to_f32(), 1.5);
        v.set_sf(3, -2.25);
        assert_eq!(v.get_sf(3), -2.25);
    }

    #[test]
    fn vlut16_maps_low_nibbles() {
        let mut table = [0u16; 16];
        for (i, t) in table.iter_mut().enumerate() {
            *t = (i as u16) * 100;
        }
        let mut idx = HvxVec::zero();
        for i in 0..HVX_BYTES {
            idx.0[i] = (i % 16) as u8 | 0xf0; // High nibble must be ignored.
        }
        let (lo, hi) = vlut16(&idx, &table);
        for i in 0..HVX_HALVES {
            assert_eq!(lo.get_h(i), ((i % 16) as u16) * 100);
            assert_eq!(hi.get_h(i), (((i + 64) % 16) as u16) * 100);
        }
    }

    #[test]
    fn shuff_then_deal_is_identity() {
        let mut a = HvxVec::zero();
        let mut b = HvxVec::zero();
        for i in 0..HVX_HALVES {
            a.set_h(i, i as u16);
            b.set_h(i, 1000 + i as u16);
        }
        let (lo, hi) = vshuff_h(&a, &b);
        // Interleaving property: lo = a0,b0,a1,b1,...
        assert_eq!(lo.get_h(0), 0);
        assert_eq!(lo.get_h(1), 1000);
        assert_eq!(lo.get_h(2), 1);
        let (a2, b2) = vdeal_h(&lo, &hi);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn unpack_signed_vs_unsigned() {
        let mut v = HvxVec::zero();
        v.0[0] = 0xff;
        v.0[127] = 0x7f;
        let (ulo, uhi) = vunpack_ub_h(&v);
        assert_eq!(ulo.get_h(0), 255);
        assert_eq!(uhi.get_h(63), 127);
        let (slo, shi) = vunpack_b_h(&v);
        assert_eq!(slo.get_h(0) as i16, -1);
        assert_eq!(shi.get_h(63) as i16, 127);
    }

    #[test]
    fn int_to_halffloat_conversion() {
        let mut v = HvxVec::zero();
        v.set_h(0, (-8i16) as u16);
        v.set_h(1, 7);
        let out = vcvt_h_hf(&v);
        assert_eq!(out.get_hf(0).to_f32(), -8.0);
        assert_eq!(out.get_hf(1).to_f32(), 7.0);
    }

    #[test]
    fn widen_narrow_roundtrip() {
        let mut v = HvxVec::zero();
        for i in 0..HVX_HALVES {
            v.set_hf(i, F16::from_f32(i as f32 * 0.25 - 8.0));
        }
        let (lo, hi) = vcvt_hf_sf(&v);
        let back = vcvt_sf_hf(&lo, &hi);
        assert_eq!(v, back);
    }

    #[test]
    fn shifts() {
        let v = HvxVec::splat_h(0x8002);
        assert_eq!(vshr_h(&v, 1).get_h(0), 0x4001);
        assert_eq!(vshl_h(&v, 1).get_h(3), 0x0004);
        let b = HvxVec::splat_b(0xf3);
        assert_eq!(vshr_b(&b, 4).0[0], 0x0f);
    }

    #[test]
    fn map_helpers() {
        let a = HvxVec::splat_h(F16::from_f32(2.0).0);
        let b = HvxVec::splat_h(F16::from_f32(3.0).0);
        let sum = map2_hf(&a, &b, |x, y| x.add(y));
        assert_eq!(sum.get_hf(17).to_f32(), 5.0);
        let neg = map_hf(&a, |x| x.neg());
        assert_eq!(neg.get_hf(0).to_f32(), -2.0);
        let bytes = map2_b(&HvxVec::splat_b(0xf0), &HvxVec::splat_b(0x0f), |x, y| x | y);
        assert_eq!(bytes.0[99], 0xff);
    }
}
