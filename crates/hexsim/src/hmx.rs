//! HMX matrix engine: 32x32 FP16 tiles with the two-level interleaved
//! memory layout of paper Figure 4.
//!
//! The basic HMX data unit is a *tile*: a 32x32 FP16 matrix occupying 2 KiB
//! of TCM. Within a tile, every two rows are permuted so that the pair is
//! stored like the transposed 2x32 sub-matrix: `a0,b0,a1,b1,...,a31,b31`
//! (Figure 4a). At the GEMM level, weight tiles are laid out column-major
//! (the k-dimension tiles of one output column are contiguous) because the
//! hardware performs an inner product at tile granularity (Figure 4b).
//!
//! The engine multiplies an activation tile by a weight tile and accumulates
//! into an internal higher-precision accumulator; on writeback it can scale
//! and bias each output channel (column) before converting to FP16.

use crate::f16::F16;

/// Rows/columns of an HMX tile.
pub const TILE_DIM: usize = 32;
/// Bytes occupied by one FP16 tile in TCM.
pub const TILE_BYTES: usize = TILE_DIM * TILE_DIM * 2;

/// Byte offset of element `(row, col)` inside an interleaved FP16 tile.
///
/// Rows are processed in pairs; within pair `p = row / 2` the element order
/// is `(p, col, row % 2)`, i.e. the pair is stored as the transposed 2x32
/// sub-matrix (paper Figure 4a).
///
/// # Panics
///
/// Panics if `row` or `col` is out of range.
#[inline]
pub fn tile_elem_offset(row: usize, col: usize) -> usize {
    assert!(row < TILE_DIM && col < TILE_DIM, "tile index out of range");
    let pair = row / 2;
    let within = col * 2 + (row % 2);
    (pair * (TILE_DIM * 2) + within) * 2
}

/// Packs a row-major 32x32 FP16 matrix into the interleaved tile byte
/// layout.
pub fn pack_tile(rows: &[[F16; TILE_DIM]; TILE_DIM]) -> [u8; TILE_BYTES] {
    let mut out = [0u8; TILE_BYTES];
    for (r, row) in rows.iter().enumerate() {
        for (c, v) in row.iter().enumerate() {
            let off = tile_elem_offset(r, c);
            out[off..off + 2].copy_from_slice(&v.0.to_le_bytes());
        }
    }
    out
}

/// Unpacks an interleaved tile back into a row-major 32x32 FP16 matrix.
///
/// # Panics
///
/// Panics if `bytes` is shorter than [`TILE_BYTES`].
pub fn unpack_tile(bytes: &[u8]) -> [[F16; TILE_DIM]; TILE_DIM] {
    let mut out = [[F16::ZERO; TILE_DIM]; TILE_DIM];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            let off = tile_elem_offset(r, c);
            *v = F16(u16::from_le_bytes([bytes[off], bytes[off + 1]]));
        }
    }
    out
}

/// Linear tile index of weight tile `(k_tile, n_tile)` in the column-major
/// tile layout of paper Figure 4b, for a weight matrix with `k_tiles` tiles
/// along the accumulation dimension.
#[inline]
pub fn weight_tile_index(k_tile: usize, n_tile: usize, k_tiles: usize) -> usize {
    n_tile * k_tiles + k_tile
}

/// The HMX internal accumulator: a 32x32 FP32 matrix.
///
/// FP16 HMX accumulates in higher precision internally (paper Section
/// 5.2.1); the simulator uses FP32, matching the `AccumType=FP32`
/// annotations in the paper's Algorithm 1.
#[derive(Clone)]
pub struct HmxAccumulator(pub [[f32; TILE_DIM]; TILE_DIM]);

impl Default for HmxAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl HmxAccumulator {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        HmxAccumulator([[0.0f32; TILE_DIM]; TILE_DIM])
    }

    /// Resets all entries to zero.
    pub fn clear(&mut self) {
        for row in self.0.iter_mut() {
            row.fill(0.0);
        }
    }

    /// Accumulates `act x wgt` (both row-major 32x32, FP16 inputs upcast to
    /// FP32 for the MAC, like the hardware's internal precision).
    #[allow(clippy::needless_range_loop)]
    pub fn mac(&mut self, act: &[[F16; TILE_DIM]; TILE_DIM], wgt: &[[F16; TILE_DIM]; TILE_DIM]) {
        for i in 0..TILE_DIM {
            for k in 0..TILE_DIM {
                let a = act[i][k].to_f32();
                if a == 0.0 {
                    continue;
                }
                for j in 0..TILE_DIM {
                    self.0[i][j] += a * wgt[k][j].to_f32();
                }
            }
        }
    }

    /// Converts the accumulator to an FP16 tile, applying optional
    /// per-column (output channel) scale and bias first — the HMX writeback
    /// path of paper Section 3.1.2.
    #[allow(clippy::needless_range_loop)]
    pub fn to_tile(
        &self,
        scale: Option<&[f32; TILE_DIM]>,
        bias: Option<&[f32; TILE_DIM]>,
    ) -> [[F16; TILE_DIM]; TILE_DIM] {
        let mut out = [[F16::ZERO; TILE_DIM]; TILE_DIM];
        for i in 0..TILE_DIM {
            for j in 0..TILE_DIM {
                let mut v = self.0[i][j];
                if let Some(s) = scale {
                    v *= s[j];
                }
                if let Some(b) = bias {
                    v += b[j];
                }
                out[i][j] = F16::from_f32(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tile(start: f32) -> [[F16; TILE_DIM]; TILE_DIM] {
        let mut t = [[F16::ZERO; TILE_DIM]; TILE_DIM];
        for (r, row) in t.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = F16::from_f32(start + ((r * 7 + c * 3) % 13) as f32 - 6.0);
            }
        }
        t
    }

    #[test]
    fn tile_offsets_match_figure_4a() {
        // Pair (row0,row1) stored as a0,b0,a1,b1,...
        assert_eq!(tile_elem_offset(0, 0), 0);
        assert_eq!(tile_elem_offset(1, 0), 2);
        assert_eq!(tile_elem_offset(0, 1), 4);
        assert_eq!(tile_elem_offset(1, 1), 6);
        // Second pair starts after 2 rows * 32 cols * 2 bytes = 128 bytes.
        assert_eq!(tile_elem_offset(2, 0), 128);
        assert_eq!(tile_elem_offset(31, 31), TILE_BYTES - 2);
    }

    #[test]
    fn tile_offsets_are_a_permutation() {
        let mut seen = vec![false; TILE_DIM * TILE_DIM];
        for r in 0..TILE_DIM {
            for c in 0..TILE_DIM {
                let off = tile_elem_offset(r, c);
                assert_eq!(off % 2, 0);
                let slot = off / 2;
                assert!(!seen[slot], "offset collision at ({r},{c})");
                seen[slot] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let t = seq_tile(0.5);
        let bytes = pack_tile(&t);
        let back = unpack_tile(&bytes);
        for r in 0..TILE_DIM {
            for c in 0..TILE_DIM {
                assert_eq!(t[r][c], back[r][c]);
            }
        }
    }

    #[test]
    fn weight_tiles_column_major() {
        // For k_tiles = 4: tile (k=1, n=2) sits at 2*4 + 1.
        assert_eq!(weight_tile_index(1, 2, 4), 9);
        assert_eq!(weight_tile_index(0, 0, 4), 0);
        assert_eq!(weight_tile_index(3, 0, 4), 3);
    }

    #[test]
    fn mac_matches_reference_matmul() {
        let a = seq_tile(1.0);
        let b = seq_tile(-2.0);
        let mut acc = HmxAccumulator::new();
        acc.mac(&a, &b);
        // Reference: plain f32 triple loop.
        for i in [0usize, 7, 31] {
            for j in [0usize, 13, 31] {
                let mut expect = 0.0f32;
                for k in 0..TILE_DIM {
                    expect += a[i][k].to_f32() * b[k][j].to_f32();
                }
                assert!((acc.0[i][j] - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn accumulator_accumulates_across_macs() {
        let a = seq_tile(1.0);
        let b = seq_tile(0.0);
        let mut acc1 = HmxAccumulator::new();
        acc1.mac(&a, &b);
        acc1.mac(&a, &b);
        let mut acc2 = HmxAccumulator::new();
        acc2.mac(&a, &b);
        for i in 0..TILE_DIM {
            for j in 0..TILE_DIM {
                assert!((acc1.0[i][j] - 2.0 * acc2.0[i][j]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn writeback_scale_and_bias_per_column() {
        let mut acc = HmxAccumulator::new();
        for i in 0..TILE_DIM {
            for j in 0..TILE_DIM {
                acc.0[i][j] = 1.0;
            }
        }
        let mut scale = [1.0f32; TILE_DIM];
        scale[3] = 2.0;
        let mut bias = [0.0f32; TILE_DIM];
        bias[5] = -4.0;
        let tile = acc.to_tile(Some(&scale), Some(&bias));
        assert_eq!(tile[0][0].to_f32(), 1.0);
        assert_eq!(tile[9][3].to_f32(), 2.0);
        assert_eq!(tile[9][5].to_f32(), -3.0);
    }

    #[test]
    fn clear_resets() {
        let mut acc = HmxAccumulator::new();
        acc.0[1][1] = 5.0;
        acc.clear();
        assert_eq!(acc.0[1][1], 0.0);
    }
}
