//! The NPU execution context: storage + datapath + cost accounting.
//!
//! [`NpuContext`] is the single handle kernels program against. Every method
//! that corresponds to an NPU instruction or engine transfer both *executes*
//! it functionally (bytes really move, lanes really compute) and *charges*
//! its cost, so the latency figures reported by the benchmark harness are
//! derived from the same code path the correctness tests exercise.
//!
//! Cost conventions (see `crates/hexsim/src/cost.rs`):
//! - compute instructions charge packets (1 vector-clock cycle each, except
//!   `vgather`, which charges the device's published 24-48 packets);
//! - memory operations charge bytes at the engine's calibrated bandwidth
//!   (TCM path, DDR core path, DMA, or `l2fetch`) and no packets — on real
//!   silicon loads dual-issue with compute, so bandwidth is the binding
//!   constraint.

use crate::cost::{CostModel, PhaseCost};
use crate::device::DeviceProfile;
use crate::error::{SimError, SimResult};
use crate::f16::F16;
use crate::hmx::{self, HmxAccumulator, TILE_BYTES, TILE_DIM};
use crate::hvx::{self, HvxVec, HVX_BYTES, HVX_HALVES};
use crate::mem::{DdrBuffer, DdrHeap, TcmAddr};

/// How the context executes kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Full functional simulation: DDR buffers are materialized and all data
    /// paths compute real bytes. Use for correctness tests and small models.
    Functional,
    /// Shape-level simulation: DDR buffers track sizes only and
    /// [`NpuContext::replay`] extrapolates one representative block's cost.
    /// Use for paper-scale latency sweeps.
    CostOnly,
}

/// Saved TCM allocator position, for stack-discipline scratch reuse.
#[derive(Clone, Copy, Debug)]
pub struct TcmMark(u32);

/// The simulated NPU: TCM, DDR heap, HVX/HMX datapaths and the cost model.
pub struct NpuContext {
    device: DeviceProfile,
    /// Execution mode (functional vs shape-level).
    pub mode: ExecMode,
    /// Cost accounting for everything this context executed.
    pub cost: CostModel,
    tcm: Vec<u8>,
    tcm_top: u32,
    ddr: DdrHeap,
    /// When set, DDR allocations land in the CPU-owned staging region
    /// instead of session VA (see [`NpuContext::set_ddr_staging`]).
    ddr_staging: bool,
}

impl NpuContext {
    /// Creates a context for a device in the given mode, with a single
    /// NPU session's virtual address space.
    pub fn new(device: DeviceProfile, mode: ExecMode) -> Self {
        Self::new_sharded(device, mode, 1)
    }

    /// Creates a context backed by up to `max_sessions` NPU sessions, each
    /// with its own `session_va_bytes` of virtual address space — the
    /// paper's Section 8 workaround for models whose weights exceed one
    /// 32-bit session. The DDR heap enforces the sessions' aggregate VA
    /// envelope (no buffer larger than one session, no total beyond
    /// `max_sessions` sessions); bin-level placement belongs to the shard
    /// planner upstairs. Everything else (TCM, datapaths, cost model) is
    /// shared, because the Hexagon hardware behind every session is the
    /// same physical NPU.
    pub fn new_sharded(device: DeviceProfile, mode: ExecMode, max_sessions: usize) -> Self {
        let tcm = vec![0u8; device.tcm_bytes as usize];
        let ddr = DdrHeap::with_sessions(device.session_va_bytes, max_sessions);
        let cost = CostModel::new(device.clone());
        NpuContext {
            device,
            mode,
            cost,
            tcm,
            tcm_top: 0,
            ddr,
            ddr_staging: false,
        }
    }

    /// The device profile this context simulates.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    // ------------------------------------------------------------------
    // TCM management.
    // ------------------------------------------------------------------

    /// Allocates `bytes` of TCM with the given alignment (bump allocator).
    pub fn tcm_alloc(&mut self, bytes: u32, align: u32) -> SimResult<TcmAddr> {
        let align = align.max(1);
        let base = self.tcm_top.div_ceil(align) * align;
        if base + bytes > self.device.tcm_bytes {
            return Err(SimError::TcmExhausted {
                capacity: self.device.tcm_bytes,
                requested: bytes,
            });
        }
        self.tcm_top = base + bytes;
        Ok(TcmAddr(base))
    }

    /// Saves the allocator position; restore with [`NpuContext::tcm_release`].
    pub fn tcm_mark(&self) -> TcmMark {
        TcmMark(self.tcm_top)
    }

    /// Restores the allocator to a previous mark, freeing everything
    /// allocated since (stack discipline).
    pub fn tcm_release(&mut self, mark: TcmMark) {
        self.tcm_top = mark.0;
    }

    /// Bytes of TCM currently allocated.
    pub fn tcm_used(&self) -> u32 {
        self.tcm_top
    }

    /// Simulation-side helper: reads TCM bytes without charging cost (used
    /// by tests and by host-side staging that is charged separately).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds TCM.
    pub fn tcm_peek(&self, addr: TcmAddr, len: usize) -> &[u8] {
        &self.tcm[addr.0 as usize..addr.0 as usize + len]
    }

    /// Simulation-side helper: writes TCM bytes without charging cost.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds TCM.
    pub fn tcm_poke(&mut self, addr: TcmAddr, bytes: &[u8]) {
        self.tcm[addr.0 as usize..addr.0 as usize + bytes.len()].copy_from_slice(bytes);
    }

    // ------------------------------------------------------------------
    // DDR heap and DMA.
    // ------------------------------------------------------------------

    /// Allocates a DDR buffer (zeroed when materialized). In
    /// [`ExecMode::CostOnly`] only the size is tracked.
    ///
    /// While [`NpuContext::set_ddr_staging`] is on, the buffer lands in the
    /// CPU-owned staging region instead of session VA: it consumes no
    /// session space (and cannot fail the VA envelope), but the NPU only
    /// sees its contents after an explicit streamed copy into a
    /// session-resident window.
    pub fn ddr_alloc(&mut self, bytes: u64) -> SimResult<DdrBuffer> {
        let materialize = self.mode == ExecMode::Functional;
        if self.ddr_staging {
            Ok(self.ddr.alloc_staged(bytes, materialize))
        } else {
            self.ddr.alloc(bytes, materialize)
        }
    }

    /// Allocates a DDR buffer initialized with `data` (functional mode) or
    /// of equal size (cost-only mode).
    pub fn ddr_alloc_from(&mut self, data: &[u8]) -> SimResult<DdrBuffer> {
        let buf = self.ddr_alloc(data.len() as u64)?;
        if self.mode == ExecMode::Functional {
            self.ddr.get_mut(buf).data.as_mut().unwrap()[..data.len()].copy_from_slice(data);
        }
        Ok(buf)
    }

    /// Frees a DDR buffer, returning its VA space to the session.
    pub fn ddr_free(&mut self, buf: DdrBuffer) {
        self.ddr.free(buf);
    }

    /// Routes subsequent [`NpuContext::ddr_alloc`] /
    /// [`NpuContext::ddr_alloc_from`] calls to the CPU-owned DDR staging
    /// region (`true`) or back to session VA (`false`). The weight loader
    /// flips this around cold-layer builds so streamed weights never count
    /// against the session envelope.
    pub fn set_ddr_staging(&mut self, staging: bool) {
        self.ddr_staging = staging;
    }

    /// Bytes currently mapped across all session VA spaces.
    pub fn ddr_mapped_bytes(&self) -> u64 {
        self.ddr.mapped_bytes
    }

    /// Bytes currently parked in the CPU-owned DDR staging region.
    pub fn ddr_staged_bytes(&self) -> u64 {
        self.ddr.staged_bytes
    }

    /// Number of NPU sessions currently open (1 unless the context was
    /// created with [`NpuContext::new_sharded`] and an allocation spilled
    /// past the first session's VA space).
    pub fn ddr_sessions(&self) -> usize {
        self.ddr.sessions()
    }

    /// Host-side write into DDR (no NPU cost; the host produced the data).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn ddr_write(&mut self, buf: DdrBuffer, offset: u64, bytes: &[u8]) {
        let state = self.ddr.get_mut(buf);
        assert!(offset + bytes.len() as u64 <= state.size, "ddr_write OOB");
        if let Some(data) = state.data.as_mut() {
            data[offset as usize..offset as usize + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// Host-side read from DDR (no NPU cost). Returns zeros in cost-only
    /// mode.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn ddr_read(&self, buf: DdrBuffer, offset: u64, len: usize) -> Vec<u8> {
        let state = self.ddr.get(buf);
        assert!(offset + len as u64 <= state.size, "ddr_read OOB");
        match &state.data {
            Some(data) => data[offset as usize..offset as usize + len].to_vec(),
            None => vec![0u8; len],
        }
    }

    /// DMA transfer DDR -> TCM (1D). Charges the DMA engine.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn dma_h2t(&mut self, src: DdrBuffer, src_off: u64, dst: TcmAddr, len: u32) {
        self.cost.charge_dma(len as u64);
        let state = self.ddr.get(src);
        assert!(src_off + len as u64 <= state.size, "dma_h2t source OOB");
        assert!(
            dst.0 + len <= self.device.tcm_bytes,
            "dma_h2t destination OOB"
        );
        if let Some(data) = &state.data {
            let src_slice = data[src_off as usize..(src_off + len as u64) as usize].to_vec();
            self.tcm[dst.0 as usize..(dst.0 + len) as usize].copy_from_slice(&src_slice);
        }
    }

    /// DMA transfer TCM -> DDR (1D). Charges the DMA engine.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn dma_t2h(&mut self, src: TcmAddr, dst: DdrBuffer, dst_off: u64, len: u32) {
        self.cost.charge_dma(len as u64);
        assert!(src.0 + len <= self.device.tcm_bytes, "dma_t2h source OOB");
        let tcm_slice = self.tcm[src.0 as usize..(src.0 + len) as usize].to_vec();
        let state = self.ddr.get_mut(dst);
        assert!(
            dst_off + len as u64 <= state.size,
            "dma_t2h destination OOB"
        );
        if let Some(data) = state.data.as_mut() {
            data[dst_off as usize..dst_off as usize + len as usize].copy_from_slice(&tcm_slice);
        }
    }

    /// 2D DMA: `rows` rows of `row_bytes` each, with `src_stride` bytes
    /// between DDR row starts, packed densely into TCM. The DMA engine
    /// supports exactly this 1D/2D regular pattern (paper Section 3.1.2).
    pub fn dma_h2t_2d(
        &mut self,
        src: DdrBuffer,
        src_off: u64,
        src_stride: u64,
        dst: TcmAddr,
        row_bytes: u32,
        rows: u32,
    ) -> SimResult<()> {
        if rows == 0 || row_bytes == 0 {
            return Err(SimError::BadDma {
                reason: "zero-sized 2D transfer".to_string(),
            });
        }
        if src_stride < row_bytes as u64 {
            return Err(SimError::BadDma {
                reason: format!("stride {src_stride} < row width {row_bytes}"),
            });
        }
        for r in 0..rows {
            self.dma_h2t(
                src,
                src_off + r as u64 * src_stride,
                dst.offset(r * row_bytes),
                row_bytes,
            );
        }
        Ok(())
    }

    /// Issues an `l2fetch` prefetch hint for `len` DDR bytes. Charges the
    /// prefetch engine; subsequent core-path loads of the data are modelled
    /// as overlapping within the same phase.
    pub fn l2fetch(&mut self, len: u64) {
        self.cost.charge_l2fetch(len);
    }

    // ------------------------------------------------------------------
    // Vector memory operations.
    // ------------------------------------------------------------------

    /// Vector load of one 128-byte register from TCM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds TCM.
    pub fn vmem_ld_tcm(&mut self, addr: TcmAddr) -> HvxVec {
        self.cost.charge_tcm_bytes(HVX_BYTES as u64);
        HvxVec::from_bytes(self.tcm_peek(addr, HVX_BYTES))
    }

    /// Vector store of one 128-byte register to TCM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds TCM.
    pub fn vmem_st_tcm(&mut self, addr: TcmAddr, v: &HvxVec) {
        self.cost.charge_tcm_bytes(HVX_BYTES as u64);
        let bytes = v.0;
        self.tcm_poke(addr, &bytes);
    }

    /// Vector load over the slow core path from DDR/L2 (Table 2: 26 GB/s on
    /// V75). Returns zeros in cost-only mode.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn vmem_ld_ddr(&mut self, buf: DdrBuffer, offset: u64) -> HvxVec {
        self.cost.charge_hvx_ddr_bytes(HVX_BYTES as u64);
        let bytes = self.ddr_read(buf, offset, HVX_BYTES);
        HvxVec::from_bytes(&bytes)
    }

    /// `vgather`: gathers 64 halfwords from TCM at `base + offset[i]` for
    /// the 64 halfword offsets in `offsets`. Offsets are byte offsets, max
    /// 65535 (the constraint that forces the paper's 64 KiB exp LUT).
    ///
    /// `pipelined` selects the lower-bound packet charge (multiple gathers
    /// in flight), versus the midpoint for a dependent standalone gather.
    ///
    /// # Panics
    ///
    /// Panics if any gathered element is outside TCM.
    pub fn vgather_h(&mut self, base: TcmAddr, offsets: &HvxVec, pipelined: bool) -> HvxVec {
        self.cost.charge_vgather(pipelined);
        let mut out = HvxVec::zero();
        for i in 0..HVX_HALVES {
            let off = offsets.get_h(i) as u32;
            let addr = base.0 + off;
            assert!(
                addr + 2 <= self.device.tcm_bytes,
                "vgather element outside TCM"
            );
            let lo = self.tcm[addr as usize];
            let hi = self.tcm[addr as usize + 1];
            out.set_h(i, u16::from_le_bytes([lo, hi]));
        }
        out
    }

    /// `vscatter`: scatters 64 halfword lanes of `v` to TCM at
    /// `base + offsets[i]`. Costs like a gather (same scatter/gather engine).
    ///
    /// # Panics
    ///
    /// Panics if any scattered element is outside TCM.
    pub fn vscatter_h(&mut self, base: TcmAddr, offsets: &HvxVec, v: &HvxVec, pipelined: bool) {
        self.cost.charge_vgather(pipelined);
        for i in 0..HVX_HALVES {
            let off = offsets.get_h(i) as u32;
            let addr = base.0 + off;
            assert!(
                addr + 2 <= self.device.tcm_bytes,
                "vscatter element outside TCM"
            );
            let bytes = v.get_h(i).to_le_bytes();
            self.tcm[addr as usize] = bytes[0];
            self.tcm[addr as usize + 1] = bytes[1];
        }
    }

    // ------------------------------------------------------------------
    // Vector compute operations (each charges 1 packet unless noted).
    // ------------------------------------------------------------------

    /// Broadcast an FP16 scalar to all 64 half-float lanes.
    pub fn vsplat_hf(&mut self, v: F16) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        HvxVec::splat_h(v.0)
    }

    /// Broadcast a byte to all 128 lanes.
    pub fn vsplat_b(&mut self, v: u8) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        HvxVec::splat_b(v)
    }

    /// Elementwise FP16 add. Pre-V79 the result is in qfloat format; call
    /// [`NpuContext::vconv_qf16`] before storing or bit-reinterpreting.
    pub fn vadd_hf(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_hf(a, b, |x, y| x.add(y))
    }

    /// Elementwise FP16 subtract (qfloat result pre-V79).
    pub fn vsub_hf(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_hf(a, b, |x, y| x.sub(y))
    }

    /// Elementwise FP16 multiply (qfloat result pre-V79).
    pub fn vmpy_hf(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_hf(a, b, |x, y| x.mul(y))
    }

    /// Elementwise FP16 max (IEEE semantics, NaN loses).
    pub fn vmax_hf(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_hf(a, b, |x, y| x.max(y))
    }

    /// Elementwise FP16 min.
    pub fn vmin_hf(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_hf(a, b, |x, y| x.min(y))
    }

    /// Converts a qfloat-format register to IEEE FP16. Charges the
    /// conversion instruction on pre-V79 devices and nothing on V79+
    /// (paper Section 5.2.2: the LUT path exists to avoid these).
    pub fn vconv_qf16(&mut self, v: HvxVec) -> HvxVec {
        let ops = self.device.qf16_convert_ops();
        if ops > 0 {
            self.cost.charge_hvx_packets(ops);
        }
        v
    }

    /// Elementwise FP32 add over 32 word lanes.
    pub fn vadd_sf(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_sf(a, b, |x, y| x + y)
    }

    /// Elementwise FP32 multiply over 32 word lanes.
    pub fn vmpy_sf(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_sf(a, b, |x, y| x * y)
    }

    /// Widens 64 FP16 lanes to an FP32 register pair.
    pub fn vcvt_hf_sf(&mut self, v: &HvxVec) -> (HvxVec, HvxVec) {
        self.cost.charge_hvx_packets(1);
        hvx::vcvt_hf_sf(v)
    }

    /// Narrows an FP32 register pair to 64 FP16 lanes (RTNE).
    pub fn vcvt_sf_hf(&mut self, lo: &HvxVec, hi: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::vcvt_sf_hf(lo, hi)
    }

    /// Converts signed 16-bit integer lanes to FP16 (qfloat pre-V79).
    pub fn vcvt_h_hf(&mut self, v: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::vcvt_h_hf(v)
    }

    /// Sign-extends byte lanes to halfword lanes (register pair).
    pub fn vunpack_b_h(&mut self, v: &HvxVec) -> (HvxVec, HvxVec) {
        self.cost.charge_hvx_packets(1);
        hvx::vunpack_b_h(v)
    }

    /// Zero-extends byte lanes to halfword lanes (register pair).
    pub fn vunpack_ub_h(&mut self, v: &HvxVec) -> (HvxVec, HvxVec) {
        self.cost.charge_hvx_packets(1);
        hvx::vunpack_ub_h(v)
    }

    /// Bitwise AND of byte lanes.
    pub fn vand_b(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_b(a, b, |x, y| x & y)
    }

    /// Bitwise OR of byte lanes.
    pub fn vor_b(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_b(a, b, |x, y| x | y)
    }

    /// Byte-lane subtract with wrapping (used for the INT4 bias of 8).
    pub fn vsub_b(&mut self, a: &HvxVec, b: &HvxVec) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::map2_b(a, b, |x, y| x.wrapping_sub(y))
    }

    /// Logical shift right of byte lanes.
    pub fn vshr_b(&mut self, v: &HvxVec, n: u32) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::vshr_b(v, n)
    }

    /// Logical shift right of halfword lanes.
    pub fn vshr_h(&mut self, v: &HvxVec, n: u32) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::vshr_h(v, n)
    }

    /// Logical shift left of halfword lanes.
    pub fn vshl_h(&mut self, v: &HvxVec, n: u32) -> HvxVec {
        self.cost.charge_hvx_packets(1);
        hvx::vshl_h(v, n)
    }

    /// Interleaves halfword lanes of two registers (cross-lane shuffle used
    /// for the HMX two-row layout, paper Figure 4a).
    pub fn vshuff_h(&mut self, a: &HvxVec, b: &HvxVec) -> (HvxVec, HvxVec) {
        self.cost.charge_hvx_packets(1);
        hvx::vshuff_h(a, b)
    }

    /// Deinterleaves halfword lanes (inverse of [`NpuContext::vshuff_h`]).
    pub fn vdeal_h(&mut self, lo: &HvxVec, hi: &HvxVec) -> (HvxVec, HvxVec) {
        self.cost.charge_hvx_packets(1);
        hvx::vdeal_h(lo, hi)
    }

    /// `vlut16` with an FP16 table: 128 byte indices -> 128 FP16 lanes as a
    /// register pair. One instruction (paper Figure 9) and the results are
    /// IEEE FP16 directly — no qfloat conversion needed.
    pub fn vlut16_hf(&mut self, idx: &HvxVec, table: &[F16; 16]) -> (HvxVec, HvxVec) {
        self.cost.charge_vlut16();
        let raw: [u16; 16] = std::array::from_fn(|i| table[i].0);
        hvx::vlut16(idx, &raw)
    }

    /// Charges explicit pipeline-stall cycles (used to model the sequential
    /// dependency chains of polynomial evaluation under VLIW, Section 5.2.1).
    pub fn stall(&mut self, cycles: u64) {
        self.cost.charge_hvx_packets(cycles);
    }

    // ------------------------------------------------------------------
    // HMX operations.
    // ------------------------------------------------------------------

    /// HMX tile multiply-accumulate: reads a 32x32 FP16 activation tile and
    /// weight tile (both in interleaved layout, both in TCM) and accumulates
    /// `act x wgt` into `acc`. Charges one tile-op.
    ///
    /// # Panics
    ///
    /// Panics if a tile range exceeds TCM or is not 2-byte aligned.
    pub fn hmx_matmul(&mut self, acc: &mut HmxAccumulator, act: TcmAddr, wgt: TcmAddr) {
        self.cost.charge_hmx_tile_ops(1);
        assert!(
            act.0.is_multiple_of(2) && wgt.0.is_multiple_of(2),
            "tiles must be aligned"
        );
        let act_tile = hmx::unpack_tile(self.tcm_peek(act, TILE_BYTES));
        let wgt_tile = hmx::unpack_tile(self.tcm_peek(wgt, TILE_BYTES));
        acc.mac(&act_tile, &wgt_tile);
    }

    /// Shape-level HMX charge: `n` tile-ops without data movement. Used by
    /// kernels inside [`NpuContext::replay`] blocks where the MAC work is
    /// proportional to a dimension that the block does not iterate.
    pub fn hmx_charge(&mut self, tile_ops: u64) {
        self.cost.charge_hmx_tile_ops(tile_ops);
    }

    /// Writes the accumulator to TCM as an interleaved FP16 tile, applying
    /// optional per-column scale/bias (HMX writeback path).
    ///
    /// # Panics
    ///
    /// Panics if the output range exceeds TCM.
    pub fn hmx_store_acc(
        &mut self,
        acc: &HmxAccumulator,
        out: TcmAddr,
        scale: Option<&[f32; TILE_DIM]>,
        bias: Option<&[f32; TILE_DIM]>,
    ) {
        // Writeback is part of the tile-op pipeline; charge token cost.
        self.cost.charge_hmx_tile_ops(0);
        let tile = acc.to_tile(scale, bias);
        let bytes = hmx::pack_tile(&tile);
        self.tcm_poke(out, &bytes);
    }

    // ------------------------------------------------------------------
    // Phases and replay.
    // ------------------------------------------------------------------

    /// Runs `f` inside a named cost phase and returns the phase breakdown.
    pub fn phase<R>(&mut self, label: &str, f: impl FnOnce(&mut Self) -> R) -> (R, PhaseCost) {
        self.cost.begin_phase(label);
        let r = f(self);
        let p = self.cost.end_phase();
        (r, p)
    }

    /// Executes `f` once and scales its cost by `times` in cost-only mode,
    /// or executes it `times` times in functional mode.
    ///
    /// The closure must be cost-deterministic (identical charges on every
    /// invocation) — true for the data-independent kernels in this project.
    pub fn replay(&mut self, times: u64, mut f: impl FnMut(&mut Self)) {
        self.replay_indexed(times, |ctx, _| f(ctx));
    }

    /// Like [`NpuContext::replay`] but passes the block index to the
    /// closure. Functional mode iterates `0..times`; cost-only mode executes
    /// block 0 once and multiplies the cost delta.
    pub fn replay_indexed(&mut self, times: u64, mut f: impl FnMut(&mut Self, u64)) {
        if times == 0 {
            return;
        }
        match self.mode {
            ExecMode::Functional => {
                for i in 0..times {
                    f(self, i);
                }
            }
            ExecMode::CostOnly => {
                let snap = self.cost.snapshot();
                f(self, 0);
                self.cost.scale_since(&snap, times);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Engine;

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::Functional)
    }

    #[test]
    fn tcm_alloc_alignment_and_exhaustion() {
        let mut c = ctx();
        let a = c.tcm_alloc(100, 1).unwrap();
        assert_eq!(a, TcmAddr(0));
        let b = c.tcm_alloc(64, 128).unwrap();
        assert_eq!(b.0 % 128, 0);
        let err = c.tcm_alloc(9 * 1024 * 1024, 1).unwrap_err();
        assert!(matches!(err, SimError::TcmExhausted { .. }));
    }

    #[test]
    fn tcm_mark_release() {
        let mut c = ctx();
        let _keep = c.tcm_alloc(256, 1).unwrap();
        let mark = c.tcm_mark();
        c.tcm_alloc(1024, 1).unwrap();
        assert_eq!(c.tcm_used(), 256 + 1024);
        c.tcm_release(mark);
        assert_eq!(c.tcm_used(), 256);
    }

    #[test]
    fn dma_moves_bytes_and_charges() {
        let mut c = ctx();
        let buf = c.ddr_alloc_from(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let t = c.tcm_alloc(8, 8).unwrap();
        c.dma_h2t(buf, 0, t, 8);
        assert_eq!(c.tcm_peek(t, 8), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.cost.counters().dma_bytes, 8);
        // Round trip back to DDR.
        let out = c.ddr_alloc(8).unwrap();
        c.dma_t2h(t, out, 0, 8);
        assert_eq!(c.ddr_read(out, 0, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn dma_2d_packs_rows() {
        let mut c = ctx();
        // DDR layout: two rows of 4 bytes at stride 8.
        let mut src = vec![0u8; 16];
        src[0..4].copy_from_slice(&[1, 2, 3, 4]);
        src[8..12].copy_from_slice(&[5, 6, 7, 8]);
        let buf = c.ddr_alloc_from(&src).unwrap();
        let t = c.tcm_alloc(8, 8).unwrap();
        c.dma_h2t_2d(buf, 0, 8, t, 4, 2).unwrap();
        assert_eq!(c.tcm_peek(t, 8), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn dma_2d_rejects_bad_stride() {
        let mut c = ctx();
        let buf = c.ddr_alloc(64).unwrap();
        let t = c.tcm_alloc(64, 8).unwrap();
        let err = c.dma_h2t_2d(buf, 0, 2, t, 4, 2).unwrap_err();
        assert!(matches!(err, SimError::BadDma { .. }));
    }

    #[test]
    fn vector_tcm_roundtrip() {
        let mut c = ctx();
        let t = c.tcm_alloc(128, 128).unwrap();
        let v = HvxVec::splat_h(0xABCD);
        c.vmem_st_tcm(t, &v);
        let back = c.vmem_ld_tcm(t);
        assert_eq!(v, back);
        assert_eq!(c.cost.counters().tcm_bytes, 256);
    }

    #[test]
    fn vgather_collects_offsets() {
        let mut c = ctx();
        let t = c.tcm_alloc(1024, 128).unwrap();
        for i in 0..512u32 {
            let val = (i as u16).to_le_bytes();
            c.tcm_poke(t.offset(i * 2), &val);
        }
        let mut offs = HvxVec::zero();
        for i in 0..HVX_HALVES {
            offs.set_h(i, (i as u16) * 4); // Every other halfword.
        }
        let v = c.vgather_h(t, &offs, true);
        for i in 0..HVX_HALVES {
            assert_eq!(v.get_h(i), (i as u16) * 2);
        }
        assert_eq!(c.cost.counters().vgathers, 1);
    }

    #[test]
    fn vscatter_then_gather_roundtrip() {
        let mut c = ctx();
        let t = c.tcm_alloc(4096, 128).unwrap();
        let mut offs = HvxVec::zero();
        for i in 0..HVX_HALVES {
            offs.set_h(i, (i as u16) * 64);
        }
        let mut vals = HvxVec::zero();
        for i in 0..HVX_HALVES {
            vals.set_h(i, 0x100 + i as u16);
        }
        c.vscatter_h(t, &offs, &vals, false);
        let back = c.vgather_h(t, &offs, false);
        assert_eq!(vals, back);
    }

    #[test]
    fn hmx_matmul_identity() {
        let mut c = ctx();
        let act = c.tcm_alloc(TILE_BYTES as u32, 2048).unwrap();
        let wgt = c.tcm_alloc(TILE_BYTES as u32, 2048).unwrap();
        let out = c.tcm_alloc(TILE_BYTES as u32, 2048).unwrap();
        // Activation: arbitrary; weight: identity.
        let mut a = [[F16::ZERO; TILE_DIM]; TILE_DIM];
        let mut w = [[F16::ZERO; TILE_DIM]; TILE_DIM];
        for (i, row) in a.iter_mut().enumerate() {
            w[i][i] = F16::ONE;
            for (j, v) in row.iter_mut().enumerate() {
                *v = F16::from_f32(((i * 31 + j * 17) % 11) as f32 - 5.0);
            }
        }
        let ab = hmx::pack_tile(&a);
        let wb = hmx::pack_tile(&w);
        c.tcm_poke(act, &ab);
        c.tcm_poke(wgt, &wb);
        let mut acc = HmxAccumulator::new();
        c.hmx_matmul(&mut acc, act, wgt);
        c.hmx_store_acc(&acc, out, None, None);
        let result = hmx::unpack_tile(c.tcm_peek(out, TILE_BYTES));
        for i in 0..TILE_DIM {
            for j in 0..TILE_DIM {
                assert_eq!(result[i][j], a[i][j], "({i},{j})");
            }
        }
        assert_eq!(c.cost.counters().hmx_tile_ops, 1);
    }

    #[test]
    fn replay_scales_cost_only() {
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        c.replay(10, |c| {
            c.cost.charge_hvx_packets(5);
        });
        assert_eq!(c.cost.counters().hvx_instructions, 50);

        let mut f = ctx();
        let mut runs = 0;
        f.replay(10, |c| {
            runs += 1;
            c.cost.charge_hvx_packets(5);
        });
        assert_eq!(runs, 10);
        assert_eq!(f.cost.counters().hvx_instructions, 50);
    }

    #[test]
    fn cost_only_ddr_is_shape_only() {
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        // 3 GiB fits in the V75 session VA without materializing memory.
        let buf = c.ddr_alloc(3 * 1024 * 1024 * 1024).unwrap();
        assert_eq!(c.ddr_read(buf, 0, 4), vec![0, 0, 0, 0]);
        let t = c.tcm_alloc(128, 128).unwrap();
        c.dma_h2t(buf, 1 << 30, t, 128);
        assert_eq!(c.cost.counters().dma_bytes, 128);
    }

    #[test]
    fn va_limit_blocks_large_models_on_v73() {
        let mut c = NpuContext::new(DeviceProfile::v73(), ExecMode::CostOnly);
        // A 3B-parameter Q4 model is ~1.7 GiB of weights plus KV; two of
        // these mappings exceed the 2 GiB session space.
        c.ddr_alloc(1_700_000_000).unwrap();
        let err = c.ddr_alloc(1_000_000_000).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
    }

    #[test]
    fn sharded_context_spills_into_a_second_session() {
        // The same pair of mappings that overflows one V73 session maps
        // fine on a two-session context (paper Section 8).
        let mut c = NpuContext::new_sharded(DeviceProfile::v73(), ExecMode::CostOnly, 2);
        c.ddr_alloc(1_700_000_000).unwrap();
        assert_eq!(c.ddr_sessions(), 1);
        c.ddr_alloc(1_000_000_000).unwrap();
        assert_eq!(c.ddr_sessions(), 2);
        // The cap still holds: a third large mapping has nowhere to go.
        let err = c.ddr_alloc(1_500_000_000).unwrap_err();
        assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
    }

    #[test]
    fn staging_toggle_routes_allocations_outside_session_va() {
        let mut c = NpuContext::new(DeviceProfile::v73(), ExecMode::CostOnly);
        c.ddr_alloc(1_700_000_000).unwrap();
        // The same second mapping that overflows the session above maps
        // fine as staging, and the functional data path still works.
        c.set_ddr_staging(true);
        let staged = c.ddr_alloc(1_000_000_000).unwrap();
        c.set_ddr_staging(false);
        assert_eq!(c.ddr_staged_bytes(), 1_000_000_000);
        assert_eq!(c.ddr_mapped_bytes(), 1_700_000_000);
        c.ddr_free(staged);
        assert_eq!(c.ddr_staged_bytes(), 0);

        let mut f = ctx();
        f.set_ddr_staging(true);
        let buf = f.ddr_alloc_from(&[9, 8, 7, 6]).unwrap();
        f.set_ddr_staging(false);
        assert_eq!(f.ddr_read(buf, 0, 4), vec![9, 8, 7, 6]);
        assert_eq!(f.ddr_mapped_bytes(), 0);
    }

    #[test]
    fn qf16_conversion_free_on_v79() {
        let mut c75 = ctx();
        let v = HvxVec::splat_h(0x3c00);
        let _ = c75.vconv_qf16(v);
        assert_eq!(c75.cost.counters().hvx_instructions, 1);

        let mut c79 = NpuContext::new(DeviceProfile::v79(), ExecMode::Functional);
        let _ = c79.vconv_qf16(v);
        assert_eq!(c79.cost.counters().hvx_instructions, 0);
    }

    #[test]
    fn phase_helper_records_breakdown() {
        let mut c = ctx();
        let (_, p) = c.phase("load", |c| {
            c.cost.charge_dma(60_000); // 1 us at 60 GB/s.
        });
        assert_eq!(p.label, "load");
        assert!((p.engine(Engine::Dma) - 1e-6).abs() < 1e-12);
        assert_eq!(c.cost.phases().len(), 1);
    }
}
