//! Super-group coalescing: repacking eight Q4_0 groups so that 256 INT4
//! values fill one 128-byte HVX register (paper Section 5.1.2, Figure 7).
//!
//! A single 18-byte Q4_0 group is far smaller than a 128-byte vector
//! register, so loading groups one by one wastes memory bandwidth and burns
//! instructions merging partial registers. The paper's fix: coalesce 8
//! groups into a *super-block* whose first 128 bytes are the concatenated
//! INT4 codes of 256 consecutive elements — exactly one register — followed
//! by the 8 FP16 scales (16 bytes). The AoS flavor is preserved (quants and
//! scales stay adjacent) because NPU prefetch favors large regular blocks
//! over separate arrays (Section 5.1.2).

use hexsim::f16::F16;

use crate::block::{BlockQ4_0, BlockQ8_0, GROUP_SIZE};

/// Q4_0 groups per super-block.
pub const GROUPS_PER_SUPER: usize = 8;
/// Elements per super-block (256).
pub const SUPER_ELEMS: usize = GROUPS_PER_SUPER * GROUP_SIZE;
/// Serialized size of a Q4 super-block: 128 B quants + 16 B scales.
pub const SUPER_Q4_BYTES: usize = 144;
/// Serialized size of a Q8 super-block: 256 B quants + 16 B scales.
pub const SUPER_Q8_BYTES: usize = 272;

/// Eight coalesced Q4_0 groups: one full HVX register of INT4 codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuperBlockQ4 {
    /// 256 4-bit codes, two per byte, element `2i`/`2i+1` in byte `i`.
    pub quants: [u8; 128],
    /// The eight group scales, in group order.
    pub scales: [F16; GROUPS_PER_SUPER],
}

impl SuperBlockQ4 {
    /// Coalesces eight consecutive Q4_0 blocks.
    pub fn from_blocks(blocks: &[BlockQ4_0; GROUPS_PER_SUPER]) -> Self {
        let mut quants = [0u8; 128];
        let mut scales = [F16::ZERO; GROUPS_PER_SUPER];
        for (g, block) in blocks.iter().enumerate() {
            quants[g * 16..(g + 1) * 16].copy_from_slice(&block.quants);
            scales[g] = block.scale;
        }
        SuperBlockQ4 { quants, scales }
    }

    /// Splits back into the eight original blocks.
    pub fn to_blocks(&self) -> [BlockQ4_0; GROUPS_PER_SUPER] {
        std::array::from_fn(|g| {
            let mut q = [0u8; 16];
            q.copy_from_slice(&self.quants[g * 16..(g + 1) * 16]);
            BlockQ4_0 {
                scale: self.scales[g],
                quants: q,
            }
        })
    }

    /// Serializes to the 144-byte wire format (quants register then scales).
    pub fn to_bytes(&self) -> [u8; SUPER_Q4_BYTES] {
        let mut out = [0u8; SUPER_Q4_BYTES];
        out[..128].copy_from_slice(&self.quants);
        for (g, s) in self.scales.iter().enumerate() {
            out[128 + 2 * g..130 + 2 * g].copy_from_slice(&s.0.to_le_bytes());
        }
        out
    }

    /// Deserializes from the 144-byte wire format.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than 144 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut quants = [0u8; 128];
        quants.copy_from_slice(&bytes[..128]);
        let scales = std::array::from_fn(|g| {
            F16(u16::from_le_bytes([bytes[128 + 2 * g], bytes[129 + 2 * g]]))
        });
        SuperBlockQ4 { quants, scales }
    }

    /// Dequantizes all 256 elements (reference path, f32).
    pub fn dequantize(&self) -> Vec<f32> {
        self.to_blocks()
            .iter()
            .flat_map(|b| b.dequantize())
            .collect()
    }
}

/// Eight coalesced Q8_0 groups: two HVX registers of INT8 codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuperBlockQ8 {
    /// 256 signed 8-bit codes.
    pub quants: [i8; SUPER_ELEMS],
    /// The eight group scales, in group order.
    pub scales: [F16; GROUPS_PER_SUPER],
}

impl SuperBlockQ8 {
    /// Coalesces eight consecutive Q8_0 blocks.
    pub fn from_blocks(blocks: &[BlockQ8_0; GROUPS_PER_SUPER]) -> Self {
        let mut quants = [0i8; SUPER_ELEMS];
        let mut scales = [F16::ZERO; GROUPS_PER_SUPER];
        for (g, block) in blocks.iter().enumerate() {
            quants[g * GROUP_SIZE..(g + 1) * GROUP_SIZE].copy_from_slice(&block.quants);
            scales[g] = block.scale;
        }
        SuperBlockQ8 { quants, scales }
    }

    /// Serializes to the 272-byte wire format.
    pub fn to_bytes(&self) -> [u8; SUPER_Q8_BYTES] {
        let mut out = [0u8; SUPER_Q8_BYTES];
        for (i, &q) in self.quants.iter().enumerate() {
            out[i] = q as u8;
        }
        for (g, s) in self.scales.iter().enumerate() {
            out[256 + 2 * g..258 + 2 * g].copy_from_slice(&s.0.to_le_bytes());
        }
        out
    }

    /// Deserializes from the 272-byte wire format.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than 272 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let quants = std::array::from_fn(|i| bytes[i] as i8);
        let scales = std::array::from_fn(|g| {
            F16(u16::from_le_bytes([bytes[256 + 2 * g], bytes[257 + 2 * g]]))
        });
        SuperBlockQ8 { quants, scales }
    }

    /// Dequantizes all 256 elements (reference path, f32).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(SUPER_ELEMS);
        for g in 0..GROUPS_PER_SUPER {
            let d = self.scales[g].to_f32();
            for i in 0..GROUP_SIZE {
                out.push(self.quants[g * GROUP_SIZE + i] as f32 * d);
            }
        }
        out
    }
}

/// Repacks a stream of Q4_0 block bytes into super-block bytes.
///
/// The block count must be a multiple of 8 (guaranteed for matrices with
/// dimensions that are multiples of 32 when `k * n >= 256`).
///
/// # Panics
///
/// Panics if `blocks` is not a multiple of eight blocks long.
pub fn coalesce_q4_stream(blocks: &[BlockQ4_0]) -> Vec<u8> {
    assert_eq!(blocks.len() % GROUPS_PER_SUPER, 0);
    let mut out = Vec::with_capacity(blocks.len() / GROUPS_PER_SUPER * SUPER_Q4_BYTES);
    for chunk in blocks.chunks_exact(GROUPS_PER_SUPER) {
        let arr: [BlockQ4_0; GROUPS_PER_SUPER] = std::array::from_fn(|i| chunk[i]);
        out.extend_from_slice(&SuperBlockQ4::from_blocks(&arr).to_bytes());
    }
    out
}

/// Repacks a stream of Q8_0 blocks into super-block bytes.
///
/// # Panics
///
/// Panics if `blocks` is not a multiple of eight blocks long.
pub fn coalesce_q8_stream(blocks: &[BlockQ8_0]) -> Vec<u8> {
    assert_eq!(blocks.len() % GROUPS_PER_SUPER, 0);
    let mut out = Vec::with_capacity(blocks.len() / GROUPS_PER_SUPER * SUPER_Q8_BYTES);
    for chunk in blocks.chunks_exact(GROUPS_PER_SUPER) {
        let arr: [BlockQ8_0; GROUPS_PER_SUPER] = std::array::from_fn(|i| chunk[i]);
        out.extend_from_slice(&SuperBlockQ8::from_blocks(&arr).to_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> [BlockQ4_0; 8] {
        std::array::from_fn(|g| {
            let vals: Vec<f32> = (0..32).map(|i| ((g * 32 + i) as f32).sin() * 2.0).collect();
            BlockQ4_0::quantize(&vals)
        })
    }

    #[test]
    fn quants_fill_exactly_one_register() {
        let sb = SuperBlockQ4::from_blocks(&blocks());
        assert_eq!(sb.quants.len(), hexsim::hvx::HVX_BYTES);
        assert_eq!(std::mem::size_of_val(&sb.quants), 128);
    }

    #[test]
    fn coalesce_roundtrip() {
        let b = blocks();
        let sb = SuperBlockQ4::from_blocks(&b);
        let back = sb.to_blocks();
        assert_eq!(b, back);
    }

    #[test]
    fn wire_roundtrip_q4() {
        let sb = SuperBlockQ4::from_blocks(&blocks());
        let bytes = sb.to_bytes();
        assert_eq!(bytes.len(), SUPER_Q4_BYTES);
        assert_eq!(SuperBlockQ4::from_bytes(&bytes), sb);
    }

    #[test]
    fn super_dequant_matches_blockwise() {
        let b = blocks();
        let sb = SuperBlockQ4::from_blocks(&b);
        let flat: Vec<f32> = b.iter().flat_map(|blk| blk.dequantize()).collect();
        assert_eq!(sb.dequantize(), flat);
    }

    #[test]
    fn q8_super_roundtrip() {
        let b: [BlockQ8_0; 8] = std::array::from_fn(|g| {
            let vals: Vec<f32> = (0..32).map(|i| ((g + i) as f32).cos()).collect();
            BlockQ8_0::quantize(&vals)
        });
        let sb = SuperBlockQ8::from_blocks(&b);
        let bytes = sb.to_bytes();
        assert_eq!(bytes.len(), SUPER_Q8_BYTES);
        let back = SuperBlockQ8::from_bytes(&bytes);
        assert_eq!(back, sb);
        let flat: Vec<f32> = b.iter().flat_map(|blk| blk.dequantize()).collect();
        assert_eq!(sb.dequantize(), flat);
    }

    #[test]
    fn stream_coalescing_sizes() {
        let b = blocks();
        let stream = coalesce_q4_stream(&b);
        assert_eq!(stream.len(), SUPER_Q4_BYTES);
        let many: Vec<BlockQ4_0> = b.iter().cycle().take(32).copied().collect();
        assert_eq!(coalesce_q4_stream(&many).len(), 4 * SUPER_Q4_BYTES);
    }

    #[test]
    fn super_block_overhead_matches_bpw() {
        // 144 bytes / 256 elems = 4.5 bits per weight, same as plain Q4_0.
        let bpw = SUPER_Q4_BYTES as f64 * 8.0 / SUPER_ELEMS as f64;
        assert!((bpw - 4.5).abs() < 1e-12);
    }
}
